#!/usr/bin/env python
"""Size NEMS and CMOS sleep transistors for a power-gated logic block.

Reproduces the paper's Section 6 design flow on a live circuit:

1. device-level Figure 17 sweep — ON resistance and OFF current vs area
   (normalised to a W/L = 5 CMOS switch at 90 nm);
2. block-level sizing — find the smallest sleep switch of each
   technology that keeps the gated inverter chain within a 5% delay
   budget, then compare sleep-mode leakage;
3. fine- vs coarse-grain and header vs footer placement comparison
   (Figure 16 styles).

Run:  python examples/sleep_transistor_sizing.py  (takes ~2 minutes)
"""

from repro.library import sleep
from repro.units import format_si

DELAY_BUDGET = 0.05  # 5% allowed block-delay degradation


def main():
    print("== Device level (Figure 17) ==")
    print(f"{'area':>5} {'Ron cmos':>10} {'Ron nems':>10} "
          f"{'Ioff cmos':>10} {'Ioff nems':>10}")
    for a, rc, ic, rn, i_n in sleep.sweep_sleep_devices([1, 4, 16, 64]):
        print(f"{a:>5.0f} {rc:>8.0f} Ω {rn:>8.0f} Ω "
              f"{format_si(ic, 'A'):>10} {format_si(i_n, 'A'):>10}")
    print("The OFF-current gap is ~3 orders of magnitude at every "
          "size;\nthe absolute Ron gap shrinks as 1/area.\n")

    print(f"== Block level: sizing for <= {DELAY_BUDGET * 100:.0f}% "
          f"delay degradation ==")
    base = sleep.GatedBlockSpec()
    d_ungated = sleep.block_delay(
        sleep.replace_spec(base, kind="none", area_units=1.0))
    print(f"ungated chain delay: {d_ungated * 1e12:.1f} ps")
    sized = {}
    for kind in ("cmos", "nems"):
        area = sleep.size_for_delay_budget(kind, DELAY_BUDGET)
        spec = sleep.replace_spec(base, kind=kind, area_units=area)
        delay = sleep.block_delay(spec)
        leak = sleep.block_sleep_leakage(spec)
        sized[kind] = (area, delay, leak)
        print(f"  {kind:>4}: area {area:6.1f} units, delay "
              f"{delay * 1e12:6.1f} ps "
              f"(+{(delay / d_ungated - 1) * 100:.1f}%), sleep leakage "
              f"{format_si(leak, 'W')}")
    ratio = sized["cmos"][2] / sized["nems"][2]
    area_cost = sized["nems"][0] / sized["cmos"][0]
    print(f"\nAt matched performance the NEMS switch leaks {ratio:.0f}x "
          f"less,\ncosting {area_cost:.0f}x the area — the paper's "
          f"'negligible performance\ndegradation' trade (Section 6).\n")

    print("== Granularity and placement (Figure 16) ==")
    budget = sized["nems"][0]
    for grain in ("coarse", "fine"):
        for header in (False, True):
            spec = sleep.replace_spec(base, kind="nems",
                                      area_units=budget, grain=grain,
                                      header=header)
            d = sleep.block_delay(spec)
            style = ("header" if header else "footer")
            print(f"  {grain:>6} / {style:<6}: delay "
                  f"{d * 1e12:6.1f} ps")
    print("Fine-grain gating splits the area budget per gate, so each "
          "switch\nis smaller and slower — coarse-grain wins at equal "
          "total area.")


if __name__ == "__main__":
    main()

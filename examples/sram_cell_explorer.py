#!/usr/bin/env python
"""Explore the four SRAM cell architectures of the paper's Figure 13.

For each variant (conventional, dual-Vt [25], asymmetric [26], and the
proposed hybrid NEMS-CMOS cell) this example measures:

* read static noise margin from butterfly curves (Figure 14);
* read latency to a 100 mV bitline split, both stored states (Figure 15);
* standby leakage power (Figure 15);
* write latency to full-rail settle — the extension metric that exposes
  the hybrid cell's hidden cost: flipping it actuates four NEMS beams.

Run:  python examples/sram_cell_explorer.py  (takes ~1 minute)
"""

from repro.library.sram import SramSpec, VARIANTS
from repro.library import sram_metrics as sm
from repro.units import format_si


def main():
    print("Paper claims for the hybrid cell: ~7.7x lower standby "
          "leakage,\n~14% lower SNM, ~23% higher read latency.\n")
    rows = {}
    for variant in VARIANTS:
        spec = SramSpec(variant=variant)
        snm, _ = sm.static_noise_margin(spec)
        lat0, lat1 = sm.read_latencies_both(spec)
        leak = sm.standby_leakage(spec)
        write = sm.write_latency(spec)
        rows[variant] = (snm, (lat0 + lat1) / 2, leak, write)

    header = (f"{'variant':>13} {'SNM':>8} {'read':>9} {'leakage':>10} "
              f"{'write':>9}")
    print(header)
    print("-" * len(header))
    for variant, (snm, lat, leak, write) in rows.items():
        print(f"{variant:>13} {snm * 1e3:>6.0f}mV {lat * 1e12:>7.0f}ps "
              f"{format_si(leak, 'W'):>10} {write * 1e12:>7.0f}ps")

    conv = rows["conventional"]
    hyb = rows["hybrid"]
    print("\nHybrid vs conventional:")
    print(f"  SNM           : {hyb[0] / conv[0]:.2f}x "
          f"(paper: 0.86x)")
    print(f"  read latency  : {hyb[1] / conv[1]:.2f}x (paper: 1.23x)")
    print(f"  leakage       : {conv[2] / hyb[2]:.1f}x lower "
          f"(paper: 7.7x)")
    print(f"  write latency : {hyb[3] / conv[3]:.1f}x — the NEMS "
          f"actuation cost the paper does not quote.")


if __name__ == "__main__":
    main()

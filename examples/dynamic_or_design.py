#!/usr/bin/env python
"""Design-space exploration of hybrid NEMS-CMOS dynamic OR gates.

Walks the paper's Section 4 story on live circuits:

* size the CMOS keeper for a noise-margin target at the 3-sigma leaky
  process corner (the methodology of ref [24]);
* compare CMOS vs hybrid delay / switching power / leakage across
  fan-in, reproducing the crossover beyond which the hybrid gate wins
  both metrics;
* evaluate the paper's Equation 1 power-delay product at a typical
  activity factor.

Run:  python examples/dynamic_or_design.py  (takes ~1-2 minutes)
"""

from repro.experiments.common import NM_TARGET, build_sized_gate
from repro.library import gate_metrics
from repro.library.metrics import power_delay_product

FAN_INS = (4, 8, 12)
FAN_OUT = 3.0
ACTIVITY = 0.2


def characterise(style: str, fan_in: int):
    gate = build_sized_gate(fan_in, FAN_OUT, style)
    delay = gate_metrics.measure_worst_case_delay(gate)
    p_sw, _ = gate_metrics.measure_switching_power(gate)
    p_leak = gate_metrics.measure_leakage_power(gate)
    nm = gate_metrics.noise_margin_static(gate)
    return gate, delay, p_sw, p_leak, nm


def main():
    print(f"Keeper sizing: noise-margin target {NM_TARGET} V at the "
          f"3-sigma leaky corner\n")
    header = (f"{'fan-in':>6} {'style':>7} {'keeper':>9} {'NM':>6} "
              f"{'delay':>9} {'P_sw':>9} {'P_leak':>10} {'PDP':>10}")
    print(header)
    print("-" * len(header))
    results = {}
    for fan_in in FAN_INS:
        for style in ("cmos", "hybrid"):
            gate, delay, p_sw, p_leak, nm = characterise(style, fan_in)
            pdp = power_delay_product(p_leak, p_sw, delay, ACTIVITY)
            results[(style, fan_in)] = (delay, p_sw)
            print(f"{fan_in:>6} {style:>7} "
                  f"{gate.keeper_width * 1e6:>7.2f}um "
                  f"{nm:>6.3f} {delay * 1e12:>7.1f}ps "
                  f"{p_sw * 1e6:>7.2f}uW {p_leak * 1e9:>8.2f}nW "
                  f"{pdp * 1e18:>8.1f}aJ")

    print("\nHead-to-head (hybrid vs CMOS):")
    for fan_in in FAN_INS:
        d_c, p_c = results[("cmos", fan_in)]
        d_h, p_h = results[("hybrid", fan_in)]
        verdict = ("hybrid wins BOTH" if d_h < d_c and p_h < p_c
                   else "CMOS faster, hybrid cheaper")
        print(f"  fan-in {fan_in:>2}: delay {d_h / d_c:5.2f}x, "
              f"power {p_h / p_c:5.2f}x  ->  {verdict}")
    print("\nThe CMOS keeper must grow with fan-in to hold its noise "
          "margin,\nso beyond the crossover the hybrid gate is faster "
          "AND lower power\n(the paper's Figure 11 claim).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Render key figures of the paper as terminal charts.

No plotting library is required: `repro.report.ascii_chart` draws the
series directly in the terminal.  Rendered here:

* the NEMFET transfer characteristic with its hysteresis loop
  (the physics behind Figure 4's ON/OFF states);
* SRAM butterfly curves for the conventional and hybrid cells
  (Figure 14);
* the sleep-transistor Ron/Ioff area sweep on log-log axes
  (Figure 17).

Run:  python examples/figure_gallery.py  (takes ~1 minute)
"""

import numpy as np

from repro import Circuit, dc_sweep
from repro.devices.nemfet import Nemfet, nemfet_90nm
from repro.experiments import fig17_sleep_transistors
from repro.library.sram import SramSpec
from repro.library.sram_metrics import butterfly
from repro.report import ascii_chart


def nemfet_hysteresis_chart() -> str:
    params = nemfet_90nm()
    circuit = Circuit("loop")
    circuit.vsource("VG", "g", "0", 0.0)
    circuit.vsource("VD", "d", "0", 1.2)
    circuit.add(Nemfet("M1", "d", "g", "0", params, 1e-6))
    vg = np.linspace(0.0, 0.8, 49)
    up = dc_sweep(circuit, "VG", vg)
    down = dc_sweep(circuit, "VG", vg[::-1], x0=up.points[-1].x)
    i_up = np.maximum(np.abs(up.branch_current("VD")), 1e-14)
    i_dn = np.maximum(np.abs(down.branch_current("VD"))[::-1], 1e-14)
    return ascii_chart(
        vg, {"sweep up": i_up, "sweep down": i_dn}, logy=True,
        title="NEMFET transfer: pull-in/pull-out hysteresis "
              "(I_D [A] vs V_G [V])",
        x_label="V_G [V]", y_label="I_D")


def butterfly_chart(variant: str) -> str:
    curves = butterfly(SramSpec(variant=variant), points=61)
    return ascii_chart(
        curves.v_in,
        {"QR = f(QL)": curves.v_right, "QL = f(QR)": curves.v_left},
        title=f"Figure 14 butterfly ({variant}): both inverter VTCs",
        x_label="input [V]", y_label="out [V]")


def sleep_chart() -> str:
    result = fig17_sleep_transistors.run(
        area_units=(1, 2, 4, 8, 16, 32, 64), delay_budget=None)
    area = result.column("area [units]")
    return ascii_chart(
        area,
        {"Ron CMOS": result.column("Ron CMOS [ohm]"),
         "Ron NEMS": result.column("Ron NEMS [ohm]"),
         "Ioff CMOS [nA]": result.column("Ioff CMOS [nA]"),
         "Ioff NEMS [nA]": result.column("Ioff NEMS [nA]")},
        logx=True, logy=True,
        title="Figure 17: sleep switches vs area (log-log)",
        x_label="area [W/L=5 units]")


def main():
    print(nemfet_hysteresis_chart())
    print()
    print(butterfly_chart("conventional"))
    print()
    print(butterfly_chart("hybrid"))
    print()
    print(sleep_chart())


if __name__ == "__main__":
    main()

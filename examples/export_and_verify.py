#!/usr/bin/env python
"""Engineering workflow demo: verify, audit, and export a design.

Shows the supporting toolchain around the simulator:

1. run the analytic self-check battery (`repro.verification`) — the
   same checks `python -m repro verify` executes;
2. build a hybrid dynamic OR gate, audit one switching event element by
   element (where does every femtojoule go?);
3. export the circuit as a SPICE deck for cross-checking in an
   external simulator.

Run:  python examples/export_and_verify.py
"""

from repro import transient
from repro.analysis.audit import PowerAudit
from repro.circuit.spice_io import to_spice
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or
from repro.verification import run_all


def main():
    print("== 1. Engine self-checks ==")
    results = run_all(verbose=True)
    if not all(r.passed for r in results):
        raise SystemExit("verification failed — aborting demo")

    print("\n== 2. Switching-event energy audit ==")
    spec = DynamicOrSpec(fan_in=4, fan_out=1, style="hybrid")
    gate = build_dynamic_or(spec)
    gate.set_inputs_domino([0])
    result = transient(gate.circuit, spec.period + spec.t_precharge,
                       4e-12)
    audit = PowerAudit(result)
    print(f"{'element':<10} {'energy [fJ]':>12}")
    for name, energy in audit.table(threshold=0.5e-15)[:10]:
        print(f"{name:<10} {energy * 1e15:>12.2f}")
    print("(negative = delivering; VDD supplies what the devices burn)")

    print("\n== 3. SPICE export ==")
    deck = to_spice(gate.circuit)
    head = "\n".join(deck.splitlines()[:14])
    print(head)
    print(f"... ({len(deck.splitlines())} lines total; "
          f"write with repro.circuit.spice_io.write_spice)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design your own NEMS switch: geometry -> electromechanics -> circuit.

Shows the device-physics layer of the library as a design tool:

* compute stiffness / mass / pull-in analytically from beam geometry
  and material (the paper's Figure 6a lumped model);
* check the design against the hybrid process flow of Section 3;
* compare the physical electromechanical model against the paper's
  Figure 6(b) all-electrical macro-model (ref [23]) — including what
  the macro-model loses (hysteresis);
* try the alternative cantilever relay implementation (Figure 5).

Run:  python examples/nems_device_playground.py
"""

import numpy as np

from repro import Circuit, dc_sweep
from repro.devices import mechanics
from repro.devices.nemfet import Nemfet, NemfetParams, nemfet_90nm
from repro.devices.relay import NanoRelay, nano_relay_default
from repro.devices.spice_equivalent import MacroNemfet, fit_force_polynomial
from repro.process.flow import check_gap_feasibility
from repro.units import EPS_SIO2, format_si


def design_custom_beam():
    """A stiffer, faster suspended gate than the library default."""
    geometry = mechanics.BeamGeometry(length=400e-9, width=200e-9,
                                      thickness=35e-9,
                                      anchor="fixed-fixed")
    material = mechanics.ALSI
    k = mechanics.beam_stiffness(geometry, material)
    m = mechanics.beam_modal_mass(geometry, material)
    gap = 1.4e-9
    t_diel = 2e-9 / EPS_SIO2
    area = geometry.length * geometry.width
    print("== Custom beam design ==")
    print(f"  stiffness : {k:.1f} N/m")
    print(f"  f0        : {format_si(mechanics.resonant_frequency(k, m), 'Hz')}")
    v_pi = mechanics.pull_in_voltage(k, gap, t_diel, area)
    print(f"  pull-in   : {v_pi:.3f} V")
    params = nemfet_90nm(stiffness=k, mass=m, gap=gap, area=area)
    check_gap_feasibility(params)
    print("  process   : gap within the Figure 7 sacrificial window")
    return params


def compare_physical_vs_macro(params: NemfetParams):
    """Hysteresis: the physical model has it, the macro-model doesn't."""
    print("\n== Physical model vs Figure 6(b) macro-model ==")
    vg = np.linspace(0.0, 1.2, 49)

    def loop(element_factory, label):
        c = Circuit(label)
        c.vsource("VG", "g", "0", 0.0)
        c.vsource("VD", "d", "0", 1.2)
        c.add(element_factory(c))
        up = dc_sweep(c, "VG", vg)
        down = dc_sweep(c, "VG", vg[::-1], x0=up.points[-1].x)
        u_up = up.state("M1", "position")
        u_dn = down.state("M1", "position")[::-1]
        width = float(np.max(np.abs(u_dn - u_up)))
        print(f"  {label:<10}: max branch separation {width:.2f} "
              f"(of full travel)")
        return width

    w_phys = loop(lambda c: Nemfet("M1", "d", "g", "0", params, 1e-6),
                  "physical")
    poly = fit_force_polynomial(params)
    w_macro = loop(lambda c: MacroNemfet("M1", "d", "g", "0", params,
                                         1e-6, force_poly=poly),
                   "macro")
    print("  The polynomial f(Vg) drops the position feedback, so the "
          "macro-model\n  loses the pull-in fold and with it the "
          f"hysteresis ({w_macro:.2f} vs {w_phys:.2f}).")


def try_the_relay():
    print("\n== Cantilever relay (Figure 5 alternative) ==")
    params = nano_relay_default(r_on=5e3)
    print(f"  pull-in  : {params.pull_in_voltage:.3f} V")
    print(f"  pull-out : {params.pull_out_voltage:.3f} V")
    c = Circuit("relay")
    c.vsource("VG", "g", "0", 0.0)
    c.vsource("VD", "d", "0", 0.1)
    c.add(NanoRelay("S1", "d", "g", "0", params))
    sweep = dc_sweep(c, "VG", np.linspace(0, 1.2, 25))
    i = -sweep.branch_current("VD")
    print(f"  I(open)  : {format_si(float(i[0]), 'A')}")
    print(f"  I(closed): {format_si(float(i[-1]), 'A')} "
          f"(R_on target 5 kΩ at 100 mV)")


def main():
    params = design_custom_beam()
    compare_physical_vs_macro(params)
    try_the_relay()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate a suspended-gate NEMFET from first principles.

Demonstrates the library's core loop on a single device:

1. build a circuit around the calibrated 90 nm NEMFET;
2. run a hysteretic DC transfer sweep (watch the beam pull in and out);
3. extract the device's effective subthreshold swing;
4. run a transient gate-step and time the mechanical switching.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Circuit, Pulse, dc_sweep, transient
from repro.analysis import measure
from repro.devices.calibration import extract_swing
from repro.devices.nemfet import Nemfet, nemfet_90nm
from repro.units import format_si

VDD = 1.2


def build_transfer_circuit(params):
    """Common-source test harness: gate swept, drain at Vdd."""
    circuit = Circuit("nemfet_quickstart")
    circuit.vsource("VG", "g", "0", 0.0)
    circuit.vsource("VD", "d", "0", VDD)
    circuit.add(Nemfet("M1", "d", "g", "0", params, width=1e-6))
    return circuit


def main():
    params = nemfet_90nm()
    print("== Device ==")
    print(f"  beam stiffness    : {params.stiffness:.1f} N/m")
    print(f"  mechanical f0     : "
          f"{format_si(params.resonant_frequency, 'Hz')}")
    print(f"  analytic pull-in  : {params.pull_in_voltage:.3f} V")
    print(f"  analytic pull-out : {params.pull_out_voltage:.3f} V")

    circuit = build_transfer_circuit(params)

    print("\n== DC transfer sweep (up, then down) ==")
    vg = np.linspace(0.0, VDD, 61)
    up = dc_sweep(circuit, "VG", vg)
    down = dc_sweep(circuit, "VG", vg[::-1], x0=up.points[-1].x)
    i_up = np.abs(up.branch_current("VD"))
    u_up = up.state("M1", "position")
    u_dn = down.state("M1", "position")[::-1]
    pull_in_idx = int(np.argmax(np.diff(u_up)))
    pull_out_idx = int(np.argmax(np.diff(u_dn)))
    print(f"  measured pull-in  : ~{vg[pull_in_idx + 1]:.2f} V")
    print(f"  measured pull-out : ~{vg[pull_out_idx + 1]:.2f} V")
    print(f"  I_ON  at Vdd      : {format_si(i_up[-1], 'A')}/um")
    print(f"  I_OFF at 0 V      : {format_si(i_up[0], 'A')}/um")

    print("\n== Effective subthreshold swing ==")
    v_fine = np.arange(params.pull_in_voltage - 0.05,
                       params.pull_in_voltage + 0.03, 0.002)
    fine = dc_sweep(circuit, "VG", v_fine)
    swing = extract_swing(v_fine, np.abs(fine.branch_current("VD")),
                          i_min=1e-12, i_max=1e-4)
    print(f"  S = {swing * 1e3:.2f} mV/decade "
          f"(bulk CMOS limit: 60 mV/decade)")

    print("\n== Transient switching ==")
    switch = Circuit("nemfet_step")
    switch.vsource("VG", "g", "0", Pulse(0, VDD, td=0.2e-9, tr=20e-12,
                                         pw=2e-9, per=None))
    switch.vsource("VD", "d", "0", VDD)
    switch.add(Nemfet("M1", "d", "g", "0", params, width=1e-6))
    result = transient(switch, 3e-9, 2e-12)
    position = result.state("M1", "position")
    t_close = measure.first_cross(result.t, position, 0.9,
                                  "rise") - 0.2e-9
    t_open = measure.first_cross(result.t, position, 0.5,
                                 "fall") - 2.22e-9
    print(f"  mechanical close  : {t_close * 1e12:.0f} ps")
    print(f"  mechanical open   : {t_open * 1e12:.0f} ps")
    print("\nThe beam snaps shut above pull-in, holds down to the much"
          "\nlower pull-out voltage, and switches in a fraction of a"
          "\nnanosecond — the properties the hybrid circuits exploit.")


if __name__ == "__main__":
    main()

"""Terminal-friendly reporting: ASCII charts for experiment series.

No plotting dependency is available offline, so the examples and the
CLI render series as text charts.  The implementation favours
robustness over beauty: linear or log axes, multiple series with
distinct glyphs, and automatic bounds.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

#: Glyphs assigned to series in insertion order.
GLYPHS = "ox+*#@%&"


def _transform(values, log: bool):
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ValueError("log axis requires positive values")
        out.append(math.log10(v))
    return out


def ascii_chart(x: Sequence[float], series: Dict[str, Sequence[float]],
                *, width: int = 64, height: int = 18,
                logx: bool = False, logy: bool = False,
                title: str = "", x_label: str = "",
                y_label: str = "") -> str:
    """Render series as a text scatter chart.

    ``series`` maps labels to y-arrays aligned with ``x``.  Returns a
    multi-line string; glyph legend appended below the axes.
    """
    if not series:
        raise ValueError("need at least one series")
    xs = _transform(x, logx)
    if len(xs) < 2:
        raise ValueError("need at least two x points")
    all_y = []
    for ys in series.values():
        if len(ys) != len(xs):
            raise ValueError("series length mismatch")
        all_y.extend(_transform(ys, logy))
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, ys), glyph in zip(series.items(), GLYPHS):
        ys_t = _transform(ys, logy)
        for xv, yv in zip(xs, ys_t):
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    def fmt(value: float, log: bool) -> str:
        return f"1e{value:.1f}" if log else f"{value:.3g}"

    lines = []
    if title:
        lines.append(title)
    top = fmt(y_hi, logy)
    bottom = fmt(y_lo, logy)
    margin = max(len(top), len(bottom), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top.rjust(margin)
        elif i == height - 1:
            prefix = bottom.rjust(margin)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    left = fmt(x_lo, logx)
    right = fmt(x_hi, logx)
    axis = (" " * (margin + 1) + left
            + right.rjust(width - len(left)))
    lines.append(axis)
    if x_label:
        lines.append(" " * (margin + 1)
                     + x_label.center(width))
    legend = "   ".join(f"{glyph}={label}" for (label, _), glyph
                        in zip(series.items(), GLYPHS))
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)

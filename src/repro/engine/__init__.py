"""repro.engine — parallel simulation job engine.

The standard way sweeps execute in this repository: pure, picklable
tasks mapped over worker processes (or serially at ``jobs=1``), with a
content-addressed disk cache in front of the solves, a retry ladder
behind them, and solver telemetry throughout.

    from repro.engine import EngineConfig, Job, configured, run_jobs

    def point(width):          # module-level, pure, picklable
        ...
        return metrics

    with configured(EngineConfig(jobs=4, cache_dir="/tmp/cache")):
        results = run_jobs([Job(point, (w,)) for w in widths],
                           group="my-sweep")

See ``docs/engine.md`` for the job model, cache-key definition and
telemetry fields.
"""

from repro.engine.cache import (
    PruneResult,
    ResultCache,
    job_key,
    netlist_fingerprint,
    stable_hash,
)
from repro.engine.config import (
    EngineConfig,
    configured,
    default_cache_dir,
    get_config,
    set_config,
)
from repro.engine.retry import (
    DEFAULT_LADDER,
    JobFailure,
    RetryRung,
    solve_with_retry,
)
from repro.engine.runner import (
    Job,
    JobResult,
    add_progress_observer,
    cancel_scope,
    map_jobs,
    observing_progress,
    remove_progress_observer,
    run_jobs,
)
from repro.engine.telemetry import (
    SESSION,
    JobRecord,
    RunTelemetry,
    SolveStats,
    collecting,
    load_report,
    report_to_text,
    save_report,
)

__all__ = [
    "DEFAULT_LADDER",
    "EngineConfig",
    "Job",
    "JobFailure",
    "JobRecord",
    "JobResult",
    "PruneResult",
    "ResultCache",
    "RetryRung",
    "RunTelemetry",
    "SESSION",
    "SolveStats",
    "add_progress_observer",
    "cancel_scope",
    "collecting",
    "configured",
    "default_cache_dir",
    "get_config",
    "job_key",
    "load_report",
    "map_jobs",
    "netlist_fingerprint",
    "observing_progress",
    "remove_progress_observer",
    "report_to_text",
    "run_jobs",
    "save_report",
    "set_config",
    "solve_with_retry",
    "stable_hash",
]

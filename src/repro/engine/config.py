"""Process-wide configuration for the simulation job engine.

The experiments call :func:`repro.engine.runner.run_jobs` without
knowing how the current invocation wants them executed; the CLI (or a
library caller) installs an :class:`EngineConfig` around the run.  The
default configuration is deliberately conservative — serial execution,
no caching — so importing the engine never changes behaviour or touches
the filesystem unless a caller opts in.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, replace
from typing import Iterator, Optional

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """Cache location used when a caller enables caching without a path.

    ``$REPRO_CACHE_DIR`` wins; otherwise a per-user directory under
    ``$XDG_CACHE_HOME`` (or ``~/.cache``).
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro-nems-cmos")


@dataclass(frozen=True)
class EngineConfig:
    """How the job engine should execute sweeps.

    Attributes
    ----------
    jobs:
        Worker-process count; ``1`` runs jobs serially in-process (the
        deterministic reference path).
    cache_dir:
        Directory for the content-addressed result cache, or ``None``
        to disable caching entirely.
    task_timeout:
        Per-job wall-clock budget in seconds (parallel mode only);
        ``None`` means unlimited.
    collect_telemetry:
        Record per-job solver statistics into the session telemetry.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    task_timeout: Optional[float] = None
    collect_telemetry: bool = True

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


_current = EngineConfig()


def get_config() -> EngineConfig:
    """The active engine configuration."""
    return _current


def set_config(config: EngineConfig) -> EngineConfig:
    """Install ``config`` as the active configuration; returns the old."""
    global _current
    previous = _current
    _current = config
    return previous


@contextlib.contextmanager
def configured(config: EngineConfig) -> Iterator[EngineConfig]:
    """Temporarily install ``config`` for the duration of the block."""
    previous = set_config(config)
    try:
        yield config
    finally:
        set_config(previous)

"""Parallel job runner for embarrassingly parallel simulation sweeps.

The unit of work is a :class:`Job`: a *pure*, module-level task
function plus picklable arguments that fully determine its result
(sweep coordinates, device parameters, analysis options).  Purity is
what buys everything else: jobs can run in any order across worker
processes, be retried under relaxed solver options, and have their
results content-addressed in the disk cache.

Execution model:

* ``jobs=1`` (the default) runs tasks serially in-process, in input
  order — the deterministic reference path with zero multiprocessing
  machinery involved;
* ``jobs=N`` maps tasks over a ``ProcessPoolExecutor``; results are
  returned **in input order** regardless of completion order;
* a per-task ``timeout`` (parallel mode only) turns a stuck solve into
  a recorded failure instead of a hung sweep;
* a task raising :class:`~repro.errors.ConvergenceError` is retried
  under each rung of the retry ladder (see
  :mod:`repro.engine.retry`); exhausting the ladder yields a
  :class:`~repro.engine.retry.JobFailure` on the result, never an
  exception out of :func:`run_jobs`.

Two hooks serve callers that drive the engine on behalf of someone
else (the HTTP service, long-running orchestration):

* **cancellation** — ``run_jobs(..., cancel=callable)`` (or an ambient
  :func:`cancel_scope` wrapping code that calls ``run_jobs`` deep
  inside an experiment) checks the callable between jobs and between
  retry rungs; a job observed cancelled lands as an explicit
  ``cancelled`` terminal state on its result — *not* as a
  retries-exhausted failure;
* **progress observers** — :func:`add_progress_observer` registers a
  thread-local callback receiving every :class:`JobResult` (cache hits
  included) as it lands, so a caller can stream per-point progress
  without polling telemetry.  Thread-local registration keeps two
  orchestrating threads from seeing each other's sweeps.

Ambient-context propagation: the submitting thread's solve policies —
backend selection, default step control, ensemble mode, eval/bypass
policy and any active option transforms, all thread-local (see
:mod:`repro.analysis.context`) — are captured when a parallel sweep is
submitted and reinstalled inside each pool worker around every task.
A ``backend_override`` (or a retry relaxation) wrapped around
``run_jobs`` therefore reaches solves executed by pool workers exactly
as it reaches in-thread solves, and nested parallelism keeps exact
attribution: a worker's telemetry scope is its own, with results
flowing back only on the :class:`JobResult`.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.ambient import ThreadLocalStack
from repro.analysis.context import AmbientContext
from repro.engine import telemetry
from repro.engine.cache import ResultCache, job_key
from repro.engine.config import EngineConfig, get_config
from repro.engine.retry import DEFAULT_LADDER, JobFailure, RetryRung
from repro.errors import ConvergenceError

#: Sentinel: resolve the cache from the active EngineConfig.
_AUTO = object()


@dataclass
class Job:
    """One pure task: ``fn(*args, **kwargs)`` must be deterministic."""

    fn: Callable
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)
    tag: str = ""
    #: Extra payload folded into the cache key (e.g. a netlist
    #: fingerprint) when the arguments alone don't pin the content.
    cache_extra: Any = None

    def key(self) -> str:
        """Content-addressed cache key for this job."""
        return job_key(self.fn, self.args, self.kwargs,
                       extra=self.cache_extra)


@dataclass
class JobResult:
    """Outcome of one job, in the same position as its input."""

    index: int
    tag: str
    value: Any = None
    failure: Optional[JobFailure] = None
    wall_time: float = 0.0
    cache_hit: bool = False
    attempts: int = 1
    rung: Optional[str] = None      #: retry rung that succeeded, if any
    cancelled: bool = False         #: explicit terminal state: the job
                                    #: was cancelled, it did not fail
    solves: telemetry.SolveStats = field(
        default_factory=telemetry.SolveStats)

    @property
    def ok(self) -> bool:
        return self.failure is None and not self.cancelled


#: Thread-local registries: the ambient cancel callable installed by
#: :func:`cancel_scope` and the progress observers of this thread.
_local = threading.local()

_progress_observers = ThreadLocalStack("progress-observers")


def add_progress_observer(observer: Callable[[JobResult, str], None]
                          ) -> None:
    """Register a per-result callback for this thread's ``run_jobs``.

    The observer receives ``(result, group)`` for every job — cache
    hits, failures and cancellations included — *as each result
    lands* (cache hits first, then executed jobs in input order), so
    a streaming consumer reports points while the sweep is still
    running.  Registration is thread-local: an orchestrator thread
    only sees the sweeps it runs itself.
    """
    _progress_observers.push(observer)


def remove_progress_observer(observer: Callable[[JobResult, str], None]
                             ) -> None:
    """Unregister a previously added progress observer.

    Removing an observer that is already gone is a tolerated no-op,
    so a cancel-during-cleanup path can never crash its worker.
    """
    _progress_observers.pop(observer)


@contextlib.contextmanager
def observing_progress(observer: Callable[[JobResult, str], None]
                       ) -> Iterator[None]:
    """Route this thread's job results into ``observer`` for the block."""
    add_progress_observer(observer)
    try:
        yield
    finally:
        remove_progress_observer(observer)


def _notify_progress(result: JobResult, group: str) -> None:
    for observer in _progress_observers.snapshot():
        observer(result, group)


@contextlib.contextmanager
def cancel_scope(cancel: Callable[[], bool]) -> Iterator[None]:
    """Make ``cancel`` the ambient cancellation check for this thread.

    Every ``run_jobs`` call in the block (however deep inside an
    experiment) polls the callable between jobs and between retry
    rungs, so a service can stop an in-flight experiment without
    threading a cancel argument through the experiment API.
    """
    previous = getattr(_local, "cancel", None)
    _local.cancel = cancel
    try:
        yield
    finally:
        _local.cancel = previous


def _ambient_cancel() -> Optional[Callable[[], bool]]:
    return getattr(_local, "cancel", None)


def _cancelled_result(index: int, job: Job, *, attempts: int = 0,
                      wall_time: float = 0.0) -> JobResult:
    return JobResult(index=index, tag=job.tag, cancelled=True,
                     attempts=attempts, wall_time=wall_time)


def _execute(index: int, job: Job, ladder: Tuple[RetryRung, ...],
             cancel: Optional[Callable[[], bool]] = None,
             ambient: Optional[AmbientContext] = None) -> JobResult:
    """Run one job with telemetry and the retry ladder (any process).

    ``ambient`` is set on the pool path only: it reinstalls the
    submitting thread's solve policies in the worker and gives it a
    clean observation scope (a forked worker inherits the submitter's
    thread-local observers and ambient cancel; they belong to the
    parent and must not fire here — progress and cancellation are
    driven from the parent, attribution returns on the result).
    """
    if ambient is not None:
        _progress_observers.replace(())
        _local.cancel = None
        ambient_ctx = ambient.applied()
    else:
        ambient_ctx = contextlib.nullcontext()
    stats = telemetry.SolveStats()
    started = time.perf_counter()
    last_error: Optional[BaseException] = None
    attempts = 0
    # ``exclusive``: the job's solves attribute to this job only —
    # enclosing collectors see them via ``JobResult.solves``, never as
    # raw events, so nested parallelism cannot double-count.
    with ambient_ctx, telemetry.collecting(stats, exclusive=True):
        for rung in (None,) + tuple(ladder):
            # A cancellation observed mid-ladder is a cancellation, not
            # a retries-exhausted failure: stop relaxing and say so.
            if cancel is not None and cancel():
                return _cancelled_result(
                    index, job, attempts=attempts,
                    wall_time=time.perf_counter() - started)
            attempts += 1
            context = rung.transform() if rung else contextlib.nullcontext()
            try:
                with context:
                    value = job.fn(*job.args, **job.kwargs)
                return JobResult(
                    index=index, tag=job.tag, value=value,
                    wall_time=time.perf_counter() - started,
                    attempts=attempts,
                    rung=rung.name if rung else None, solves=stats)
            except ConvergenceError as err:
                last_error = err
            except Exception as err:  # non-solver bug: do not retry
                last_error = err
                break
    wall = time.perf_counter() - started
    failure = JobFailure.from_exception(
        job.tag, last_error, attempts=attempts, wall_time=wall)
    return JobResult(index=index, tag=job.tag, failure=failure,
                     wall_time=wall, attempts=attempts, solves=stats)


def _pool_context():
    """Prefer fork on platforms that have it: no re-import, fast start."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_jobs(tasks: Sequence[Job], *, group: str = "",
             jobs: Optional[int] = None,
             cache: Any = _AUTO,
             ladder: Optional[Tuple[RetryRung, ...]] = None,
             timeout: Optional[float] = None,
             cancel: Optional[Callable[[], bool]] = None,
             config: Optional[EngineConfig] = None) -> List[JobResult]:
    """Execute ``tasks`` and return their results in input order.

    ``group`` labels the batch in telemetry (typically the experiment
    id).  ``jobs``, ``cache`` and ``timeout`` default to the active
    :class:`~repro.engine.config.EngineConfig`; pass a
    :class:`~repro.engine.cache.ResultCache` (or ``None`` to disable
    caching) to override.  Failures are returned as
    :class:`~repro.engine.retry.JobFailure` records on the affected
    results — :func:`run_jobs` itself only raises for programming
    errors (e.g. unpicklable jobs).

    ``cancel`` (default: the ambient :func:`cancel_scope` callable, if
    any) is polled between jobs and between retry rungs; once it
    returns true every not-yet-finished job lands as an explicit
    ``cancelled`` result.  In parallel mode a task already running in a
    worker process finishes (its result stands); tasks not yet started
    are cancelled.
    """
    cfg = config or get_config()
    workers = cfg.jobs if jobs is None else jobs
    if workers < 1:
        raise ValueError(f"jobs must be >= 1, got {workers}")
    if cache is _AUTO:
        cache = (ResultCache(cfg.cache_dir) if cfg.cache_dir else None)
    rungs = DEFAULT_LADDER if ladder is None else tuple(ladder)
    task_timeout = cfg.task_timeout if timeout is None else timeout
    if cancel is None:
        cancel = _ambient_cancel()

    results: List[Optional[JobResult]] = [None] * len(tasks)
    pending: List[Tuple[int, Job, Optional[str]]] = []

    # Results are announced to progress observers *as they land* (a
    # streaming consumer sees each point when it completes, not the
    # whole sweep afterwards): cache hits first, then executed jobs
    # in input order.
    def _land(index: int, result: JobResult) -> None:
        results[index] = result
        _notify_progress(result, group)

    for index, job in enumerate(tasks):
        key = None
        if cache is not None:
            key = job.key()
            hit, value = cache.get(key)
            if hit:
                _land(index, JobResult(
                    index=index, tag=job.tag, value=value,
                    cache_hit=True))
                continue
        pending.append((index, job, key))

    if workers <= 1 or len(pending) <= 1:
        for index, job, key in pending:
            if cancel is not None and cancel():
                _land(index, _cancelled_result(index, job))
            else:
                _land(index, _execute(index, job, rungs, cancel))
    else:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=_pool_context()) as pool:
            # The cancel callable stays in the parent: it is typically
            # a closure over live state (a job store, an event) that
            # must not cross the process boundary.  The submitting
            # thread's ambient solve policies DO cross it, explicitly:
            # each worker reinstalls this snapshot around its task.
            ambient = AmbientContext.capture()
            futures = [(index, job, key,
                        pool.submit(_execute, index, job, rungs,
                                    None, ambient))
                       for index, job, key in pending]
            sweep_cancelled = False
            for index, job, key, future in futures:
                if (not sweep_cancelled and cancel is not None
                        and cancel()):
                    # Kill everything still pending in one pass, so
                    # queued work stops feeding the pool the moment
                    # the cancel is observed (not one future per
                    # collection step later).
                    sweep_cancelled = True
                    for _, _, _, pending_future in futures:
                        pending_future.cancel()
                if future.cancelled():
                    _land(index, _cancelled_result(index, job))
                    continue
                try:
                    _land(index, future.result(timeout=task_timeout))
                except FutureTimeoutError:
                    future.cancel()
                    _land(index, JobResult(
                        index=index, tag=job.tag,
                        failure=JobFailure(
                            tag=job.tag, error_type="Timeout",
                            message=(f"job exceeded the "
                                     f"{task_timeout:g} s budget"),
                            wall_time=float(task_timeout)),
                        wall_time=float(task_timeout)))

    for index, job, key in pending:
        result = results[index]
        if cache is not None and key is not None and result.ok:
            cache.put(key, result.value)

    if cfg.collect_telemetry:
        for result in results:
            telemetry.SESSION.record(telemetry.JobRecord(
                tag=result.tag, group=group,
                wall_time=result.wall_time, cache_hit=result.cache_hit,
                ok=result.ok, attempts=result.attempts,
                rung=result.rung, cancelled=result.cancelled,
                error=result.failure.to_dict() if result.failure
                else None,
                solves=result.solves))
    return results


def map_jobs(fn: Callable, argument_lists: Sequence[Tuple], *,
             tags: Optional[Sequence[str]] = None,
             **run_kwargs) -> List[JobResult]:
    """Convenience: one job per argument tuple of a single function."""
    tasks = [
        Job(fn, args=tuple(args),
            tag=tags[i] if tags else f"{fn.__name__}[{i}]")
        for i, args in enumerate(argument_lists)
    ]
    return run_jobs(tasks, **run_kwargs)

"""Robustness layer: retry ladders and structured failure records.

A hard DC point should cost a retry, not the whole sweep.  Two levels
of defence live here:

* :func:`solve_with_retry` — a drop-in wrapper around
  :func:`repro.analysis.solver.solve_with_homotopy` that walks a
  configurable ladder of progressively more forgiving solver options
  (relaxed Newton first, then denser gmin/source stepping);
* the job runner applies the same ladder to whole tasks: when a task
  raises :class:`~repro.errors.ConvergenceError`, it is re-run with the
  next rung's option transform active (via
  :func:`repro.analysis.options.option_transform`), so relaxations
  reach solves buried deep inside gate measurements.  A task that
  exhausts the ladder is recorded as a :class:`JobFailure` on its
  :class:`~repro.engine.runner.JobResult` — the sweep continues.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.options import (
    HomotopyOptions,
    NewtonOptions,
    option_transform,
)
from repro.errors import ConvergenceError


@dataclass(frozen=True)
class RetryRung:
    """One step of the retry ladder: named option overrides."""

    name: str
    newton_overrides: Tuple[Tuple[str, object], ...] = ()
    homotopy_overrides: Tuple[Tuple[str, object], ...] = ()

    def adjust(self, newton: NewtonOptions, homotopy: HomotopyOptions
               ) -> Tuple[NewtonOptions, HomotopyOptions]:
        """Options with this rung's overrides applied."""
        if self.newton_overrides:
            newton = dataclasses.replace(newton,
                                         **dict(self.newton_overrides))
        if self.homotopy_overrides:
            homotopy = dataclasses.replace(
                homotopy, **dict(self.homotopy_overrides))
        return newton, homotopy

    def transform(self):
        """Context manager applying this rung to nested DC solves."""
        return option_transform(self.adjust)


#: Default ladder: relax the Newton iteration budget and damping first
#: (cheap, fixes most marginal points), then densify the homotopy
#: stepping for genuinely hard continuation problems.
DEFAULT_LADDER: Tuple[RetryRung, ...] = (
    RetryRung(
        "relaxed-newton",
        newton_overrides=(("max_iterations", 300),
                          ("damping", 0.7),
                          ("min_step_scale", 1e-6))),
    RetryRung(
        "dense-gmin",
        newton_overrides=(("max_iterations", 300),),
        homotopy_overrides=(("gmin_steps_per_decade", 4),
                            ("source_steps", 60))),
)


@dataclass
class JobFailure:
    """Structured record of one failed job (picklable, JSON-friendly)."""

    tag: str
    error_type: str
    message: str
    residual_norm: float = float("nan")
    iterations: int = 0
    attempts: int = 1
    wall_time: float = 0.0

    @classmethod
    def from_exception(cls, tag: str, err: BaseException, *,
                       attempts: int = 1,
                       wall_time: float = 0.0) -> "JobFailure":
        residual = getattr(err, "residual_norm", float("nan"))
        iterations = getattr(err, "iterations", 0)
        return cls(tag=tag, error_type=type(err).__name__,
                   message=str(err), residual_norm=float(residual),
                   iterations=int(iterations), attempts=attempts,
                   wall_time=wall_time)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


def solve_with_retry(make_assemble, x0: np.ndarray, *,
                     row_tol: np.ndarray, dx_limit: np.ndarray,
                     newton_options: Optional[NewtonOptions] = None,
                     homotopy: Optional[HomotopyOptions] = None,
                     ladder: Tuple[RetryRung, ...] = DEFAULT_LADDER,
                     backend=None):
    """Homotopy solve with the retry ladder applied on failure.

    Tries the caller's options first, then each rung in ``ladder``.
    Returns ``(x, q, info, rung_name)`` where ``rung_name`` is ``None``
    when the first attempt succeeded.  Raises the final
    :class:`ConvergenceError` when every rung is exhausted.

    ``backend`` is the linear-solver backend matching the caller's
    assembler (see :mod:`repro.analysis.backends`); it is pinned before
    the first attempt and reused by every rung — the ladder relaxes
    solver *options*, it must never switch linear algebra mid-solve.
    """
    from repro.analysis.backends import DenseSolver
    from repro.analysis.solver import solve_with_homotopy

    if backend is None:
        backend = DenseSolver()
    base_newton = newton_options or NewtonOptions()
    base_homotopy = homotopy or HomotopyOptions()
    last: Optional[ConvergenceError] = None
    for rung in (None,) + tuple(ladder):
        if rung is None:
            nopt, hopt = base_newton, base_homotopy
        else:
            nopt, hopt = rung.adjust(base_newton, base_homotopy)
        try:
            x, q, info = solve_with_homotopy(
                make_assemble, x0, row_tol=row_tol, dx_limit=dx_limit,
                newton_options=nopt, homotopy=hopt, backend=backend)
            return x, q, info, (rung.name if rung else None)
        except ConvergenceError as err:
            last = err
    raise ConvergenceError(
        f"solve failed after retry ladder "
        f"({', '.join(r.name for r in ladder)}): {last}",
        residual_norm=last.residual_norm,
        iterations=last.iterations) from last

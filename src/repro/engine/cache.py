"""Content-addressed disk cache for simulation results.

A cache entry is keyed by a stable SHA-256 over the *content* of the
job: the task function's qualified name, its canonicalised arguments
(device parameters, analysis options, sweep coordinates — anything that
determines the answer), an optional extra payload such as a netlist
fingerprint, a code-version salt, and the ambient analysis policy
(linear-solver backend selection, default transient step control).
Re-running an experiment with unchanged inputs is then a pure disk
read; changing any parameter, the session policy, the library version,
or the cache schema changes the key and misses.

Invalidation rules:

* the salt embeds ``repro.__version__`` and :data:`CACHE_SCHEMA`, so a
  library release or a cache format change invalidates everything;
* failed jobs are never stored — a failure is always re-attempted;
* a corrupted entry (truncated write, unreadable pickle) is deleted on
  first read and treated as a miss, so the cache self-heals.

Values are stored as pickles written atomically (temp file + rename) so
concurrent writers — parallel workers, or two simultaneous runs sharing
a cache directory — can never expose a half-written entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

import repro

#: Bump to invalidate every existing cache entry after a format change.
CACHE_SCHEMA = 1


def code_salt() -> str:
    """Version salt mixed into every cache key."""
    return f"repro-{repro.__version__}-schema{CACHE_SCHEMA}"


def ambient_salt() -> Tuple:
    """Session-wide analysis policy folded into every job key.

    Task functions are pure in their *arguments*, but session-scoped
    defaults — the linear-solver backend policy, the transient
    step-control mode and the device-evaluation policy — change the
    numbers a task produces without appearing in its signature.  Folding
    the active policy into the key keeps a warm cache honest when a
    caller flips ``--backend``, ``--step-control``, ``--eval``,
    ``--bypass`` or the stacked-ensemble mode: each policy addresses
    its own entries instead of silently replaying another policy's
    results.  The ensemble flag matters because the stacked lock-step
    transient shares one adaptive grid across samples — numerically
    equivalent at figure level but not bit-identical to the sequential
    per-sample path, so the two modes must never alias.
    """
    from repro.analysis import options as analysis_options
    backend = analysis_options.get_backend_options()
    ev = analysis_options.get_eval_options()
    return ("ambient", backend.kind, backend.sparse_threshold,
            analysis_options.get_default_step_control(),
            ev.mode, ev.bypass, repr(ev.bypass_reltol),
            repr(ev.bypass_abstol),
            analysis_options.get_ensemble_mode())


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, repr-stable structure.

    Raises :class:`TypeError` for objects with no canonical form — a
    job whose arguments cannot be canonicalised must not be cached,
    because its key would not be content-addressed.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips float64 exactly
    if isinstance(obj, complex):
        return ("complex", repr(obj.real), repr(obj.imag))
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape,
                obj.tobytes())
    if isinstance(obj, np.generic):
        return ("npscalar", str(obj.dtype), obj.tobytes())
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, Mapping):
        items = sorted((repr(_canonical(k)), _canonical(v))
                       for k, v in obj.items())
        return ("map", tuple(items))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, _canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj))
        return ("dataclass", type(obj).__module__,
                type(obj).__qualname__, fields)
    token = getattr(obj, "cache_token", None)
    if callable(token):
        return ("token", type(obj).__qualname__, _canonical(token()))
    raise TypeError(
        f"cannot canonicalise {type(obj).__qualname__!r} for a cache "
        f"key; pass primitives/dataclasses or give it a cache_token()")


def stable_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical form of ``payload``."""
    blob = repr(_canonical(payload)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def job_key(fn: Callable, args: Tuple = (), kwargs: Optional[Dict] = None,
            extra: Any = None) -> str:
    """Content-addressed cache key for one task invocation."""
    return stable_hash((
        code_salt(),
        ambient_salt(),
        getattr(fn, "__module__", ""),
        getattr(fn, "__qualname__", repr(fn)),
        args,
        kwargs or {},
        extra,
    ))


def netlist_fingerprint(circuit) -> str:
    """Stable digest of a circuit's canonical (SPICE) form.

    Useful as the ``extra`` key component for tasks parameterised by a
    whole netlist rather than by scalar arguments.
    """
    from repro.circuit.spice_io import to_spice
    text = to_spice(circuit)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: A ``.tmp`` file older than this is considered abandoned by a crashed
#: writer; younger ones may belong to a live concurrent :meth:`put`.
STALE_TMP_AGE = 3600.0


@dataclasses.dataclass
class PruneResult:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    removed: int = 0            #: entries deleted
    freed_bytes: int = 0        #: bytes those entries occupied
    remaining: int = 0          #: entries left after the pass
    remaining_bytes: int = 0    #: bytes left after the pass


class ResultCache:
    """Content-addressed pickle store under one directory.

    ``max_bytes`` turns the store into a size-bounded LRU: every
    :meth:`get` hit refreshes the entry's mtime, and :meth:`put`
    triggers a :meth:`prune` pass once enough new bytes have landed
    since the last one.  Multiple tenants (or long-running services)
    sharing one directory then cannot grow it without bound.
    """

    def __init__(self, directory: str,
                 stale_tmp_age: float = STALE_TMP_AGE,
                 max_bytes: Optional[int] = None):
        self.directory = directory
        self.stale_tmp_age = stale_tmp_age
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.evicted = 0
        self._written_since_prune = 0
        # Crashed writers leave ``.tmp`` files behind (the atomic-write
        # protocol only cleans up on normal exception paths); sweep the
        # stale ones so they cannot accumulate across sessions.
        self._sweep_stale_tmp()
        if max_bytes is not None:
            self.prune(max_bytes)

    def _sweep_stale_tmp(self) -> int:
        """Delete abandoned ``.tmp`` files; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        cutoff = time.time() - self.stale_tmp_age
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(root, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.remove(path)
                        removed += 1
                except OSError:
                    pass
        return removed

    def _path(self, key: str) -> str:
        # Shard by the first byte to keep directory listings sane.
        return os.path.join(self.directory, key[:2], key + ".pkl")

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupted entries are deleted and miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated or unreadable entry: self-heal by dropping it.
            self.corrupt += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return False, None
        self.hits += 1
        # Refresh the access time so a bounded cache evicts in LRU
        # order rather than insertion order.  Best-effort: a read-only
        # filesystem must not turn a hit into a failure.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        if self.max_bytes is not None:
            try:
                self._written_since_prune += os.path.getsize(path)
            except OSError:
                pass
            # Re-walking the store on every put would make small writes
            # O(entries); amortise by pruning only once ~10% of the
            # budget has landed since the last pass.
            if self._written_since_prune > max(self.max_bytes // 10, 1):
                self.prune(self.max_bytes)

    def _entries(self):
        """Every ``(path, mtime, size)`` entry currently on disk."""
        entries = []
        if not os.path.isdir(self.directory):
            return entries
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(root, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # deleted by a concurrent pruner
                entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    def total_bytes(self) -> int:
        """Bytes currently occupied by real entries (``.tmp`` excluded)."""
        return sum(size for _path, _mtime, size in self._entries())

    def prune(self, max_bytes: int) -> PruneResult:
        """Evict least-recently-used entries until <= ``max_bytes``.

        Eviction order is ascending mtime — :meth:`get` refreshes the
        mtime of every hit, so mtime order *is* LRU order.  Each
        eviction is a single :func:`os.remove`, so a concurrent reader
        either wins the race (and refreshes the entry) or misses and
        recomputes; no entry is ever observed half-deleted.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = sorted(self._entries(), key=lambda e: (e[1], e[0]))
        total = sum(size for _path, _mtime, size in entries)
        result = PruneResult(remaining=len(entries),
                             remaining_bytes=total)
        for path, _mtime, size in entries:
            if result.remaining_bytes <= max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue  # a concurrent pruner got there first
            result.removed += 1
            result.freed_bytes += size
            result.remaining -= 1
            result.remaining_bytes -= size
        self.evicted += result.removed
        self._written_since_prune = 0
        return result

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also removes every ``.tmp`` leftover regardless of age (a
        cleared cache has no live writers worth protecting); the count
        covers real entries only.
        """
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                path = os.path.join(root, name)
                if name.endswith(".pkl"):
                    try:
                        os.remove(path)
                        removed += 1
                    except OSError:
                        pass
                elif name.endswith(".tmp"):
                    try:
                        os.remove(path)
                    except OSError:
                        pass
        return removed

"""Content-addressed disk cache for simulation results.

A cache entry is keyed by a stable SHA-256 over the *content* of the
job: the task function's qualified name, its canonicalised arguments
(device parameters, analysis options, sweep coordinates — anything that
determines the answer), an optional extra payload such as a netlist
fingerprint, a code-version salt, and the ambient analysis policy
(linear-solver backend selection, default transient step control).
Re-running an experiment with unchanged inputs is then a pure disk
read; changing any parameter, the session policy, the library version,
or the cache schema changes the key and misses.

Invalidation rules:

* the salt embeds ``repro.__version__`` and :data:`CACHE_SCHEMA`, so a
  library release or a cache format change invalidates everything;
* failed jobs are never stored — a failure is always re-attempted;
* a corrupted entry (truncated write, unreadable pickle) is deleted on
  first read and treated as a miss, so the cache self-heals.

Values are stored as pickles written atomically (temp file + rename) so
concurrent writers — parallel workers, or two simultaneous runs sharing
a cache directory — can never expose a half-written entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

import repro

#: Bump to invalidate every existing cache entry after a format change.
CACHE_SCHEMA = 1


def code_salt() -> str:
    """Version salt mixed into every cache key."""
    return f"repro-{repro.__version__}-schema{CACHE_SCHEMA}"


def ambient_salt() -> Tuple:
    """Session-wide analysis policy folded into every job key.

    Task functions are pure in their *arguments*, but session-scoped
    defaults — the linear-solver backend policy, the transient
    step-control mode and the device-evaluation policy — change the
    numbers a task produces without appearing in its signature.  Folding
    the active policy into the key keeps a warm cache honest when a
    caller flips ``--backend``, ``--step-control``, ``--eval``,
    ``--bypass`` or the stacked-ensemble mode: each policy addresses
    its own entries instead of silently replaying another policy's
    results.  The ensemble flag matters because the stacked lock-step
    transient shares one adaptive grid across samples — numerically
    equivalent at figure level but not bit-identical to the sequential
    per-sample path, so the two modes must never alias.
    """
    from repro.analysis import options as analysis_options
    backend = analysis_options.get_backend_options()
    ev = analysis_options.get_eval_options()
    return ("ambient", backend.kind, backend.sparse_threshold,
            analysis_options.get_default_step_control(),
            ev.mode, ev.bypass, repr(ev.bypass_reltol),
            repr(ev.bypass_abstol),
            analysis_options.get_ensemble_mode())


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, repr-stable structure.

    Raises :class:`TypeError` for objects with no canonical form — a
    job whose arguments cannot be canonicalised must not be cached,
    because its key would not be content-addressed.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips float64 exactly
    if isinstance(obj, complex):
        return ("complex", repr(obj.real), repr(obj.imag))
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape,
                obj.tobytes())
    if isinstance(obj, np.generic):
        return ("npscalar", str(obj.dtype), obj.tobytes())
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, Mapping):
        items = sorted((repr(_canonical(k)), _canonical(v))
                       for k, v in obj.items())
        return ("map", tuple(items))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (f.name, _canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj))
        return ("dataclass", type(obj).__module__,
                type(obj).__qualname__, fields)
    token = getattr(obj, "cache_token", None)
    if callable(token):
        return ("token", type(obj).__qualname__, _canonical(token()))
    raise TypeError(
        f"cannot canonicalise {type(obj).__qualname__!r} for a cache "
        f"key; pass primitives/dataclasses or give it a cache_token()")


def stable_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical form of ``payload``."""
    blob = repr(_canonical(payload)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def job_key(fn: Callable, args: Tuple = (), kwargs: Optional[Dict] = None,
            extra: Any = None) -> str:
    """Content-addressed cache key for one task invocation."""
    return stable_hash((
        code_salt(),
        ambient_salt(),
        getattr(fn, "__module__", ""),
        getattr(fn, "__qualname__", repr(fn)),
        args,
        kwargs or {},
        extra,
    ))


def netlist_fingerprint(circuit) -> str:
    """Stable digest of a circuit's canonical (SPICE) form.

    Useful as the ``extra`` key component for tasks parameterised by a
    whole netlist rather than by scalar arguments.
    """
    from repro.circuit.spice_io import to_spice
    text = to_spice(circuit)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: A ``.tmp`` file older than this is considered abandoned by a crashed
#: writer; younger ones may belong to a live concurrent :meth:`put`.
STALE_TMP_AGE = 3600.0


class ResultCache:
    """Content-addressed pickle store under one directory."""

    def __init__(self, directory: str,
                 stale_tmp_age: float = STALE_TMP_AGE):
        self.directory = directory
        self.stale_tmp_age = stale_tmp_age
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # Crashed writers leave ``.tmp`` files behind (the atomic-write
        # protocol only cleans up on normal exception paths); sweep the
        # stale ones so they cannot accumulate across sessions.
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Delete abandoned ``.tmp`` files; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        cutoff = time.time() - self.stale_tmp_age
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(root, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.remove(path)
                        removed += 1
                except OSError:
                    pass
        return removed

    def _path(self, key: str) -> str:
        # Shard by the first byte to keep directory listings sane.
        return os.path.join(self.directory, key[:2], key + ".pkl")

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupted entries are deleted and miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated or unreadable entry: self-heal by dropping it.
            self.corrupt += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also removes every ``.tmp`` leftover regardless of age (a
        cleared cache has no live writers worth protecting); the count
        covers real entries only.
        """
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                path = os.path.join(root, name)
                if name.endswith(".pkl"):
                    try:
                        os.remove(path)
                        removed += 1
                    except OSError:
                        pass
                elif name.endswith(".tmp"):
                    try:
                        os.remove(path)
                    except OSError:
                        pass
        return removed

"""Solver telemetry: per-job solve statistics and run reports.

The solver layer emits one :class:`~repro.analysis.solver.SolveEvent`
per Newton solve and per DC homotopy solve (see
:func:`repro.analysis.solver.add_solve_observer`).  This module
aggregates those events into bounded-size counters:

* :class:`SolveStats` — counters for one scope (a single job, or a
  whole run): solve counts, cumulative Newton iterations, homotopy
  strategy histogram, solver wall time;
* :class:`JobRecord` — one executed job: tag, group (experiment id),
  wall time, cache hit/miss, retry rung, failure, and its SolveStats;
* :class:`RunTelemetry` — the in-process session log the job runner
  appends to, summarised by ``python -m repro stats``.

Everything serialises to plain JSON so reports survive across
processes and CLI invocations.

Collection is thread-local end to end: the solve-observer stack lives
in per-thread storage, so a :func:`collecting` block only sees solves
performed by its own thread — two service workers running jobs
concurrently each aggregate exactly their own events.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.analysis.solver import (
    SolveEvent,
    add_solve_observer,
    remove_solve_observer,
)

#: File name of the persisted run report inside the cache directory.
REPORT_BASENAME = "last_run.json"


@dataclass
class SolveStats:
    """Aggregated solver counters for one scope."""

    newton_solves: int = 0
    newton_failures: int = 0
    newton_iterations: int = 0
    dc_solves: int = 0
    dc_failures: int = 0
    dc_iterations: int = 0
    strategies: Dict[str, int] = field(default_factory=dict)
    solver_time: float = 0.0
    worst_residual: float = 0.0
    #: Newton solves per linear-solver backend name.
    backends: Dict[str, int] = field(default_factory=dict)
    #: Jacobian factorisations (dense or sparse LU) across all solves.
    factorizations: int = 0
    #: Summed Jacobian / L+U non-zeros of sparse factorisations; their
    #: ratio is the mean fill-in of the sparse backend.
    jacobian_nnz: int = 0
    factor_nnz: int = 0
    #: Transient step-control counters (one "transient" event per run).
    transient_runs: int = 0
    steps_accepted: int = 0
    steps_rejected_lte: int = 0
    steps_rejected_newton: int = 0
    min_step: float = 0.0
    max_step: float = 0.0
    #: Summed log-binned LTE error-ratio histogram across runs.
    error_ratio_hist: List[int] = field(default_factory=list)
    #: Per-phase wall-time split (folded from "newton" events only —
    #: the "dc" events cover the same assemblies again).
    eval_time: float = 0.0
    assemble_time: float = 0.0
    solve_time: float = 0.0
    #: Device-bypass counters: skipped vs performed evaluations while
    #: bypass was enabled.
    bypass_hits: int = 0
    bypass_evals: int = 0
    #: Stacked-ensemble counters: total samples solved in lock-step,
    #: samples demoted to the scalar fallback path, and active-mask
    #: occupancy (active iterations / lock-step iterations x samples).
    ensemble_solves: int = 0
    ensemble_samples: int = 0
    ensemble_fallbacks: int = 0
    ensemble_active_iterations: int = 0
    ensemble_sample_iterations: int = 0
    #: Wall time inside the batched numpy LU solves.
    stacked_solve_time: float = 0.0

    def observe(self, event: SolveEvent) -> None:
        """Fold one solve event into the counters."""
        if event.kind == "transient":
            # A transient event summarises a whole run whose inner
            # Newton solves already reported their own events — fold in
            # the step counters only, never wall time or iterations.
            self.transient_runs += 1
            self.steps_accepted += event.steps_accepted
            self.steps_rejected_lte += event.steps_rejected_lte
            self.steps_rejected_newton += event.steps_rejected_newton
            if event.steps_accepted:
                self.min_step = (min(self.min_step, event.h_min)
                                 if self.min_step else event.h_min)
                self.max_step = max(self.max_step, event.h_max)
            self._merge_hist(event.error_ratio_hist)
            self._observe_ensemble_scope(event)
            return
        self.solver_time += event.wall_time
        if event.kind == "newton":
            self.newton_solves += 1
            self.newton_iterations += event.iterations
            if not event.converged:
                self.newton_failures += 1
            # Backend counters ride on newton events only: the "dc"
            # events aggregate their inner newton solves and would
            # double-count.
            self.backends[event.backend] = \
                self.backends.get(event.backend, 0) + 1
            self.factorizations += event.factorizations
            self.jacobian_nnz += event.jacobian_nnz
            self.factor_nnz += event.factor_nnz
            self.eval_time += event.eval_time
            self.assemble_time += event.assemble_time
            self.solve_time += event.solve_time
            self.bypass_hits += event.bypass_hits
            self.bypass_evals += event.bypass_evals
            # Lock-step occupancy rides on the per-solve newton events;
            # the analysis-scope "dc"/"transient" events would
            # double-count the iterations.
            self.ensemble_active_iterations += \
                event.ensemble_active_iterations
            self.ensemble_sample_iterations += \
                event.ensemble_sample_iterations
            self.stacked_solve_time += event.stacked_solve_time
        elif event.kind == "dc":
            self.dc_solves += 1
            self.dc_iterations += event.iterations
            self.strategies[event.strategy] = \
                self.strategies.get(event.strategy, 0) + 1
            if not event.converged:
                self.dc_failures += 1
            self._observe_ensemble_scope(event)
        if event.converged and event.residual_norm == event.residual_norm:
            self.worst_residual = max(self.worst_residual,
                                      event.residual_norm)

    def _observe_ensemble_scope(self, event: SolveEvent) -> None:
        """Fold an analysis-scope ("dc"/"transient") ensemble summary."""
        if not event.ensemble_samples:
            return
        self.ensemble_solves += 1
        self.ensemble_samples += event.ensemble_samples
        self.ensemble_fallbacks += event.ensemble_fallbacks

    def _merge_hist(self, hist) -> None:
        hist = list(hist)
        if len(self.error_ratio_hist) < len(hist):
            self.error_ratio_hist += \
                [0] * (len(hist) - len(self.error_ratio_hist))
        for i, count in enumerate(hist):
            self.error_ratio_hist[i] += count

    @property
    def fill_ratio(self) -> float:
        """Mean L+U fill-in of the sparse backend (0 when unused)."""
        if self.jacobian_nnz <= 0:
            return 0.0
        return self.factor_nnz / self.jacobian_nnz

    def merge(self, other: "SolveStats") -> None:
        """Accumulate another scope's counters into this one."""
        self.newton_solves += other.newton_solves
        self.newton_failures += other.newton_failures
        self.newton_iterations += other.newton_iterations
        self.dc_solves += other.dc_solves
        self.dc_failures += other.dc_failures
        self.dc_iterations += other.dc_iterations
        for name, count in other.strategies.items():
            self.strategies[name] = self.strategies.get(name, 0) + count
        self.solver_time += other.solver_time
        self.worst_residual = max(self.worst_residual,
                                  other.worst_residual)
        for name, count in other.backends.items():
            self.backends[name] = self.backends.get(name, 0) + count
        self.factorizations += other.factorizations
        self.jacobian_nnz += other.jacobian_nnz
        self.factor_nnz += other.factor_nnz
        self.transient_runs += other.transient_runs
        self.steps_accepted += other.steps_accepted
        self.steps_rejected_lte += other.steps_rejected_lte
        self.steps_rejected_newton += other.steps_rejected_newton
        if other.min_step:
            self.min_step = (min(self.min_step, other.min_step)
                             if self.min_step else other.min_step)
        self.max_step = max(self.max_step, other.max_step)
        self._merge_hist(other.error_ratio_hist)
        self.eval_time += other.eval_time
        self.assemble_time += other.assemble_time
        self.solve_time += other.solve_time
        self.bypass_hits += other.bypass_hits
        self.bypass_evals += other.bypass_evals
        self.ensemble_solves += other.ensemble_solves
        self.ensemble_samples += other.ensemble_samples
        self.ensemble_fallbacks += other.ensemble_fallbacks
        self.ensemble_active_iterations += \
            other.ensemble_active_iterations
        self.ensemble_sample_iterations += \
            other.ensemble_sample_iterations
        self.stacked_solve_time += other.stacked_solve_time

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SolveStats":
        stats = cls()
        for key, value in data.items():
            if hasattr(stats, key):
                setattr(stats, key, value)
        return stats


@contextlib.contextmanager
def collecting(stats: SolveStats,
               exclusive: bool = False) -> Iterator[SolveStats]:
    """Route solver events into ``stats`` for the duration of the block.

    Observation is thread-local: only solves performed by the calling
    thread land in ``stats``, so concurrent collectors (two service
    workers, two orchestrating threads) never merge each other's
    telemetry.

    With ``exclusive=True`` the block *replaces* this thread's
    observer stack instead of stacking on top of it: enclosing
    collectors see nothing while the block runs.  The engine's
    per-job execution uses this so a job's solves attribute to that
    job exactly once — outer scopes receive them as the aggregated
    :class:`SolveStats` on the job's result, not as raw events.
    """
    from repro.analysis.solver import _solve_observers
    previous = None
    if exclusive:
        previous = _solve_observers.replace(())
    add_solve_observer(stats.observe)
    try:
        yield stats
    finally:
        remove_solve_observer(stats.observe)
        if previous is not None:
            _solve_observers.replace(previous)


@dataclass
class JobRecord:
    """Telemetry summary of one executed job."""

    tag: str
    group: str = ""
    wall_time: float = 0.0
    cache_hit: bool = False
    ok: bool = True
    attempts: int = 1
    rung: Optional[str] = None
    #: Explicit terminal state: the job was cancelled mid-run (or
    #: before starting).  Distinct from a failure — a cancelled job
    #: exhausted nothing and must not count as retries-exhausted.
    cancelled: bool = False
    error: Optional[Dict] = None   #: JobFailure.to_dict() when failed
    solves: SolveStats = field(default_factory=SolveStats)

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["solves"] = self.solves.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        data = dict(data)
        data["solves"] = SolveStats.from_dict(data.get("solves", {}))
        return cls(**data)


class RunTelemetry:
    """In-process log of every job the engine executed this session."""

    def __init__(self):
        self.records: List[JobRecord] = []
        self.started = time.time()

    def record(self, record: JobRecord) -> None:
        self.records.append(record)

    def reset(self) -> None:
        self.records.clear()
        self.started = time.time()

    # -- aggregation -------------------------------------------------

    def groups(self) -> List[str]:
        """Distinct group names in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.group not in seen:
                seen.append(record.group)
        return seen

    def group_summary(self, group: str) -> Dict:
        """Aggregate counters for one group (experiment)."""
        records = [r for r in self.records if r.group == group]
        stats = SolveStats()
        for record in records:
            stats.merge(record.solves)
        return {
            "group": group,
            "jobs": len(records),
            "cache_hits": sum(r.cache_hit for r in records),
            "failures": sum(not r.ok and not r.cancelled
                            for r in records),
            "cancelled": sum(r.cancelled for r in records),
            "retried": sum(r.attempts > 1 for r in records),
            "wall_time": sum(r.wall_time for r in records),
            "solves": stats.to_dict(),
        }

    def failures(self) -> List[Dict]:
        return [r.error for r in self.records if r.error]

    def to_report(self) -> Dict:
        """JSON-serialisable report of the whole session."""
        return {
            "schema": 1,
            "started": self.started,
            "written": time.time(),
            "groups": [self.group_summary(g) for g in self.groups()],
            "jobs": [r.to_dict() for r in self.records],
        }


#: The session-wide telemetry log the job runner appends to.
SESSION = RunTelemetry()


def save_report(path: str,
                telemetry: Optional[RunTelemetry] = None) -> str:
    """Write the session report as JSON; returns the path written."""
    telemetry = telemetry or SESSION
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                               suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(telemetry.to_report(), handle, indent=1)
    os.replace(tmp, path)
    return path


def load_report(path: str) -> Dict:
    """Load a report written by :func:`save_report`."""
    with open(path) as handle:
        return json.load(handle)


def report_to_text(report: Dict) -> str:
    """Render a saved report as an aligned summary table."""
    groups = report.get("groups", [])
    if not groups:
        return "no engine jobs recorded"
    header = ["experiment", "jobs", "hits", "fail", "retried",
              "newton iters", "steps acc/rej", "dc strategies",
              "backends", "factors", "fill",
              "eval/asm/sol [s]", "bypass", "ensemble",
              "solver [s]", "wall [s]"]
    rows = []
    for summary in groups:
        solves = summary["solves"]
        strategies = ",".join(
            f"{k}:{v}" for k, v in sorted(solves["strategies"].items()))
        backends = ",".join(
            f"{k}:{v}"
            for k, v in sorted(solves.get("backends", {}).items()))
        jac_nnz = solves.get("jacobian_nnz", 0)
        fill = (f"{solves.get('factor_nnz', 0) / jac_nnz:.1f}x"
                if jac_nnz else "-")
        # Old reports predate transient step counters; default to zero.
        rejected = (solves.get("steps_rejected_lte", 0)
                    + solves.get("steps_rejected_newton", 0))
        steps = (f"{solves.get('steps_accepted', 0)}/{rejected}"
                 if solves.get("transient_runs", 0) else "-")
        # Phase split and bypass hit rate (absent in old reports).
        phases = (solves.get("eval_time", 0.0),
                  solves.get("assemble_time", 0.0),
                  solves.get("solve_time", 0.0))
        phase_split = ("/".join(f"{p:.2f}" for p in phases)
                       if any(phases) else "-")
        hits = solves.get("bypass_hits", 0)
        evals = solves.get("bypass_evals", 0)
        bypass = (f"{100.0 * hits / (hits + evals):.0f}%"
                  if hits + evals else "-")
        # Stacked-ensemble column (absent in old reports): samples
        # solved in lock-step, scalar fallbacks, mask occupancy.
        ens_samples = solves.get("ensemble_samples", 0)
        sample_iters = solves.get("ensemble_sample_iterations", 0)
        if ens_samples:
            ensemble = (f"S:{ens_samples} "
                        f"fb:{solves.get('ensemble_fallbacks', 0)}")
            if sample_iters:
                occ = (100.0
                       * solves.get("ensemble_active_iterations", 0)
                       / sample_iters)
                ensemble += f" occ:{occ:.0f}%"
        else:
            ensemble = "-"
        rows.append([
            summary["group"] or "(ungrouped)",
            str(summary["jobs"]),
            str(summary["cache_hits"]),
            str(summary["failures"]),
            str(summary["retried"]),
            str(solves["newton_iterations"]),
            steps,
            strategies or "-",
            backends or "-",
            str(solves.get("factorizations", 0)),
            fill,
            phase_split,
            bypass,
            ensemble,
            f"{solves['solver_time']:.2f}",
            f"{summary['wall_time']:.2f}",
        ])
    widths = [max(len(r[i]) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(c.ljust(w) for c, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    failures = [job for job in report.get("jobs", [])
                if job.get("error")]
    for job in failures:
        err = job["error"]
        lines.append(
            f"!! {job['group'] or '(ungrouped)'}/{job['tag']}: "
            f"{err['error_type']} after {err['attempts']} attempt(s): "
            f"{err['message']}")
    # Cancellations are a terminal state of their own (absent in old
    # reports): surface them, but never as failures.
    cancelled = [job for job in report.get("jobs", [])
                 if job.get("cancelled")]
    for job in cancelled:
        lines.append(
            f"-- {job['group'] or '(ungrouped)'}/{job['tag']}: "
            f"cancelled after {job.get('attempts', 0)} attempt(s)")
    return "\n".join(lines)

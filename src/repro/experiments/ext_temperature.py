"""Extension: temperature dependence of the NEMS leakage advantage.

Section 1 of the paper stresses that "most leakage mechanisms are
strongly temperature dependent" and that the leakage-temperature
coupling compounds total power (ref [5]).  CMOS subthreshold leakage
grows exponentially with temperature (the swing is proportional to kT);
the NEMS OFF current is an air gap's tunnelling/Brownian floor, set by
geometry, not by a thermal barrier.  The hybrid technology's leakage
advantage therefore *widens* with temperature — quantified here at the
device level.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.devices.mosfet import mosfet_current, nmos_90nm
from repro.devices.nemfet import nemfet_90nm
from repro.experiments.result import ExperimentResult

VDD = 1.2


def run(temperatures: Sequence[float] = (300.0, 325.0, 350.0, 375.0,
                                         400.0)) -> ExperimentResult:
    """CMOS vs NEMS OFF current across temperature."""
    rows = []
    base = nmos_90nm()
    nems = nemfet_90nm()
    for temp in temperatures:
        params = replace(base, temperature=float(temp))
        i_cmos = abs(mosfet_current(params, 1e-6, 0.0, VDD, 0.0)[0])
        nems_t = replace(nems,
                         channel=replace(nems.channel,
                                         temperature=float(temp)))
        i_nems = abs(nems_t.static_current(1e-6, 0.0, VDD, 0.0,
                                           branch="up"))
        rows.append((float(temp), i_cmos * 1e9, i_nems * 1e12,
                     i_cmos / i_nems))
    ratio_cold = rows[0][3]
    ratio_hot = rows[-1][3]
    return ExperimentResult(
        experiment_id="Ext-Temperature",
        title="OFF-current vs temperature: CMOS thermal barrier vs "
              "NEMS air gap",
        columns=["T [K]", "CMOS I_off [nA/um]", "NEMS I_off [pA/um]",
                 "advantage"],
        rows=rows,
        notes=f"The CMOS swing degrades as kT while the NEMS floor is "
              f"athermal, so the leakage advantage grows from "
              f"{ratio_cold:.0f}x at {temperatures[0]:.0f} K to "
              f"{ratio_hot:.0f}x at {temperatures[-1]:.0f} K — "
              f"hybrid gating pays off most exactly where thermal "
              f"runaway threatens (paper ref [5]).")


if __name__ == "__main__":
    print(run())

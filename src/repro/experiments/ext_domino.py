"""Extension: hybrid gates in domino pipelines — amortising mechanics.

In a monotonic domino pipeline each stage's inputs arrive during
evaluation, so every hybrid stage pays the NEMFET's mechanical closing
in the chain's critical path.  This experiment measures end-to-end
latency versus pipeline depth for both styles: the hybrid chain's
latency grows by roughly (electrical + mechanical) per stage, which is
the honest system-level cost the single-gate Figure 10/11 protocol
(inputs settled in precharge) does not expose.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.result import ExperimentResult
from repro.library.domino import DominoPipelineSpec, build_pipeline


def run(stage_counts: Sequence[int] = (1, 2, 3),
        fan_in: int = 4) -> ExperimentResult:
    """End-to-end latency vs depth, CMOS vs hybrid stages."""
    rows = []
    per_stage = {}
    for style in ("cmos", "hybrid"):
        latencies = []
        for stages in stage_counts:
            spec = DominoPipelineSpec(stages=stages, fan_in=fan_in,
                                      style=style)
            latency = build_pipeline(spec).latency()
            latencies.append(latency)
            rows.append((style, stages, latency * 1e12))
        if len(latencies) >= 2:
            per_stage[style] = ((latencies[-1] - latencies[0])
                                / (stage_counts[-1] - stage_counts[0]))
    note = "Incremental cost per added stage: "
    note += ", ".join(f"{style} {cost * 1e12:.0f} ps"
                      for style, cost in per_stage.items())
    note += (" — the hybrid increment carries the NEMFET closing time, "
             "the cost hidden by the settled-input protocol of "
             "Figures 10-11.")
    return ExperimentResult(
        experiment_id="Ext-Domino",
        title=f"Domino pipeline latency vs depth "
              f"({fan_in}-input stages)",
        columns=["style", "stages", "latency [ps]"],
        rows=rows,
        notes=note)


if __name__ == "__main__":
    print(run())

"""Extension: dynamic-gate behaviour across global process corners.

Runs the 8-input OR gates at the five classic global corners (TT / FF /
SS / FS / SF).  The CMOS devices shift; the NEMS devices do not (their
pull-in is geometric), so the hybrid gate's noise margin is *corner
invariant* while the CMOS gate's margin and delay swing — the
robustness argument behind the hybrid technology, at the global-corner
level the paper's per-device analysis (Figure 9) does not cover.

The per-corner delays of each style come from *one* lock-step stacked
transient (:func:`~repro.analysis.ensemble.corner_ensemble_spec` turns
the corner table into per-sample parameter rows), replacing the five
rebuilt-netlist solves per style.  The static noise margins stay
analytic and keep the rebuilt-netlist corner cards, since they need no
circuit solve.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.ensemble import corner_ensemble_spec
from repro.devices.corners import CORNERS, corner_params
from repro.devices.mosfet import nmos_90nm, pmos_90nm
from repro.experiments.common import NM_TARGET, leaky_corner_shift
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


def run(corners: Sequence[str] = CORNERS, fan_in: int = 8,
        fan_out: float = 3.0) -> ExperimentResult:
    """Delay and noise margin per corner, CMOS vs hybrid."""
    # Keeper sized once at TT (a real design is sized at one corner and
    # must survive the others).
    tt_spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                            style="cmos")
    tt_gate = build_dynamic_or(tt_spec)
    keeper_width = gate_metrics.size_keeper_for_noise_margin(
        tt_gate, NM_TARGET, pd_shift=leaky_corner_shift(tt_spec))

    delays = {}
    margins = {"cmos": [], "hybrid": []}
    for style in ("cmos", "hybrid"):
        spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                             style=style)
        gate = build_dynamic_or(spec)
        if style == "cmos":
            gate.set_keeper_width(keeper_width)
        espec = corner_ensemble_spec(gate.circuit, corners)
        delays[style] = gate_metrics.measure_worst_case_delays(
            gate, espec)
        for corner in corners:
            # Analytic NM at the corner's device cards (cheap; no
            # circuit solve).
            nmos, pmos = corner_params(nmos_90nm(), pmos_90nm(), corner)
            cspec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                                  style=style, nmos=nmos, pmos=pmos)
            cgate = build_dynamic_or(cspec)
            if style == "cmos":
                cgate.set_keeper_width(keeper_width)
            margins[style].append(
                gate_metrics.noise_margin_static(cgate))

    rows = []
    for i, corner in enumerate(corners):
        for style in ("cmos", "hybrid"):
            rows.append((corner, style, margins[style][i],
                         float(delays[style][i]) * 1e12))

    def spread(values):
        return (max(values) - min(values)) * 1e3

    return ExperimentResult(
        experiment_id="Ext-Corners",
        title=f"Global corners: {fan_in}-input OR "
              f"(keeper sized at TT)",
        columns=["corner", "style", "NM [V]", "delay [ps]"],
        rows=rows,
        notes=f"Noise-margin spread across corners: CMOS "
              f"{spread(margins['cmos']):.0f} mV vs hybrid "
              f"{spread(margins['hybrid']):.0f} mV — the hybrid "
              f"margin is pinned at the (geometric) NEMS pull-in "
              f"voltage and barely moves.")


if __name__ == "__main__":
    print(run())

"""Extension: dynamic-gate behaviour across global process corners.

Runs the 8-input OR gates at the five classic global corners (TT / FF /
SS / FS / SF).  The CMOS devices shift; the NEMS devices do not (their
pull-in is geometric), so the hybrid gate's noise margin is *corner
invariant* while the CMOS gate's margin and delay swing — the
robustness argument behind the hybrid technology, at the global-corner
level the paper's per-device analysis (Figure 9) does not cover.
"""

from __future__ import annotations

from typing import Sequence

from repro.devices.corners import CORNERS, corner_params
from repro.devices.mosfet import nmos_90nm, pmos_90nm
from repro.experiments.common import NM_TARGET, leaky_corner_shift
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


def run(corners: Sequence[str] = CORNERS, fan_in: int = 8,
        fan_out: float = 3.0) -> ExperimentResult:
    """Delay and noise margin per corner, CMOS vs hybrid."""
    # Keeper sized once at TT (a real design is sized at one corner and
    # must survive the others).
    tt_spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                            style="cmos")
    tt_gate = build_dynamic_or(tt_spec)
    keeper_width = gate_metrics.size_keeper_for_noise_margin(
        tt_gate, NM_TARGET, pd_shift=leaky_corner_shift(tt_spec))

    rows = []
    margins = {"cmos": [], "hybrid": []}
    for corner in corners:
        nmos, pmos = corner_params(nmos_90nm(), pmos_90nm(), corner)
        for style in ("cmos", "hybrid"):
            spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                                 style=style, nmos=nmos, pmos=pmos)
            gate = build_dynamic_or(spec)
            if style == "cmos":
                gate.set_keeper_width(keeper_width)
            nm = gate_metrics.noise_margin_static(gate)
            delay = gate_metrics.measure_worst_case_delay(gate)
            margins[style].append(nm)
            rows.append((corner, style, nm, delay * 1e12))

    def spread(values):
        return (max(values) - min(values)) * 1e3

    return ExperimentResult(
        experiment_id="Ext-Corners",
        title=f"Global corners: {fan_in}-input OR "
              f"(keeper sized at TT)",
        columns=["corner", "style", "NM [V]", "delay [ps]"],
        rows=rows,
        notes=f"Noise-margin spread across corners: CMOS "
              f"{spread(margins['cmos']):.0f} mV vs hybrid "
              f"{spread(margins['hybrid']):.0f} mV — the hybrid "
              f"margin is pinned at the (geometric) NEMS pull-in "
              f"voltage and barely moves.")


if __name__ == "__main__":
    print(run())

"""Figure 9: delay vs noise margin of an 8-input dynamic OR under
process variation.

Reproduces the trade-off curve of ref [24]: upsizing the keeper buys
noise margin and costs worst-case delay, and higher threshold-voltage
variation shifts the whole curve.  For each variation level
(``sigma(Vth)/mu(Vth)``) the keeper width is swept; the noise margin is
evaluated at the 3-sigma *leaky* pull-down corner (where the keeper must
hold hardest) and the worst-case delay at the opposite corner — *weak*
pull-downs against a *strong* (low-Vt) keeper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.devices.variation import VariationModel, applied_shifts, corner_shifts
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


def run(fan_in: int = 8, fan_out: float = 3.0,
        sigma_levels: Sequence[float] = (0.05, 0.10, 0.15),
        keeper_widths: Optional[Sequence[float]] = None,
        n_sigma: float = 3.0) -> ExperimentResult:
    """Sweep keeper size at several variation levels (CMOS gate)."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    gate = build_dynamic_or(spec)
    if keeper_widths is None:
        w_hi = gate_metrics.max_functional_keeper_width(gate)
        keeper_widths = np.geomspace(0.3e-6, 0.95 * w_hi, 6)

    rows = []
    delay_ref = None
    for sigma in sigma_levels:
        model = VariationModel(sigma_rel=sigma, n_sigma=n_sigma)
        for width in keeper_widths:
            gate.set_keeper_width(float(width))
            # Noise margin at the leaky-PDN corner.
            pd_leaky = model.corner_shift(gate.pulldowns[0], "leaky")
            nm = gate_metrics.noise_margin_static(gate,
                                                  pd_shift=pd_leaky)
            # Worst-case delay: weak PDN, strong keeper.
            shifts = corner_shifts(model, weak=gate.pulldowns,
                                   leaky=[gate.keeper])
            with applied_shifts(gate.circuit, shifts):
                delay = gate_metrics.measure_worst_case_delay(gate)
            if delay_ref is None:
                delay_ref = delay
            rows.append((sigma * 100, float(width) * 1e6, nm,
                         delay * 1e12, delay / delay_ref))
    return ExperimentResult(
        experiment_id="Figure9",
        title=f"{fan_in}-input dynamic OR: delay vs noise margin under "
              f"variation",
        columns=["sigma/mu [%]", "keeper W [um]", "NM [V]",
                 "delay [ps]", "norm delay"],
        rows=rows,
        notes="Each variation level traces one curve: delay rises "
              "monotonically with the noise margin bought by keeper "
              "upsizing; higher sigma shifts curves to larger delay at "
              "equal noise margin.")


if __name__ == "__main__":
    print(run())

"""Figure 9: delay vs noise margin of an 8-input dynamic OR under
process variation.

Reproduces the trade-off curve of ref [24]: upsizing the keeper buys
noise margin and costs worst-case delay, and higher threshold-voltage
variation shifts the whole curve.  For each variation level
(``sigma(Vth)/mu(Vth)``) the keeper width is swept; the noise margin is
evaluated at the 3-sigma *leaky* pull-down corner (where the keeper must
hold hardest) and the worst-case delay at the opposite corner — *weak*
pull-downs against a *strong* (low-Vt) keeper.

Each ``(sigma, keeper width)`` point is an independent corner solve and
runs through the :mod:`repro.engine` job runner.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.devices.variation import VariationModel, applied_shifts, corner_shifts
from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note, values_or_nans
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


def keeper_point_task(fan_in: int, fan_out: float, sigma: float,
                      n_sigma: float, width: float
                      ) -> Tuple[float, float]:
    """Noise margin and worst-case delay of one keeper-sizing point.

    Pure engine task: rebuilds the gate from its coordinates, applies
    the two corners of the Figure 9 methodology and returns
    ``(noise_margin, delay)``.
    """
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    gate = build_dynamic_or(spec)
    gate.set_keeper_width(float(width))
    model = VariationModel(sigma_rel=sigma, n_sigma=n_sigma)
    # Noise margin at the leaky-PDN corner.
    pd_leaky = model.corner_shift(gate.pulldowns[0], "leaky")
    nm = gate_metrics.noise_margin_static(gate, pd_shift=pd_leaky)
    # Worst-case delay: weak PDN, strong keeper.
    shifts = corner_shifts(model, weak=gate.pulldowns,
                           leaky=[gate.keeper])
    with applied_shifts(gate.circuit, shifts):
        delay = gate_metrics.measure_worst_case_delay(gate)
    return (nm, delay)


def run(fan_in: int = 8, fan_out: float = 3.0,
        sigma_levels: Sequence[float] = (0.05, 0.10, 0.15),
        keeper_widths: Optional[Sequence[float]] = None,
        n_sigma: float = 3.0) -> ExperimentResult:
    """Sweep keeper size at several variation levels (CMOS gate)."""
    if keeper_widths is None:
        spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                             style="cmos")
        gate = build_dynamic_or(spec)
        w_hi = gate_metrics.max_functional_keeper_width(gate)
        keeper_widths = np.geomspace(0.3e-6, 0.95 * w_hi, 6)

    points = [(float(sigma), float(width))
              for sigma in sigma_levels for width in keeper_widths]
    tasks = [
        Job(keeper_point_task,
            args=(int(fan_in), float(fan_out), sigma, float(n_sigma),
                  width),
            tag=f"s{sigma * 100:g}%/w{width * 1e6:.2f}um")
        for sigma, width in points
    ]
    results = run_jobs(tasks, group="fig09")

    rows = []
    delay_ref = None
    for (sigma, width), result in zip(points, results):
        nm, delay = values_or_nans(result, 2)
        if delay_ref is None and result.ok:
            delay_ref = delay
        rows.append((sigma * 100, width * 1e6, nm, delay * 1e12,
                     delay / delay_ref if delay_ref else float("nan")))
    return ExperimentResult(
        experiment_id="Figure9",
        title=f"{fan_in}-input dynamic OR: delay vs noise margin under "
              f"variation",
        columns=["sigma/mu [%]", "keeper W [um]", "NM [V]",
                 "delay [ps]", "norm delay"],
        rows=rows,
        notes="Each variation level traces one curve: delay rises "
              "monotonically with the noise margin bought by keeper "
              "upsizing; higher sigma shifts curves to larger delay at "
              "equal noise margin." + failure_note(results))


if __name__ == "__main__":
    print(run())

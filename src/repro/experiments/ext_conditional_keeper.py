"""Extension: conditional keeper vs standard keeper (paper ref [24]).

The Figure 9 trade-off — noise margin bought by keeper upsizing costs
worst-case delay — motivated the paper's own earlier DAC 2006 work on
variation-aware conditional keepers, and is the CMOS-side baseline the
hybrid gate is compared against.  This experiment quantifies how much
of the trade-off the conditional keeper recovers at iso-noise-margin,
and where the hybrid gate still wins.
"""

from __future__ import annotations

from repro.experiments.common import NM_TARGET, leaky_corner_shift
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or
from repro.library.keeper import ConditionalKeeperSpec, ConditionalKeeperGate


def run(fan_in: int = 8, fan_out: float = 3.0,
        nm_target: float = NM_TARGET) -> ExperimentResult:
    """Compare standard, conditional, and hybrid gates at iso-NM."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    shift = leaky_corner_shift(spec)

    standard = build_dynamic_or(spec)
    width = gate_metrics.size_keeper_for_noise_margin(
        standard, nm_target, pd_shift=shift)
    standard.set_keeper_width(width)

    cond_spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out,
                              style="cmos")
    w_large = max(width - ConditionalKeeperSpec().w_small, 0.1e-6)
    conditional = ConditionalKeeperGate(
        cond_spec, ConditionalKeeperSpec(w_large=w_large))

    hybrid = build_dynamic_or(DynamicOrSpec(fan_in=fan_in,
                                            fan_out=fan_out,
                                            style="hybrid"))

    rows = []
    for label, gate in (("standard keeper", standard),
                        ("conditional keeper", conditional),
                        ("hybrid NEMS-CMOS", hybrid)):
        nm = gate_metrics.noise_margin_static(gate, pd_shift=shift)
        delay = gate_metrics.measure_worst_case_delay(gate)
        p_sw, _ = gate_metrics.measure_switching_power(gate)
        p_leak = gate_metrics.measure_leakage_power(gate)
        rows.append((label, gate.keeper_width * 1e6, nm, delay * 1e12,
                     p_sw * 1e6, p_leak * 1e9))
    d_std = rows[0][3]
    d_cond = rows[1][3]
    return ExperimentResult(
        experiment_id="Ext-CondKeeper",
        title=f"Keeper architectures at iso noise margin "
              f"({fan_in}-input OR)",
        columns=["architecture", "keeper W [um]", "NM [V]",
                 "delay [ps]", "P_sw [uW]", "P_leak [nW]"],
        rows=rows,
        notes=f"The conditional keeper recovers "
              f"{(1 - d_cond / d_std) * 100:.0f}% of the standard "
              f"keeper's delay at the same late-window noise margin; "
              f"the hybrid gate additionally eliminates the leakage "
              f"and contention power.")


if __name__ == "__main__":
    print(run())

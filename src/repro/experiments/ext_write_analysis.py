"""Extension: write margin and write latency of the four SRAM cells.

The paper evaluates read stability, read latency and standby leakage
(Figures 14-15) but never the *write* side.  Measured here: the hybrid
cell is *statically* easy to write (its weak NEMS pull-ups raise the
write trip voltage) but *dynamically* expensive — completing the flip
must actuate four beams, multiplying the write latency.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec, VARIANTS
from repro.library.sram_metrics import write_latency, write_margin


def run(variants: Sequence[str] = VARIANTS) -> ExperimentResult:
    """Write trip voltage [mV] and latency [ps] per cell variant."""
    rows = []
    raw = {}
    for variant in variants:
        spec = SramSpec(variant=variant)
        margin = write_margin(spec)
        latency = write_latency(spec)
        raw[variant] = (margin, latency)
        rows.append((variant, margin * 1e3, latency * 1e12))
    note = "Write-side behaviour the paper does not quote."
    if "hybrid" in raw and "conventional" in raw:
        m_h, l_h = raw["hybrid"]
        m_c, l_c = raw["conventional"]
        note = (f"The hybrid cell's write trip voltage is "
                f"{m_h / m_c:.1f}x conventional (weak NEMS pull-ups "
                f"flip easily) but its write latency is "
                f"{l_h / l_c:.1f}x (four beams must actuate to settle "
                f"the new state) — write-side behaviour the paper "
                f"does not quote.")
    return ExperimentResult(
        experiment_id="Ext-Write",
        title="SRAM write trip voltage & latency across cell variants",
        columns=["variant", "write trip [mV]", "write latency [ps]"],
        rows=rows,
        notes=note)


if __name__ == "__main__":
    print(run())

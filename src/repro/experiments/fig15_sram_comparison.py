"""Figure 15: SRAM read latency and standby leakage comparison.

Read latency and standby leakage of the four Figure 13 cells,
normalised to the conventional cell (the paper's presentation).  The
asymmetric cell reads its two stored states at different speeds, so —
exactly as the paper notes — the average of both is plotted.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec, VARIANTS
from repro.library.sram_metrics import read_latencies_both, standby_leakage


def run(variants: Sequence[str] = VARIANTS) -> ExperimentResult:
    """Latency and leakage per variant, normalised to conventional."""
    raw = {}
    for variant in variants:
        spec = SramSpec(variant=variant)
        lat0, lat1 = read_latencies_both(spec)
        leak = standby_leakage(spec)
        raw[variant] = ((lat0 + lat1) / 2.0, lat0, lat1, leak)

    ref_lat, _, _, ref_leak = raw.get(
        "conventional", next(iter(raw.values())))
    rows = []
    for variant in variants:
        lat, lat0, lat1, leak = raw[variant]
        rows.append((variant, lat * 1e12, lat / ref_lat,
                     leak * 1e9, leak / ref_leak, ref_leak / leak))
    hybrid = raw.get("hybrid")
    note = ("Paper: hybrid read latency 1.23x conventional, standby "
            "leakage ~7.7x lower.")
    if hybrid is not None:
        note += (f" Measured: latency {hybrid[0] / ref_lat:.2f}x, "
                 f"leakage {ref_leak / hybrid[3]:.1f}x lower.")
    return ExperimentResult(
        experiment_id="Figure15",
        title="SRAM read latency & standby leakage (vs conventional)",
        columns=["variant", "latency [ps]", "norm latency",
                 "leakage [nW]", "norm leakage", "leakage reduction"],
        rows=rows,
        notes=note,
        extras={"per_state_latency": {v: (raw[v][1], raw[v][2])
                                      for v in variants}})


if __name__ == "__main__":
    print(run())

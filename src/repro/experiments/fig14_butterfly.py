"""Figure 14: SRAM butterfly curves and static noise margins.

Traces the read-condition butterfly for the four Figure 13 cell
architectures and reports Seevinck SNM values, normalised to the
conventional cell (the paper quotes the hybrid at ~14% below
conventional, slightly above the other low-leakage cells).

Each cell variant's butterfly trace is an independent DC sweep, so the
variants run as engine jobs: parallel when configured, and — because
the curves are pure functions of the cell spec — cached across runs.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note
from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec, VARIANTS
from repro.library.sram_metrics import ButterflyCurves, static_noise_margin


def butterfly_task(variant: str,
                   points: int) -> Tuple[float, ButterflyCurves]:
    """SNM and butterfly curves of one cell variant (pure engine task)."""
    return static_noise_margin(SramSpec(variant=variant), points=points)


def run(variants: Sequence[str] = VARIANTS,
        points: int = 121) -> ExperimentResult:
    """SNM per cell variant, with butterfly curves in ``extras``."""
    tasks = [Job(butterfly_task, args=(variant, int(points)),
                 tag=variant) for variant in variants]
    results = run_jobs(tasks, group="fig14")

    rows = []
    curves = {}
    snm_by_variant = {}
    for variant, result in zip(variants, results):
        if result.ok:
            snm, bf = result.value
            curves[variant] = bf
        else:
            snm = math.nan
        snm_by_variant[variant] = snm
    ref = snm_by_variant.get("conventional",
                             next(iter(snm_by_variant.values())))
    for variant in variants:
        snm = snm_by_variant[variant]
        rows.append((variant, snm * 1e3, snm / ref))
    return ExperimentResult(
        experiment_id="Figure14",
        title="SRAM read butterfly curves / static noise margin",
        columns=["variant", "SNM [mV]", "vs conventional"],
        rows=rows,
        notes="Paper: hybrid SNM ~14% below conventional and slightly "
              "above the dual-Vt / asymmetric cells."
              + failure_note(results),
        extras={"butterfly": curves})


if __name__ == "__main__":
    print(run())

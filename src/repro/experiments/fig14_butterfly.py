"""Figure 14: SRAM butterfly curves and static noise margins.

Traces the read-condition butterfly for the four Figure 13 cell
architectures and reports Seevinck SNM values, normalised to the
conventional cell (the paper quotes the hybrid at ~14% below
conventional, slightly above the other low-leakage cells).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec, VARIANTS
from repro.library.sram_metrics import static_noise_margin


def run(variants: Sequence[str] = VARIANTS,
        points: int = 121) -> ExperimentResult:
    """SNM per cell variant, with butterfly curves in ``extras``."""
    rows = []
    curves = {}
    snm_by_variant = {}
    for variant in variants:
        spec = SramSpec(variant=variant)
        snm, bf = static_noise_margin(spec, points=points)
        snm_by_variant[variant] = snm
        curves[variant] = bf
    ref = snm_by_variant.get("conventional",
                             next(iter(snm_by_variant.values())))
    for variant in variants:
        snm = snm_by_variant[variant]
        rows.append((variant, snm * 1e3, snm / ref))
    return ExperimentResult(
        experiment_id="Figure14",
        title="SRAM read butterfly curves / static noise margin",
        columns=["variant", "SNM [mV]", "vs conventional"],
        rows=rows,
        notes="Paper: hybrid SNM ~14% below conventional and slightly "
              "above the dual-Vt / asymmetric cells.",
        extras={"butterfly": curves})


if __name__ == "__main__":
    print(run())

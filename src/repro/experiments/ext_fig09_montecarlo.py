"""Extension: Monte-Carlo validation of the Figure 9 corner method.

Figure 9 uses deterministic 3-sigma corners.  This experiment samples
per-transistor Gaussian Vth variation and measures the distribution of
worst-case delay and static noise margin, checking that the corner
analysis brackets the sampled population — i.e. that the paper's
methodology is conservative but not wildly so.

The shift maps are drawn up-front from the seeded generator (so the
population is identical regardless of execution order), then the
samples are sharded into engine jobs.  Each shard builds its gate once
and solves all of its samples in one lock-step stacked transient (see
:mod:`repro.analysis.ensemble`) — the batched-LU path that makes the
256-sample default affordable where the old one-job-per-sample layout
re-built the gate and re-integrated the clock period 256 times.  The
3-sigma corner rides along as one extra sample of the last shard, so
the corner/population comparison shares a single integration grid.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.analysis.ensemble import EnsembleSpec
from repro.devices.variation import (
    VariationModel,
    corner_shifts,
    monte_carlo_shifts,
)
from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


def mc_shard_task(fan_in: int, fan_out: float, keeper_width: float,
                  shift_maps: List[dict]) -> np.ndarray:
    """Worst-case delays of one shard of Monte-Carlo Vth samples [s].

    Pure engine task: builds the gate *once*, stacks the shard's shift
    maps into an :class:`~repro.analysis.ensemble.EnsembleSpec` and
    runs a single lock-step ensemble transient.  Returns one delay per
    sample; samples that failed to solve come back as NaN.
    """
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    gate = build_dynamic_or(spec)
    gate.set_keeper_width(float(keeper_width))
    espec = EnsembleSpec.from_shift_maps(shift_maps)
    return gate_metrics.measure_worst_case_delays(gate, espec)


def run(fan_in: int = 8, fan_out: float = 3.0, sigma_rel: float = 0.10,
        samples: int = 256, keeper_width: float = 3e-6,
        seed: int = 7, shard_size: int = 64) -> ExperimentResult:
    """Monte-Carlo delay/NM distribution vs the 3-sigma corners."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    gate = build_dynamic_or(spec)
    gate.set_keeper_width(keeper_width)
    model = VariationModel(sigma_rel=sigma_rel, n_sigma=3.0)
    devices = list(gate.pulldowns) + [gate.keeper]

    sample_shifts = monte_carlo_shifts(model, devices, samples, seed)
    corner = corner_shifts(model, weak=gate.pulldowns,
                           leaky=[gate.keeper])
    # The deterministic corner becomes the final sample of the last
    # shard: same stacked solve, same grid as the population it must
    # bound.
    maps = sample_shifts + [corner]
    shards = [maps[i:i + shard_size]
              for i in range(0, len(maps), shard_size)]
    tasks = [
        Job(mc_shard_task,
            args=(int(fan_in), float(fan_out), float(keeper_width),
                  shard),
            tag=f"shard{j}")
        for j, shard in enumerate(shards)
    ]
    results = run_jobs(tasks, group="fig09-mc")
    parts = [np.asarray(r.value, dtype=float) if r.ok
             else np.full(len(shard), np.nan)
             for r, shard in zip(results, shards)]
    all_delays = np.concatenate(parts)
    delay_corner = float(all_delays[-1])
    delays = all_delays[:samples]
    delays = delays[np.isfinite(delays)]
    if delays.size == 0:
        raise RuntimeError(
            "every Monte-Carlo sample failed to solve; see "
            "`python -m repro stats`")
    if not np.isfinite(delay_corner):
        raise RuntimeError(
            "the 3-sigma corner sample failed to solve; see "
            "`python -m repro stats`")

    # Noise margins are analytic (no circuit solve), so the per-sample
    # loop is cheap even at the 256-sample default.
    margins = np.array([
        gate_metrics.noise_margin_static(
            gate,
            pd_shift=float(np.mean([m[d.name]
                                    for d in gate.pulldowns])),
            keeper_shift=m[gate.keeper.name])
        for m in sample_shifts])
    nm_corner = gate_metrics.noise_margin_static(
        gate, pd_shift=model.corner_shift(gate.pulldowns[0], "leaky"))

    rows = [
        ("delay [ps]", float(delays.mean() * 1e12),
         float(delays.std() * 1e12), float(delays.max() * 1e12),
         delay_corner * 1e12),
        ("noise margin [V]", float(margins.mean()),
         float(margins.std()), float(margins.min()), nm_corner),
    ]
    return ExperimentResult(
        experiment_id="Ext-Fig9-MC",
        title=f"Monte-Carlo vs 3-sigma corners "
              f"(sigma/mu = {sigma_rel * 100:.0f}%, {samples} samples)",
        columns=["metric", "mean", "std", "sample worst",
                 "3-sigma corner"],
        rows=rows,
        notes="The corner values must bound the sampled worst cases "
              "(delay corner above the slowest sample; NM corner below "
              "the smallest sampled margin)." + failure_note(results))


if __name__ == "__main__":
    print(run())

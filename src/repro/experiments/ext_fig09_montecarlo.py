"""Extension: Monte-Carlo validation of the Figure 9 corner method.

Figure 9 uses deterministic 3-sigma corners.  This experiment samples
per-transistor Gaussian Vth variation and measures the distribution of
worst-case delay and static noise margin, checking that the corner
analysis brackets the sampled population — i.e. that the paper's
methodology is conservative but not wildly so.

The shift maps are drawn up-front from the seeded generator (so the
population is identical regardless of execution order), then every
sample becomes one engine job — the workload whose sample count users
scale up first, and exactly the embarrassingly parallel shape the job
runner exists for.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.devices.variation import (
    VariationModel,
    applied_shifts,
    corner_shifts,
    monte_carlo_shifts,
)
from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


def mc_sample_task(fan_in: int, fan_out: float, keeper_width: float,
                   shifts: Dict[str, float]) -> Tuple[float, float]:
    """Delay and noise margin of one Monte-Carlo Vth sample.

    Pure engine task: rebuilds the gate, applies the sampled shifts and
    returns ``(delay, noise_margin)``.  The static NM uses the sampled
    mean pull-down shift as the population's common corner level.
    """
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    gate = build_dynamic_or(spec)
    gate.set_keeper_width(float(keeper_width))
    with applied_shifts(gate.circuit, shifts):
        delay = gate_metrics.measure_worst_case_delay(gate)
    pd_mean = float(np.mean([shifts[m.name] for m in gate.pulldowns]))
    margin = gate_metrics.noise_margin_static(
        gate, pd_shift=pd_mean,
        keeper_shift=shifts[gate.keeper.name])
    return (delay, margin)


def run(fan_in: int = 8, fan_out: float = 3.0, sigma_rel: float = 0.10,
        samples: int = 30, keeper_width: float = 3e-6,
        seed: int = 7) -> ExperimentResult:
    """Monte-Carlo delay/NM distribution vs the 3-sigma corners."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    gate = build_dynamic_or(spec)
    gate.set_keeper_width(keeper_width)
    model = VariationModel(sigma_rel=sigma_rel, n_sigma=3.0)
    devices = list(gate.pulldowns) + [gate.keeper]

    sample_shifts = monte_carlo_shifts(model, devices, samples, seed)
    tasks = [
        Job(mc_sample_task,
            args=(int(fan_in), float(fan_out), float(keeper_width),
                  shifts),
            tag=f"sample{k}")
        for k, shifts in enumerate(sample_shifts)
    ]
    results = run_jobs(tasks, group="fig09-mc")
    delays = np.array([r.value[0] for r in results if r.ok])
    margins = np.array([r.value[1] for r in results if r.ok])
    if delays.size == 0:
        raise RuntimeError(
            "every Monte-Carlo sample failed to solve; see "
            "`python -m repro stats`")

    # Deterministic corners for comparison.
    corner = corner_shifts(model, weak=gate.pulldowns,
                           leaky=[gate.keeper])
    with applied_shifts(gate.circuit, corner):
        delay_corner = gate_metrics.measure_worst_case_delay(gate)
    nm_corner = gate_metrics.noise_margin_static(
        gate, pd_shift=model.corner_shift(gate.pulldowns[0], "leaky"))

    rows = [
        ("delay [ps]", float(delays.mean() * 1e12),
         float(delays.std() * 1e12), float(delays.max() * 1e12),
         delay_corner * 1e12),
        ("noise margin [V]", float(margins.mean()),
         float(margins.std()), float(margins.min()), nm_corner),
    ]
    return ExperimentResult(
        experiment_id="Ext-Fig9-MC",
        title=f"Monte-Carlo vs 3-sigma corners "
              f"(sigma/mu = {sigma_rel * 100:.0f}%, {samples} samples)",
        columns=["metric", "mean", "std", "sample worst",
                 "3-sigma corner"],
        rows=rows,
        notes="The corner values must bound the sampled worst cases "
              "(delay corner above the slowest sample; NM corner below "
              "the smallest sampled margin)." + failure_note(results))


if __name__ == "__main__":
    print(run())

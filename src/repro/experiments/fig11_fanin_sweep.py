"""Figure 11: dynamic OR power and delay versus fan-in — the crossover.

The paper's headline dynamic-logic result: the CMOS gate's keeper must
grow with fan-in to hold its noise margin against the summed pull-down
leakage, so its delay and contention energy grow steeply, and beyond
fan-in ~12 the hybrid gate wins on *both* delay and switching power.
Normalisation per the paper: to the hybrid gate at the smallest fan-in.

The sweep points are independent solves, so they are dispatched through
:mod:`repro.engine` — parallel across worker processes when the engine
is configured with ``jobs > 1``, cached across runs when a cache
directory is set, and degrading failed points to NaN rows instead of
aborting.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.runner import Job, run_jobs
from repro.experiments.common import (
    failure_note,
    gate_point_task,
    values_or_nans,
)
from repro.experiments.result import ExperimentResult


def run(fan_ins: Sequence[int] = (4, 8, 12, 16),
        fan_out: float = 3.0) -> ExperimentResult:
    """Sweep fan-in for both gate styles at fixed fan-out."""
    points = [(style, int(fi)) for style in ("cmos", "hybrid")
              for fi in fan_ins]
    tasks = [Job(gate_point_task, args=(style, fi, float(fan_out)),
                 tag=f"{style}/fi{fi}") for style, fi in points]
    results = run_jobs(tasks, group="fig11")

    raw = {}
    for (style, fi), result in zip(points, results):
        delay, p_sw, _e_sw, keeper = values_or_nans(result, 4)
        raw[(style, fi)] = (delay, p_sw, keeper)

    d_ref, p_ref, _ = raw[("hybrid", fan_ins[0])]
    rows = []
    for style in ("cmos", "hybrid"):
        for fi in fan_ins:
            delay, p_sw, keeper = raw[(style, fi)]
            rows.append((style, fi, delay * 1e12, delay / d_ref,
                         p_sw * 1e6, p_sw / p_ref, keeper * 1e6))

    crossover = None
    for fi in fan_ins:
        if raw[("hybrid", fi)][0] < raw[("cmos", fi)][0]:
            crossover = fi
            break
    notes = (f"Hybrid wins both delay and power from fan-in "
             f"{crossover} onward (paper: beyond 12)."
             if crossover else
             "No delay crossover within the swept fan-in range.")
    return ExperimentResult(
        experiment_id="Figure11",
        title=f"Dynamic OR vs fan-in at fan-out {fan_out:g} "
              f"(CMOS vs hybrid)",
        columns=["style", "fan_in", "delay [ps]", "norm delay",
                 "P_sw [uW]", "norm P_sw", "keeper [um]"],
        rows=rows,
        notes=notes + failure_note(results))


if __name__ == "__main__":
    print(run())

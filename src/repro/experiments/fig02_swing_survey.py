"""Figure 2: minimum subthreshold swing across device families.

Beyond reproducing the survey values, this experiment *measures* the
swing of the library's own device models — the bulk-CMOS compact model
must sit above the 60 mV/decade thermionic limit, and the
electromechanical NEMFET must switch far below it (the paper quotes the
2 mV/decade measurement of ref [12]).
"""

from __future__ import annotations

import numpy as np

from repro import Circuit, dc_sweep
from repro.data.swing_survey import SWING_SURVEY, thermionic_limit
from repro.devices.calibration import extract_swing
from repro.devices.mosfet import mosfet_current, nmos_90nm
from repro.devices.nemfet import Nemfet, nemfet_90nm
from repro.experiments.result import ExperimentResult


def measured_cmos_swing(vdd: float = 1.2, points: int = 241) -> float:
    """Swing of the library's bulk NMOS model [mV/decade]."""
    params = nmos_90nm()
    vg = np.linspace(0.0, vdd, points)
    i_d = np.array([mosfet_current(params, 1e-6, v, vdd, 0.0)[0]
                    for v in vg])
    return extract_swing(vg, i_d, i_min=1e-12, i_max=1e-5) * 1e3


def measured_nemfet_swing(vdd: float = 1.2, step: float = 1e-3) -> float:
    """Swing of the electromechanical NEMFET around pull-in [mV/decade]."""
    params = nemfet_90nm()
    circuit = Circuit("nemfet_swing")
    circuit.vsource("VG", "g", "0", 0.0)
    circuit.vsource("VD", "d", "0", vdd)
    circuit.add(Nemfet("M1", "d", "g", "0", params, width=1e-6))
    v_pi = params.pull_in_voltage
    vg = np.arange(max(0.0, v_pi - 0.06), v_pi + 0.04, step)
    sweep = dc_sweep(circuit, "VG", vg)
    i_d = np.abs(sweep.branch_current("VD"))
    return extract_swing(vg, i_d, i_min=1e-12, i_max=1e-4) * 1e3


def run(include_measured: bool = True) -> ExperimentResult:
    """Survey table plus the library's own measured swings."""
    rows = [(e.device, e.swing_mv_per_dec, e.reference, "survey")
            for e in SWING_SURVEY]
    if include_measured:
        rows.append(("repro bulk CMOS model", measured_cmos_swing(),
                     "this library", "measured"))
        rows.append(("repro NEMFET model", measured_nemfet_swing(),
                     "this library", "measured"))
    return ExperimentResult(
        experiment_id="Figure2",
        title="Minimum subthreshold swing by device family",
        columns=["device", "S [mV/dec]", "source", "kind"],
        rows=rows,
        notes=f"Thermionic limit: {thermionic_limit():.1f} mV/dec. The "
              f"NEMFET's measured swing is grid-limited — arbitrarily "
              f"steep at the pull-in instability.")


if __name__ == "__main__":
    print(run())

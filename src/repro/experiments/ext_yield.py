"""Extension: statistical read stability and array yield.

Section 5.1 motivates low-leakage cells partly by read-failure
probability.  Monte-Carlo Vth sampling of each Figure 13 cell exposes a
property the paper's corner-style analysis cannot show: the hybrid
cell's SNM *spread* is far tighter than the CMOS cells' because four of
its six transistors are NEMS devices whose pull-in is set by geometry,
not threshold voltage — read stability becomes variation-immune where
it matters.

Shift maps are drawn up-front from the seeded generator (so the
population is identical at any worker count), then sharded into engine
jobs.  Each shard traces every sample's butterfly curves in one
lock-step stacked VTC sweep
(:func:`~repro.library.yield_analysis.snm_for_shift_batch`), replacing
the old scalar sweep per (variant, sample) pair with a batched-LU
solve per (variant, shard).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note
from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec
from repro.library.yield_analysis import (
    draw_shift_samples,
    estimate_from_samples,
    snm_for_shift_batch,
)


def run(variants: Sequence[str] = ("conventional", "dual_vt",
                                   "hybrid"),
        sigma_rel: float = 0.08, samples: int = 10,
        array_bits: int = 2 ** 20, seed: int = 11,
        shard_size: int = 64) -> ExperimentResult:
    """Sampled SNM statistics and array yield per cell variant."""
    tasks = []
    owners = []
    for variant in variants:
        spec = SramSpec(variant=variant)
        maps = draw_shift_samples(spec, sigma_rel, samples, seed)
        for j in range(0, len(maps), shard_size):
            shard = maps[j:j + shard_size]
            tasks.append(Job(snm_for_shift_batch, args=(spec, shard),
                             tag=f"{variant}/s{j}-{j + len(shard) - 1}"))
            owners.append(variant)
    results = run_jobs(tasks, group="yield")

    rows = []
    estimates = {}
    for variant in variants:
        parts = [np.asarray(r.value, dtype=float)
                 for r, owner in zip(results, owners)
                 if owner == variant and r.ok]
        values = (np.concatenate(parts) if parts else np.zeros(0))
        values = values[np.isfinite(values)]
        est = estimate_from_samples(variant, values)
        estimates[variant] = est
        rows.append((variant, est.snm_mean * 1e3,
                     est.snm_sigma * 1e3,
                     est.cell_failure_probability,
                     est.array_yield(array_bits)))
    note = (f"{samples} samples per variant at sigma(Vth)/mu = "
            f"{sigma_rel * 100:.0f}%.")
    if "hybrid" in estimates and "conventional" in estimates:
        ratio = (estimates["conventional"].snm_sigma
                 / max(estimates["hybrid"].snm_sigma, 1e-12))
        note += (f" The hybrid cell's SNM spread is {ratio:.1f}x "
                 f"tighter: its NEMS devices carry no threshold "
                 f"variation (pull-in is geometric), so read stability "
                 f"is variation-immune — invisible to corner-only "
                 f"analyses like the paper's.")
    return ExperimentResult(
        experiment_id="Ext-Yield",
        title=f"Read-stability yield ({array_bits / 2 ** 20:.0f} Mb "
              f"array)",
        columns=["variant", "SNM mean [mV]", "SNM sigma [mV]",
                 "cell P(fail)", "array yield"],
        rows=rows,
        notes=note + failure_note(results))


if __name__ == "__main__":
    print(run())

"""Extension: statistical read stability and array yield.

Section 5.1 motivates low-leakage cells partly by read-failure
probability.  Monte-Carlo Vth sampling of each Figure 13 cell exposes a
property the paper's corner-style analysis cannot show: the hybrid
cell's SNM *spread* is far tighter than the CMOS cells' because four of
its six transistors are NEMS devices whose pull-in is set by geometry,
not threshold voltage — read stability becomes variation-immune where
it matters.

The per-sample SNM evaluations are independent butterfly solves, so
every (variant, sample) pair is one engine job: shift maps are drawn
up-front from the seeded generator, making the sampled population
identical at any worker count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note
from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec
from repro.library.yield_analysis import (
    draw_shift_samples,
    estimate_from_samples,
    snm_for_shifts,
)


def run(variants: Sequence[str] = ("conventional", "dual_vt",
                                   "hybrid"),
        sigma_rel: float = 0.08, samples: int = 10,
        array_bits: int = 2 ** 20, seed: int = 11) -> ExperimentResult:
    """Sampled SNM statistics and array yield per cell variant."""
    tasks = []
    owners = []
    for variant in variants:
        spec = SramSpec(variant=variant)
        for k, shifts in enumerate(
                draw_shift_samples(spec, sigma_rel, samples, seed)):
            tasks.append(Job(snm_for_shifts, args=(spec, shifts),
                             tag=f"{variant}/s{k}"))
            owners.append(variant)
    results = run_jobs(tasks, group="yield")

    rows = []
    estimates = {}
    for variant in variants:
        values = np.array([r.value for r, owner in zip(results, owners)
                           if owner == variant and r.ok])
        est = estimate_from_samples(variant, values)
        estimates[variant] = est
        rows.append((variant, est.snm_mean * 1e3,
                     est.snm_sigma * 1e3,
                     est.cell_failure_probability,
                     est.array_yield(array_bits)))
    note = (f"{samples} samples per variant at sigma(Vth)/mu = "
            f"{sigma_rel * 100:.0f}%.")
    if "hybrid" in estimates and "conventional" in estimates:
        ratio = (estimates["conventional"].snm_sigma
                 / max(estimates["hybrid"].snm_sigma, 1e-12))
        note += (f" The hybrid cell's SNM spread is {ratio:.1f}x "
                 f"tighter: its NEMS devices carry no threshold "
                 f"variation (pull-in is geometric), so read stability "
                 f"is variation-immune — invisible to corner-only "
                 f"analyses like the paper's.")
    return ExperimentResult(
        experiment_id="Ext-Yield",
        title=f"Read-stability yield ({array_bits / 2 ** 20:.0f} Mb "
              f"array)",
        columns=["variant", "SNM mean [mV]", "SNM sigma [mV]",
                 "cell P(fail)", "array yield"],
        rows=rows,
        notes=note + failure_note(results))


if __name__ == "__main__":
    print(run())

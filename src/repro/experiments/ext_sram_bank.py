"""Extension: hierarchical banked SRAM — read, write, retention.

The paper's SRAM analysis (Figures 14-15) stops at one bitcell plus a
lumped column; this experiment characterises a full bank access per
style (CMOS, hybrid, NEMS-sleep-gated) at memory-compiler scale.  The
bank netlist is trimmed to the accessed column plus exact aggregate
loading (:mod:`repro.library.sram_bank`), so a 256x256 bank solves in
seconds on the sparse backend while preserving the flat netlist's
behaviour to machine precision — the guarantee the parity suite
(``tests/test_sram_bank_parity.py``) enforces.

Metrics per style: read delay (wordline edge to 100 mV bitline
split), sense and replica timing, write delay (full-rail flip of the
probed cell — for the hybrid style this includes the NEMS actuation
cost), post-read precharge energy, and standby retention leakage (the
``nems_sleep`` style releases its footer beam).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.runner import Job, run_jobs
from repro.experiments.common import failure_note
from repro.experiments.result import ExperimentResult
from repro.library.sram_bank import STYLES, BankSpec
from repro.library.sram_bank_metrics import (
    measure_bank_read,
    measure_bank_retention,
    measure_bank_write,
)


def bank_read_task(style: str, rows: int, cols: int, mux_ratio: int,
                   address: Optional[int], trim: bool
                   ) -> Tuple[float, ...]:
    """Engine task: one read access.  Pure in its arguments."""
    spec = BankSpec(rows=rows, cols=cols, mux_ratio=mux_ratio,
                    style=style)
    m = measure_bank_read(spec, address, trim=trim)
    return (m.read_delay, m.sense_delay, m.replica_delay,
            m.bitline_swing, m.precharge_energy, m.access_energy,
            float(m.n_unknowns))


def bank_write_task(style: str, rows: int, cols: int, mux_ratio: int,
                    address: Optional[int], trim: bool
                    ) -> Tuple[float, ...]:
    """Engine task: one write access (probed cell flips 0 -> 1)."""
    spec = BankSpec(rows=rows, cols=cols, mux_ratio=mux_ratio,
                    style=style)
    m = measure_bank_write(spec, address, trim=trim)
    return (m.write_delay, m.bitline_swing, m.access_energy,
            float(m.n_unknowns))


def bank_retention_task(style: str, rows: int, cols: int,
                        mux_ratio: int, trim: bool
                        ) -> Tuple[float, ...]:
    """Engine task: standby retention leakage of the bank."""
    spec = BankSpec(rows=rows, cols=cols, mux_ratio=mux_ratio,
                    style=style)
    m = measure_bank_retention(spec, trim=trim)
    return (m.leakage_power, float(m.n_unknowns))


def validate(params: Dict[str, Any]) -> List[str]:
    """Registry validation hook: reject malformed bank parameters.

    Runs at submission time (CLI and HTTP service), so a bad geometry
    becomes a 400 response instead of a failed job deep in a worker.
    Cross-field checks (divisibility, address range) fall back to the
    ``run()`` defaults for parameters the submission leaves out.
    """
    import inspect

    defaults = {name: p.default for name, p
                in inspect.signature(run).parameters.items()}
    errors = []
    styles = params.get("styles")
    if styles is not None:
        if isinstance(styles, str) or not isinstance(
                styles, (list, tuple)):
            errors.append("styles must be a list of bank styles")
            styles = ()
        for style in styles:
            if style not in STYLES:
                errors.append(f"unknown bank style '{style}' "
                              f"(choose from {STYLES})")

    def intval(key, minimum):
        value = params.get(key, defaults[key])
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < minimum:
            errors.append(f"{key} must be an integer >= {minimum}, "
                          f"got {value!r}")
            return None
        return value

    rows = intval("rows", 1)
    mux = intval("mux_ratio", 1)
    cols = intval("cols", 1)
    if cols is not None and mux is not None and cols % mux != 0:
        errors.append(f"cols ({cols}) must be a multiple of "
                      f"mux_ratio ({mux})")
    address = params.get("address")
    if address is not None:
        if not isinstance(address, int) or isinstance(address, bool):
            errors.append(f"address must be an integer, "
                          f"got {address!r}")
        elif rows is not None and mux is not None \
                and not 0 <= address < rows * mux:
            errors.append(f"address {address} out of range "
                          f"[0, {rows * mux})")
    for key in ("trim", "include_retention"):
        value = params.get(key)
        if value is not None and not isinstance(value, bool):
            errors.append(f"{key} must be a boolean, got {value!r}")
    return errors


def run(styles: Sequence[str] = STYLES, rows: int = 256,
        cols: int = 256, mux_ratio: int = 8,
        address: Optional[int] = None, trim: bool = True,
        include_retention: bool = True) -> ExperimentResult:
    """Bank access metrics per style at one geometry."""
    tasks = []
    for style in styles:
        tasks.append(Job(bank_read_task,
                         args=(style, rows, cols, mux_ratio, address,
                               trim),
                         tag=f"{style}/read"))
        tasks.append(Job(bank_write_task,
                         args=(style, rows, cols, mux_ratio, address,
                               trim),
                         tag=f"{style}/write"))
        if include_retention:
            tasks.append(Job(bank_retention_task,
                             args=(style, rows, cols, mux_ratio, trim),
                             tag=f"{style}/retention"))
    results = run_jobs(tasks, group="sram-bank")

    by_tag = {r.tag: r for r in results}
    rows_out = []
    nan = math.nan
    for style in styles:
        read = by_tag[f"{style}/read"]
        if read.ok:
            (t_rd, t_sa, t_rep, swing, e_pre, e_acc, n) = read.value
        else:
            t_rd = t_sa = t_rep = swing = e_pre = e_acc = n = nan
        rows_out.append((style, "read", t_rd * 1e12, swing,
                         e_acc * 1e12, nan, n))
        write = by_tag[f"{style}/write"]
        if write.ok:
            t_wr, w_swing, w_energy, w_n = write.value
        else:
            t_wr = w_swing = w_energy = w_n = nan
        rows_out.append((style, "write", t_wr * 1e12, w_swing,
                         w_energy * 1e12, nan, w_n))
        if include_retention:
            ret = by_tag[f"{style}/retention"]
            power, r_n = (ret.value if ret.ok else (nan, nan))
            rows_out.append((style, "retention", nan, nan, nan,
                             power * 1e6, r_n))

    notes = (f"{rows}x{cols} bank, mux {mux_ratio}:1, "
             f"{'trimmed' if trim else 'flat'} netlist "
             f"(trimming is exact — parity-tested against the flat "
             f"build at small sizes).  Read delay is wordline edge to "
             f"100 mV bitline split; write delay is the full-rail "
             f"flip of the probed cell, which for the hybrid style "
             f"includes the NEMS beam actuation; retention releases "
             f"the nems_sleep footer.")
    return ExperimentResult(
        experiment_id="Ext-SRAM-Bank",
        title=f"Hierarchical {rows}x{cols} SRAM bank access "
              f"metrics",
        columns=["style", "mode", "delay [ps]", "bitline swing [V]",
                 "access energy [pJ]", "leakage [uW]", "n unknowns"],
        rows=rows_out,
        notes=notes + failure_note(results))


if __name__ == "__main__":
    print(run())

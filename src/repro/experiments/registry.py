"""The experiment registry: every runnable experiment, by name.

One table maps an experiment id to its module and quick-mode kwargs.
The CLI lists and runs from it; the HTTP service
(:mod:`repro.service`) validates and dispatches submitted jobs
against it.  Anything registered here is submittable by name plus a
JSON dictionary of ``run()`` keyword arguments.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Any, Dict, List, Optional, Tuple

#: experiment id -> (module, quick-mode kwargs).  Quick mode trades
#: sweep density for runtime; both modes run real simulations.
REGISTRY: Dict[str, Tuple[str, dict]] = {
    "table1": ("repro.experiments.table1_devices", {}),
    "fig01": ("repro.experiments.fig01_itrs_trend", {}),
    "fig02": ("repro.experiments.fig02_swing_survey", {}),
    "fig09": ("repro.experiments.fig09_keeper_tradeoff",
              {"sigma_levels": (0.05, 0.15),
               "keeper_widths": (0.8e-6, 2e-6, 4e-6)}),
    "fig10": ("repro.experiments.fig10_fanout_sweep",
              {"fan_outs": (1, 3, 5)}),
    "fig11": ("repro.experiments.fig11_fanin_sweep",
              {"fan_ins": (4, 8, 12)}),
    "fig12": ("repro.experiments.fig12_pdp",
              {"loads": (1.0,), "activities": (0.0, 0.5, 1.0)}),
    "fig14": ("repro.experiments.fig14_butterfly", {"points": 81}),
    "fig15": ("repro.experiments.fig15_sram_comparison", {}),
    "fig17": ("repro.experiments.fig17_sleep_transistors",
              {"area_units": (1, 4, 16, 64), "delay_budget": None}),
    "resonator": ("repro.experiments.ext_resonator",
                  {"biases": (0.15, 0.40), "points": 61}),
    "cond-keeper": ("repro.experiments.ext_conditional_keeper", {}),
    "fig09-mc": ("repro.experiments.ext_fig09_montecarlo",
                 {"samples": 32}),
    "temperature": ("repro.experiments.ext_temperature", {}),
    "sram-array": ("repro.experiments.ext_sram_array",
                   {"row_counts": (32, 128),
                    "include_nems_access": False}),
    "sram-bank": ("repro.experiments.ext_sram_bank",
                  {"styles": ("cmos", "nems_sleep"), "rows": 16,
                   "cols": 8, "mux_ratio": 2}),
    "power-breakdown": ("repro.experiments.ext_power_breakdown",
                        {"fan_in": 4, "fan_out": 1.0}),
    "write": ("repro.experiments.ext_write_analysis",
              {"variants": ("conventional", "hybrid")}),
    "yield": ("repro.experiments.ext_yield",
              {"variants": ("conventional", "hybrid"), "samples": 5}),
    "corners": ("repro.experiments.ext_corners",
                {"corners": ("TT", "SS", "FF")}),
    "static": ("repro.experiments.ext_static_comparison",
               {"fan_ins": (4, 12)}),
    "thermal": ("repro.experiments.ext_thermal_runaway",
                {"r_thermals": (20.0, 600.0)}),
    "domino": ("repro.experiments.ext_domino",
               {"stage_counts": (1, 2)}),
}

#: Descriptions shown by `list` and `GET /api/experiments`.
DESCRIPTIONS = {
    "table1": "device I_ON/I_OFF calibration (Table 1)",
    "fig01": "ITRS scaling vs subthreshold leakage (Figure 1)",
    "fig02": "subthreshold swing survey (Figure 2)",
    "fig09": "keeper delay/noise-margin trade-off (Figure 9)",
    "fig10": "8-input OR vs fan-out (Figure 10)",
    "fig11": "OR vs fan-in: the crossover (Figure 11)",
    "fig12": "power-delay product vs activity (Figure 12)",
    "fig14": "SRAM butterfly curves / SNM (Figure 14)",
    "fig15": "SRAM latency & leakage comparison (Figure 15)",
    "fig17": "sleep transistor Ron/Ioff vs area (Figure 17)",
    "resonator": "[ext] RSG-MOSFET resonator (ref [22])",
    "cond-keeper": "[ext] conditional keeper at iso-NM (ref [24])",
    "fig09-mc": "[ext] Monte-Carlo check of the Figure 9 corners",
    "temperature": "[ext] leakage advantage vs temperature",
    "sram-array": "[ext] array-height reads + NEMS-access ablation",
    "sram-bank": "[ext] trimmed banked arrays: read/write/retention",
    "power-breakdown": "[ext] itemised switching-energy audit",
    "write": "[ext] SRAM write margin & latency (hidden hybrid costs)",
    "yield": "[ext] Monte-Carlo read-stability yield per cell",
    "corners": "[ext] global corners: hybrid NM is corner-invariant",
    "static": "[ext] static vs dynamic vs hybrid OR (Section 4.1)",
    "thermal": "[ext] leakage-temperature feedback & runaway (ref [5])",
    "domino": "[ext] pipeline latency: the per-stage mechanical cost",
}


def experiment_ids() -> List[str]:
    """Every registered experiment id, in registry order."""
    return list(REGISTRY)


def _run_signature(exp_id: str) -> inspect.Signature:
    module_name, _ = REGISTRY[exp_id]
    module = importlib.import_module(module_name)
    return inspect.signature(module.run)


def experiment_parameters(exp_id: str) -> Dict[str, Any]:
    """The ``run()`` parameters of one experiment with their defaults.

    Values are the defaults rendered via ``repr`` so the mapping is
    JSON-safe (tuples, floats and ``None`` all survive); parameters
    without a default map to ``"<required>"``.
    """
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment '{exp_id}' "
            f"(known: {', '.join(sorted(REGISTRY))})")
    params = {}
    for name, parameter in _run_signature(exp_id).parameters.items():
        if parameter.kind in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD):
            continue
        params[name] = ("<required>"
                        if parameter.default is inspect.Parameter.empty
                        else repr(parameter.default))
    return params


def validate_params(exp_id: str, params: Optional[Dict[str, Any]],
                    quick: bool = False) -> List[str]:
    """Problems with a submitted parameter dictionary (empty = valid).

    Checks the experiment exists and every key names a real ``run()``
    keyword — catching typos at submission time rather than as a
    ``TypeError`` deep inside a worker.  Experiments that define a
    module-level ``validate(params)`` hook get it called on top, so
    value-level problems (a bad bank geometry, an out-of-range
    address) are also rejected at submission time.  The hook sees the
    *effective* parameters — with ``quick`` the registry's quick-mode
    kwargs underlie the submission, exactly as ``run_experiment``
    merges them — so cross-field checks judge what would actually run.
    """
    if exp_id not in REGISTRY:
        return [f"unknown experiment '{exp_id}' "
                f"(known: {', '.join(sorted(REGISTRY))})"]
    errors = []
    if params:
        if not isinstance(params, dict):
            return [f"params must be an object, got "
                    f"{type(params).__name__}"]
        valid = set(_run_signature(exp_id).parameters)
        for key in params:
            if key not in valid:
                errors.append(
                    f"experiment '{exp_id}' has no parameter '{key}' "
                    f"(has: {', '.join(sorted(valid))})")
        if not errors:
            module_name, quick_kwargs = REGISTRY[exp_id]
            module = importlib.import_module(module_name)
            hook = getattr(module, "validate", None)
            if hook is not None:
                effective = dict(quick_kwargs) if quick else {}
                effective.update(params)
                errors.extend(hook(effective))
    return errors


def run_experiment(exp_id: str, quick: bool = False,
                   params: Optional[Dict[str, Any]] = None):
    """Run one experiment by id and return its ExperimentResult.

    ``quick`` starts from the registry's reduced-sweep kwargs;
    ``params`` overrides on top (so a submitted job can request quick
    mode and still pin, say, a specific sample count).
    """
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment '{exp_id}' "
            f"(known: {', '.join(sorted(REGISTRY))})")
    module_name, quick_kwargs = REGISTRY[exp_id]
    module = importlib.import_module(module_name)
    kwargs = dict(quick_kwargs) if quick else {}
    if params:
        kwargs.update(params)
    return module.run(**kwargs)

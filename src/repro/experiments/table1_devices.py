"""Table 1: I_ON and I_OFF of the calibrated NEMS and CMOS devices."""

from __future__ import annotations

from repro.devices.mosfet import (
    NMOS_ION_TARGET,
    NMOS_IOFF_TARGET,
    PMOS_ION_TARGET,
    PMOS_IOFF_TARGET,
    VDD_90NM,
    mosfet_current,
    nmos_90nm,
    pmos_90nm,
)
from repro.devices.nemfet import NEMS_P_ION_TARGET, nemfet_90nm, pemfet_90nm
from repro.experiments.result import ExperimentResult

#: Table 1 anchors for the n-channel NEMS device [A/m].
NEMS_ION_TARGET = 330e-6 / 1e-6
NEMS_IOFF_TARGET = 110e-12 / 1e-6


def run(vdd: float = VDD_90NM) -> ExperimentResult:
    """Measure device anchor currents and compare to Table 1."""
    rows = []

    def add_mosfet(name, params, ion_t, ioff_t):
        pol = params.polarity
        i_on = abs(mosfet_current(params, 1e-6, pol * vdd, pol * vdd,
                                  0.0)[0])
        i_off = abs(mosfet_current(params, 1e-6, 0.0, pol * vdd, 0.0)[0])
        rows.append((name, i_on * 1e6, ion_t * 1e-6 * 1e6,
                     i_off * 1e9, ioff_t * 1e-6 * 1e9,
                     abs(i_on * 1e6 - ion_t) / ion_t * 100))

    def add_nemfet(name, params, ion_t, ioff_t):
        pol = params.polarity
        i_on = abs(params.static_current(1e-6, pol * vdd, pol * vdd,
                                         0.0, branch="down"))
        i_off = abs(params.static_current(1e-6, 0.0, pol * vdd, 0.0,
                                          branch="up"))
        rows.append((name, i_on * 1e6, ion_t * 1e-6 * 1e6,
                     i_off * 1e9, ioff_t * 1e-6 * 1e9,
                     abs(i_on * 1e6 - ion_t) / ion_t * 100))

    add_mosfet("CMOS NMOS", nmos_90nm(), NMOS_ION_TARGET,
               NMOS_IOFF_TARGET)
    add_mosfet("CMOS PMOS", pmos_90nm(), PMOS_ION_TARGET,
               PMOS_IOFF_TARGET)
    add_nemfet("NEMS (n)", nemfet_90nm(), NEMS_ION_TARGET,
               NEMS_IOFF_TARGET)
    add_nemfet("NEMS (p)", pemfet_90nm(), NEMS_P_ION_TARGET,
               NEMS_IOFF_TARGET)

    return ExperimentResult(
        experiment_id="Table1",
        title="Device I_ON / I_OFF calibration (per um of width)",
        columns=["device", "I_on [uA/um]", "target", "I_off [nA/um]",
                 "target_off", "on_err [%]"],
        rows=rows,
        notes="Paper anchors: CMOS 1110 uA/um & 50 nA/um; "
              "NEMS 330 uA/um & 110 pA/um (= 0.11 nA/um).")


if __name__ == "__main__":
    print(run())

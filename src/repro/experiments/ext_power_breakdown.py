"""Extension: where does the dynamic OR gate's switching energy go?

Audits one complete switching event element by element, separating the
keeper's contention energy (which the hybrid gate eliminates) from the
pull-down, precharge and inverter energies both styles share — the
mechanism behind Figure 10's power gap, made explicit.
"""

from __future__ import annotations

from repro.analysis.audit import PowerAudit
from repro.analysis.transient import transient
from repro.experiments.common import build_sized_gate
from repro.experiments.result import ExperimentResult


def _audit_gate(style: str, fan_in: int, fan_out: float):
    gate = build_sized_gate(fan_in, fan_out, style)
    spec = gate.spec
    gate.set_inputs_domino([0])
    tstop = spec.period + spec.t_precharge
    result = transient(gate.circuit, tstop, 4e-12)
    gate.set_inputs_static([0.0] * spec.fan_in)
    audit = PowerAudit(result)
    window = (spec.t_precharge, tstop)

    def group(prefixes):
        return sum(audit.energy(e.name, *window)
                   for e in gate.circuit.elements
                   if any(e.name.startswith(p) for p in prefixes))

    return {
        "keeper": group(("MKEEP",)),
        "pulldown": group(("MPD", "MNEM", "MFOOT")),
        "precharge": group(("MPRE",)),
        "inverter": group(("MINVP", "MINVN")),
        "supply": -group(("VDD",)),
    }


def run(fan_in: int = 8, fan_out: float = 3.0) -> ExperimentResult:
    """Energy-per-event breakdown, CMOS vs hybrid."""
    rows = []
    breakdown = {}
    for style in ("cmos", "hybrid"):
        parts = _audit_gate(style, fan_in, fan_out)
        breakdown[style] = parts
        for component, energy in parts.items():
            rows.append((style, component, energy * 1e15))
    keeper_share = (breakdown["cmos"]["keeper"]
                    / max(breakdown["cmos"]["supply"], 1e-30))
    return ExperimentResult(
        experiment_id="Ext-PowerBreakdown",
        title=f"Switching-event energy breakdown "
              f"({fan_in}-input OR, fan-out {fan_out:g})",
        columns=["style", "component", "energy [fJ]"],
        rows=rows,
        notes=f"Keeper contention dissipates "
              f"{keeper_share * 100:.0f}% of the CMOS gate's supply "
              f"energy per event; the hybrid gate's minimum keeper "
              f"makes that term negligible — the Figure 10 power gap, "
              f"itemised.",
        extras={"breakdown": breakdown})


if __name__ == "__main__":
    print(run())

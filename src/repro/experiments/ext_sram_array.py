"""Extension: array-level SRAM reads and the NEMS-access ablation.

Two measurable claims from the paper's Section 5 prose:

* 5.1 — read latency degrades with array height because unselected
  cells' OFF access transistors leak the bitlines and the column
  capacitance grows;
* 5.3 — "replacing access transistors (AR and AL) with NEMS devices is
  not a good idea because of their huge impact on latency": every read
  would wait for the access beams to actuate mechanically.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.result import ExperimentResult
from repro.library.sram import SramSpec
from repro.library.sram_array import ArraySpec, array_read_latency, nems_access_spec
from repro.library.sram_metrics import read_latency


def run(row_counts: Sequence[int] = (32, 128, 256),
        include_nems_access: bool = True) -> ExperimentResult:
    """Latency vs column height, plus the rejected NEMS-access cell."""
    rows = []
    for variant in ("conventional", "hybrid"):
        for n in row_counts:
            spec = ArraySpec(cell=SramSpec(variant=variant), rows=n)
            lat = array_read_latency(spec)
            rows.append((variant, n, lat * 1e12))
    notes = ("Latency grows with column height (capacitance + leakage) "
             "for both cell types; the hybrid penalty stays a constant "
             "factor.")
    if include_nems_access:
        lat_conv = read_latency(SramSpec())
        lat_nems_acc = read_latency(nems_access_spec())
        rows.append(("nems-access (rejected)", 1,
                     lat_nems_acc * 1e12))
        notes += (f" NEMS access transistors would cost "
                  f"{lat_nems_acc / lat_conv:.0f}x the conventional "
                  f"read latency (mechanical actuation per read) — "
                  f"the paper's Section 5.3 rejection, quantified.")
    return ExperimentResult(
        experiment_id="Ext-SRAM-Array",
        title="Array-level read latency and the NEMS-access ablation",
        columns=["cell", "rows per bitline", "read latency [ps]"],
        rows=rows,
        notes=notes)


if __name__ == "__main__":
    print(run())

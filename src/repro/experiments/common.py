"""Shared methodology constants and builders for the gate experiments.

The paper compares gates under the variation-aware keeper-sizing
methodology of ref [24]: the CMOS keeper is the smallest device meeting
a noise-margin target at the worst-case (3-sigma leaky pull-down)
process corner, while the hybrid gate keeps a minimum-size keeper
because its released NEMFETs cut the leakage path.  These constants pin
the default operating point used by Figures 10-12.
"""

from __future__ import annotations

from repro.library.dynamic_logic import DynamicOrSpec, DynamicOrGate, build_dynamic_or
from repro.library import gate_metrics

#: Noise-margin target for keeper sizing [V].
NM_TARGET = 0.24

#: Threshold-voltage variation level sigma(Vth)/mu(Vth) used for sizing.
SIGMA_REL = 0.10

#: Corner depth in sigmas.
N_SIGMA = 3.0


def leaky_corner_shift(spec: DynamicOrSpec) -> float:
    """Vth shift of the leaky pull-down corner [V] (negative)."""
    return -N_SIGMA * SIGMA_REL * spec.nmos.vth0


def build_sized_gate(fan_in: int, fan_out: float, style: str,
                     nm_target: float = NM_TARGET) -> DynamicOrGate:
    """Build a gate with the default keeper-sizing methodology applied."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style=style)
    gate = build_dynamic_or(spec)
    if style == "cmos":
        width = gate_metrics.size_keeper_for_noise_margin(
            gate, nm_target, pd_shift=leaky_corner_shift(spec))
        gate.set_keeper_width(width)
    return gate

"""Shared methodology constants and builders for the gate experiments.

The paper compares gates under the variation-aware keeper-sizing
methodology of ref [24]: the CMOS keeper is the smallest device meeting
a noise-margin target at the worst-case (3-sigma leaky pull-down)
process corner, while the hybrid gate keeps a minimum-size keeper
because its released NEMFETs cut the leakage path.  These constants pin
the default operating point used by Figures 10-12.

This module also hosts the *task functions* the fan-out-heavy
experiments route through :mod:`repro.engine`: pure, module-level
callables whose arguments fully determine their result, so they can be
dispatched to worker processes and content-addressed in the result
cache.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.engine.runner import JobResult
from repro.library.dynamic_logic import DynamicOrSpec, DynamicOrGate, build_dynamic_or
from repro.library import gate_metrics

#: Noise-margin target for keeper sizing [V].
NM_TARGET = 0.24

#: Threshold-voltage variation level sigma(Vth)/mu(Vth) used for sizing.
SIGMA_REL = 0.10

#: Corner depth in sigmas.
N_SIGMA = 3.0


def leaky_corner_shift(spec: DynamicOrSpec) -> float:
    """Vth shift of the leaky pull-down corner [V] (negative)."""
    return -N_SIGMA * SIGMA_REL * spec.nmos.vth0


def build_sized_gate(fan_in: int, fan_out: float, style: str,
                     nm_target: float = NM_TARGET) -> DynamicOrGate:
    """Build a gate with the default keeper-sizing methodology applied."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style=style)
    gate = build_dynamic_or(spec)
    if style == "cmos":
        width = gate_metrics.size_keeper_for_noise_margin(
            gate, nm_target, pd_shift=leaky_corner_shift(spec))
        gate.set_keeper_width(width)
    return gate


def gate_point_task(style: str, fan_in: int, fan_out: float,
                    nm_target: float = NM_TARGET
                    ) -> Tuple[float, float, float, float]:
    """Characterise one sized gate: the engine task behind Figs 10/11.

    Returns ``(delay, switching_power, switching_energy,
    keeper_width)``.  Pure: builds the gate from its coordinates, so
    identical arguments always produce the identical result — the
    property the result cache keys on.
    """
    gate = build_sized_gate(fan_in, float(fan_out), style, nm_target)
    # Cross-style comparison: both styles integrated an order tighter
    # than the single-style protocols, so the few-percent CMOS-hybrid
    # gaps survive the integration error.
    options = gate_metrics.comparison_transient_options(style)
    delay = gate_metrics.measure_worst_case_delay(gate, options=options)
    p_sw, e_sw = gate_metrics.measure_switching_power(gate,
                                                      options=options)
    return (delay, p_sw, e_sw, gate.keeper_width)


def values_or_nans(result: JobResult, count: int) -> Tuple:
    """A result's value tuple, or NaNs of the same arity on failure.

    Failed sweep points degrade to NaN rows instead of aborting the
    experiment; the failure itself is recorded in the run telemetry.
    """
    if result.ok:
        return tuple(result.value)
    return (math.nan,) * count


def failure_note(results: Sequence[JobResult]) -> str:
    """Sweep-note suffix describing failed points, or an empty string."""
    failed: List[str] = [r.tag or f"#{r.index}" for r in results
                         if not r.ok]
    if not failed:
        return ""
    return (f" WARNING: {len(failed)} point(s) failed to solve and are "
            f"reported as NaN ({', '.join(failed)}); see `python -m "
            f"repro stats` for the failure records.")

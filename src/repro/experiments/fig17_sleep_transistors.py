"""Figure 17: sleep-transistor ON resistance and OFF current vs area.

Device-level sweep of NEMS against CMOS sleep switches across area
(normalised to a W/L = 5 CMOS device at 90 nm, per the paper's caption),
plus the block-level corollary: a NEMS switch sized for a small delay
budget still keeps its orders-of-magnitude leakage advantage.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.result import ExperimentResult
from repro.library import sleep


def run(area_units: Sequence[float] = (1, 2, 4, 8, 16, 32, 64),
        delay_budget: Optional[float] = 0.05) -> ExperimentResult:
    """Figure 17 sweep plus the sized-up block-level check.

    ``delay_budget`` is the allowed fractional block-delay degradation
    for the sizing demonstration (``None`` skips the block-level part,
    which needs several transient runs).
    """
    rows = []
    for a, r_cmos, i_cmos, r_nems, i_nems in \
            sleep.sweep_sleep_devices(list(area_units)):
        rows.append((a, r_cmos, i_cmos * 1e9, r_nems, i_nems * 1e9,
                     r_nems - r_cmos, i_cmos / i_nems))

    notes = ("NEMS OFF current sits ~3 orders of magnitude below CMOS "
             "at every area; the absolute ON-resistance gap shrinks "
             "as 1/area (paper: 'difference ... becomes minimal').")
    extras = {}
    if delay_budget is not None:
        area_needed = sleep.size_for_delay_budget("nems", delay_budget)
        spec = sleep.GatedBlockSpec(kind="nems", area_units=area_needed)
        leak_nems = sleep.block_sleep_leakage(spec)
        cmos_area = sleep.size_for_delay_budget("cmos", delay_budget)
        leak_cmos = sleep.block_sleep_leakage(
            sleep.GatedBlockSpec(kind="cmos", area_units=cmos_area))
        extras["sizing"] = {
            "delay_budget": delay_budget,
            "nems_area_units": area_needed,
            "cmos_area_units": cmos_area,
            "nems_sleep_leakage_w": leak_nems,
            "cmos_sleep_leakage_w": leak_cmos,
        }
        notes += (f" Sized for {delay_budget * 100:.0f}% delay "
                  f"degradation: NEMS needs {area_needed:.1f} area "
                  f"units and leaks {leak_cmos / leak_nems:.0f}x less "
                  f"than the equivalent CMOS switch "
                  f"({cmos_area:.1f} units).")
    return ExperimentResult(
        experiment_id="Figure17",
        title="Sleep transistors: Ron & Ioff vs area "
              "(normalised to W/L=5 CMOS)",
        columns=["area [units]", "Ron CMOS [ohm]", "Ioff CMOS [nA]",
                 "Ron NEMS [ohm]", "Ioff NEMS [nA]", "dRon [ohm]",
                 "Ioff ratio"],
        rows=rows,
        notes=notes,
        extras=extras)


if __name__ == "__main__":
    print(run())

"""Extension: the biased SG-MOSFET as a resonator (paper ref [22]).

Abele et al. demonstrated an "Ultra-Low Voltage MEMS Resonator Based on
RSG-MOSFET" — the same suspended-gate structure the paper's NEMFET
uses, operated below pull-in as a high-Q electromechanical resonator.
Because this library solves the beam dynamics inside the MNA system,
the behaviour falls out of a plain AC analysis: the beam-position
spectrum shows the mechanical resonance, and increasing the gate bias
softens the effective spring (electrostatic negative stiffness),
tuning the resonant frequency downward toward pull-in.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import Circuit
from repro.analysis.ac import ac_analysis
from repro.devices.nemfet import Nemfet, nemfet_90nm
from repro.experiments.result import ExperimentResult


def run(biases: Sequence[float] = (0.15, 0.30, 0.40, 0.43),
        points: int = 121) -> ExperimentResult:
    """Peak frequency and gain of the beam response vs gate bias."""
    params = nemfet_90nm()
    f0 = params.resonant_frequency
    freqs = np.geomspace(f0 / 10, 3 * f0, points)

    rows = []
    for bias in biases:
        circuit = Circuit(f"resonator_{bias}")
        vg = circuit.vsource("VG", "g", "0", float(bias))
        vg.ac = 1.0
        circuit.vsource("VD", "d", "0", 0.1)
        circuit.add(Nemfet("M1", "d", "g", "0", params, 1e-6))
        res = ac_analysis(circuit, freqs)
        u = np.abs(res.state("M1", "position"))
        i_peak = int(np.argmax(u))
        f_analytic = params.softened_frequency(float(bias))
        rows.append((float(bias), freqs[i_peak] / 1e6,
                     f_analytic / 1e6, freqs[i_peak] / f0,
                     float(u[i_peak] / u[0])))
    return ExperimentResult(
        experiment_id="Ext-Resonator",
        title="RSG-MOSFET resonator: bias-tuned mechanical resonance",
        columns=["V_G bias [V]", "f_peak [MHz]", "analytic [MHz]",
                 "f_peak / f0", "peak gain"],
        rows=rows,
        notes=f"Unbiased mechanical f0 = {f0 / 1e6:.0f} MHz; the "
              f"electrostatic negative stiffness softens the spring as "
              f"bias approaches pull-in "
              f"({params.pull_in_voltage:.2f} V), tuning the resonance "
              f"down — the ref [22] behaviour.")


if __name__ == "__main__":
    print(run())

"""Extension: the leakage-temperature feedback loop (paper ref [5]).

Solves the self-consistent junction temperature ``T = T_amb + R_th P(T)``
for an all-CMOS logic block and for the same block behind NEMS power
gating, across packaging quality (thermal resistance).  As the package
worsens, the CMOS block's leakage-temperature feedback first inflates
its idle power super-linearly and then loses its fixed point entirely
(thermal runaway); the gated block barely couples because only its
ungated control fraction is thermal.
"""

from __future__ import annotations

from typing import Sequence

from repro import thermal
from repro.experiments.result import ExperimentResult


def run(r_thermals: Sequence[float] = (20.0, 100.0, 300.0, 600.0),
        total_width: float = 2.0,
        t_ambient: float = 318.15) -> ExperimentResult:
    """Operating temperature/power vs package thermal resistance."""
    rows = []
    for r_th in r_thermals:
        env = thermal.ThermalEnvironment(t_ambient=t_ambient,
                                         r_thermal=r_th)
        results = thermal.thermal_comparison(total_width=total_width,
                                             env=env)
        for label in ("cmos", "hybrid"):
            point = results[label]
            if point is None:
                rows.append((label, r_th, float("nan"), float("nan"),
                             "RUNAWAY"))
            else:
                t, p = point
                rows.append((label, r_th, t - 273.15, p * 1e3, "ok"))
    return ExperimentResult(
        experiment_id="Ext-Thermal",
        title="Self-consistent junction temperature vs package R_th",
        columns=["block", "R_th [K/W]", "T [C]", "P_leak [mW]",
                 "status"],
        rows=rows,
        notes="The all-CMOS block's leakage-temperature loop loses its "
              "fixed point at high thermal resistance (runaway); the "
              "NEMS-gated block's loop stays weak because only the "
              "ungated 5% of the width couples thermally — ref [5]'s "
              "coupling, defused by the hybrid technology.")


if __name__ == "__main__":
    print(run())

"""Figure 1: CMOS scaling trend and its impact on subthreshold leakage."""

from __future__ import annotations

from repro.data.itrs import ITRS_NODES, leakage_growth_per_generation, subthreshold_leakage_trend
from repro.experiments.result import ExperimentResult


def run() -> ExperimentResult:
    """Regenerate the Vdd/Vth scaling rows and the leakage explosion."""
    rows = []
    trend = subthreshold_leakage_trend()
    base = trend[0][3]
    for (node, vdd, vth, ioff), meta in zip(trend, ITRS_NODES):
        rows.append((node, meta.year, vdd, vth, ioff * 1e9,
                     ioff / base))
    growth = leakage_growth_per_generation()
    return ExperimentResult(
        experiment_id="Figure1",
        title="ITRS scaling vs subthreshold leakage",
        columns=["node [nm]", "year", "Vdd [V]", "Vth [V]",
                 "I_off [nA/um]", "vs 250nm"],
        rows=rows,
        notes=f"Leakage grows ~{growth:.1f}x per generation as Vth "
              f"scales with Vdd — the paper's motivation for "
              f"sub-60mV/dec switches.")


if __name__ == "__main__":
    print(run())

"""Extension: static vs dynamic vs hybrid wide-OR gates.

Section 4.1's premise, measured: "dynamic implementation of wide fan-in
OR-gates offers low latency, because it does not require a PMOS
transistor stack unlike their static CMOS counterparts."  The static
gate's worst-case edge charges its internal node through a series stack
of fan-in PMOS devices, so its delay grows steeply with fan-in; the
dynamic gates replace the stack with a single precharge device.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import build_sized_gate
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.static_logic import StaticOrSpec, build_static_or


def run(fan_ins: Sequence[int] = (4, 8, 12),
        fan_out: float = 3.0) -> ExperimentResult:
    """Worst-case delay and leakage across the three OR styles."""
    rows = []
    for fi in fan_ins:
        static = build_static_or(StaticOrSpec(fan_in=fi,
                                              fan_out=fan_out))
        d_static = static.worst_case_delay()
        p_static = static.leakage_power()
        rows.append(("static", fi, d_static * 1e12,
                     p_static * 1e9))
        for style in ("cmos", "hybrid"):
            gate = build_sized_gate(fi, fan_out, style)
            delay = gate_metrics.measure_worst_case_delay(gate)
            leak = gate_metrics.measure_leakage_power(gate)
            label = ("dynamic" if style == "cmos"
                     else "hybrid dynamic")
            rows.append((label, fi, delay * 1e12, leak * 1e9))

    d_static_wide = [r[2] for r in rows
                     if r[0] == "static" and r[1] == fan_ins[-1]][0]
    d_static_narrow = [r[2] for r in rows
                       if r[0] == "static" and r[1] == fan_ins[0]][0]
    return ExperimentResult(
        experiment_id="Ext-Static",
        title="Static vs dynamic vs hybrid OR across fan-in",
        columns=["style", "fan_in", "worst delay [ps]",
                 "leakage [nW]"],
        rows=rows,
        notes=f"The static gate's PMOS stack scales its worst-case "
              f"delay {d_static_wide / d_static_narrow:.1f}x from "
              f"fan-in {fan_ins[0]} to {fan_ins[-1]} — the Section "
              f"4.1 premise that motivates dynamic logic in the first "
              f"place.  The hybrid gate then removes the dynamic "
              f"gate's leakage and keeper costs.")


if __name__ == "__main__":
    print(run())

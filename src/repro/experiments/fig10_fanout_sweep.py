"""Figure 10: 8-input dynamic OR — switching power and worst-case delay
versus fan-out, CMOS vs hybrid NEMS-CMOS.

Normalisation follows the paper's caption: switching power is normalised
to the hybrid gate at fan-out 1; delay to the CMOS gate at fan-out 1.

Sweep points run through the :mod:`repro.engine` job runner: parallel
when configured, cached across runs, failed points degraded to NaN.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.runner import Job, run_jobs
from repro.experiments.common import (
    failure_note,
    gate_point_task,
    values_or_nans,
)
from repro.experiments.result import ExperimentResult


def run(fan_in: int = 8,
        fan_outs: Sequence[float] = (1, 2, 3, 4, 5)) -> ExperimentResult:
    """Sweep output loading for both gate styles."""
    points = [(style, float(fo)) for style in ("cmos", "hybrid")
              for fo in fan_outs]
    tasks = [Job(gate_point_task, args=(style, int(fan_in), fo),
                 tag=f"{style}/fo{fo:g}") for style, fo in points]
    results = run_jobs(tasks, group="fig10")

    raw = {}
    for (style, fo), result in zip(points, results):
        delay, p_sw, e_sw, keeper = values_or_nans(result, 4)
        raw[(style, fo)] = (delay, p_sw, e_sw, keeper)

    p_ref = raw[("hybrid", float(fan_outs[0]))][1]
    d_ref = raw[("cmos", float(fan_outs[0]))][0]
    rows = []
    for style in ("cmos", "hybrid"):
        for fo in fan_outs:
            delay, p_sw, e_sw, keeper = raw[(style, float(fo))]
            rows.append((style, fo, delay * 1e12, delay / d_ref,
                         p_sw * 1e6, p_sw / p_ref, keeper * 1e6))
    savings = [
        1.0 - raw[("hybrid", float(fo))][1] / raw[("cmos", float(fo))][1]
        for fo in fan_outs
    ]
    fo_lo, fo_hi = float(fan_outs[0]), float(fan_outs[-1])
    notes = (
        f"Hybrid switching-power saving across fan-out: "
        f"{min(savings) * 100:.0f}%..{max(savings) * 100:.0f}% "
        f"(paper: 60-80%); hybrid delay penalty "
        f"{(raw[('hybrid', fo_lo)][0] / raw[('cmos', fo_lo)][0] - 1) * 100:.0f}%"
        f"..{(raw[('hybrid', fo_hi)][0] / raw[('cmos', fo_hi)][0] - 1) * 100:.0f}% "
        f"(paper: 10-20%).")
    return ExperimentResult(
        experiment_id="Figure10",
        title=f"{fan_in}-input dynamic OR vs fan-out (CMOS vs hybrid)",
        columns=["style", "fan_out", "delay [ps]", "norm delay",
                 "P_sw [uW]", "norm P_sw", "keeper [um]"],
        rows=rows,
        notes=notes + failure_note(results))


if __name__ == "__main__":
    print(run())

"""Figure 10: 8-input dynamic OR — switching power and worst-case delay
versus fan-out, CMOS vs hybrid NEMS-CMOS.

Normalisation follows the paper's caption: switching power is normalised
to the hybrid gate at fan-out 1; delay to the CMOS gate at fan-out 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import build_sized_gate
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics


def run(fan_in: int = 8,
        fan_outs: Sequence[float] = (1, 2, 3, 4, 5)) -> ExperimentResult:
    """Sweep output loading for both gate styles."""
    raw = {}
    for style in ("cmos", "hybrid"):
        for fo in fan_outs:
            gate = build_sized_gate(fan_in, fo, style)
            delay = gate_metrics.measure_worst_case_delay(gate)
            p_sw, e_sw = gate_metrics.measure_switching_power(gate)
            raw[(style, fo)] = (delay, p_sw, e_sw,
                                gate.keeper_width)

    p_ref = raw[("hybrid", fan_outs[0])][1]
    d_ref = raw[("cmos", fan_outs[0])][0]
    rows = []
    for style in ("cmos", "hybrid"):
        for fo in fan_outs:
            delay, p_sw, e_sw, keeper = raw[(style, fo)]
            rows.append((style, fo, delay * 1e12, delay / d_ref,
                         p_sw * 1e6, p_sw / p_ref, keeper * 1e6))
    savings = [
        1.0 - raw[("hybrid", fo)][1] / raw[("cmos", fo)][1]
        for fo in fan_outs
    ]
    return ExperimentResult(
        experiment_id="Figure10",
        title=f"{fan_in}-input dynamic OR vs fan-out (CMOS vs hybrid)",
        columns=["style", "fan_out", "delay [ps]", "norm delay",
                 "P_sw [uW]", "norm P_sw", "keeper [um]"],
        rows=rows,
        notes=f"Hybrid switching-power saving across fan-out: "
              f"{min(savings) * 100:.0f}%..{max(savings) * 100:.0f}% "
              f"(paper: 60-80%); hybrid delay penalty "
              f"{(raw[('hybrid', fan_outs[0])][0] / raw[('cmos', fan_outs[0])][0] - 1) * 100:.0f}%"
              f"..{(raw[('hybrid', fan_outs[-1])][0] / raw[('cmos', fan_outs[-1])][0] - 1) * 100:.0f}% "
              f"(paper: 10-20%).")


if __name__ == "__main__":
    print(run())

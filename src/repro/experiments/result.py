"""Uniform container for experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class ExperimentResult:
    """Tabular result of one table/figure reproduction.

    ``rows`` are tuples aligned with ``columns``.  ``extras`` carries
    non-tabular artifacts (e.g. butterfly curve arrays) keyed by name.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Tuple]
    notes: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def column(self, name: str) -> List:
        """All values of one named column."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column '{name}' in {self.experiment_id} "
                f"(has {self.columns})") from None
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria) -> List[Tuple]:
        """Rows whose named columns equal the given values."""
        indices = {self.columns.index(k): v for k, v in criteria.items()}
        return [r for r in self.rows
                if all(r[i] == v for i, v in indices.items())]

    def to_text(self) -> str:
        """Render as an aligned text table (the paper's rows/series)."""
        def fmt(value) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                magnitude = abs(value)
                if magnitude >= 1e4 or magnitude < 1e-2:
                    return f"{value:.3e}"
                return f"{value:.4g}"
            return str(value)

        header = [self.columns]
        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(r[i]) for r in header + body)
                  for i in range(len(self.columns))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"-- {self.notes}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (header row + data rows).

        Fields containing commas or quotes are quoted per RFC 4180, so
        the output loads into any spreadsheet or ``csv.reader``.
        """
        def escape(value) -> str:
            text = repr(value) if isinstance(value, float) else str(value)
            if any(ch in text for ch in ",\"\n"):
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(escape(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(escape(v) for v in row))
        return "\n".join(lines) + "\n"

    def save_csv(self, path: str) -> None:
        """Write the CSV rendering to a file."""
        with open(path, "w") as handle:
            handle.write(self.to_csv())

    def __str__(self) -> str:
        return self.to_text()

"""Figure 12: power-delay product vs activity factor (Equation 1).

``P.D = ((1 - a) P_L + a P_S) D`` combines idle leakage and switching
power with the worst-case delay.  The paper plots the metric for CMOS
and hybrid 8-input OR gates at output loads C_L = 1 and C_L = 3 fan-out
units, over the full activity range — the hybrid gate wins everywhere,
and overwhelmingly so at low activity where its near-zero leakage
dominates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.common import build_sized_gate
from repro.experiments.result import ExperimentResult
from repro.library import gate_metrics
from repro.library.metrics import power_delay_product


def run(fan_in: int = 8, loads: Sequence[float] = (1.0, 3.0),
        activities: Sequence[float] = tuple(np.linspace(0, 1, 11))
        ) -> ExperimentResult:
    """Characterise both styles at each load, then apply Equation 1."""
    characterised = {}
    for style in ("cmos", "hybrid"):
        for load in loads:
            gate = build_sized_gate(fan_in, load, style)
            delay = gate_metrics.measure_worst_case_delay(gate)
            p_sw, _ = gate_metrics.measure_switching_power(gate)
            p_leak = gate_metrics.measure_leakage_power(gate)
            characterised[(style, load)] = (delay, p_sw, p_leak)

    rows = []
    for style in ("cmos", "hybrid"):
        for load in loads:
            delay, p_sw, p_leak = characterised[(style, load)]
            for a in activities:
                pdp = power_delay_product(p_leak, p_sw, delay, float(a))
                rows.append((style, load, float(a), pdp * 1e18))

    # Summary: hybrid-vs-CMOS PDP ratio extremes per load.
    ratios = []
    for load in loads:
        dc, pc, lc = characterised[("cmos", load)]
        dh, ph, lh = characterised[("hybrid", load)]
        for a in activities:
            pdp_c = power_delay_product(lc, pc, dc, float(a))
            pdp_h = power_delay_product(lh, ph, dh, float(a))
            if pdp_c > 0:
                ratios.append(pdp_h / pdp_c)
    return ExperimentResult(
        experiment_id="Figure12",
        title=f"Power-delay product vs activity factor "
              f"({fan_in}-input OR)",
        columns=["style", "C_L [FO]", "activity", "PDP [aJ]"],
        rows=rows,
        notes=f"Hybrid/CMOS PDP ratio ranges "
              f"{min(ratios):.3f}..{max(ratios):.3f} — the hybrid "
              f"architecture surpasses CMOS across the whole activity "
              f"range (paper: 'strongly surpasses ... in both cases').",
        extras={"characterised": characterised})


if __name__ == "__main__":
    print(run())

"""Experiment modules regenerating every table and figure of the paper.

Each module exposes ``run(...) -> ExperimentResult`` with parameters
defaulting to benchmark-friendly (but real) settings, and prints the
same rows/series the paper reports when executed as a script.

=========  ================================================  =========================
ID         Paper artifact                                    Module
=========  ================================================  =========================
Table 1    device I_ON / I_OFF calibration                   ``table1_devices``
Figure 1   ITRS scaling vs subthreshold leakage              ``fig01_itrs_trend``
Figure 2   subthreshold swing survey                         ``fig02_swing_survey``
Figure 9   keeper delay / noise-margin trade-off             ``fig09_keeper_tradeoff``
Figure 10  8-input OR power & delay vs fan-out               ``fig10_fanout_sweep``
Figure 11  OR power & delay vs fan-in (crossover)            ``fig11_fanin_sweep``
Figure 12  power-delay product vs activity factor            ``fig12_pdp``
Figure 14  SRAM butterfly curves / SNM                       ``fig14_butterfly``
Figure 15  SRAM read latency & standby leakage               ``fig15_sram_comparison``
Figure 17  sleep transistor Ron / Ioff vs area               ``fig17_sleep_transistors``
=========  ================================================  =========================

Extensions beyond the paper's figures (claims from its prose and
references, plus robustness analyses its methodology could not show):

======================  ==================================================
Module                  Claim exercised
======================  ==================================================
``ext_resonator``       ref [22]: bias-tunable RSG-MOSFET resonance
``ext_conditional_keeper``  ref [24]: split keeper breaks the Fig 9 trade-off
``ext_fig09_montecarlo``    corners bracket Monte-Carlo populations
``ext_temperature``     Section 1: leakage-temperature coupling
``ext_sram_array``      Section 5.1 bitline leakage; 5.3 NEMS-access veto
``ext_power_breakdown``     Fig 10's power gap = keeper contention
``ext_write_analysis``  SRAM write margin/latency (hybrid hidden costs)
``ext_yield``           statistical read-stability yield per cell
``ext_corners``         hybrid noise margin is global-corner invariant
======================  ==================================================
"""

from repro.experiments.result import ExperimentResult

__all__ = ["ExperimentResult"]

"""Thread-local ambient-state primitives.

Several session-wide policies influence or observe a solve without
appearing in any function signature: the solve-observer and
option-transform stacks, the linear-solver backend policy, the default
transient step control, the stacked-ensemble toggle and the
device-evaluation policy.  Historically these were process-global
module variables — correct for a single-threaded CLI run, silently
corrupting for the job service, where two worker threads would merge
each other's Newton telemetry and apply each other's solver-option
transforms.

This module provides the two storage primitives every ambient policy
now uses:

* :class:`ThreadLocalStack` — an ordered per-thread registration stack
  (observers, transforms).  Exit pops by *identity from the tail*, so
  re-entering a block with the same object unwinds correctly, and
  removal is idempotent so a cancel-during-cleanup path can never turn
  a double-removal into a worker crash.
* :class:`ThreadLocalValue` — a single per-thread policy value over a
  shared process-wide default.  ``get`` returns the thread's value if
  one was ever set in this thread, else the default; ``set`` installs
  a thread-local value and returns the previously *effective* one, so
  the usual ``previous = set(x) ... set(previous)`` restore idiom
  keeps working unchanged.

Threads therefore start from the shared defaults and diverge only
through their own ``set_*`` calls or ``*_override`` context managers.
Cross-thread (and cross-process) propagation is explicit: see
:class:`repro.analysis.context.AmbientContext`, which snapshots every
policy in the submitting thread and reinstalls it inside engine pool
workers.

This module intentionally has no ``repro`` imports — it sits below
both the circuit and analysis layers.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, List, Optional, Tuple


class ThreadLocalStack:
    """Ordered, per-thread stack of registrations.

    Iteration yields the current thread's items in push order (a
    snapshot, so observers may deregister themselves mid-notification).
    """

    def __init__(self, name: str):
        self._name = name
        self._local = threading.local()

    def _items(self, create: bool = False) -> Optional[List[Any]]:
        items = getattr(self._local, "items", None)
        if items is None and create:
            items = self._local.items = []
        return items

    def push(self, item: Any) -> None:
        """Register ``item`` at the tail of this thread's stack."""
        self._items(create=True).append(item)

    def pop(self, item: Any) -> bool:
        """Unregister the *most recent* matching registration.

        The search walks from the tail and prefers identity over
        equality, so pushing the same object twice (a re-entered
        context manager) unwinds innermost-first instead of dropping
        the outer registration and reordering the composition.  Equal
        but non-identical callables (e.g. two ``obj.method`` bound
        methods) still match, which the add/remove function pairs rely
        on.  A missing item is a no-op: teardown paths may run twice.
        """
        items = self._items()
        if not items:
            return False
        equal_at = -1
        for i in range(len(items) - 1, -1, -1):
            if items[i] is item:
                del items[i]
                return True
            if equal_at < 0 and items[i] == item:
                equal_at = i
        if equal_at >= 0:
            del items[equal_at]
            return True
        return False

    def snapshot(self) -> Tuple[Any, ...]:
        """This thread's registrations, oldest first."""
        items = self._items()
        return tuple(items) if items else ()

    def replace(self, items: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Swap this thread's whole stack; returns the previous one."""
        previous = self.snapshot()
        self._local.items = list(items)
        return previous

    def __iter__(self) -> Iterator[Any]:
        return iter(self.snapshot())

    def __len__(self) -> int:
        items = self._items()
        return len(items) if items else 0

    def __bool__(self) -> bool:
        return bool(self._items())

    def __repr__(self) -> str:
        return (f"ThreadLocalStack({self._name!r}, "
                f"depth={len(self)})")


class ThreadLocalValue:
    """One ambient policy value: a per-thread override of a default.

    The default is shared by every thread that never called
    :meth:`set`; a thread's own value shadows it from the first ``set``
    on.  The default itself is fixed at construction — mutating policy
    is always a per-thread act, which is exactly what makes concurrent
    service workers safe.
    """

    def __init__(self, name: str, default: Any):
        self._name = name
        self._default = default
        self._local = threading.local()

    @property
    def default(self) -> Any:
        return self._default

    def get(self) -> Any:
        """This thread's value, or the shared default."""
        return getattr(self._local, "value", self._default)

    def set(self, value: Any) -> Any:
        """Install a thread-local value; returns the one it shadows."""
        previous = self.get()
        self._local.value = value
        return previous

    def __repr__(self) -> str:
        return f"ThreadLocalValue({self._name!r}, {self.get()!r})"

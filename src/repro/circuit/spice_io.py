"""SPICE netlist export.

Writes a :class:`~repro.circuit.netlist.Circuit` as a SPICE deck so
designs built with this library can be cross-checked in an external
simulator.  Coverage:

* passives and independent sources export exactly (including PULSE /
  PWL / SIN waveforms);
* MOSFETs export as LEVEL=1 ``.model`` cards matched to the compact
  model's threshold and drive anchor — a documented approximation
  (LEVEL=1 has square-law saturation; our model is an alpha-power law),
  adequate for topology and functionality checks, not for re-running
  the paper's numbers;
* electromechanical devices (NEMFET, relay, macro-model) export as
  ``X`` subcircuit instances with a parameter comment block; their
  ``.subckt`` bodies must come from the target simulator's
  electromechanical library (or the Figure 6(b) RLC macro built from
  the emitted parameters).
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, is_ground
from repro.circuit.waveforms import DC, PiecewiseLinear, Pulse, Sine, Waveform
from repro.devices.mosfet import Mosfet
from repro.devices.nemfet import Nemfet
from repro.errors import NetlistError


def _node(name: str) -> str:
    return "0" if is_ground(name) else name


def _waveform_card(waveform: Waveform) -> str:
    if isinstance(waveform, DC):
        return f"DC {waveform.level:g}"
    if isinstance(waveform, Pulse):
        per = "" if waveform.per is None else f" {waveform.per:g}"
        return (f"PULSE({waveform.v1:g} {waveform.v2:g} "
                f"{waveform.td:g} {waveform.tr:g} {waveform.tf:g} "
                f"{waveform.pw:g}{per})")
    if isinstance(waveform, PiecewiseLinear):
        pts = " ".join(f"{t:g} {v:g}" for t, v in waveform.points)
        return f"PWL({pts})"
    if isinstance(waveform, Sine):
        return (f"SIN({waveform.offset:g} {waveform.amplitude:g} "
                f"{waveform.freq:g} {waveform.delay:g})")
    raise NetlistError(
        f"cannot export waveform type {type(waveform).__name__}")


def _mosfet_model_card(name: str, mosfet: Mosfet) -> str:
    p = mosfet._effective_params()
    mtype = "NMOS" if p.polarity > 0 else "PMOS"
    # LEVEL=1: match VTO and the saturation drive at Vgs = Vds = 1.2 V.
    vdd = 1.2
    vov = max(vdd - p.vth0, 0.1)
    from repro.devices.mosfet import mosfet_current
    i_on = abs(mosfet_current(p, 1.0, p.polarity * vdd,
                              p.polarity * vdd, 0.0)[0])
    kp = 2.0 * i_on * p.l_channel / (vov * vov)
    return (f".model {name} {mtype} (LEVEL=1 VTO={p.polarity * p.vth0:g}"
            f" KP={kp:g} LAMBDA={p.lambda_clm:g})")


def to_spice(circuit: Circuit) -> str:
    """Render the circuit as a SPICE deck string."""
    lines: List[str] = [f"* {circuit.title}",
                        "* exported by repro (hybrid NEMS-CMOS "
                        "reproduction library)"]
    models: Dict[tuple, str] = {}
    model_cards: List[str] = []
    subckts_needed = set()

    for e in circuit.elements:
        nodes = [_node(n) for n in e.nodes]
        if isinstance(e, Resistor):
            lines.append(f"R{e.name} {nodes[0]} {nodes[1]} "
                         f"{e.resistance:g}")
        elif isinstance(e, Capacitor):
            lines.append(f"C{e.name} {nodes[0]} {nodes[1]} "
                         f"{e.capacitance:g}")
        elif isinstance(e, Inductor):
            lines.append(f"L{e.name} {nodes[0]} {nodes[1]} "
                         f"{e.inductance:g}")
        elif isinstance(e, VoltageSource):
            card = _waveform_card(e.waveform)
            ac = f" AC {e.ac:g}" if getattr(e, "ac", 0.0) else ""
            lines.append(f"V{e.name} {nodes[0]} {nodes[1]} {card}{ac}")
        elif isinstance(e, CurrentSource):
            card = _waveform_card(e.waveform)
            lines.append(f"I{e.name} {nodes[0]} {nodes[1]} {card}")
        elif isinstance(e, Mosfet):
            key = (id(e.params), round(e.vth_shift, 9))
            model_name = models.get(key)
            if model_name is None:
                model_name = f"M{'N' if e.params.polarity > 0 else 'P'}" \
                             f"{len(models)}"
                models[key] = model_name
                model_cards.append(_mosfet_model_card(model_name, e))
            lines.append(f"M{e.name} {nodes[0]} {nodes[1]} {nodes[2]} "
                         f"{nodes[2]} {model_name} W={e.width:g} "
                         f"L={e.params.l_channel:g}")
        elif isinstance(e, Nemfet):
            subckts_needed.add("NEMFET")
            p = e.params
            lines.append(f"X{e.name} {nodes[0]} {nodes[1]} {nodes[2]} "
                         f"NEMFET W={e.width:g}")
            lines.append(f"* ^ k={p.stiffness:g} m={p.mass:g} "
                         f"Q={p.q_factor:g} gap={p.gap:g} "
                         f"area={p.area:g} Vpi={p.pull_in_voltage:.3f}")
        else:
            subckts_needed.add(type(e).__name__.upper())
            lines.append(f"X{e.name} {' '.join(nodes)} "
                         f"{type(e).__name__.upper()}")

    lines.extend(model_cards)
    for name in sorted(subckts_needed):
        lines.append(f"* requires external .subckt {name} "
                     f"(electromechanical model)")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_spice(circuit: Circuit, path: str) -> None:
    """Write the SPICE deck to a file."""
    with open(path, "w") as handle:
        handle.write(to_spice(circuit))

"""SPICE netlist import (the subset :mod:`repro.circuit.spice_io` emits).

Parses decks containing passives, independent sources (DC / PULSE /
PWL / SIN, with optional ``AC`` magnitude) and comments into a
:class:`~repro.circuit.netlist.Circuit`.  Together with ``to_spice``
this gives a round-trip for the linear/source part of any circuit —
device cards (``M``/``X``) are *not* reconstructed, because compact
models cannot be recovered from LEVEL=1 approximations; the parser
reports them so callers can decide.

Intended uses: importing small reference circuits from the literature,
and verifying that exported decks are syntactically self-consistent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import DC, PiecewiseLinear, Pulse, Sine
from repro.errors import NetlistError

#: SPICE engineering suffixes (longest match first: MEG before M).
_SUFFIXES = (
    ("MEG", 1e6), ("T", 1e12), ("G", 1e9), ("K", 1e3), ("M", 1e-3),
    ("U", 1e-6), ("N", 1e-9), ("P", 1e-12), ("F", 1e-15),
)


def parse_number(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix/unit."""
    text = token.strip().upper()
    match = re.match(r"^([+-]?[0-9]*\.?[0-9]+(?:E[+-]?[0-9]+)?)"
                     r"([A-Z]*)$", text)
    if not match:
        raise NetlistError(f"cannot parse SPICE number '{token}'")
    value = float(match.group(1))
    tail = match.group(2)
    for suffix, scale in _SUFFIXES:
        if tail.startswith(suffix):
            return value * scale
    return value


def _parse_waveform(tokens: List[str]):
    """Parse source value tokens into a waveform + optional AC."""
    joined = " ".join(tokens)
    ac = 0.0
    ac_match = re.search(r"\bAC\s+(\S+)", joined, re.IGNORECASE)
    if ac_match:
        ac = parse_number(ac_match.group(1))
        joined = joined[:ac_match.start()] + joined[ac_match.end():]
    joined = joined.strip()

    func = re.match(r"^(PULSE|PWL|SIN)\s*\((.*)\)\s*$", joined,
                    re.IGNORECASE)
    if func:
        name = func.group(1).upper()
        args = [parse_number(t) for t in func.group(2).split()]
        if name == "PULSE":
            if len(args) < 6:
                raise NetlistError("PULSE needs at least 6 arguments")
            v1, v2, td, tr, tf, pw = args[:6]
            per = args[6] if len(args) > 6 else None
            return Pulse(v1, v2, td=td, tr=tr, tf=tf, pw=pw,
                         per=per), ac
        if name == "PWL":
            if len(args) % 2:
                raise NetlistError("PWL needs time/value pairs")
            points = list(zip(args[0::2], args[1::2]))
            return PiecewiseLinear(points), ac
        offset, amplitude, freq = args[:3]
        delay = args[3] if len(args) > 3 else 0.0
        return Sine(offset, amplitude, freq, delay), ac

    dc_match = re.match(r"^(?:DC\s+)?(\S+)$", joined, re.IGNORECASE)
    if dc_match and dc_match.group(1):
        return DC(parse_number(dc_match.group(1))), ac
    if not joined:
        return DC(0.0), ac
    raise NetlistError(f"cannot parse source value '{joined}'")


@dataclass
class ParseReport:
    """What the parser did and what it had to skip."""

    circuit: Circuit
    skipped_cards: List[str] = field(default_factory=list)
    model_cards: List[str] = field(default_factory=list)


def from_spice(deck: str) -> ParseReport:
    """Parse a SPICE deck string (see module docstring for coverage)."""
    lines: List[str] = []
    for raw in deck.splitlines():
        line = raw.rstrip()
        if line.startswith("+") and lines:
            lines[-1] += " " + line[1:]
        else:
            lines.append(line)

    title = "imported"
    if lines and lines[0].startswith("*"):
        title = lines[0].lstrip("* ").strip() or title
    circuit = Circuit(title)
    report = ParseReport(circuit)

    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        upper = stripped.upper()
        if upper.startswith(".END"):
            break
        if upper.startswith(".MODEL"):
            report.model_cards.append(stripped)
            continue
        if upper.startswith("."):
            report.skipped_cards.append(stripped)
            continue

        tokens = stripped.split()
        kind = tokens[0][0].upper()
        # Keep the full card name: "V1" and "R1" must not collide.
        name = tokens[0]
        try:
            if kind == "R":
                circuit.resistor(name, tokens[1], tokens[2],
                                 parse_number(tokens[3]))
            elif kind == "C":
                circuit.capacitor(name, tokens[1], tokens[2],
                                  parse_number(tokens[3]))
            elif kind == "L":
                circuit.inductor(name, tokens[1], tokens[2],
                                 parse_number(tokens[3]))
            elif kind == "V":
                waveform, ac = _parse_waveform(tokens[3:])
                src = circuit.vsource(name, tokens[1], tokens[2],
                                      waveform)
                src.ac = ac
            elif kind == "I":
                waveform, _ = _parse_waveform(tokens[3:])
                circuit.isource(name, tokens[1], tokens[2], waveform)
            else:
                report.skipped_cards.append(stripped)
        except (IndexError, NetlistError) as err:
            raise NetlistError(
                f"cannot parse card '{stripped}': {err}") from err
    return report

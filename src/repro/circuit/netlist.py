"""Circuit container: a named collection of elements over a node graph."""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.errors import NetlistError

#: Node names treated as the global ground reference.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss!"})


def is_ground(node: str) -> bool:
    """Whether ``node`` names the global ground reference."""
    return node in GROUND_NAMES


class Circuit:
    """A flat netlist of elements.

    Nodes are created implicitly the first time an element references
    them.  Element names must be unique.  Convenience factory methods are
    provided for the common passive elements and sources; device models
    (MOSFETs, NEMFETs, relays) are added with :meth:`add`.

    Example
    -------
    >>> c = Circuit("rc")
    >>> c.vsource("VIN", "in", "0", 1.0)
    >>> c.resistor("R1", "in", "out", 1e3)
    >>> c.capacitor("C1", "out", "0", 1e-12)
    """

    def __init__(self, title: str = "untitled"):
        self.title = title
        self.elements: List[Element] = []
        self._by_name: Dict[str, Element] = {}
        # Non-ground nodes in first-reference order.
        self._node_order: List[str] = []
        self._node_set: set = set()

    # -- construction -------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Register an element; returns it for chaining."""
        if element.name in self._by_name:
            raise NetlistError(
                f"duplicate element name '{element.name}' in circuit "
                f"'{self.title}'")
        for node in element.nodes:
            self._register_node(node)
        self.elements.append(element)
        self._by_name[element.name] = element
        return element

    def _register_node(self, node: str) -> None:
        if is_ground(node) or node in self._node_set:
            return
        self._node_set.add(node)
        self._node_order.append(node)

    def resistor(self, name: str, a: str, b: str, r: float) -> Resistor:
        """Add a resistor of ``r`` ohms between ``a`` and ``b``."""
        return self.add(Resistor(name, a, b, r))

    def capacitor(self, name: str, a: str, b: str, c: float,
                  ic: float = None) -> Capacitor:
        """Add a capacitor of ``c`` farads between ``a`` and ``b``."""
        return self.add(Capacitor(name, a, b, c, ic=ic))

    def inductor(self, name: str, a: str, b: str, l: float,
                 ic: float = None) -> Inductor:
        """Add an inductor of ``l`` henries between ``a`` and ``b``."""
        return self.add(Inductor(name, a, b, l, ic=ic))

    def vsource(self, name: str, positive: str, negative: str,
                value=0.0) -> VoltageSource:
        """Add an independent voltage source (value or waveform)."""
        return self.add(VoltageSource(name, positive, negative, value))

    def isource(self, name: str, positive: str, negative: str,
                value=0.0) -> CurrentSource:
        """Add an independent current source (value or waveform)."""
        return self.add(CurrentSource(name, positive, negative, value))

    def embed(self, other: "Circuit", prefix: str,
              node_map: Optional[Dict[str, str]] = None) -> None:
        """Instantiate ``other`` as a subcircuit of this circuit.

        Every element of ``other`` is re-registered here with its name
        prefixed by ``prefix``; internal nodes are prefixed likewise,
        while nodes listed in ``node_map`` are connected to this
        circuit's nodes (the subcircuit's "ports").  Ground is always
        shared.  The source circuit is not modified, but its elements
        are shared by reference — embed a freshly-built circuit rather
        than one that is also simulated standalone.

        Example
        -------
        >>> inv = Circuit("inv")            # uses nodes in/out/vdd
        >>> top = Circuit("top")
        >>> top.embed(inv, "U1_", {"in": "a", "out": "b",
        ...                        "vdd": "vdd"})
        """
        if not prefix:
            raise NetlistError("embed needs a non-empty name prefix")
        mapping = dict(node_map or {})

        def translate(node: str) -> str:
            if is_ground(node):
                return node
            if node in mapping:
                return mapping[node]
            return prefix + node

        for element in other.elements:
            clone = copy.copy(element)
            clone.name = prefix + element.name
            clone.nodes = tuple(translate(n) for n in element.nodes)
            self.add(clone)

    # -- introspection ------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Non-ground node names in first-reference order."""
        return list(self._node_order)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Element:
        try:
            return self._by_name[name]
        except KeyError:
            raise NetlistError(
                f"no element named '{name}' in circuit '{self.title}'"
            ) from None

    def __iter__(self) -> Iterable[Element]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def has_node(self, node: str) -> bool:
        """Whether ``node`` exists in this circuit (ground always does)."""
        return is_ground(node) or node in self._node_set

    def elements_of_type(self, cls) -> List[Element]:
        """All elements that are instances of ``cls``."""
        return [e for e in self.elements if isinstance(e, cls)]

    def validate(self) -> None:
        """Sanity-check the netlist.

        Raises :class:`NetlistError` if the circuit has no ground
        reference or contains floating single-element nodes that make the
        MNA system singular (a node touched by only one capacitor or
        current source has no DC path).
        """
        has_ground = any(
            is_ground(n) for e in self.elements for n in e.nodes)
        if not has_ground:
            raise NetlistError(
                f"circuit '{self.title}' has no connection to ground")

    def summary(self) -> str:
        """Human-readable one-line-per-element description."""
        lines = [f"circuit '{self.title}': {len(self.elements)} elements, "
                 f"{len(self._node_order)} nodes"]
        for e in self.elements:
            lines.append(f"  {type(e).__name__:<16} {e.name:<12} "
                         f"{' '.join(e.nodes)}")
        return "\n".join(lines)

"""Batched device evaluation: group-wise stamping for the MNA hot path.

The scalar assembly path loops over elements in Python and each element
makes scalar :meth:`StampContext.add`/:meth:`~StampContext.add_dot`
calls — at a few microseconds of interpreter overhead per stamp, that
loop dominates every Newton iteration once the linear solve is sparse.
This module provides the machinery the :class:`~repro.circuit.mna.
Assembler` uses to replace it:

* :class:`BatchPlan` partitions a circuit's elements into homogeneous
  groups (all resistors, all capacitors, all voltage/current sources,
  all MOSFETs of *any* model card, all NEMFETs sharing a model card)
  via the :meth:`Element.batch_key` hook.  Elements that do not
  declare a group (inductors, user-defined devices) stay on the scalar
  reference path.
* Each :class:`BatchGroup` precomputes its *stamp structure* once —
  flat row/column index arrays describing where every residual and
  Jacobian contribution lands — so a per-iteration evaluation is a
  handful of numpy gathers, one vectorised model evaluation, and a
  scatter through frozen indices.  This extends the ``SparsePattern``
  idea (symbolic once, numeric every iteration) upstream from the
  matrix fold into the stamping phase itself.
* :class:`EvalOptions` is the session-wide evaluation policy: the mode
  (``"batched"`` default, ``"scalar"`` reference) and the SPICE-style
  device bypass.  With bypass on, a group caches the terminal voltages
  and model outputs of its last evaluation and skips instances whose
  terminals moved less than ``bypass_reltol``/``bypass_abstol``; the
  assembler's :meth:`~repro.circuit.mna.Assembler.notify_discontinuity`
  guard forces a full evaluation on the first iteration after a
  rejected step or a source breakpoint, when the cached point is known
  to be far away.

Charge bookkeeping: the plan runs a one-off discovery pass with a
:class:`_ProbeContext` to count every element's ``add_dot`` calls, and
assigns each element the same contiguous global charge slots the scalar
path would discover, so ``q_prev`` vectors are interchangeable between
modes and parity can be asserted slot by slot.

Bypass tolerances are deliberately *tighter* than the Newton update
tolerances (``reltol=1e-8``, ``abstol=1e-11`` volts): a bypassed
device contributes a residual error of roughly ``g * dv``
(transconductance times the un-tracked voltage motion), and that error
does not shrink as Newton iterates — it floors the achievable residual
norm.  With gm up to ~10 mS the defaults bound it near 1e-10 A, an
order of magnitude under the 1 nA node-current tolerance, so
convergence checks remain trustworthy.  Loosening the tolerances
trades accuracy (and, past ~1e-7, convergence itself) for hit rate.
Devices whose residuals are stiffer than a transconductance — the
NEMFET's contact-penalty force — opt out of bypass entirely.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ambient import ThreadLocalValue
from repro.circuit.waveforms import DC
from repro.errors import AnalysisError

__all__ = [
    "EvalOptions", "get_eval_options", "set_eval_options",
    "eval_override", "PlanStale", "BatchGroup", "BatchPlan",
    "companion_values",
]

#: Evaluation modes understood by the assembler.
EVAL_MODES = ("batched", "scalar")


@dataclass(frozen=True)
class EvalOptions:
    """Device-evaluation policy (how stamps are computed, not what).

    Attributes
    ----------
    mode:
        ``"batched"`` (default) evaluates homogeneous device groups
        with numpy; ``"scalar"`` runs every element's reference
        ``load`` path.  Both produce the same system to ~1e-12.
    bypass:
        Enable SPICE-style device bypass (batched mode only).  Off by
        default so golden results are bit-stable.
    bypass_reltol / bypass_abstol:
        Per-terminal voltage-change thresholds below which a device's
        cached evaluation is reused.  Defaults are tighter than the
        Newton tolerances; see the module docstring for the error
        budget.
    """

    mode: str = "batched"
    bypass: bool = False
    bypass_reltol: float = 1e-8
    bypass_abstol: float = 1e-11

    def __post_init__(self):
        if self.mode not in EVAL_MODES:
            raise ValueError(
                f"unknown eval mode {self.mode!r} "
                f"(expected one of {EVAL_MODES})")
        if self.bypass_reltol < 0.0 or self.bypass_abstol < 0.0:
            raise ValueError("bypass tolerances must be >= 0")


#: Per-thread evaluation policy over the shared default (see
#: :mod:`repro.ambient`): concurrent orchestrating threads each get
#: their own eval/bypass policy.
_eval_options = ThreadLocalValue("eval-options", EvalOptions())


def get_eval_options() -> EvalOptions:
    """The calling thread's evaluation policy new assemblers snapshot."""
    return _eval_options.get()


def set_eval_options(options: EvalOptions) -> EvalOptions:
    """Install ``options`` as this thread's policy; returns the
    previously effective one."""
    if not isinstance(options, EvalOptions):
        raise TypeError(f"expected EvalOptions, got {type(options)!r}")
    return _eval_options.set(options)


@contextmanager
def eval_override(mode: Optional[str] = None,
                  bypass: Optional[bool] = None,
                  bypass_reltol: Optional[float] = None,
                  bypass_abstol: Optional[float] = None
                  ) -> Iterator[EvalOptions]:
    """Scoped evaluation-policy override (same pattern as the backend
    and step-control overrides); ``None`` fields inherit the current
    policy."""
    current = get_eval_options()
    overridden = EvalOptions(
        mode=current.mode if mode is None else mode,
        bypass=current.bypass if bypass is None else bypass,
        bypass_reltol=(current.bypass_reltol if bypass_reltol is None
                       else bypass_reltol),
        bypass_abstol=(current.bypass_abstol if bypass_abstol is None
                       else bypass_abstol))
    previous = set_eval_options(overridden)
    try:
        yield overridden
    finally:
        set_eval_options(previous)


class PlanStale(AnalysisError):
    """A batch plan no longer describes its circuit (an element's model
    card was replaced, or elements were added/removed); the assembler
    rebuilds the plan and retries."""


def companion_values(q: np.ndarray, slots: np.ndarray, c0: float,
                     d1: float, q_prev: Optional[np.ndarray],
                     qdot_prev: Optional[np.ndarray],
                     q_now: np.ndarray):
    """Record charges and return their companion residual contribution.

    Vector counterpart of ``StampContext.add_dot``'s F-side arithmetic:
    writes ``q`` into the global charge vector at ``slots`` and returns
    ``c0*q - c0*q_prev[slots] (+ d1*qdot_prev[slots])`` — zero under DC
    (``c0 == 0``), where charges are recorded but contribute nothing.

    Shape-polymorphic: ``q``/``q_now``/``q_prev``/``qdot_prev`` may all
    carry a leading ensemble axis ``S`` (stacked evaluation), in which
    case ``slots`` indexes the trailing charge axis of every sample.
    """
    q_now[..., slots] = q
    if c0 == 0.0:
        return 0.0
    hist = (-c0) * q_prev[..., slots]
    if d1 != 0.0:
        hist += d1 * qdot_prev[..., slots]
    return c0 * q + hist


def _flatten_charges(vals):
    """Flatten a ``companion_values`` result to the fvals block layout.

    ``companion_values`` returns ``0.0`` under DC, a ``(k, m)`` array
    for a scalar evaluation, or ``(S, k, m)`` stacked.  The fvals block
    write wants the charge axes raveled in C order (per-``k`` blocks of
    ``m`` values), which for the stacked case means flattening only the
    trailing two axes.
    """
    if not isinstance(vals, np.ndarray):
        return vals
    if vals.ndim <= 2:
        return np.ravel(vals)
    return vals.reshape(vals.shape[0], -1)


class _ProbeContext:
    """Minimal stand-in for ``StampContext`` used by the discovery pass.

    Duck-types exactly what element ``load`` implementations touch —
    ``x``/``t``/``source_scale`` and the two stamping methods — while
    recording only the number of ``add_dot`` calls, which is all the
    plan needs to assign global charge slots.
    """

    def __init__(self, layout):
        self.x = layout.extend(layout.x_default)
        self.t = 0.0
        self.source_scale = 1.0
        self.dot_calls = 0

    def add(self, row, value, cols=(), derivs=()):
        pass

    def add_dot(self, row, q, cols=(), derivs=()):
        self.dot_calls += 1


class BatchGroup:
    """Base class for a homogeneous element group.

    Subclasses set, in ``_build``:

    * ``f_rows`` — int64 row index per residual contribution; the
      matching values are written into ``self.fvals`` by ``eval`` in
      the same fixed block order every iteration.
    * ``j_rows``/``j_cols`` — int64 COO indices per Jacobian
      contribution, matching ``self.jvals``.

    Indices refer to the *extended* system (ground pinned at index n);
    the assembler filters ground entries when it folds the streams.
    """

    #: ``add_dot`` calls each member makes per load.
    q_slots_per_member = 0

    def __init__(self, members: Sequence, q_bases: np.ndarray, layout):
        self.members = list(members)
        self.m = len(self.members)
        self.q_bases = np.asarray(q_bases, dtype=np.int64)
        self.f_rows: np.ndarray
        self.j_rows: np.ndarray
        self.j_cols: np.ndarray
        self.fvals: np.ndarray
        self.jvals: np.ndarray
        #: Stacked (ensemble) counterparts of the evaluation buffers,
        #: allocated lazily on the first stacked ``eval`` and resized
        #: when the ensemble size changes.
        self.fvals_s: Optional[np.ndarray] = None
        self.jvals_s: Optional[np.ndarray] = None
        self._q_stack_s: Optional[np.ndarray] = None
        self._build(layout)

    def _terminals(self) -> Tuple[np.ndarray, ...]:
        """Per-terminal extended-index arrays, one per TERMINALS slot."""
        idx = np.array([el._n for el in self.members], dtype=np.int64)
        return tuple(np.ascontiguousarray(idx[:, k])
                     for k in range(idx.shape[1]))

    def _build(self, layout) -> None:
        raise NotImplementedError

    def _buffers(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """fvals/jvals buffers matching the rank of ``x``.

        A 1-D ``x`` gets the ordinary scalar buffers; a stacked
        ``(S, n+1)`` point gets per-sample ``(S, ...)`` buffers.  On
        (re)allocation the stacked Jacobian buffer is initialised by
        broadcasting the scalar ``jvals`` — this hands constant-valued
        groups (the voltage-source incidence pattern) their entries for
        free and is harmless for groups that overwrite every entry.
        """
        if x.ndim == 1:
            return self.fvals, self.jvals
        s = x.shape[0]
        if self.fvals_s is None or self.fvals_s.shape[0] != s:
            self.fvals_s = np.empty((s,) + self.fvals.shape)
            self.jvals_s = np.empty((s,) + self.jvals.shape)
            self.jvals_s[...] = self.jvals
        return self.fvals_s, self.jvals_s

    def _charge_stack(self, x: np.ndarray) -> np.ndarray:
        """Scratch charge matrix matching the rank of ``x`` (groups
        that record charges allocate ``self._q_stack`` in ``_build``)."""
        if x.ndim == 1:
            return self._q_stack
        s = x.shape[0]
        if self._q_stack_s is None or self._q_stack_s.shape[0] != s:
            self._q_stack_s = np.empty((s,) + self._q_stack.shape)
        return self._q_stack_s

    def eval(self, x: np.ndarray, t: float, source_scale: float,
             c0: float, d1: float, q_prev: Optional[np.ndarray],
             qdot_prev: Optional[np.ndarray], q_now: np.ndarray,
             options: EvalOptions, bypass: bool) -> None:
        """Fill ``fvals``/``jvals`` for the operating point ``x``.

        ``bypass`` is the *effective* flag: ``options.bypass`` with the
        assembler's discontinuity guard already applied, so a subclass
        only consults its cache when ``bypass`` is true (but should keep
        the cache warm whenever ``options.bypass`` is).
        """
        raise NotImplementedError


class ResistorGroup(BatchGroup):
    """All linear two-terminal resistors, any value."""

    def _build(self, layout) -> None:
        a, b = self._terminals()
        self.a, self.b = a, b
        self.f_rows = np.concatenate((a, b))
        self.j_rows = np.concatenate((a, a, b, b))
        self.j_cols = np.concatenate((a, b, a, b))
        self.fvals = np.empty(2 * self.m)
        self.jvals = np.empty(4 * self.m)
        self._r_list = None
        self._g = None

    def eval(self, x, t, source_scale, c0, d1, q_prev, qdot_prev,
             q_now, options, bypass) -> None:
        m = self.m
        # Re-probed every iteration (sweeps mutate values in place),
        # but the conductance array is only rebuilt on a change.
        r = [el.resistance for el in self.members]
        if r != self._r_list:
            self._r_list = r
            self._g = 1.0 / np.array(r)
        g = self._g
        i = g * (x[..., self.a] - x[..., self.b])
        fv, jv = self._buffers(x)
        fv[..., :m] = i
        fv[..., m:] = -i
        jv[..., :m] = g
        jv[..., m:2 * m] = -g
        jv[..., 2 * m:3 * m] = -g
        jv[..., 3 * m:] = g


class CapacitorGroup(BatchGroup):
    """All linear two-terminal capacitors, any value."""

    q_slots_per_member = 2

    def _build(self, layout) -> None:
        a, b = self._terminals()
        self.a, self.b = a, b
        self.f_rows = np.concatenate((a, b))
        self.j_rows = np.concatenate((a, a, b, b))
        self.j_cols = np.concatenate((a, b, a, b))
        self.fvals = np.empty(2 * self.m)
        self.jvals = np.empty(4 * self.m)
        self.q_slot_mat = (self.q_bases[None, :]
                           + np.arange(2, dtype=np.int64)[:, None])
        self._q_stack = np.empty((2, self.m))
        self._c_list = None
        self._c = None

    def eval(self, x, t, source_scale, c0, d1, q_prev, qdot_prev,
             q_now, options, bypass) -> None:
        m = self.m
        c_now = [el.capacitance for el in self.members]
        if c_now != self._c_list:
            self._c_list = c_now
            self._c = np.array(c_now)
        c = self._c
        q = c * (x[..., self.a] - x[..., self.b])
        fv, jv = self._buffers(x)
        qs = self._charge_stack(x)
        qs[..., 0, :] = q
        qs[..., 1, :] = -q
        fv[..., :2 * m] = _flatten_charges(companion_values(
            qs, self.q_slot_mat, c0, d1, q_prev, qdot_prev, q_now))
        cc = c0 * c
        jv[..., :m] = cc
        jv[..., m:2 * m] = -cc
        jv[..., 2 * m:3 * m] = -cc
        jv[..., 3 * m:] = cc


class VsourceGroup(BatchGroup):
    """All independent voltage sources, any waveform.

    The Jacobian entries are the constant ``+/-1`` incidence pattern,
    written once at build time; per iteration only the residual blocks
    move.  Waveforms are sampled per member — a plain attribute read
    for DC (the common case), ``value(t)`` otherwise — so reassigning
    a member's waveform (metrics code swaps input sources) needs no
    plan rebuild.
    """

    def _build(self, layout) -> None:
        a, b = self._terminals()
        self.a, self.b = a, b
        br = np.fromiter((el._branch0 for el in self.members),
                         dtype=np.int64, count=self.m)
        self.br = br
        self.f_rows = np.concatenate((a, b, br))
        self.j_rows = np.concatenate((a, b, br, br))
        self.j_cols = np.concatenate((br, br, a, b))
        self.fvals = np.empty(3 * self.m)
        self.jvals = np.empty(4 * self.m)
        m = self.m
        self.jvals[:m] = 1.0
        self.jvals[m:2 * m] = -1.0
        self.jvals[2 * m:3 * m] = 1.0
        self.jvals[3 * m:] = -1.0

    def eval(self, x, t, source_scale, c0, d1, q_prev, qdot_prev,
             q_now, options, bypass) -> None:
        m = self.m
        levels = [wf.level if type(wf) is DC else wf.value(t)
                  for wf in (el.waveform for el in self.members)]
        i = x[..., self.br]
        fv, _ = self._buffers(x)
        fv[..., :m] = i
        fv[..., m:2 * m] = -i
        fv[..., 2 * m:] = (x[..., self.a] - x[..., self.b]
                           - source_scale * np.array(levels))


class IsourceGroup(BatchGroup):
    """All independent current sources, any waveform."""

    def _build(self, layout) -> None:
        a, b = self._terminals()
        self.a, self.b = a, b
        self.f_rows = np.concatenate((a, b))
        self.j_rows = np.empty(0, dtype=np.int64)
        self.j_cols = np.empty(0, dtype=np.int64)
        self.fvals = np.empty(2 * self.m)
        self.jvals = np.empty(0)

    def eval(self, x, t, source_scale, c0, d1, q_prev, qdot_prev,
             q_now, options, bypass) -> None:
        m = self.m
        levels = [wf.level if type(wf) is DC else wf.value(t)
                  for wf in (el.waveform for el in self.members)]
        i = source_scale * np.array(levels)
        fv, _ = self._buffers(x)
        fv[..., :m] = i
        fv[..., m:] = -i


class BatchPlan:
    """Frozen partition of a circuit into batched groups + leftovers.

    Built once per (circuit, layout) pair and cached on the layout;
    rebuilding is cheap (one probe pass) and happens whenever the
    element count changes or a group detects a stale model card.
    """

    def __init__(self, circuit, layout):
        elements = list(circuit.elements)
        self.n_elements = len(elements)
        counts: List[int] = []
        for element in elements:
            probe = _ProbeContext(layout)
            element.load(probe)
            counts.append(probe.dot_calls)
        bases = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self.q_count = int(bases[-1])

        grouped = {}
        leftover: List = []
        leftover_slots: List[int] = []
        for element, base, count in zip(elements, bases[:-1], counts):
            key = element.batch_key()
            if key is None:
                leftover.append(element)
                leftover_slots.extend(range(base, base + count))
                continue
            members, member_bases, member_counts = grouped.setdefault(
                key, ([], [], []))
            members.append(element)
            member_bases.append(base)
            member_counts.append(count)
        self.leftover = leftover
        self.leftover_q_slots = np.asarray(leftover_slots,
                                           dtype=np.int64)
        self.groups: List[BatchGroup] = []
        for members, member_bases, member_counts in grouped.values():
            group = members[0].make_batch_group(
                members, np.asarray(member_bases, dtype=np.int64),
                layout)
            expected = group.q_slots_per_member
            for count_i, el in zip(member_counts, members):
                if count_i != expected:
                    raise PlanStale(
                        f"element {el.name!r} makes {count_i} add_dot "
                        f"calls but its group expects {expected}")
            self.groups.append(group)
        #: Concatenated residual rows of every group, for a single
        #: bincount-based fold of all group fvals per assembly.
        self.f_rows_all = (np.concatenate([g.f_rows for g in self.groups])
                           if self.groups else np.empty(0, dtype=np.int64))
        #: Node-diagonal indices for the gmin stamp.
        self.diag = np.arange(layout.num_nodes, dtype=np.int64)
        #: Lazily built (pattern, flat-position) pair for the dense
        #: scatter (see ``Assembler._dense_from_pattern``).
        self.dense_scatter = None
        #: Lazily built Jacobian fold fast-path state (see
        #: ``Assembler._fold_plan``): the group (row, col) streams are
        #: frozen here, so after one symbolic fold the whole
        #: drop-ground/dedup/gmin-diagonal scatter collapses to a
        #: single cached slot map.
        self.fold_cache = None

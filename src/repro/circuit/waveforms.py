"""Time-domain waveform generators for independent sources.

Each waveform knows its value at any time ``t`` and the list of
*breakpoints* (instants where its derivative is discontinuous).  The
transient engine forces time steps to land exactly on breakpoints so that
sharp clock and input edges are never stepped over.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class Waveform:
    """Base class for waveforms.  Subclasses implement :meth:`value`."""

    def value(self, t: float) -> float:
        """Waveform value at time ``t`` (seconds)."""
        raise NotImplementedError

    def breakpoints(self, tstop: float) -> List[float]:
        """Times in ``[0, tstop]`` where the waveform has slope breaks."""
        return []

    def __call__(self, t: float) -> float:
        return self.value(t)


class DC(Waveform):
    """A constant value."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def __repr__(self) -> str:
        return f"DC({self.level})"


class Pulse(Waveform):
    """SPICE-style periodic trapezoidal pulse.

    Parameters mirror the SPICE ``PULSE`` source: initial value ``v1``,
    pulsed value ``v2``, delay ``td``, rise time ``tr``, fall time ``tf``,
    pulse width ``pw`` and period ``per``.  If ``per`` is ``None`` the
    pulse fires once and stays at ``v1`` afterwards.
    """

    def __init__(self, v1: float, v2: float, td: float = 0.0,
                 tr: float = 1e-12, tf: float = 1e-12,
                 pw: float = 1e-9, per: float = None):
        if tr <= 0 or tf <= 0:
            raise ValueError("rise/fall times must be positive")
        if pw < 0:
            raise ValueError("pulse width must be non-negative")
        if per is not None and per < tr + pw + tf:
            raise ValueError("period shorter than tr + pw + tf")
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.td = float(td)
        self.tr = float(tr)
        self.tf = float(tf)
        self.pw = float(pw)
        self.per = None if per is None else float(per)

    def _one_shot(self, tau: float) -> float:
        """Value within a single period, ``tau`` measured from pulse start."""
        if tau < 0:
            return self.v1
        if tau < self.tr:
            return self.v1 + (self.v2 - self.v1) * tau / self.tr
        tau -= self.tr
        if tau < self.pw:
            return self.v2
        tau -= self.pw
        if tau < self.tf:
            return self.v2 + (self.v1 - self.v2) * tau / self.tf
        return self.v1

    def value(self, t: float) -> float:
        tau = t - self.td
        if self.per is not None and tau > 0:
            tau = math.fmod(tau, self.per)
        return self._one_shot(tau)

    def breakpoints(self, tstop: float) -> List[float]:
        points: List[float] = []
        edges = (0.0, self.tr, self.tr + self.pw, self.tr + self.pw + self.tf)
        start = self.td
        while start <= tstop:
            for e in edges:
                bp = start + e
                if 0.0 <= bp <= tstop:
                    points.append(bp)
            if self.per is None:
                break
            start += self.per
        return points

    def __repr__(self) -> str:
        return (f"Pulse(v1={self.v1}, v2={self.v2}, td={self.td}, "
                f"tr={self.tr}, tf={self.tf}, pw={self.pw}, per={self.per})")


class PiecewiseLinear(Waveform):
    """Piecewise-linear waveform through ``(time, value)`` points.

    Before the first point the waveform holds the first value; after the
    last point it holds the last value.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 1:
            raise ValueError("PWL waveform needs at least one point")
        times = [float(t) for t, _ in points]
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self.points = [(float(t), float(v)) for t, v in points]

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t1, v1), (t2, v2) in zip(pts, pts[1:]):
            if t1 <= t <= t2:
                return v1 + (v2 - v1) * (t - t1) / (t2 - t1)
        return pts[-1][1]  # unreachable, kept for safety

    def breakpoints(self, tstop: float) -> List[float]:
        return [t for t, _ in self.points if 0.0 <= t <= tstop]

    def __repr__(self) -> str:
        return f"PiecewiseLinear({self.points!r})"


class Sine(Waveform):
    """Sinusoid ``offset + amplitude * sin(2*pi*freq*(t - delay))``."""

    def __init__(self, offset: float, amplitude: float, freq: float,
                 delay: float = 0.0):
        if freq <= 0:
            raise ValueError("frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.freq = float(freq)
        self.delay = float(delay)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.freq * (t - self.delay))

    def breakpoints(self, tstop: float) -> List[float]:
        return [self.delay] if 0.0 <= self.delay <= tstop else []

    def __repr__(self) -> str:
        return (f"Sine(offset={self.offset}, amplitude={self.amplitude}, "
                f"freq={self.freq}, delay={self.delay})")


def as_waveform(value) -> Waveform:
    """Coerce a float or waveform into a :class:`Waveform` instance."""
    if isinstance(value, Waveform):
        return value
    return DC(float(value))

"""Modified nodal analysis: system layout, stamping context, assembler.

The unknown vector is laid out as::

    x = [ V(node_0) .. V(node_{nn-1}) | branch currents | internal states ]

Internally an *extended* vector of length ``n + 1`` is used whose last
entry is the ground voltage, pinned at zero.  Elements stamp terminal
contributions unconditionally (including ground terminals); the ground row
and column are simply discarded when the linear system is solved.  This
keeps element code free of ground special-casing.

Time derivatives are handled uniformly: an element calls
:meth:`StampContext.add_dot` with a charge/flux-like quantity ``q`` and
its partial derivatives, meaning "add ``dq/dt`` to this residual row".
The context applies the active integration formula:

* DC: no contribution (capacitors open, inductors short, states at
  equilibrium), but ``q`` is still recorded to initialise transient runs;
* backward Euler: ``(q - q_prev) / h``;
* trapezoidal: ``2 (q - q_prev) / h - qdot_prev``.

Charge history slots are identified by call order, which is deterministic
because elements are loaded in netlist order and must call ``add_dot`` an
analysis-independent number of times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.netlist import Circuit, is_ground
from repro.errors import NetlistError

#: Default KCL residual tolerance for node rows [A].
NODE_TOL = 1e-9
#: Default residual tolerance for branch rows [V].
BRANCH_TOL = 1e-9
#: Default residual tolerance for (dimensionless) state rows.
STATE_TOL = 1e-9
#: Default per-iteration Newton clamp for node voltages [V].
NODE_DX_LIMIT = 0.4
#: Default per-iteration Newton clamp for branch currents [A].
BRANCH_DX_LIMIT = np.inf


class SystemLayout:
    """Index assignment for a circuit's MNA unknowns.

    Attributes
    ----------
    n:
        Number of unknowns (excluding the pinned ground entry).
    ground:
        Index of the ground entry in the extended vector (equals ``n``).
    """

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self._node_index: Dict[str, int] = {
            name: i for i, name in enumerate(circuit.nodes)}
        nn = len(self._node_index)

        self._branch_start: Dict[str, int] = {}
        cursor = nn
        for element in circuit.elements:
            if element.branch_count:
                self._branch_start[element.name] = cursor
                cursor += element.branch_count
        self.num_branches = cursor - nn

        self._state_start: Dict[str, int] = {}
        state_names: List[Tuple[str, str]] = []
        for element in circuit.elements:
            if element.state_count:
                self._state_start[element.name] = cursor
                for sname in element.state_names():
                    state_names.append((element.name, sname))
                cursor += element.state_count
        self.num_states = cursor - nn - self.num_branches

        self.num_nodes = nn
        self.n = cursor
        self.ground = cursor  # extended-vector slot pinned to zero
        self._state_names = state_names

        # Per-row residual tolerances and per-unknown Newton clamps.
        tol = np.empty(self.n)
        tol[:nn] = NODE_TOL
        tol[nn:nn + self.num_branches] = BRANCH_TOL
        dx = np.empty(self.n)
        dx[:nn] = NODE_DX_LIMIT
        dx[nn:nn + self.num_branches] = BRANCH_DX_LIMIT
        x0 = np.zeros(self.n)
        for element in circuit.elements:
            if element.state_count:
                s0 = self._state_start[element.name]
                s1 = s0 + element.state_count
                tol[s0:s1] = STATE_TOL
                dx[s0:s1] = element.state_dx_limit()
                x0[s0:s1] = element.state_initial()
        self.row_tol = tol
        self.dx_limit = dx
        self.x_default = x0

        for element in circuit.elements:
            element.bind(self)

    # -- index resolution ---------------------------------------------------

    def node_index(self, name: str) -> int:
        """Extended-vector index of a node (ground maps to the pinned slot)."""
        if is_ground(name):
            return self.ground
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node '{name}'") from None

    def branch_start(self, element) -> int:
        """First branch-current index of ``element`` (or -1 if none)."""
        return self._branch_start.get(element.name, -1)

    def state_start(self, element) -> int:
        """First internal-state index of ``element`` (or -1 if none)."""
        return self._state_start.get(element.name, -1)

    def state_index(self, element_name: str, state_name: str) -> int:
        """Index of a named internal state of a named element."""
        element = self.circuit[element_name]
        names = element.state_names()
        try:
            offset = names.index(state_name)
        except ValueError:
            raise NetlistError(
                f"element '{element_name}' has no state '{state_name}' "
                f"(has {names})") from None
        return self._state_start[element_name] + offset

    def extend(self, x: np.ndarray) -> np.ndarray:
        """Append the pinned ground entry to a solution vector."""
        out = np.empty(self.n + 1)
        out[:self.n] = x
        out[self.n] = 0.0
        return out


class StampContext:
    """Mutable accumulation target passed to :meth:`Element.load`.

    Attributes
    ----------
    x:
        Extended solution vector (``x[layout.ground] == 0``).
    t:
        Evaluation time in seconds (0 for DC).
    source_scale:
        Homotopy multiplier applied by sources to their values.
    """

    __slots__ = ("x", "t", "source_scale", "F", "J", "c0", "d1",
                 "q_now", "q_prev", "qdot_prev", "_qk")

    def __init__(self, n: int, x_ext: np.ndarray, t: float,
                 source_scale: float, c0: float, d1: float,
                 q_prev: Optional[np.ndarray],
                 qdot_prev: Optional[np.ndarray],
                 q_capacity: int):
        self.x = x_ext
        self.t = t
        self.source_scale = source_scale
        # Extended residual/Jacobian; ground row/column discarded at solve.
        self.F = np.zeros(n + 1)
        self.J = np.zeros((n + 1, n + 1))
        self.c0 = c0
        self.d1 = d1
        self.q_now = np.zeros(q_capacity) if q_capacity else None
        self.q_prev = q_prev
        self.qdot_prev = qdot_prev
        self._qk = 0

    def add(self, row: int, value: float, cols, derivs) -> None:
        """Add a static residual term and its partial derivatives."""
        self.F[row] += value
        J_row = self.J[row]
        for col, d in zip(cols, derivs):
            J_row[col] += d

    def add_dot(self, row: int, q: float, cols, derivs) -> None:
        """Add ``d/dt`` of quantity ``q`` to residual row ``row``.

        ``cols``/``derivs`` are the partials of ``q`` with respect to
        unknowns.  Under DC (``c0 == 0``) nothing is added, but ``q`` is
        recorded for transient initialisation.
        """
        k = self._qk
        self._qk = k + 1
        if self.q_now is None:
            # Discovery pass: grow implicitly via list-free double buffer.
            raise RuntimeError("StampContext created without charge slots")
        if k >= self.q_now.shape[0]:
            # Grow during the discovery assembly.
            grown = np.zeros(max(16, 2 * self.q_now.shape[0]))
            grown[:self.q_now.shape[0]] = self.q_now
            self.q_now = grown
        self.q_now[k] = q
        c0 = self.c0
        if c0 == 0.0:
            return
        hist = -c0 * self.q_prev[k]
        if self.d1 != 0.0:
            hist += self.d1 * self.qdot_prev[k]
        self.F[row] += c0 * q + hist
        J_row = self.J[row]
        for col, d in zip(cols, derivs):
            J_row[col] += c0 * d

    @property
    def charge_count(self) -> int:
        """Number of ``add_dot`` slots used in this assembly."""
        return self._qk


class Assembler:
    """Evaluates the MNA residual and Jacobian for a bound circuit."""

    def __init__(self, circuit: Circuit, layout: Optional[SystemLayout] = None):
        self.circuit = circuit
        self.layout = layout if layout is not None else SystemLayout(circuit)
        self._q_capacity = 16
        self._q_count: Optional[int] = None

    def assemble(self, x: np.ndarray, *, t: float = 0.0,
                 source_scale: float = 1.0, c0: float = 0.0, d1: float = 0.0,
                 q_prev: Optional[np.ndarray] = None,
                 qdot_prev: Optional[np.ndarray] = None,
                 gmin: float = 0.0):
        """Evaluate residual ``F`` and Jacobian ``J`` at solution ``x``.

        Returns ``(F, J, q_now)`` where ``F``/``J`` are restricted to the
        non-ground unknowns and ``q_now`` holds the charge-like quantities
        recorded by ``add_dot`` calls (for integrator history updates).
        """
        layout = self.layout
        n = layout.n
        x_ext = layout.extend(x)
        ctx = StampContext(n, x_ext, t, source_scale, c0, d1,
                           q_prev, qdot_prev, self._q_capacity)
        for element in self.circuit.elements:
            element.load(ctx)
        if self._q_count is None:
            self._q_count = ctx.charge_count
            self._q_capacity = max(self._q_count, 1)
        elif ctx.charge_count != self._q_count:
            raise RuntimeError(
                f"inconsistent add_dot call count: {ctx.charge_count} vs "
                f"{self._q_count}; element load() must be "
                f"analysis-independent")
        F = ctx.F[:n].copy()
        J = ctx.J[:n, :n].copy()
        if gmin > 0.0:
            nn = layout.num_nodes
            F[:nn] += gmin * x[:nn]
            J[:nn, :nn] += gmin * np.eye(nn)
        q_now = (ctx.q_now[:self._q_count].copy()
                 if ctx.q_now is not None else np.zeros(0))
        return F, J, q_now

    @property
    def charge_count(self) -> int:
        """Number of charge-history slots (discovered on first assembly)."""
        if self._q_count is None:
            x = self.layout.x_default
            self.assemble(x)
        return self._q_count

"""Modified nodal analysis: system layout, stamping context, assembler.

The unknown vector is laid out as::

    x = [ V(node_0) .. V(node_{nn-1}) | branch currents | internal states ]

Internally an *extended* vector of length ``n + 1`` is used whose last
entry is the ground voltage, pinned at zero.  Elements stamp terminal
contributions unconditionally (including ground terminals); the ground row
and column are simply discarded when the linear system is solved.  This
keeps element code free of ground special-casing.

Time derivatives are handled uniformly: an element calls
:meth:`StampContext.add_dot` with a charge/flux-like quantity ``q`` and
its partial derivatives, meaning "add ``dq/dt`` to this residual row".
The context applies the active integration formula:

* DC: no contribution (capacitors open, inductors short, states at
  equilibrium), but ``q`` is still recorded to initialise transient runs;
* backward Euler: ``(q - q_prev) / h``;
* trapezoidal: ``2 (q - q_prev) / h - qdot_prev``.

Charge history slots are identified by call order, which is deterministic
because elements are loaded in netlist order and must call ``add_dot`` an
analysis-independent number of times.

The Jacobian can be accumulated two ways, selected by the assembler's
``matrix_mode``:

* ``"dense"`` (default): stamps write straight into a dense
  ``(n+1, n+1)`` array — the seed behaviour, optimal for tiny systems;
* ``"sparse"``: stamps append COO triplets which the assembler folds
  into a ``scipy.sparse`` CSC matrix through a :class:`SparsePattern`
  cached on the layout.  Element ``load()`` code is identical in both
  modes; in sparse mode ``add_dot`` appends its (zero-valued) entries
  even under DC so the sparsity structure is analysis-invariant and the
  cached pattern survives across DC, homotopy and transient assemblies.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import profiling
from repro.circuit.batch import BatchPlan, PlanStale, get_eval_options
from repro.circuit.netlist import Circuit, is_ground
from repro.errors import NetlistError

#: Shared empties for the no-leftover batched assembly path.
_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0)

#: Default KCL residual tolerance for node rows [A].
NODE_TOL = 1e-9
#: Default residual tolerance for branch rows [V].
BRANCH_TOL = 1e-9
#: Default residual tolerance for (dimensionless) state rows.
STATE_TOL = 1e-9
#: Default per-iteration Newton clamp for node voltages [V].
NODE_DX_LIMIT = 0.4
#: Default per-iteration Newton clamp for branch currents [A].
BRANCH_DX_LIMIT = np.inf


class SystemLayout:
    """Index assignment for a circuit's MNA unknowns.

    Attributes
    ----------
    n:
        Number of unknowns (excluding the pinned ground entry).
    ground:
        Index of the ground entry in the extended vector (equals ``n``).
    """

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self._node_index: Dict[str, int] = {
            name: i for i, name in enumerate(circuit.nodes)}
        nn = len(self._node_index)

        self._branch_start: Dict[str, int] = {}
        cursor = nn
        for element in circuit.elements:
            if element.branch_count:
                self._branch_start[element.name] = cursor
                cursor += element.branch_count
        self.num_branches = cursor - nn

        self._state_start: Dict[str, int] = {}
        state_names: List[Tuple[str, str]] = []
        for element in circuit.elements:
            if element.state_count:
                self._state_start[element.name] = cursor
                for sname in element.state_names():
                    state_names.append((element.name, sname))
                cursor += element.state_count
        self.num_states = cursor - nn - self.num_branches

        self.num_nodes = nn
        self.n = cursor
        self.ground = cursor  # extended-vector slot pinned to zero
        self._state_names = state_names
        #: Lazily built by sparse-mode assemblers; shared across every
        #: assembler bound to this layout (sweeps, transient restarts).
        self.sparse_pattern: Optional["SparsePattern"] = None
        #: Lazily built by batched-mode assemblers (same sharing).
        self.batch_plan: Optional[BatchPlan] = None

        # Per-row residual tolerances and per-unknown Newton clamps.
        tol = np.empty(self.n)
        tol[:nn] = NODE_TOL
        tol[nn:nn + self.num_branches] = BRANCH_TOL
        dx = np.empty(self.n)
        dx[:nn] = NODE_DX_LIMIT
        dx[nn:nn + self.num_branches] = BRANCH_DX_LIMIT
        x0 = np.zeros(self.n)
        for element in circuit.elements:
            if element.state_count:
                s0 = self._state_start[element.name]
                s1 = s0 + element.state_count
                tol[s0:s1] = STATE_TOL
                dx[s0:s1] = element.state_dx_limit()
                x0[s0:s1] = element.state_initial()
        self.row_tol = tol
        self.dx_limit = dx
        self.x_default = x0

        for element in circuit.elements:
            element.bind(self)

    # -- index resolution ---------------------------------------------------

    def node_index(self, name: str) -> int:
        """Extended-vector index of a node (ground maps to the pinned slot)."""
        if is_ground(name):
            return self.ground
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node '{name}'") from None

    def branch_start(self, element) -> int:
        """First branch-current index of ``element`` (or -1 if none)."""
        return self._branch_start.get(element.name, -1)

    def state_start(self, element) -> int:
        """First internal-state index of ``element`` (or -1 if none)."""
        return self._state_start.get(element.name, -1)

    def state_index(self, element_name: str, state_name: str) -> int:
        """Index of a named internal state of a named element."""
        element = self.circuit[element_name]
        names = element.state_names()
        try:
            offset = names.index(state_name)
        except ValueError:
            raise NetlistError(
                f"element '{element_name}' has no state '{state_name}' "
                f"(has {names})") from None
        return self._state_start[element_name] + offset

    def extend(self, x: np.ndarray) -> np.ndarray:
        """Append the pinned ground entry to a solution vector."""
        out = np.empty(self.n + 1)
        out[:self.n] = x
        out[self.n] = 0.0
        return out


class _SlotMismatch(RuntimeError):
    """An element's ``add_dot`` call count differs from the batch plan's
    discovery pass — element ``load()`` is not analysis-independent."""


class StampContext:
    """Mutable accumulation target passed to :meth:`Element.load`.

    Attributes
    ----------
    x:
        Extended solution vector (``x[layout.ground] == 0``).
    t:
        Evaluation time in seconds (0 for DC).
    source_scale:
        Homotopy multiplier applied by sources to their values.
    matrix_mode:
        ``"dense"`` accumulates the Jacobian in :attr:`J`; ``"sparse"``
        appends COO triplets to :attr:`j_rows`/:attr:`j_cols`/
        :attr:`j_vals` instead (:attr:`J` is ``None``).
    """

    __slots__ = ("x", "t", "source_scale", "F", "J", "c0", "d1",
                 "q_now", "q_prev", "qdot_prev", "_qk", "q_slots",
                 "matrix_mode", "j_rows", "j_cols", "j_vals")

    def __init__(self, n: int, x_ext: np.ndarray, t: float,
                 source_scale: float, c0: float, d1: float,
                 q_prev: Optional[np.ndarray],
                 qdot_prev: Optional[np.ndarray],
                 q_capacity: int, matrix_mode: str = "dense",
                 q_slots: Optional[np.ndarray] = None,
                 q_buffer: Optional[np.ndarray] = None,
                 F_buffer: Optional[np.ndarray] = None,
                 J_buffer: Optional[np.ndarray] = None):
        if matrix_mode not in ("dense", "sparse"):
            raise ValueError(f"unknown matrix mode '{matrix_mode}'")
        self.x = x_ext
        self.t = t
        self.source_scale = source_scale
        # Extended residual/Jacobian; ground row/column discarded at solve.
        # Callers may lend reusable buffers (zeroed here) to avoid the
        # per-iteration allocations; the assembler returns copies.
        if F_buffer is not None:
            F_buffer.fill(0.0)
            self.F = F_buffer
        else:
            self.F = np.zeros(n + 1)
        self.matrix_mode = matrix_mode
        if matrix_mode == "dense":
            if J_buffer is not None:
                J_buffer.fill(0.0)
                self.J = J_buffer
            else:
                self.J = np.zeros((n + 1, n + 1))
            self.j_rows = self.j_cols = self.j_vals = None
        else:
            self.J = None
            self.j_rows: List[int] = []
            self.j_cols: List[int] = []
            self.j_vals: List[float] = []
        self.c0 = c0
        self.d1 = d1
        # ``q_slots`` remaps the k-th add_dot call to a caller-assigned
        # global charge slot (the batched assembler's leftover path);
        # without it slots are assigned by call order, 0, 1, 2, ...
        self.q_slots = q_slots
        if q_buffer is not None:
            self.q_now = q_buffer
        else:
            self.q_now = np.zeros(q_capacity) if q_capacity else None
        self.q_prev = q_prev
        self.qdot_prev = qdot_prev
        self._qk = 0

    def add(self, row: int, value: float, cols, derivs) -> None:
        """Add a static residual term and its partial derivatives."""
        self.F[row] += value
        if self.J is not None:
            J_row = self.J[row]
            for col, d in zip(cols, derivs):
                J_row[col] += d
        else:
            for col, d in zip(cols, derivs):
                self.j_rows.append(row)
                self.j_cols.append(col)
                self.j_vals.append(d)

    def add_dot(self, row: int, q: float, cols, derivs) -> None:
        """Add ``d/dt`` of quantity ``q`` to residual row ``row``.

        ``cols``/``derivs`` are the partials of ``q`` with respect to
        unknowns.  Under DC (``c0 == 0``) nothing is added, but ``q`` is
        recorded for transient initialisation.  In sparse mode the
        (then zero-valued) Jacobian entries are still appended so the
        sparsity pattern does not depend on the analysis.
        """
        k = self._qk
        self._qk = k + 1
        if self.q_now is None:
            # Discovery pass: grow implicitly via list-free double buffer.
            raise RuntimeError("StampContext created without charge slots")
        if self.q_slots is not None:
            if k >= self.q_slots.shape[0]:
                raise _SlotMismatch(
                    f"add_dot call #{k} exceeds the {self.q_slots.shape[0]} "
                    f"charge slots assigned to this context; element "
                    f"load() must be analysis-independent")
            slot = int(self.q_slots[k])
        else:
            slot = k
            if k >= self.q_now.shape[0]:
                # Grow during the discovery assembly.
                grown = np.zeros(max(16, 2 * self.q_now.shape[0]))
                grown[:self.q_now.shape[0]] = self.q_now
                self.q_now = grown
        self.q_now[slot] = q
        c0 = self.c0
        if self.J is None:
            for col, d in zip(cols, derivs):
                self.j_rows.append(row)
                self.j_cols.append(col)
                self.j_vals.append(c0 * d)
        if c0 == 0.0:
            return
        hist = -c0 * self.q_prev[slot]
        if self.d1 != 0.0:
            hist += self.d1 * self.qdot_prev[slot]
        self.F[row] += c0 * q + hist
        if self.J is not None:
            J_row = self.J[row]
            for col, d in zip(cols, derivs):
                J_row[col] += c0 * d

    @property
    def charge_count(self) -> int:
        """Number of ``add_dot`` slots used in this assembly."""
        return self._qk


class SparsePattern:
    """Cached COO-triplet -> CSC scatter map for a fixed structure.

    Element ``load()`` order is deterministic, so the triplet stream of
    one circuit layout always has the same (row, col) sequence.  This
    class does the symbolic work once — sort, dedup, CSC index arrays —
    and every later assembly only scatter-adds the numeric values into
    the fixed structure (:meth:`assemble`), the sparse analogue of
    rewriting a preallocated dense array.
    """

    def __init__(self, rows: np.ndarray, cols: np.ndarray, size: int):
        self.size = size
        self.rows = rows
        self.cols = cols
        if len(rows) == 0:
            self.slot = np.zeros(0, dtype=np.int64)
            self.nnz = 0
            self.indices = np.zeros(0, dtype=np.int32)
            self.indptr = np.zeros(size + 1, dtype=np.int32)
            return
        # CSC order: column-major, rows ascending within a column.
        order = np.lexsort((rows, cols))
        r = rows[order]
        c = cols[order]
        first = np.empty(len(r), dtype=bool)
        first[0] = True
        first[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        slot_sorted = np.cumsum(first) - 1
        slot = np.empty(len(r), dtype=np.int64)
        slot[order] = slot_sorted
        self.slot = slot
        self.nnz = int(slot_sorted[-1]) + 1
        self.indices = r[first].astype(np.int32)
        counts = np.bincount(c[first], minlength=size)
        self.indptr = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int32)

    def matches(self, rows: np.ndarray, cols: np.ndarray) -> bool:
        """Whether a triplet stream has exactly this structure."""
        return (len(rows) == len(self.rows)
                and np.array_equal(rows, self.rows)
                and np.array_equal(cols, self.cols))

    def fold(self, vals: np.ndarray) -> np.ndarray:
        """Sum ``vals`` into the deduplicated CSC ``data`` array.

        ``bincount`` accumulates in input order, like ``np.add.at``, so
        the floating-point result is identical — it is just much faster
        for large streams.
        """
        return np.bincount(self.slot, weights=vals, minlength=self.nnz)

    def assemble(self, vals: np.ndarray):
        """Sum ``vals`` into the cached structure; returns CSC."""
        from scipy.sparse import csc_matrix
        return csc_matrix((self.fold(vals), self.indices, self.indptr),
                          shape=(self.size, self.size))


class Assembler:
    """Evaluates the MNA residual and Jacobian for a bound circuit.

    ``matrix_mode`` selects the Jacobian representation returned by
    :meth:`assemble`: a dense ``np.ndarray`` (``"dense"``, default) or
    a ``scipy.sparse`` CSC matrix (``"sparse"``).  The residual is a
    dense vector either way.  The sparse scatter pattern is cached on
    the layout, so assemblers sharing a layout (a DC sweep, a transient
    run) pay the symbolic analysis once.

    ``eval_options`` selects the device-evaluation policy (see
    :mod:`repro.circuit.batch`); when omitted, the session-wide policy
    at construction time is snapshotted.  In ``"batched"`` mode (the
    default policy) homogeneous element groups are evaluated with numpy
    through a :class:`~repro.circuit.batch.BatchPlan` cached on the
    layout, and ungrouped elements run the scalar reference path into
    the same triplet/charge streams.  Both modes return the same system
    to ~1e-12 (enforced by the parity suite).

    Wall time spent in the element/model evaluation and the matrix fold
    is attributed to the ``eval_time``/``assemble_time`` counters of
    :mod:`repro.profiling`.
    """

    def __init__(self, circuit: Circuit,
                 layout: Optional[SystemLayout] = None,
                 matrix_mode: str = "dense",
                 eval_options=None):
        if matrix_mode not in ("dense", "sparse"):
            raise ValueError(f"unknown matrix mode '{matrix_mode}'")
        self.circuit = circuit
        self.layout = layout if layout is not None else SystemLayout(circuit)
        self.matrix_mode = matrix_mode
        self.eval_options = (eval_options if eval_options is not None
                             else get_eval_options())
        self._q_capacity = 16
        self._q_count: Optional[int] = None
        # Device bypass is suppressed for one assembly after any
        # discontinuity (and on the very first one, when caches are
        # cold by construction).
        self._force_full = True
        # Reusable extended residual / dense Jacobian buffers.
        self._F_buf: Optional[np.ndarray] = None
        self._J_buf: Optional[np.ndarray] = None
        self._gdiag: Optional[np.ndarray] = None

    def notify_discontinuity(self) -> None:
        """Force full device evaluation on the next assembly.

        Transient analysis calls this after a rejected step and at
        waveform breakpoints: the bypass caches describe an operating
        point the solver is no longer near, so reusing them could let a
        stale device linger within tolerance of the *wrong* point.
        A no-op when bypass is off.
        """
        self._force_full = True

    def assemble(self, x: np.ndarray, *, t: float = 0.0,
                 source_scale: float = 1.0, c0: float = 0.0, d1: float = 0.0,
                 q_prev: Optional[np.ndarray] = None,
                 qdot_prev: Optional[np.ndarray] = None,
                 gmin: float = 0.0):
        """Evaluate residual ``F`` and Jacobian ``J`` at solution ``x``.

        Returns ``(F, J, q_now)`` where ``F``/``J`` are restricted to the
        non-ground unknowns and ``q_now`` holds the charge-like quantities
        recorded by ``add_dot`` calls (for integrator history updates).
        ``J`` is dense or CSC according to the assembler's
        ``matrix_mode``.  The returned arrays are freshly allocated —
        callers may hold them across later assemblies.
        """
        if self.eval_options.mode == "batched":
            return self._assemble_batched(x, t, source_scale, c0, d1,
                                          q_prev, qdot_prev, gmin)
        return self._assemble_scalar(x, t, source_scale, c0, d1,
                                     q_prev, qdot_prev, gmin)

    # -- scalar reference path ----------------------------------------------

    def _assemble_scalar(self, x, t, source_scale, c0, d1, q_prev,
                         qdot_prev, gmin):
        layout = self.layout
        n = layout.n
        started = perf_counter()
        x_ext = layout.extend(x)
        if self._F_buf is None:
            self._F_buf = np.empty(n + 1)
        J_buf = None
        if self.matrix_mode == "dense":
            if self._J_buf is None:
                self._J_buf = np.empty((n + 1, n + 1))
            J_buf = self._J_buf
        ctx = StampContext(n, x_ext, t, source_scale, c0, d1,
                           q_prev, qdot_prev, self._q_capacity,
                           matrix_mode=self.matrix_mode,
                           F_buffer=self._F_buf, J_buffer=J_buf)
        for element in self.circuit.elements:
            element.load(ctx)
        if self._q_count is None:
            self._q_count = ctx.charge_count
            self._q_capacity = max(self._q_count, 1)
        elif ctx.charge_count != self._q_count:
            raise RuntimeError(
                f"inconsistent add_dot call count: {ctx.charge_count} vs "
                f"{self._q_count}; element load() must be "
                f"analysis-independent")
        mid = perf_counter()
        F = ctx.F[:n].copy()
        nn = layout.num_nodes
        if gmin > 0.0:
            F[:nn] += gmin * x[:nn]
        if ctx.J is not None:
            J = ctx.J[:n, :n].copy()
            if gmin > 0.0:
                if self._gdiag is None:
                    self._gdiag = np.arange(nn)
                J[self._gdiag, self._gdiag] += gmin
        else:
            J = self._fold_triplets(ctx.j_rows, ctx.j_cols, ctx.j_vals,
                                    gmin, dense=False)
        q_now = (ctx.q_now[:self._q_count].copy()
                 if ctx.q_now is not None else np.zeros(0))
        done = perf_counter()
        profiling.COUNTERS["eval_time"] += mid - started
        profiling.COUNTERS["assemble_time"] += done - mid
        self._force_full = False
        return F, J, q_now

    # -- batched path --------------------------------------------------------

    def _assemble_batched(self, x, t, source_scale, c0, d1, q_prev,
                          qdot_prev, gmin):
        layout = self.layout
        plan = getattr(layout, "batch_plan", None)
        if plan is None or plan.n_elements != len(self.circuit.elements):
            plan = BatchPlan(self.circuit, layout)
            layout.batch_plan = plan
        try:
            return self._assemble_batched_with(
                plan, x, t, source_scale, c0, d1, q_prev, qdot_prev,
                gmin)
        except PlanStale:
            # A group saw a changed model card: re-partition and retry
            # (fresh groups have cold caches, so this is a full eval).
            plan = BatchPlan(self.circuit, layout)
            layout.batch_plan = plan
            return self._assemble_batched_with(
                plan, x, t, source_scale, c0, d1, q_prev, qdot_prev,
                gmin)
        except _SlotMismatch:
            # An element's add_dot count disagrees with the discovery
            # pass.  Before this assembler has a baseline count, fall
            # back to the scalar path (which establishes one) so the
            # inconsistency is diagnosed on a *subsequent* assembly,
            # matching the scalar path's contract.
            if self._q_count is not None:
                raise
            return self._assemble_scalar(x, t, source_scale, c0, d1,
                                         q_prev, qdot_prev, gmin)

    def _assemble_batched_with(self, plan, x, t, source_scale, c0, d1,
                               q_prev, qdot_prev, gmin):
        layout = self.layout
        n = layout.n
        nn = layout.num_nodes
        started = perf_counter()
        x_ext = layout.extend(x)
        if self._F_buf is None:
            self._F_buf = np.empty(n + 1)
        q_now = np.zeros(plan.q_count)
        if plan.leftover:
            # Ungrouped elements stamp through the reference path into
            # the shared charge vector and a triplet stream.
            ctx = StampContext(n, x_ext, t, source_scale, c0, d1,
                               q_prev, qdot_prev, 0, matrix_mode="sparse",
                               q_slots=plan.leftover_q_slots,
                               q_buffer=q_now, F_buffer=self._F_buf)
            for element in plan.leftover:
                element.load(ctx)
            if ctx.charge_count != plan.leftover_q_slots.shape[0]:
                raise _SlotMismatch(
                    f"inconsistent add_dot call count on the "
                    f"scalar-leftover path: {ctx.charge_count} vs "
                    f"{plan.leftover_q_slots.shape[0]}; element load() "
                    f"must be analysis-independent")
            F_ext = ctx.F
            lr = np.asarray(ctx.j_rows, dtype=np.int64)
            lc = np.asarray(ctx.j_cols, dtype=np.int64)
            lv = np.asarray(ctx.j_vals, dtype=float)
        else:
            F_ext = self._F_buf
            F_ext.fill(0.0)
            lr = lc = _EMPTY_INT
            lv = _EMPTY_FLOAT
        if self._q_count is None:
            self._q_count = plan.q_count
        options = self.eval_options
        bypass = options.bypass and not self._force_full
        for group in plan.groups:
            group.eval(x_ext, t, source_scale, c0, d1, q_prev,
                       qdot_prev, q_now, options, bypass)
        mid = perf_counter()

        if plan.groups:
            fvals = np.concatenate([g.fvals for g in plan.groups])
            F_ext += np.bincount(plan.f_rows_all, weights=fvals,
                                 minlength=n + 1)
        F = F_ext[:n].copy()
        if gmin > 0.0:
            F[:nn] += gmin * x[:nn]

        J = self._fold_plan(plan, lr, lc, lv, gmin)
        done = perf_counter()
        profiling.COUNTERS["eval_time"] += mid - started
        profiling.COUNTERS["assemble_time"] += done - mid
        self._force_full = False
        return F, J, q_now

    # -- stacked ensemble path -----------------------------------------------

    def assemble_ensemble(self, X: np.ndarray, *, t: float = 0.0,
                          source_scale: float = 1.0, c0: float = 0.0,
                          d1: float = 0.0,
                          Q_prev: Optional[np.ndarray] = None,
                          Qdot_prev: Optional[np.ndarray] = None,
                          gmin: float = 0.0):
        """Evaluate ``S`` stacked samples of the same circuit at once.

        ``X`` is ``(S, n)``; returns ``(F, J, Q_now)`` of shapes
        ``(S, n)``, ``(S, n, n)`` dense, and ``(S, q_count)``.  Sample
        ``s`` of the result is bit-identical to a scalar ``assemble``
        at ``X[s]`` with the same per-sample device parameters
        installed: the grouped kernels broadcast over the leading
        ensemble axis, and both folds run ``bincount`` with per-sample
        row offsets, which preserves the scalar fold's per-bin input
        order exactly.  Ungrouped (leftover) elements stamp through the
        scalar reference path once per sample.

        ``PlanStale`` propagates to the caller (the ensemble solver
        owns the per-sample parameter arrays installed on the plan's
        groups, so only it can rebuild and re-install consistently).
        """
        layout = self.layout
        n = layout.n
        nn = layout.num_nodes
        plan = getattr(layout, "batch_plan", None)
        if plan is None or plan.n_elements != len(self.circuit.elements):
            plan = BatchPlan(self.circuit, layout)
            layout.batch_plan = plan
        if layout.sparse_pattern is None or plan.fold_cache is None:
            # One scalar warm-up assembly builds the shared symbolic
            # state (sparse pattern, fold slot map); values discarded.
            self.assemble(X[0], t=t, source_scale=source_scale)
            if layout.batch_plan is not plan:
                raise PlanStale(
                    "batch plan rebuilt during the ensemble warm-up "
                    "assembly; re-install per-sample parameters and "
                    "retry")
        S = X.shape[0]
        started = perf_counter()
        X_ext = np.zeros((S, n + 1))
        X_ext[:, :n] = X
        Q_now = np.zeros((S, plan.q_count))
        F_ext = np.zeros((S, n + 1))
        if plan.leftover:
            lr = lc = None
            lv_rows = []
            for s in range(S):
                ctx = StampContext(
                    n, X_ext[s], t, source_scale, c0, d1,
                    Q_prev[s] if Q_prev is not None else None,
                    Qdot_prev[s] if Qdot_prev is not None else None,
                    0, matrix_mode="sparse",
                    q_slots=plan.leftover_q_slots,
                    q_buffer=Q_now[s], F_buffer=F_ext[s])
                for element in plan.leftover:
                    element.load(ctx)
                if ctx.charge_count != plan.leftover_q_slots.shape[0]:
                    raise _SlotMismatch(
                        f"inconsistent add_dot call count on the "
                        f"ensemble leftover path: {ctx.charge_count} vs "
                        f"{plan.leftover_q_slots.shape[0]}")
                if lr is None:
                    lr = np.asarray(ctx.j_rows, dtype=np.int64)
                    lc = np.asarray(ctx.j_cols, dtype=np.int64)
                lv_rows.append(np.asarray(ctx.j_vals, dtype=float))
            LV = np.asarray(lv_rows)
        else:
            lr = lc = _EMPTY_INT
            LV = np.zeros((S, 0))
        if self._q_count is None:
            self._q_count = plan.q_count
        options = self.eval_options
        for group in plan.groups:
            group.eval(X_ext, t, source_scale, c0, d1, Q_prev,
                       Qdot_prev, Q_now, options, False)
        mid = perf_counter()

        if plan.groups:
            fvals = np.concatenate([g.fvals_s for g in plan.groups],
                                   axis=1)
            rows = (plan.f_rows_all[None, :]
                    + (n + 1) * np.arange(S)[:, None]).ravel()
            F_ext += np.bincount(
                rows, weights=fvals.ravel(),
                minlength=S * (n + 1)).reshape(S, n + 1)
        F = F_ext[:, :n].copy()
        if gmin > 0.0:
            F[:, :nn] += gmin * X[:, :nn]

        J = self._fold_plan_ensemble(plan, lr, lc, LV, gmin, S)
        done = perf_counter()
        profiling.COUNTERS["eval_time"] += mid - started
        profiling.COUNTERS["assemble_time"] += done - mid
        return F, J, Q_now

    def _fold_plan_ensemble(self, plan, lr, lc, LV, gmin: float,
                            S: int) -> np.ndarray:
        """Stacked counterpart of :meth:`_fold_plan`.

        The warm path reuses the scalar fold cache's slot map with a
        per-sample offset and scatters every sample's deduplicated CSC
        data through the cached dense positions in one fancy-index
        write.  If the cache does not match (leftover stream moved),
        each sample folds through the reference triplet path and the
        cache is rebuilt for the next call.
        """
        layout = self.layout
        n = layout.n
        nn = layout.num_nodes
        pattern = getattr(layout, "sparse_pattern", None)
        cache = plan.fold_cache
        if (cache is not None and cache[0] is pattern
                and lr.shape[0] == cache[1].shape[0]
                and np.array_equal(lr, cache[1])
                and np.array_equal(lc, cache[2])):
            full_slot = cache[3]
            width = pattern.nnz + 1
            gdiag = np.full((S, nn), gmin)
            vals = np.concatenate(
                [g.jvals_s for g in plan.groups] + [LV, gdiag], axis=1)
            slots = (full_slot[None, :]
                     + width * np.arange(S)[:, None]).ravel()
            data = np.bincount(
                slots, weights=vals.ravel(),
                minlength=S * width).reshape(S, width)[:, :pattern.nnz]
            scatter = plan.dense_scatter
            if scatter is None or scatter[0] is not pattern:
                flat_cols = np.repeat(np.arange(n, dtype=np.int64),
                                      np.diff(pattern.indptr))
                scatter = (pattern,
                           pattern.indices.astype(np.int64) * n
                           + flat_cols)
                plan.dense_scatter = scatter
            J = np.zeros((S, n, n))
            J.reshape(S, n * n)[:, scatter[1]] = data
            return J
        rows = np.concatenate([g.j_rows for g in plan.groups] + [lr])
        cols = np.concatenate([g.j_cols for g in plan.groups] + [lc])
        J = np.empty((S, n, n))
        for s in range(S):
            vals = np.concatenate([g.jvals_s[s] for g in plan.groups]
                                  + [LV[s]])
            J[s] = self._fold_triplets(rows, cols, vals, gmin,
                                       dense=True, plan=plan)
        pattern = layout.sparse_pattern
        keep = np.concatenate(((rows != n) & (cols != n),
                               np.ones(nn, dtype=bool)))
        full_slot = np.full(keep.shape[0], pattern.nnz, dtype=np.int64)
        full_slot[keep] = pattern.slot
        plan.fold_cache = (pattern, lr, lc, full_slot, np.empty(nn))
        return J

    # -- shared matrix fold --------------------------------------------------

    def _fold_plan(self, plan, lr, lc, lv, gmin: float):
        """Fold the plan's group triplets plus the scalar leftovers.

        Group (row, col) streams are frozen at plan build time, so
        after one symbolic fold the whole pipeline — drop ground
        entries, dedup into CSC slots, append the gmin diagonal — is
        captured in a single slot map cached on the plan (ground
        entries route to a trash bin past ``nnz``).  A steady-state
        fold is then one value concatenate and one ``bincount``, which
        preserves the slow path's per-slot summation order and hence
        its bit-exact result.  The cache is revalidated against the
        leftover-element stream (the only part that could move) and
        the layout's shared pattern object each call.
        """
        layout = self.layout
        pattern = getattr(layout, "sparse_pattern", None)
        dense = self.matrix_mode == "dense"
        cache = plan.fold_cache
        if (cache is not None and cache[0] is pattern
                and lr.shape[0] == cache[1].shape[0]
                and np.array_equal(lr, cache[1])
                and np.array_equal(lc, cache[2])):
            full_slot, diag_vals = cache[3], cache[4]
            diag_vals.fill(gmin)
            vals = np.concatenate(
                [g.jvals for g in plan.groups] + [lv, diag_vals])
            data = np.bincount(full_slot, weights=vals,
                               minlength=pattern.nnz + 1)[:pattern.nnz]
            return self._matrix_from_pattern(plan, pattern, data, dense)
        rows = np.concatenate([g.j_rows for g in plan.groups] + [lr])
        cols = np.concatenate([g.j_cols for g in plan.groups] + [lc])
        vals = np.concatenate([g.jvals for g in plan.groups] + [lv])
        J = self._fold_triplets(rows, cols, vals, gmin, dense=dense,
                                plan=plan)
        n = layout.n
        nn = layout.num_nodes
        pattern = layout.sparse_pattern
        keep = np.concatenate(((rows != n) & (cols != n),
                               np.ones(nn, dtype=bool)))
        full_slot = np.full(keep.shape[0], pattern.nnz, dtype=np.int64)
        full_slot[keep] = pattern.slot
        plan.fold_cache = (pattern, lr, lc, full_slot, np.empty(nn))
        return J

    def _matrix_from_pattern(self, plan, pattern, data, dense: bool):
        """Wrap pre-folded CSC data as the requested matrix type."""
        n = self.layout.n
        if not dense:
            from scipy.sparse import csc_matrix
            return csc_matrix((data, pattern.indices, pattern.indptr),
                              shape=(n, n))
        scatter = plan.dense_scatter
        if scatter is None or scatter[0] is not pattern:
            flat_cols = np.repeat(np.arange(n, dtype=np.int64),
                                  np.diff(pattern.indptr))
            scatter = (pattern,
                       pattern.indices.astype(np.int64) * n + flat_cols)
            plan.dense_scatter = scatter
        J = np.zeros((n, n))
        J.ravel()[scatter[1]] = data
        return J

    def _fold_triplets(self, j_rows, j_cols, j_vals, gmin: float,
                       dense: bool, plan=None):
        """Fold a COO triplet stream into the ``n x n`` Jacobian.

        Ground-row/column triplets are dropped (the sparse equivalent
        of the dense path's ``J[:n, :n]`` slice) and the node-diagonal
        gmin entries are appended unconditionally — with value 0 when
        gmin is off — so the structure is identical across homotopy
        strategies and the cached :class:`SparsePattern` stays valid.
        With ``dense=True`` the deduplicated values are scattered into
        a fresh dense array through flat positions cached on the plan,
        so the dense and sparse batched Jacobians are bit-identical.
        """
        layout = self.layout
        n = layout.n
        nn = layout.num_nodes
        rows = np.asarray(j_rows, dtype=np.int64)
        cols = np.asarray(j_cols, dtype=np.int64)
        vals = np.asarray(j_vals, dtype=float)
        keep = (rows != n) & (cols != n)
        if not np.all(keep):
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        diag = np.arange(nn, dtype=np.int64)
        rows = np.concatenate((rows, diag))
        cols = np.concatenate((cols, diag))
        vals = np.concatenate((vals, np.full(nn, gmin)))
        pattern = getattr(layout, "sparse_pattern", None)
        if pattern is None or not pattern.matches(rows, cols):
            pattern = SparsePattern(rows, cols, n)
            layout.sparse_pattern = pattern
        if not dense:
            return pattern.assemble(vals)
        if plan is not None:
            return self._matrix_from_pattern(plan, pattern,
                                             pattern.fold(vals), dense)
        flat_cols = np.repeat(np.arange(n, dtype=np.int64),
                              np.diff(pattern.indptr))
        flat = pattern.indices.astype(np.int64) * n + flat_cols
        J = np.zeros((n, n))
        J.ravel()[flat] = pattern.fold(vals)
        return J

    @property
    def charge_count(self) -> int:
        """Number of charge-history slots (discovered on first assembly)."""
        if self._q_count is None:
            x = self.layout.x_default
            self.assemble(x)
        return self._q_count

"""Modified nodal analysis: system layout, stamping context, assembler.

The unknown vector is laid out as::

    x = [ V(node_0) .. V(node_{nn-1}) | branch currents | internal states ]

Internally an *extended* vector of length ``n + 1`` is used whose last
entry is the ground voltage, pinned at zero.  Elements stamp terminal
contributions unconditionally (including ground terminals); the ground row
and column are simply discarded when the linear system is solved.  This
keeps element code free of ground special-casing.

Time derivatives are handled uniformly: an element calls
:meth:`StampContext.add_dot` with a charge/flux-like quantity ``q`` and
its partial derivatives, meaning "add ``dq/dt`` to this residual row".
The context applies the active integration formula:

* DC: no contribution (capacitors open, inductors short, states at
  equilibrium), but ``q`` is still recorded to initialise transient runs;
* backward Euler: ``(q - q_prev) / h``;
* trapezoidal: ``2 (q - q_prev) / h - qdot_prev``.

Charge history slots are identified by call order, which is deterministic
because elements are loaded in netlist order and must call ``add_dot`` an
analysis-independent number of times.

The Jacobian can be accumulated two ways, selected by the assembler's
``matrix_mode``:

* ``"dense"`` (default): stamps write straight into a dense
  ``(n+1, n+1)`` array — the seed behaviour, optimal for tiny systems;
* ``"sparse"``: stamps append COO triplets which the assembler folds
  into a ``scipy.sparse`` CSC matrix through a :class:`SparsePattern`
  cached on the layout.  Element ``load()`` code is identical in both
  modes; in sparse mode ``add_dot`` appends its (zero-valued) entries
  even under DC so the sparsity structure is analysis-invariant and the
  cached pattern survives across DC, homotopy and transient assemblies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.netlist import Circuit, is_ground
from repro.errors import NetlistError

#: Default KCL residual tolerance for node rows [A].
NODE_TOL = 1e-9
#: Default residual tolerance for branch rows [V].
BRANCH_TOL = 1e-9
#: Default residual tolerance for (dimensionless) state rows.
STATE_TOL = 1e-9
#: Default per-iteration Newton clamp for node voltages [V].
NODE_DX_LIMIT = 0.4
#: Default per-iteration Newton clamp for branch currents [A].
BRANCH_DX_LIMIT = np.inf


class SystemLayout:
    """Index assignment for a circuit's MNA unknowns.

    Attributes
    ----------
    n:
        Number of unknowns (excluding the pinned ground entry).
    ground:
        Index of the ground entry in the extended vector (equals ``n``).
    """

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self._node_index: Dict[str, int] = {
            name: i for i, name in enumerate(circuit.nodes)}
        nn = len(self._node_index)

        self._branch_start: Dict[str, int] = {}
        cursor = nn
        for element in circuit.elements:
            if element.branch_count:
                self._branch_start[element.name] = cursor
                cursor += element.branch_count
        self.num_branches = cursor - nn

        self._state_start: Dict[str, int] = {}
        state_names: List[Tuple[str, str]] = []
        for element in circuit.elements:
            if element.state_count:
                self._state_start[element.name] = cursor
                for sname in element.state_names():
                    state_names.append((element.name, sname))
                cursor += element.state_count
        self.num_states = cursor - nn - self.num_branches

        self.num_nodes = nn
        self.n = cursor
        self.ground = cursor  # extended-vector slot pinned to zero
        self._state_names = state_names
        #: Lazily built by sparse-mode assemblers; shared across every
        #: assembler bound to this layout (sweeps, transient restarts).
        self.sparse_pattern: Optional["SparsePattern"] = None

        # Per-row residual tolerances and per-unknown Newton clamps.
        tol = np.empty(self.n)
        tol[:nn] = NODE_TOL
        tol[nn:nn + self.num_branches] = BRANCH_TOL
        dx = np.empty(self.n)
        dx[:nn] = NODE_DX_LIMIT
        dx[nn:nn + self.num_branches] = BRANCH_DX_LIMIT
        x0 = np.zeros(self.n)
        for element in circuit.elements:
            if element.state_count:
                s0 = self._state_start[element.name]
                s1 = s0 + element.state_count
                tol[s0:s1] = STATE_TOL
                dx[s0:s1] = element.state_dx_limit()
                x0[s0:s1] = element.state_initial()
        self.row_tol = tol
        self.dx_limit = dx
        self.x_default = x0

        for element in circuit.elements:
            element.bind(self)

    # -- index resolution ---------------------------------------------------

    def node_index(self, name: str) -> int:
        """Extended-vector index of a node (ground maps to the pinned slot)."""
        if is_ground(name):
            return self.ground
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node '{name}'") from None

    def branch_start(self, element) -> int:
        """First branch-current index of ``element`` (or -1 if none)."""
        return self._branch_start.get(element.name, -1)

    def state_start(self, element) -> int:
        """First internal-state index of ``element`` (or -1 if none)."""
        return self._state_start.get(element.name, -1)

    def state_index(self, element_name: str, state_name: str) -> int:
        """Index of a named internal state of a named element."""
        element = self.circuit[element_name]
        names = element.state_names()
        try:
            offset = names.index(state_name)
        except ValueError:
            raise NetlistError(
                f"element '{element_name}' has no state '{state_name}' "
                f"(has {names})") from None
        return self._state_start[element_name] + offset

    def extend(self, x: np.ndarray) -> np.ndarray:
        """Append the pinned ground entry to a solution vector."""
        out = np.empty(self.n + 1)
        out[:self.n] = x
        out[self.n] = 0.0
        return out


class StampContext:
    """Mutable accumulation target passed to :meth:`Element.load`.

    Attributes
    ----------
    x:
        Extended solution vector (``x[layout.ground] == 0``).
    t:
        Evaluation time in seconds (0 for DC).
    source_scale:
        Homotopy multiplier applied by sources to their values.
    matrix_mode:
        ``"dense"`` accumulates the Jacobian in :attr:`J`; ``"sparse"``
        appends COO triplets to :attr:`j_rows`/:attr:`j_cols`/
        :attr:`j_vals` instead (:attr:`J` is ``None``).
    """

    __slots__ = ("x", "t", "source_scale", "F", "J", "c0", "d1",
                 "q_now", "q_prev", "qdot_prev", "_qk",
                 "matrix_mode", "j_rows", "j_cols", "j_vals")

    def __init__(self, n: int, x_ext: np.ndarray, t: float,
                 source_scale: float, c0: float, d1: float,
                 q_prev: Optional[np.ndarray],
                 qdot_prev: Optional[np.ndarray],
                 q_capacity: int, matrix_mode: str = "dense"):
        if matrix_mode not in ("dense", "sparse"):
            raise ValueError(f"unknown matrix mode '{matrix_mode}'")
        self.x = x_ext
        self.t = t
        self.source_scale = source_scale
        # Extended residual/Jacobian; ground row/column discarded at solve.
        self.F = np.zeros(n + 1)
        self.matrix_mode = matrix_mode
        if matrix_mode == "dense":
            self.J = np.zeros((n + 1, n + 1))
            self.j_rows = self.j_cols = self.j_vals = None
        else:
            self.J = None
            self.j_rows: List[int] = []
            self.j_cols: List[int] = []
            self.j_vals: List[float] = []
        self.c0 = c0
        self.d1 = d1
        self.q_now = np.zeros(q_capacity) if q_capacity else None
        self.q_prev = q_prev
        self.qdot_prev = qdot_prev
        self._qk = 0

    def add(self, row: int, value: float, cols, derivs) -> None:
        """Add a static residual term and its partial derivatives."""
        self.F[row] += value
        if self.J is not None:
            J_row = self.J[row]
            for col, d in zip(cols, derivs):
                J_row[col] += d
        else:
            for col, d in zip(cols, derivs):
                self.j_rows.append(row)
                self.j_cols.append(col)
                self.j_vals.append(d)

    def add_dot(self, row: int, q: float, cols, derivs) -> None:
        """Add ``d/dt`` of quantity ``q`` to residual row ``row``.

        ``cols``/``derivs`` are the partials of ``q`` with respect to
        unknowns.  Under DC (``c0 == 0``) nothing is added, but ``q`` is
        recorded for transient initialisation.  In sparse mode the
        (then zero-valued) Jacobian entries are still appended so the
        sparsity pattern does not depend on the analysis.
        """
        k = self._qk
        self._qk = k + 1
        if self.q_now is None:
            # Discovery pass: grow implicitly via list-free double buffer.
            raise RuntimeError("StampContext created without charge slots")
        if k >= self.q_now.shape[0]:
            # Grow during the discovery assembly.
            grown = np.zeros(max(16, 2 * self.q_now.shape[0]))
            grown[:self.q_now.shape[0]] = self.q_now
            self.q_now = grown
        self.q_now[k] = q
        c0 = self.c0
        if self.J is None:
            for col, d in zip(cols, derivs):
                self.j_rows.append(row)
                self.j_cols.append(col)
                self.j_vals.append(c0 * d)
        if c0 == 0.0:
            return
        hist = -c0 * self.q_prev[k]
        if self.d1 != 0.0:
            hist += self.d1 * self.qdot_prev[k]
        self.F[row] += c0 * q + hist
        if self.J is not None:
            J_row = self.J[row]
            for col, d in zip(cols, derivs):
                J_row[col] += c0 * d

    @property
    def charge_count(self) -> int:
        """Number of ``add_dot`` slots used in this assembly."""
        return self._qk


class SparsePattern:
    """Cached COO-triplet -> CSC scatter map for a fixed structure.

    Element ``load()`` order is deterministic, so the triplet stream of
    one circuit layout always has the same (row, col) sequence.  This
    class does the symbolic work once — sort, dedup, CSC index arrays —
    and every later assembly only scatter-adds the numeric values into
    the fixed structure (:meth:`assemble`), the sparse analogue of
    rewriting a preallocated dense array.
    """

    def __init__(self, rows: np.ndarray, cols: np.ndarray, size: int):
        self.size = size
        self.rows = rows
        self.cols = cols
        if len(rows) == 0:
            self.slot = np.zeros(0, dtype=np.int64)
            self.nnz = 0
            self.indices = np.zeros(0, dtype=np.int32)
            self.indptr = np.zeros(size + 1, dtype=np.int32)
            return
        # CSC order: column-major, rows ascending within a column.
        order = np.lexsort((rows, cols))
        r = rows[order]
        c = cols[order]
        first = np.empty(len(r), dtype=bool)
        first[0] = True
        first[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        slot_sorted = np.cumsum(first) - 1
        slot = np.empty(len(r), dtype=np.int64)
        slot[order] = slot_sorted
        self.slot = slot
        self.nnz = int(slot_sorted[-1]) + 1
        self.indices = r[first].astype(np.int32)
        counts = np.bincount(c[first], minlength=size)
        self.indptr = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int32)

    def matches(self, rows: np.ndarray, cols: np.ndarray) -> bool:
        """Whether a triplet stream has exactly this structure."""
        return (len(rows) == len(self.rows)
                and np.array_equal(rows, self.rows)
                and np.array_equal(cols, self.cols))

    def assemble(self, vals: np.ndarray):
        """Sum ``vals`` into the cached structure; returns CSC."""
        from scipy.sparse import csc_matrix
        data = np.zeros(self.nnz)
        np.add.at(data, self.slot, vals)
        return csc_matrix((data, self.indices, self.indptr),
                          shape=(self.size, self.size))


class Assembler:
    """Evaluates the MNA residual and Jacobian for a bound circuit.

    ``matrix_mode`` selects the Jacobian representation returned by
    :meth:`assemble`: a dense ``np.ndarray`` (``"dense"``, default) or
    a ``scipy.sparse`` CSC matrix (``"sparse"``).  The residual is a
    dense vector either way.  The sparse scatter pattern is cached on
    the layout, so assemblers sharing a layout (a DC sweep, a transient
    run) pay the symbolic analysis once.
    """

    def __init__(self, circuit: Circuit,
                 layout: Optional[SystemLayout] = None,
                 matrix_mode: str = "dense"):
        if matrix_mode not in ("dense", "sparse"):
            raise ValueError(f"unknown matrix mode '{matrix_mode}'")
        self.circuit = circuit
        self.layout = layout if layout is not None else SystemLayout(circuit)
        self.matrix_mode = matrix_mode
        self._q_capacity = 16
        self._q_count: Optional[int] = None

    def assemble(self, x: np.ndarray, *, t: float = 0.0,
                 source_scale: float = 1.0, c0: float = 0.0, d1: float = 0.0,
                 q_prev: Optional[np.ndarray] = None,
                 qdot_prev: Optional[np.ndarray] = None,
                 gmin: float = 0.0):
        """Evaluate residual ``F`` and Jacobian ``J`` at solution ``x``.

        Returns ``(F, J, q_now)`` where ``F``/``J`` are restricted to the
        non-ground unknowns and ``q_now`` holds the charge-like quantities
        recorded by ``add_dot`` calls (for integrator history updates).
        ``J`` is dense or CSC according to the assembler's
        ``matrix_mode``.
        """
        layout = self.layout
        n = layout.n
        x_ext = layout.extend(x)
        ctx = StampContext(n, x_ext, t, source_scale, c0, d1,
                           q_prev, qdot_prev, self._q_capacity,
                           matrix_mode=self.matrix_mode)
        for element in self.circuit.elements:
            element.load(ctx)
        if self._q_count is None:
            self._q_count = ctx.charge_count
            self._q_capacity = max(self._q_count, 1)
        elif ctx.charge_count != self._q_count:
            raise RuntimeError(
                f"inconsistent add_dot call count: {ctx.charge_count} vs "
                f"{self._q_count}; element load() must be "
                f"analysis-independent")
        F = ctx.F[:n].copy()
        nn = layout.num_nodes
        if gmin > 0.0:
            F[:nn] += gmin * x[:nn]
        if ctx.J is not None:
            J = ctx.J[:n, :n].copy()
            if gmin > 0.0:
                J[:nn, :nn] += gmin * np.eye(nn)
        else:
            J = self._assemble_sparse(ctx, gmin)
        q_now = (ctx.q_now[:self._q_count].copy()
                 if ctx.q_now is not None else np.zeros(0))
        return F, J, q_now

    def _assemble_sparse(self, ctx: StampContext, gmin: float):
        """Fold the context's COO triplets into an ``n x n`` CSC matrix.

        Ground-row/column triplets are dropped (the sparse equivalent of
        the dense path's ``J[:n, :n]`` slice) and the node-diagonal gmin
        entries are appended unconditionally — with value 0 when gmin is
        off — so the structure is identical across homotopy strategies
        and the cached :class:`SparsePattern` stays valid.
        """
        layout = self.layout
        n = layout.n
        nn = layout.num_nodes
        rows = np.asarray(ctx.j_rows, dtype=np.int64)
        cols = np.asarray(ctx.j_cols, dtype=np.int64)
        vals = np.asarray(ctx.j_vals, dtype=float)
        keep = (rows != n) & (cols != n)
        if not np.all(keep):
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        diag = np.arange(nn, dtype=np.int64)
        rows = np.concatenate((rows, diag))
        cols = np.concatenate((cols, diag))
        vals = np.concatenate((vals, np.full(nn, gmin)))
        pattern = getattr(layout, "sparse_pattern", None)
        if pattern is None or not pattern.matches(rows, cols):
            pattern = SparsePattern(rows, cols, n)
            layout.sparse_pattern = pattern
        return pattern.assemble(vals)

    @property
    def charge_count(self) -> int:
        """Number of charge-history slots (discovered on first assembly)."""
        if self._q_count is None:
            x = self.layout.x_default
            self.assemble(x)
        return self._q_count

"""Basic circuit elements and the :class:`Element` stamping interface.

Every element participates in modified nodal analysis (MNA) through the
:meth:`Element.load` method, which adds the element's contribution to the
system residual ``F(x) = 0`` and its Jacobian.  The residual rows are:

* one Kirchhoff-current-law (KCL) row per non-ground node — the sum of
  currents *leaving* the node through all elements must be zero;
* one branch row per voltage-defined element (voltage sources, inductors);
* element-declared internal-state rows (used by electromechanical devices).

Time derivatives are expressed through :meth:`StampContext.add_dot`, which
lets the same ``load`` implementation serve DC and transient analyses: the
context inserts the active integration formula (nothing for DC, backward
Euler or trapezoidal companion terms for transient).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.circuit.waveforms import Waveform, as_waveform
from repro.errors import NetlistError


class Element:
    """Base class for all circuit elements.

    Parameters
    ----------
    name:
        Unique element name within its circuit.
    nodes:
        Terminal node names, in the element's canonical terminal order.
    """

    #: Number of terminals the element expects; ``None`` disables the check.
    TERMINALS: int = None

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("element name must be non-empty")
        nodes = tuple(str(n) for n in nodes)
        if self.TERMINALS is not None and len(nodes) != self.TERMINALS:
            raise NetlistError(
                f"{type(self).__name__} '{name}' needs {self.TERMINALS} "
                f"terminals, got {len(nodes)}")
        self.name = str(name)
        self.nodes = nodes
        # Resolved by bind(): extended-vector indices of the terminals.
        self._n: Tuple[int, ...] = ()
        # Resolved by bind(): first branch row / first state row indices.
        self._branch0: int = -1
        self._state0: int = -1

    # -- system sizing ------------------------------------------------------

    @property
    def branch_count(self) -> int:
        """Number of branch-current unknowns this element introduces."""
        return 0

    @property
    def state_count(self) -> int:
        """Number of internal-state unknowns this element introduces."""
        return 0

    def state_names(self) -> Tuple[str, ...]:
        """Names of internal states, parallel to their unknown slots."""
        return ()

    def state_initial(self) -> np.ndarray:
        """Initial guess for the internal states."""
        return np.zeros(self.state_count)

    def state_dx_limit(self) -> np.ndarray:
        """Per-iteration Newton update clamp for each internal state."""
        return np.full(self.state_count, np.inf)

    # -- binding and stamping ----------------------------------------------

    def bind(self, layout) -> None:
        """Resolve node/branch/state indices against a system layout."""
        self._n = tuple(layout.node_index(n) for n in self.nodes)
        self._branch0 = layout.branch_start(self)
        self._state0 = layout.state_start(self)

    def load(self, ctx) -> None:
        """Add this element's residual and Jacobian contributions."""
        raise NotImplementedError

    # -- batched evaluation --------------------------------------------------

    def batch_key(self):
        """Grouping key for batched evaluation, or ``None``.

        Elements returning the same (hashable) key are evaluated
        together by the group :meth:`make_batch_group` builds; ``None``
        (the default) keeps the element on the scalar ``load`` path.
        See :mod:`repro.circuit.batch`.
        """
        return None

    @staticmethod
    def make_batch_group(members, q_bases, layout):
        """Build the :class:`~repro.circuit.batch.BatchGroup` for a set
        of elements that share this element's ``batch_key``."""
        raise NotImplementedError

    def breakpoints(self, tstop: float):
        """Transient breakpoints contributed by this element."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes!r})"


class Resistor(Element):
    """Linear resistor between two nodes."""

    TERMINALS = 2

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, (a, b))
        if resistance <= 0:
            raise NetlistError(
                f"resistor '{name}' must have positive resistance, "
                f"got {resistance}")
        self.resistance = float(resistance)

    def load(self, ctx) -> None:
        a, b = self._n
        g = 1.0 / self.resistance
        i = g * (ctx.x[a] - ctx.x[b])
        ctx.add(a, i, (a, b), (g, -g))
        ctx.add(b, -i, (a, b), (-g, g))

    def batch_key(self):
        return ("resistor",)

    @staticmethod
    def make_batch_group(members, q_bases, layout):
        from repro.circuit.batch import ResistorGroup
        return ResistorGroup(members, q_bases, layout)


class Capacitor(Element):
    """Linear capacitor between two nodes.

    The optional ``ic`` initial condition is applied when transient
    analysis is started with ``initial='ic'``.
    """

    TERMINALS = 2

    def __init__(self, name: str, a: str, b: str, capacitance: float,
                 ic: float = None):
        super().__init__(name, (a, b))
        if capacitance <= 0:
            raise NetlistError(
                f"capacitor '{name}' must have positive capacitance, "
                f"got {capacitance}")
        self.capacitance = float(capacitance)
        self.ic = None if ic is None else float(ic)

    def load(self, ctx) -> None:
        a, b = self._n
        c = self.capacitance
        q = c * (ctx.x[a] - ctx.x[b])
        ctx.add_dot(a, q, (a, b), (c, -c))
        ctx.add_dot(b, -q, (a, b), (-c, c))

    def batch_key(self):
        return ("capacitor",)

    @staticmethod
    def make_batch_group(members, q_bases, layout):
        from repro.circuit.batch import CapacitorGroup
        return CapacitorGroup(members, q_bases, layout)


class Inductor(Element):
    """Linear inductor; introduces one branch-current unknown."""

    TERMINALS = 2

    def __init__(self, name: str, a: str, b: str, inductance: float,
                 ic: float = None):
        super().__init__(name, (a, b))
        if inductance <= 0:
            raise NetlistError(
                f"inductor '{name}' must have positive inductance, "
                f"got {inductance}")
        self.inductance = float(inductance)
        self.ic = None if ic is None else float(ic)

    @property
    def branch_count(self) -> int:
        return 1

    def load(self, ctx) -> None:
        a, b = self._n
        j = self._branch0
        i = ctx.x[j]
        # KCL: branch current leaves node a, enters node b.
        ctx.add(a, i, (j,), (1.0,))
        ctx.add(b, -i, (j,), (-1.0,))
        # Branch equation: v(a) - v(b) - L di/dt = 0.
        ctx.add(j, ctx.x[a] - ctx.x[b], (a, b), (1.0, -1.0))
        ctx.add_dot(j, -self.inductance * i, (j,), (-self.inductance,))


class VoltageSource(Element):
    """Independent voltage source; introduces one branch-current unknown.

    ``value`` may be a number (DC level) or any :class:`Waveform`.  The
    branch current is defined as flowing *into* the positive terminal from
    the external circuit, i.e. a source delivering power has a negative
    branch current.
    """

    TERMINALS = 2

    def __init__(self, name: str, positive: str, negative: str, value=0.0,
                 ac: float = 0.0):
        super().__init__(name, (positive, negative))
        self.waveform: Waveform = as_waveform(value)
        #: Small-signal excitation magnitude for AC analysis [V].
        self.ac = float(ac)

    @property
    def branch_count(self) -> int:
        return 1

    @property
    def value(self):
        """The waveform; assign a float or a waveform to change it."""
        return self.waveform

    @value.setter
    def value(self, new_value) -> None:
        self.waveform = as_waveform(new_value)

    def load(self, ctx) -> None:
        a, b = self._n
        j = self._branch0
        i = ctx.x[j]
        ctx.add(a, i, (j,), (1.0,))
        ctx.add(b, -i, (j,), (-1.0,))
        vs = ctx.source_scale * self.waveform.value(ctx.t)
        ctx.add(j, ctx.x[a] - ctx.x[b] - vs, (a, b), (1.0, -1.0))

    def batch_key(self):
        # The group samples each member's waveform at eval time, so one
        # group covers every source regardless of waveform type.
        return ("vsource",)

    @staticmethod
    def make_batch_group(members, q_bases, layout):
        from repro.circuit.batch import VsourceGroup
        return VsourceGroup(members, q_bases, layout)

    def breakpoints(self, tstop: float):
        return self.waveform.breakpoints(tstop)


class CurrentSource(Element):
    """Independent current source from the positive to the negative node."""

    TERMINALS = 2

    def __init__(self, name: str, positive: str, negative: str, value=0.0,
                 ac: float = 0.0):
        super().__init__(name, (positive, negative))
        self.waveform: Waveform = as_waveform(value)
        #: Small-signal excitation magnitude for AC analysis [A].
        self.ac = float(ac)

    @property
    def value(self):
        return self.waveform

    @value.setter
    def value(self, new_value) -> None:
        self.waveform = as_waveform(new_value)

    def load(self, ctx) -> None:
        a, b = self._n
        i = ctx.source_scale * self.waveform.value(ctx.t)
        # Current i flows out of node a (leaving), into node b.
        ctx.add(a, i, (), ())
        ctx.add(b, -i, (), ())

    def batch_key(self):
        return ("isource",)

    @staticmethod
    def make_batch_group(members, q_bases, layout):
        from repro.circuit.batch import IsourceGroup
        return IsourceGroup(members, q_bases, layout)

    def breakpoints(self, tstop: float):
        return self.waveform.breakpoints(tstop)

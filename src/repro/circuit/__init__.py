"""Circuit description and modified-nodal-analysis (MNA) substrate.

This package provides the SPICE-like foundation the paper's experiments
run on: a :class:`~repro.circuit.netlist.Circuit` builder, passive and
source elements, waveform generators, and the MNA system assembler that
turns a circuit into residual/Jacobian evaluations for the Newton solver.
"""

from repro.circuit.netlist import Circuit, GROUND_NAMES, is_ground
from repro.circuit.elements import (
    Element,
    Resistor,
    Capacitor,
    Inductor,
    VoltageSource,
    CurrentSource,
)
from repro.circuit.waveforms import Waveform, DC, Pulse, PiecewiseLinear, Sine
from repro.circuit.mna import SystemLayout, Assembler, StampContext

__all__ = [
    "Circuit",
    "GROUND_NAMES",
    "is_ground",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Waveform",
    "DC",
    "Pulse",
    "PiecewiseLinear",
    "Sine",
    "SystemLayout",
    "Assembler",
    "StampContext",
]

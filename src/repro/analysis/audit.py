"""Per-element power auditing of transient results.

Decomposes a transient run's energy flow element by element: for each
accepted time point, every element's *static* terminal currents are
re-evaluated from the stored solution and multiplied by the terminal
voltages.  Static currents capture dissipation (channels, resistors)
and source delivery; capacitive/inductive ``add_dot`` terms are
excluded, so lossless storage elements audit to ~zero net energy over a
cycle.

This is the instrument behind the switching-power story of the paper's
Figure 10: it separates the CMOS gate's keeper-contention energy from
the capacitive energy both gate styles share — see
``repro.experiments.ext_power_breakdown``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import measure
from repro.analysis.transient import TransientResult
from repro.circuit.mna import SystemLayout


class _ProbeContext:
    """Stamp-context stand-in that records one element's currents.

    Presents the same interface elements stamp against, with the
    integrator disabled (``add_dot`` is recorded but contributes no
    current) and the Jacobian ignored.
    """

    __slots__ = ("x", "t", "source_scale", "F", "_num_nodes")

    def __init__(self, x_ext: np.ndarray, t: float, num_rows: int,
                 num_nodes: int):
        self.x = x_ext
        self.t = t
        self.source_scale = 1.0
        self.F = np.zeros(num_rows + 1)
        self._num_nodes = num_nodes

    def add(self, row: int, value: float, cols, derivs) -> None:
        self.F[row] += value

    def add_dot(self, row: int, q: float, cols, derivs) -> None:
        pass  # storage elements carry no static dissipation


class PowerAudit:
    """Element-wise power traces over a transient result."""

    def __init__(self, result: TransientResult):
        self.result = result
        self.layout: SystemLayout = result.layout
        self._powers: Dict[str, np.ndarray] = {}
        self._compute()

    def _compute(self) -> None:
        layout = self.layout
        circuit = layout.circuit
        nn = layout.num_nodes
        times = self.result.t
        X = self.result._X
        traces = {e.name: np.zeros(len(times))
                  for e in circuit.elements}
        for k, t in enumerate(times):
            x_ext = layout.extend(X[k])
            volts = x_ext[:nn]
            for element in circuit.elements:
                probe = _ProbeContext(x_ext, float(t), layout.n, nn)
                element.load(probe)
                # Power drawn = sum over node rows of V * I(into elem).
                traces[element.name][k] = float(
                    np.dot(volts, probe.F[:nn]))
        self._powers = traces

    def power(self, element_name: str) -> np.ndarray:
        """Instantaneous power drawn by an element [W].

        Positive = dissipating/absorbing; negative = delivering (as a
        source does).
        """
        try:
            return self._powers[element_name].copy()
        except KeyError:
            raise KeyError(
                f"no element '{element_name}' in the audited circuit"
            ) from None

    def energy(self, element_name: str, t0: Optional[float] = None,
               t1: Optional[float] = None) -> float:
        """Energy drawn by an element over a window [J]."""
        return measure.integrate(self.result.t,
                                 self._powers[element_name], t0, t1)

    def table(self, t0: Optional[float] = None,
              t1: Optional[float] = None,
              threshold: float = 0.0) -> List[Tuple[str, float]]:
        """``(element, energy)`` pairs, largest consumers first."""
        rows = [(name, self.energy(name, t0, t1))
                for name in self._powers]
        rows = [r for r in rows if abs(r[1]) >= threshold]
        return sorted(rows, key=lambda r: -r[1])

    def total(self, t0: Optional[float] = None,
              t1: Optional[float] = None) -> float:
        """Net static energy over a window [J].

        Near zero when the window covers complete cycles: dissipation
        balances source delivery (capacitors shuttle the remainder).
        """
        return sum(self.energy(name, t0, t1) for name in self._powers)

"""Stacked ensemble analyses: lock-step multi-sample DC and transient.

Monte-Carlo and corner studies solve the *same* circuit at many
parameter points.  The classic loop re-runs the scalar analyses once
per sample; this module instead stacks all ``S`` samples into arrays
of shape ``(S, n)`` and advances them in lock-step:

* device groups evaluate once per iteration over the whole stack
  (their kernels are shape-polymorphic, see :mod:`repro.circuit.batch`),
  with per-sample threshold shifts / transconductance scales installed
  as ``(S, m)`` parameter arrays on the MOSFET group;
* the stacked dense Jacobians ``(S, n, n)`` are factorised in one
  batched-LU call (``numpy.linalg.solve``), amortising LAPACK and
  Python overhead across the ensemble;
* Newton runs under a per-sample *active mask*: converged samples
  freeze, diverged samples drop out and are re-solved on the scalar
  reference path (``fallback``), so one hard sample cannot poison its
  neighbours;
* the lock-step transient shares one time grid across samples —
  steps are accepted on the max-over-samples LTE ratio and rejected
  when any live sample's Newton fails, which keeps every sample on the
  trusted region of the shared step controller.

The stacked path is numerically the *same algorithm* as the scalar
one — same damped-Newton update, clamping, line search and LTE control
— so per-sample results agree with the sequential loop to solver
tolerance (locked down by ``tests/test_ensemble_parity.py``).  The
*thread-local* toggle :func:`repro.analysis.options.ensemble_override`
forces the sequential reference path for A/B comparison — each thread
resolves its own mode, so one service worker's A/B run never flips a
neighbour's path — and it is folded into the engine cache's ambient
salt so the two modes never alias.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import profiling
from repro.analysis.dc import (
    DCSweepResult,
    OperatingPoint,
    operating_point,
)
from repro.analysis.options import (
    EvalOptions,
    HomotopyOptions,
    NewtonOptions,
    TransientOptions,
    get_ensemble_mode,
    get_eval_options,
    resolve_solver_options,
)
from repro.analysis.solver import (
    SolveEvent,
    emit_solve_event,
    have_solve_observers,
)
from repro.analysis.transient import (
    _TIME_RTOL,
    _collect_breakpoints,
    _lte_estimate,
    StepStats,
    TransientResult,
    transient,
)
from repro.circuit.batch import BatchPlan, PlanStale
from repro.circuit.mna import Assembler, SystemLayout
from repro.circuit.netlist import Circuit, is_ground
from repro.devices.corners import CORNERS, CornerModel
from repro.devices.mosfet import Mosfet
from repro.devices.variation import applied_shifts
from repro.errors import (
    AnalysisError,
    ConvergenceError,
    NetlistError,
    TimestepError,
)

__all__ = [
    "EnsembleSpec",
    "EnsembleOperatingPoint",
    "EnsembleSweepResult",
    "EnsembleTransientResult",
    "corner_ensemble_spec",
    "ensemble_dc",
    "ensemble_sweep",
    "ensemble_transient",
]


def _use_stacked() -> bool:
    """Whether the stacked lock-step path is active for this session.

    The stacked kernels ride on the batched evaluation plan, so scalar
    evaluation mode also forces the sequential reference path.
    """
    return get_ensemble_mode() and get_eval_options().mode == "batched"


class EnsembleSpec:
    """Per-sample device-parameter overrides for an ensemble run.

    ``vth_shift`` maps MOSFET element names to additive threshold
    shifts [V], one value per sample; ``k_scale`` maps names to
    multiplicative transconductance scales.  Devices not named keep
    their nominal parameters in every sample.  Only batched MOSFETs can
    be targeted — naming a NEMFET (whose stochastic model the paper
    does not vary) or an unknown element raises
    :class:`~repro.errors.AnalysisError` when the spec is installed.
    """

    def __init__(self, samples: int,
                 vth_shift: Optional[Mapping[str, Sequence[float]]] = None,
                 k_scale: Optional[Mapping[str, Sequence[float]]] = None):
        self.samples = int(samples)
        if self.samples < 1:
            raise ValueError(
                f"an ensemble needs at least one sample, got {samples}")
        self.vth_shift = self._validated(vth_shift, "vth_shift")
        self.k_scale = self._validated(k_scale, "k_scale")

    def _validated(self, mapping, label) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name, values in (mapping or {}).items():
            arr = np.asarray(values, dtype=float)
            if arr.shape != (self.samples,):
                raise ValueError(
                    f"{label}[{name!r}] must have shape "
                    f"({self.samples},), got {arr.shape}")
            out[str(name)] = arr
        return out

    @classmethod
    def from_shift_maps(cls, shift_maps: Sequence[Mapping[str, float]],
                        k_scale_maps: Optional[
                            Sequence[Mapping[str, float]]] = None
                        ) -> "EnsembleSpec":
        """Build a spec from per-sample ``{name: shift}`` dicts (the
        :func:`~repro.devices.variation.monte_carlo_shifts` format).

        Missing names default to a 0.0 shift / 1.0 scale in that
        sample, so ragged corner maps stack cleanly.
        """
        samples = len(shift_maps)
        names: List[str] = []
        for m in shift_maps:
            for n in m:
                if n not in names:
                    names.append(n)
        vth = {n: np.array([float(m.get(n, 0.0)) for m in shift_maps])
               for n in names}
        ks = None
        if k_scale_maps is not None:
            if len(k_scale_maps) != samples:
                raise ValueError(
                    f"k_scale_maps has {len(k_scale_maps)} entries for "
                    f"{samples} samples")
            knames: List[str] = []
            for m in k_scale_maps:
                for n in m:
                    if n not in knames:
                        knames.append(n)
            ks = {n: np.array([float(m.get(n, 1.0))
                               for m in k_scale_maps])
                  for n in knames}
        return cls(samples, vth_shift=vth, k_scale=ks)

    def shift_map(self, s: int) -> Dict[str, float]:
        """Sample ``s`` as a scalar ``{name: vth_shift}`` map."""
        return {n: float(a[s]) for n, a in self.vth_shift.items()}

    def scale_map(self, s: int) -> Dict[str, float]:
        """Sample ``s`` as a scalar ``{name: k_scale}`` map."""
        return {n: float(a[s]) for n, a in self.k_scale.items()}

    @property
    def device_names(self) -> Tuple[str, ...]:
        """Every device name the spec perturbs, sorted."""
        return tuple(sorted(set(self.vth_shift) | set(self.k_scale)))

    def cache_token(self):
        """Stable content token for the engine result cache."""
        return ("EnsembleSpec", self.samples,
                tuple((n, tuple(map(float, a)))
                      for n, a in sorted(self.vth_shift.items())),
                tuple((n, tuple(map(float, a)))
                      for n, a in sorted(self.k_scale.items())))

    def __repr__(self) -> str:
        return (f"EnsembleSpec(samples={self.samples}, "
                f"devices={list(self.device_names)!r})")


@contextlib.contextmanager
def _applied_sample(circuit: Circuit, spec: EnsembleSpec,
                    s: int) -> Iterator[None]:
    """Apply one sample's parameters to the circuit (scalar fallback).

    Threshold shifts go through the mutable ``vth_shift`` attribute;
    transconductance scales swap the (immutable) model card and restore
    the original object afterwards — the card swap invalidates the
    batch plan, which the stacked problem rebuilds on its next use.
    """
    scales = {n: v for n, v in spec.scale_map(s).items() if v != 1.0}
    saved: Dict[str, object] = {}
    try:
        for name, scale in scales.items():
            element = circuit[name]
            if not isinstance(element, Mosfet):
                raise TypeError(
                    f"element '{name}' is not a Mosfet; cannot scale "
                    f"k_trans")
            saved[name] = element.params
            element.params = dataclasses.replace(
                element.params, k_trans=element.params.k_trans * scale)
        with applied_shifts(circuit, spec.shift_map(s)):
            yield
    finally:
        for name, card in saved.items():
            circuit[name].params = card


def corner_ensemble_spec(circuit: Circuit,
                         corners: Sequence[str] = CORNERS,
                         model: Optional[CornerModel] = None
                         ) -> EnsembleSpec:
    """Global process corners of a circuit as one ensemble.

    Each corner becomes one sample: every MOSFET in the circuit gets
    the :class:`~repro.devices.corners.CornerModel` threshold shift and
    transconductance scale for its polarity (NEMS devices are
    geometry-set and stay nominal, as in
    :func:`~repro.devices.corners.corner_params`).  The five classic
    corners then solve in one lock-step stacked run instead of five
    rebuilt-netlist analyses.
    """
    if model is None:
        model = CornerModel()
    for corner in corners:
        if corner.upper() not in CORNERS:
            raise AnalysisError(
                f"unknown corner '{corner}' (choose from {CORNERS})")
    mosfets = [el for el in circuit.elements if isinstance(el, Mosfet)]
    if not mosfets:
        raise AnalysisError(
            "corner_ensemble_spec needs at least one MOSFET in the "
            "circuit")
    S = len(corners)
    vth: Dict[str, np.ndarray] = {}
    ks: Dict[str, np.ndarray] = {}
    for el in mosfets:
        is_n = el.params.polarity > 0
        shifts = np.zeros(S)
        scales = np.ones(S)
        for i, corner in enumerate(corners):
            c = corner.upper()
            if c == "TT":
                continue
            fast = (c[0] if is_n else c[1]) == "F"
            sign = -1.0 if fast else +1.0
            shifts[i] = sign * model.dvth
            scales[i] = 1.0 - sign * model.dk_rel
        vth[el.name] = shifts
        ks[el.name] = scales
    return EnsembleSpec(S, vth_shift=vth, k_scale=ks)


@dataclass
class _EnsembleCounters:
    """Mutable telemetry accumulator threaded through one analysis."""

    samples: int = 0
    fallbacks: int = 0
    active_iterations: int = 0
    sample_iterations: int = 0
    stacked_solve_time: float = 0.0
    total_iterations: int = 0


class _StackedProblem:
    """Binds a circuit + layout + spec to the stacked assembler.

    Owns a dense batched-mode :class:`~repro.circuit.mna.Assembler`
    (device bypass off: its caches describe one trajectory, not S of
    them) and the per-sample parameter matrices, re-derived whenever
    the layout's batch plan is rebuilt underneath us (element edits,
    model-card swaps by the scalar fallback path).
    """

    def __init__(self, circuit: Circuit, layout: SystemLayout,
                 spec: EnsembleSpec):
        self.circuit = circuit
        self.layout = layout
        self.spec = spec
        self.assembler = Assembler(
            circuit, layout, matrix_mode="dense",
            eval_options=EvalOptions(mode="batched", bypass=False))
        self._plan = None
        self._entries: List[tuple] = []

    def _ensure_plan(self) -> None:
        plan = getattr(self.layout, "batch_plan", None)
        if plan is None or plan.n_elements != len(self.circuit.elements):
            plan = BatchPlan(self.circuit, self.layout)
            self.layout.batch_plan = plan
        if plan is self._plan:
            return
        S = self.spec.samples
        covered = set()
        entries: List[tuple] = []
        for group in plan.groups:
            # Duck-typed: any group carrying ensemble override slots
            # (today the MOSFET group) can take per-sample parameters.
            if not hasattr(group, "ens_vth_shift"):
                continue
            names = [el.name for el in group.members]
            vth = None
            hits = [n for n in names if n in self.spec.vth_shift]
            if hits:
                vth = np.zeros((S, group.m))
                for j, n in enumerate(names):
                    col = self.spec.vth_shift.get(n)
                    if col is not None:
                        vth[:, j] = col
                covered.update(hits)
            ks = None
            hits = [n for n in names if n in self.spec.k_scale]
            if hits:
                ks = np.ones((S, group.m))
                for j, n in enumerate(names):
                    col = self.spec.k_scale.get(n)
                    if col is not None:
                        ks[:, j] = col
                covered.update(hits)
            entries.append((group, vth, ks))
        missing = set(self.spec.device_names) - covered
        if missing:
            raise AnalysisError(
                f"ensemble parameters target {sorted(missing)} which "
                f"are not batched MOSFETs of this circuit")
        self._plan = plan
        self._entries = entries

    def install(self, idx: np.ndarray) -> None:
        """Install the parameter rows for global sample indices ``idx``."""
        self._ensure_plan()
        for group, vth, ks in self._entries:
            group.ens_vth_shift = None if vth is None else vth[idx]
            group.ens_k_scale = None if ks is None else ks[idx]

    def uninstall(self) -> None:
        """Clear every override so scalar callers see nominal devices."""
        if self._plan is None:
            return
        for group, _, _ in self._entries:
            group.ens_vth_shift = None
            group.ens_k_scale = None

    def assemble_stacked(self, idx: np.ndarray, X: np.ndarray, **kw):
        """Stacked assembly of samples ``idx`` at points ``X`` (k, n).

        Retries once across a plan rebuild (a scalar fallback may have
        swapped a model card between stacked calls).
        """
        self.install(idx)
        try:
            return self.assembler.assemble_ensemble(X, **kw)
        except PlanStale:
            self._plan = None
            self.install(idx)
            return self.assembler.assemble_ensemble(X, **kw)


def _row_error_ratios(lte: np.ndarray, X_new: np.ndarray,
                      X_old: np.ndarray,
                      opts: TransientOptions) -> np.ndarray:
    """Per-sample max of |LTE| / tolerance over the unknowns."""
    tol = opts.trtol * (
        opts.lte_reltol * np.maximum(np.abs(X_new), np.abs(X_old))
        + opts.lte_abstol)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.abs(lte) / tol
    return np.max(np.where(np.isnan(ratio), 0.0, ratio), axis=1)


def _ensemble_newton(problem: _StackedProblem, X0: np.ndarray,
                     idx: np.ndarray, *,
                     options: Optional[NewtonOptions] = None,
                     t: float = 0.0, source_scale: float = 1.0,
                     c0: float = 0.0, d1: float = 0.0,
                     Q_prev: Optional[np.ndarray] = None,
                     Qdot_prev: Optional[np.ndarray] = None,
                     gmin: float = 0.0,
                     counters: Optional[_EnsembleCounters] = None):
    """Masked lock-step Newton over the sample stack.

    A per-sample mirror of the scalar ``_newton_iterate``: same
    update clamping, residual-norm backtracking and convergence test,
    applied row-wise under an active mask.  Converged samples freeze;
    samples hitting a non-finite system, a singular Jacobian or the
    iteration cap are marked failed (the caller re-solves them on the
    scalar path).  Returns ``(X, Q, converged, iterations)`` with one
    entry per row of ``X0``.
    """
    opts = options or NewtonOptions()
    lay = problem.layout
    tol = lay.row_tol * opts.residual_scale
    dx_limit = lay.dx_limit
    idx = np.asarray(idx, dtype=np.int64)
    k, n = X0.shape
    X = np.array(X0, dtype=float)
    observing = have_solve_observers()
    wall_started = time.perf_counter() if observing else 0.0
    phases_before = profiling.snapshot() if observing else None

    def assemble(rows: np.ndarray, Xr: np.ndarray):
        qp = Q_prev[rows] if Q_prev is not None else None
        qd = Qdot_prev[rows] if Qdot_prev is not None else None
        return problem.assemble_stacked(
            idx[rows], Xr, t=t, source_scale=source_scale, c0=c0, d1=d1,
            Q_prev=qp, Qdot_prev=qd, gmin=gmin)

    F, J, Q = assemble(np.arange(k), X)
    with np.errstate(invalid="ignore"):
        fnorm = np.max(np.abs(F) / tol, axis=1)
    converged = np.zeros(k, dtype=bool)
    failed = np.zeros(k, dtype=bool)
    iters = np.zeros(k, dtype=np.int64)
    stacked_time = 0.0
    active_iter_sum = 0
    lockstep = 0

    for _ in range(opts.max_iterations):
        act = ~(converged | failed)
        if not act.any():
            break
        lockstep += 1
        active_iter_sum += int(act.sum())
        iters[act] += 1

        finite = (np.isfinite(F).all(axis=1)
                  & np.isfinite(J).all(axis=(1, 2)))
        failed |= act & ~finite
        act &= finite
        if not act.any():
            continue
        ai = np.nonzero(act)[0]

        solve_started = time.perf_counter()
        try:
            # One batched-LU call factorises every active sample.
            dX = np.linalg.solve(J[ai], -F[ai][..., None])[..., 0]
        except np.linalg.LinAlgError:
            # Isolate the singular sample(s); the rest keep going.
            dX = np.empty((ai.size, n))
            keep = np.ones(ai.size, dtype=bool)
            for j, row in enumerate(ai):
                try:
                    dX[j] = np.linalg.solve(J[row], -F[row])
                except np.linalg.LinAlgError:
                    keep[j] = False
            failed[ai[~keep]] = True
            ai = ai[keep]
            dX = dX[keep]
            act = np.zeros(k, dtype=bool)
            act[ai] = True
        solve_elapsed = time.perf_counter() - solve_started
        stacked_time += solve_elapsed
        profiling.COUNTERS["solve_time"] += solve_elapsed
        if not ai.size:
            continue

        clip = np.minimum(np.abs(dX), dx_limit)
        dX_full = np.zeros_like(X)
        dX_full[ai] = np.sign(dX) * clip

        # Lock-step backtracking line search: every still-searching
        # sample assembles at its own scale in one stacked call.
        scale = np.full(k, opts.damping)
        searching = act & (opts.damping >= opts.min_step_scale)
        have_best = np.zeros(k, dtype=bool)
        best_f = np.zeros(k)
        best_scale = np.zeros(k)
        best_X = np.zeros_like(X)
        best_F = np.zeros_like(F)
        best_J = np.zeros_like(J)
        best_Q = np.zeros_like(Q)
        while searching.any():
            si = np.nonzero(searching)[0]
            X_try = X[si] + scale[si, None] * dX_full[si]
            F_t, J_t, Q_t = assemble(si, X_try)
            finite_t = np.isfinite(F_t).all(axis=1)
            with np.errstate(invalid="ignore"):
                f_t = np.max(np.abs(F_t) / tol, axis=1)
            better = finite_t & (~have_best[si] | (f_t < best_f[si]))
            rows = si[better]
            have_best[rows] = True
            best_f[rows] = f_t[better]
            best_scale[rows] = scale[rows]
            best_X[rows] = X_try[better]
            best_F[rows] = F_t[better]
            best_J[rows] = J_t[better]
            best_Q[rows] = Q_t[better]
            done = finite_t & ((f_t < fnorm[si]) | (f_t < 1.0))
            searching[si[done]] = False
            halve = si[~done]
            scale[halve] *= 0.5
            searching[halve] = scale[halve] >= opts.min_step_scale

        failed |= act & ~have_best
        ub = act & have_best
        if not ub.any():
            continue
        ui = np.nonzero(ub)[0]
        step = np.abs(best_X[ui] - X[ui])
        X[ui] = best_X[ui]
        F[ui] = best_F[ui]
        J[ui] = best_J[ui]
        Q[ui] = best_Q[ui]
        fnorm[ui] = best_f[ui]
        small = np.all(
            step <= opts.reltol * np.abs(X[ui]) + opts.abstol_v, axis=1)
        conv_now = (best_f[ui] < 1.0) & (
            small | (best_scale[ui] == opts.damping))
        converged[ui[conv_now]] = True

    failed |= ~(converged | failed)  # iteration cap exhausted

    if counters is not None:
        counters.active_iterations += active_iter_sum
        counters.sample_iterations += lockstep * k
        counters.stacked_solve_time += stacked_time
        counters.total_iterations += int(iters.sum())
    if observing:
        phases = profiling.delta(phases_before)
        residual = float(np.max(
            np.where(np.isfinite(fnorm), fnorm, 0.0), initial=0.0))
        emit_solve_event(SolveEvent(
            "newton", "ensemble", lockstep, residual,
            bool(converged.all()),
            time.perf_counter() - wall_started, backend="stacked",
            eval_time=phases.get("eval_time", 0.0),
            assemble_time=phases.get("assemble_time", 0.0),
            solve_time=phases.get("solve_time", 0.0),
            ensemble_samples=k,
            ensemble_active_iterations=active_iter_sum,
            ensemble_sample_iterations=lockstep * k,
            stacked_solve_time=stacked_time))
    return X, Q, converged, iters


class EnsembleOperatingPoint:
    """Stacked DC solutions, one row per sample.

    ``converged`` flags the samples that reached a solution (stacked or
    scalar fallback); non-converged rows of ``X`` are NaN.  ``fallback``
    lists the samples that were re-solved on the scalar path.
    """

    def __init__(self, layout: SystemLayout, X: np.ndarray,
                 Q: np.ndarray, converged: np.ndarray,
                 fallback: Sequence[int]):
        self.layout = layout
        self.X = X
        self.Q = Q
        self.converged = converged
        self.fallback = tuple(int(s) for s in fallback)

    @property
    def samples(self) -> int:
        return self.X.shape[0]

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage across the ensemble, shape ``(S,)``."""
        if is_ground(node):
            return np.zeros(self.samples)
        return self.X[:, self.layout.node_index(node)].copy()

    def state(self, element_name: str, state_name: str) -> np.ndarray:
        """A device internal state across the ensemble, shape ``(S,)``."""
        return self.X[:, self.layout.state_index(
            element_name, state_name)].copy()

    def sample(self, s: int) -> OperatingPoint:
        """Sample ``s`` as a scalar :class:`OperatingPoint`."""
        if not self.converged[s]:
            raise ConvergenceError(
                f"ensemble sample {s} did not converge")
        return OperatingPoint(self.layout, self.X[s].copy(),
                              self.Q[s].copy())

    def __len__(self) -> int:
        return self.samples


class EnsembleSweepResult:
    """A DC sweep of a whole ensemble: one stacked point per value."""

    def __init__(self, parameter: str, values: np.ndarray,
                 points: List[EnsembleOperatingPoint]):
        self.parameter = parameter
        self.values = values
        self.points = points

    @property
    def samples(self) -> int:
        return self.points[0].samples if self.points else 0

    def voltage(self, node: str) -> np.ndarray:
        """Node voltages over the sweep, shape ``(P, S)``."""
        return np.stack([p.voltage(node) for p in self.points])

    def converged(self) -> np.ndarray:
        """Per-sample all-points convergence flags, shape ``(S,)``."""
        return np.all([p.converged for p in self.points], axis=0)

    def sample(self, s: int) -> DCSweepResult:
        """Sample ``s`` as a scalar :class:`DCSweepResult`."""
        return DCSweepResult(self.parameter, self.values,
                             [p.sample(s) for p in self.points])

    def __len__(self) -> int:
        return len(self.points)


class EnsembleTransientResult:
    """Lock-step transient waveforms on one shared time grid.

    ``t`` has shape ``(T,)`` and the solutions ``(T, S, n)``.  Samples
    that left the lock-step run (DC failure or a Newton failure at the
    minimum step) were re-integrated on the scalar path: their results
    live in ``fallback`` (own adaptive grids) and irrecoverable ones in
    ``failures``.  :meth:`sample` dispatches transparently.
    """

    def __init__(self, layout: SystemLayout, times: np.ndarray,
                 solutions: np.ndarray, stats: StepStats,
                 newton_iterations: np.ndarray,
                 fallback: Dict[int, TransientResult],
                 failures: Dict[int, Exception]):
        self.layout = layout
        self.t = times
        self._X = solutions
        self.stats = stats
        self.newton_iterations = newton_iterations
        self.fallback = fallback
        self.failures = failures

    @property
    def samples(self) -> int:
        return self._X.shape[1]

    def converged(self, s: int) -> bool:
        """Whether sample ``s`` produced a full waveform."""
        return s not in self.failures

    def voltage(self, node: str) -> np.ndarray:
        """Lock-step voltage waveforms, shape ``(T, S)``.

        Columns of samples that fell back to the scalar path hold the
        values up to their demotion; use :meth:`sample` for those.
        """
        if is_ground(node):
            return np.zeros((len(self.t), self.samples))
        return self._X[:, :, self.layout.node_index(node)].copy()

    def sample(self, s: int) -> TransientResult:
        """Sample ``s`` as a scalar :class:`TransientResult`."""
        if s in self.failures:
            raise self.failures[s]
        if s in self.fallback:
            return self.fallback[s]
        st = self.stats
        per = StepStats(
            control=st.control, accepted=st.accepted,
            rejected_lte=st.rejected_lte,
            rejected_newton=st.rejected_newton,
            newton_iterations=int(self.newton_iterations[s]),
            h_min=st.h_min, h_max=st.h_max,
            error_ratio_hist=list(st.error_ratio_hist))
        return TransientResult(self.layout, self.t.copy(),
                               self._X[:, s, :].copy(), stats=per)

    def __len__(self) -> int:
        return len(self.t)


def _initial_stack(lay: SystemLayout, S: int, x0) -> np.ndarray:
    if x0 is None:
        return np.tile(lay.x_default, (S, 1))
    arr = np.asarray(x0, dtype=float)
    if arr.ndim == 1:
        return np.tile(arr, (S, 1))
    X0 = np.array(arr)
    if X0.shape != (S, lay.n):
        raise ValueError(
            f"x0 must have shape ({S}, {lay.n}), got {X0.shape}")
    return X0


def _sequential_dc(circuit: Circuit, spec: EnsembleSpec,
                   lay: SystemLayout, X0: np.ndarray,
                   newton_options, homotopy) -> EnsembleOperatingPoint:
    """Per-sample scalar reference path (ensemble mode off)."""
    S = spec.samples
    X = np.empty((S, lay.n))
    conv = np.zeros(S, dtype=bool)
    qs: List[Optional[np.ndarray]] = [None] * S
    for s in range(S):
        guess = X0[s] if np.all(np.isfinite(X0[s])) else None
        try:
            with _applied_sample(circuit, spec, s):
                op = operating_point(
                    circuit, x0=guess, layout=lay,
                    newton_options=newton_options, homotopy=homotopy)
        except (ConvergenceError, TimestepError):
            X[s] = np.nan
            continue
        X[s] = op.x
        qs[s] = op.q
        conv[s] = True
    qn = next((len(q) for q in qs if q is not None), 0)
    Q = np.zeros((S, qn))
    for s, q in enumerate(qs):
        if q is not None and len(q) == qn:
            Q[s] = q
    return EnsembleOperatingPoint(lay, X, Q, conv, [])


def ensemble_dc(circuit: Circuit, spec: EnsembleSpec, *,
                x0=None, layout: Optional[SystemLayout] = None,
                newton_options: Optional[NewtonOptions] = None,
                homotopy: Optional[HomotopyOptions] = None,
                problem: Optional[_StackedProblem] = None
                ) -> EnsembleOperatingPoint:
    """Stacked DC operating points for every sample of ``spec``.

    Strategy ladder, each rung operating only on the samples the
    previous one left unconverged:

    1. direct lock-step Newton from ``x0`` (default: the layout's
       initial guess, tiled; a ``(S, n)`` array warm-starts per
       sample);
    2. lock-step gmin stepping with the scalar homotopy schedule —
       samples failing a rung drop out, survivors continue;
    3. scalar fallback: each remaining sample runs the full scalar
       :func:`operating_point` (homotopies, pseudo-transient and all)
       under its own parameters.  Samples that still fail get NaN rows
       and ``converged[s] = False`` — one diverging sample never sinks
       the ensemble.
    """
    lay = layout if layout is not None else (
        problem.layout if problem is not None else SystemLayout(circuit))
    S = spec.samples
    X0 = _initial_stack(lay, S, x0)
    if not _use_stacked():
        return _sequential_dc(circuit, spec, lay, X0,
                              newton_options, homotopy)

    nopt, hopt = resolve_solver_options(newton_options, homotopy)
    prob = problem if problem is not None else _StackedProblem(
        circuit, lay, spec)
    counters = _EnsembleCounters(samples=S)
    observing = have_solve_observers()
    wall_started = time.perf_counter() if observing else 0.0

    Xd, Q, conv, _ = _ensemble_newton(
        prob, X0, np.arange(S), options=nopt, counters=counters)
    X = np.where(conv[:, None], Xd, X0)

    rem = np.nonzero(~conv)[0]
    if rem.size:
        # Lock-step gmin ladder over the direct failures.
        Xg = X0[rem].copy()
        live = np.ones(rem.size, dtype=bool)
        gmin = hopt.gmin_start
        while gmin > hopt.gmin_final and live.any():
            li = np.nonzero(live)[0]
            Xn, _, cn, _ = _ensemble_newton(
                prob, Xg[li], rem[li], options=nopt, gmin=gmin,
                counters=counters)
            Xg[li[cn]] = Xn[cn]
            live[li[~cn]] = False
            gmin /= 10.0 ** (1.0 / hopt.gmin_steps_per_decade)
        li = np.nonzero(live)[0]
        if li.size:
            Xn, Qn, cn, _ = _ensemble_newton(
                prob, Xg[li], rem[li], options=nopt, counters=counters)
            ok = rem[li[cn]]
            X[ok] = Xn[cn]
            Q[ok] = Qn[cn]
            conv[ok] = True
    prob.uninstall()

    fallback: List[int] = []
    for s in np.nonzero(~conv)[0]:
        fallback.append(int(s))
        counters.fallbacks += 1
        guess = X0[s] if np.all(np.isfinite(X0[s])) else None
        try:
            with _applied_sample(circuit, spec, int(s)):
                op = operating_point(
                    circuit, x0=guess, layout=lay,
                    newton_options=newton_options, homotopy=homotopy)
        except (ConvergenceError, TimestepError):
            X[s] = np.nan
            continue
        X[s] = op.x
        Q[s] = op.q
        conv[s] = True

    if observing:
        emit_solve_event(SolveEvent(
            "dc", "ensemble", counters.total_iterations, 0.0,
            bool(conv.all()), time.perf_counter() - wall_started,
            backend="stacked", ensemble_samples=S,
            ensemble_fallbacks=counters.fallbacks,
            ensemble_active_iterations=counters.active_iterations,
            ensemble_sample_iterations=counters.sample_iterations,
            stacked_solve_time=counters.stacked_solve_time))
    return EnsembleOperatingPoint(lay, X, Q, conv, fallback)


def ensemble_sweep(circuit: Circuit, spec: EnsembleSpec,
                   source_name: str, values: Sequence[float], *,
                   layout: Optional[SystemLayout] = None,
                   newton_options: Optional[NewtonOptions] = None,
                   homotopy: Optional[HomotopyOptions] = None
                   ) -> EnsembleSweepResult:
    """Sweep a source's DC value across the whole ensemble at once.

    The continuation semantics of the scalar :func:`dc_sweep` hold per
    sample: each sample warm-starts every point from its own previous
    solution, so hysteretic devices follow the branch of the sweep
    direction in every sample.  The source value is restored afterwards.
    """
    source = circuit[source_name]
    if not hasattr(source, "value"):
        raise NetlistError(
            f"'{source_name}' is not a source with a settable value")
    lay = layout if layout is not None else SystemLayout(circuit)
    prob = (_StackedProblem(circuit, lay, spec)
            if _use_stacked() else None)

    original = source.value
    points: List[EnsembleOperatingPoint] = []
    guess = None
    try:
        for v in values:
            source.value = float(v)
            op = ensemble_dc(
                circuit, spec, x0=guess, layout=lay,
                newton_options=newton_options, homotopy=homotopy,
                problem=prob)
            points.append(op)
            guess = op.X
    finally:
        source.value = original
    return EnsembleSweepResult(source_name,
                               np.asarray(values, dtype=float), points)


def _sequential_transient(circuit: Circuit, spec: EnsembleSpec,
                          lay: SystemLayout, tstop: float, dt: float,
                          options) -> EnsembleTransientResult:
    """Per-sample scalar reference path (ensemble mode off).

    Every sample integrates on its own grid; results all live in the
    ``fallback`` dict and :meth:`EnsembleTransientResult.sample`
    dispatches to them.
    """
    results: Dict[int, TransientResult] = {}
    failures: Dict[int, Exception] = {}
    iters = np.zeros(spec.samples, dtype=np.int64)
    for s in range(spec.samples):
        try:
            with _applied_sample(circuit, spec, s):
                res = transient(circuit, tstop, dt, options=options,
                                layout=lay)
        except (ConvergenceError, TimestepError) as err:
            failures[s] = err
            continue
        results[s] = res
        iters[s] = res.stats.newton_iterations
    return EnsembleTransientResult(
        lay, np.zeros(0), np.zeros((0, spec.samples, lay.n)),
        StepStats(control="sequential"), iters, results, failures)


def ensemble_transient(circuit: Circuit, spec: EnsembleSpec,
                       tstop: float, dt: float, *,
                       options: Optional[TransientOptions] = None,
                       layout: Optional[SystemLayout] = None
                       ) -> EnsembleTransientResult:
    """Integrate every sample of ``spec`` in lock-step from 0 to
    ``tstop`` on one shared adaptive time grid.

    Step control mirrors the scalar :func:`~repro.analysis.transient.
    transient` exactly, driven by the worst sample: a step is rejected
    when any live sample's Newton fails, and under LTE control when the
    max-over-samples error ratio exceeds one.  Samples whose Newton
    still fails at the minimum step are demoted out of the lock-step
    run and re-integrated on the scalar path afterwards (``fallback``),
    as are samples whose initial DC failed.
    """
    if tstop <= 0:
        raise ValueError(f"tstop must be positive, got {tstop}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    opts = options or TransientOptions()
    lay = layout if layout is not None else SystemLayout(circuit)
    S = spec.samples
    if not _use_stacked():
        return _sequential_transient(circuit, spec, lay, tstop, dt,
                                     opts)

    counters = _EnsembleCounters(samples=S)
    prob = _StackedProblem(circuit, lay, spec)
    op = ensemble_dc(circuit, spec, layout=lay,
                     newton_options=opts.newton, problem=prob)
    live = op.converged.copy()
    dead = set(int(s) for s in np.nonzero(~live)[0])
    X = np.where(live[:, None], op.X, 0.0)
    Q_prev = op.Q.copy()
    Qdot_prev = np.zeros_like(Q_prev)

    breakpoints = _collect_breakpoints(circuit, tstop)
    bp_index = 1  # breakpoints[0] == 0.0

    times: List[float] = [0.0]
    solutions: List[np.ndarray] = [X.copy()]

    t = 0.0
    h = dt
    control = opts.resolve_step_control() if opts.adaptive else "fixed"
    use_lte = opts.adaptive and control == "lte"
    h_cap = dt * ((opts.lte_max_dt_factor if use_lte
                   else opts.max_dt_factor) if opts.adaptive else 1.0)
    h_floor = (max(opts.dtmin, dt * opts.lte_min_dt_factor) if use_lte
               else opts.dtmin)
    stats = StepStats(control=control)
    hist_t: List[float] = [0.0]
    hist_x: List[np.ndarray] = [X.copy()]
    force_be = True
    newton_iters = np.zeros(S, dtype=np.int64)
    wall_started = time.perf_counter()

    stop_tol = _TIME_RTOL * tstop
    while t < tstop - stop_tol and live.any():
        t_tol = _TIME_RTOL * max(abs(t), h)
        while bp_index < len(breakpoints) and \
                breakpoints[bp_index] <= t + t_tol:
            bp_index += 1
        next_bp = (breakpoints[bp_index]
                   if bp_index < len(breakpoints) else tstop)
        limit = next_bp - t
        h_try = min(max(h, opts.dtmin), limit)
        hit_bp = (limit - h_try) <= _TIME_RTOL * max(abs(next_bp), h_try)
        t_new = next_bp if hit_bp else t + h_try
        h_step = t_new - t

        use_trap = opts.method == "trap" and not force_be
        if use_trap:
            c0, d1 = 2.0 / h_step, -1.0
        else:
            c0, d1 = 1.0 / h_step, 0.0

        li = np.nonzero(live)[0]
        X_rows, Q_rows, conv_rows, it_rows = _ensemble_newton(
            prob, X[li], li, options=opts.newton, t=t_new, c0=c0, d1=d1,
            Q_prev=Q_prev[li], Qdot_prev=Qdot_prev[li],
            counters=counters)
        if not conv_rows.all():
            stats.rejected_newton += 1
            if h_step > opts.dtmin * (1.0 + 1e-9):
                h = max(h_step * opts.shrink, opts.dtmin)
                prob.assembler.notify_discontinuity()
                continue
            # At dtmin the scalar path raises TimestepError; here the
            # failing samples are demoted to the scalar fallback and
            # the converged subset's step is accepted.
            failing = li[~conv_rows]
            live[failing] = False
            dead.update(int(s) for s in failing)
            li = li[conv_rows]
            X_rows = X_rows[conv_rows]
            Q_rows = Q_rows[conv_rows]
            it_rows = it_rows[conv_rows]
            if li.size == 0:
                prob.assembler.notify_discontinuity()
                break
        newton_iters[li] += it_rows
        iter_count = int(it_rows.max()) if it_rows.size else 0
        stats.newton_iterations += iter_count

        X_new = X.copy()
        X_new[li] = X_rows

        ratio = None
        order = 2
        if use_lte:
            estimate = _lte_estimate(hist_t, hist_x, t_new, X_new,
                                     use_trap)
            if estimate is not None:
                lte, order = estimate
                ratio = float(np.max(_row_error_ratios(
                    lte[li], X_new[li], X[li], opts)))
                stats.record_ratio(ratio)
                if ratio > 1.0 and h_step > h_floor * (1.0 + 1e-9):
                    stats.rejected_lte += 1
                    factor = opts.lte_safety * ratio ** (-1.0 / order)
                    h = max(h_step * min(max(factor, 0.1), 0.9),
                            h_floor)
                    prob.assembler.notify_discontinuity()
                    continue

        # Accept the step (for every live sample at once).
        Qdot_prev[li] = c0 * (Q_rows - Q_prev[li]) + (
            d1 * Qdot_prev[li] if d1 else 0.0)
        Q_prev[li] = Q_rows
        X = X_new
        t = t_new
        times.append(t)
        solutions.append(X.copy())
        stats.record_accept(h_step)
        force_be = hit_bp
        if hit_bp:
            hist_t = [t]
            hist_x = [X.copy()]
            prob.assembler.notify_discontinuity()
            if opts.adaptive:
                if use_lte:
                    factor = 2.0 * (opts.lte_reltol / 2e-2) ** 0.5
                    h = min(h, dt * min(2.0, max(0.25, factor)))
                else:
                    h = min(h, dt)
        else:
            hist_t.append(t)
            hist_x.append(X.copy())
            if len(hist_t) > 3:
                hist_t.pop(0)
                hist_x.pop(0)

        if not opts.adaptive or hit_bp:
            continue
        if control == "iter":
            if iter_count <= 8:
                h = min(h * opts.growth, h_cap)
            elif iter_count > 20:
                h = max(h * 0.5, opts.dtmin)
        elif ratio is not None:
            factor = opts.lte_safety * max(ratio, 1e-12) ** (-1.0 / order)
            factor = min(max(factor, 0.2), opts.lte_max_growth)
            grown = h_step * factor
            if h_step < h * (1.0 - 1e-9):
                grown = max(grown, h)
            h = min(max(grown, h_floor), h_cap)
        else:
            h = min(max(h_step, h) * opts.growth, h_cap)

    prob.uninstall()
    wall = time.perf_counter() - wall_started

    fallback: Dict[int, TransientResult] = {}
    failures: Dict[int, Exception] = {}
    for s in sorted(dead):
        counters.fallbacks += 1
        try:
            with _applied_sample(circuit, spec, s):
                fallback[s] = transient(circuit, tstop, dt,
                                        options=opts, layout=lay)
        except (ConvergenceError, TimestepError) as err:
            failures[s] = err

    if have_solve_observers():
        event = stats.to_event(wall, "stacked")
        emit_solve_event(dataclasses.replace(
            event, ensemble_samples=S,
            ensemble_fallbacks=counters.fallbacks,
            ensemble_active_iterations=counters.active_iterations,
            ensemble_sample_iterations=counters.sample_iterations,
            stacked_solve_time=counters.stacked_solve_time))
    return EnsembleTransientResult(lay, np.asarray(times),
                                   np.asarray(solutions), stats,
                                   newton_iters, fallback, failures)

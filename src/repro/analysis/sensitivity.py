"""Finite-difference sensitivity analysis of design metrics.

Quantifies how any scalar metric (delay, noise margin, leakage, SNM...)
responds to design parameters — the derivative information a designer
needs to know which knob to turn.  Works on any ``metric(value) ->
float`` callable, with helpers for the common pattern of perturbing an
element attribute (e.g. a transistor width) in place.

Example::

    gate = build_dynamic_or(spec)

    def delay_vs_keeper(width):
        gate.set_keeper_width(width)
        return gate_metrics.measure_worst_case_delay(gate)

    s = relative_sensitivity(delay_vs_keeper, gate.keeper_width)
    # s = (dDelay/Delay) / (dW/W): +0.3 means a 10% keeper upsize
    # costs 3% delay.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.errors import AnalysisError


def sensitivity(metric: Callable[[float], float], value: float,
                rel_step: float = 0.02) -> float:
    """Central-difference derivative ``d(metric)/d(value)``."""
    if value == 0:
        raise AnalysisError(
            "cannot take a relative step around zero; use an absolute "
            "formulation")
    h = abs(value) * rel_step
    f_plus = metric(value + h)
    f_minus = metric(value - h)
    metric(value)  # restore side effects at the nominal point
    return (f_plus - f_minus) / (2.0 * h)


def relative_sensitivity(metric: Callable[[float], float], value: float,
                         rel_step: float = 0.02) -> float:
    """Normalised (logarithmic) sensitivity ``dln(metric)/dln(value)``.

    Dimensionless: +1 means the metric scales linearly with the
    parameter, 0 means insensitive.
    """
    f0 = metric(value)
    if f0 == 0:
        raise AnalysisError("metric is zero at the nominal point")
    return sensitivity(metric, value, rel_step) * value / f0


def sensitivity_table(metrics: Dict[str, Callable[[float], float]],
                      value: float, rel_step: float = 0.02
                      ) -> Dict[str, float]:
    """Relative sensitivities of several metrics to one parameter."""
    return {name: relative_sensitivity(fn, value, rel_step)
            for name, fn in metrics.items()}


def element_width_metric(gate_circuit, element_name: str,
                         evaluate: Callable[[], float]
                         ) -> Callable[[float], float]:
    """Wrap "set element width, then evaluate" as a metric callable.

    The element must expose a mutable ``width`` attribute (all device
    elements in this library do).
    """
    element = gate_circuit[element_name]
    if not hasattr(element, "width"):
        raise AnalysisError(
            f"element '{element_name}' has no width attribute")

    def metric(width: float) -> float:
        element.width = float(width)
        return evaluate()

    return metric

"""AC small-signal analysis.

Linearises the circuit at a DC operating point and solves the
frequency-domain system ``(G + j w C) x = b`` for each requested
frequency, where ``G`` is the static Jacobian and ``C`` the
charge/flux Jacobian.

Because NEMFET beam dynamics are ordinary MNA states, the linearised
system automatically contains the *electromechanical* poles: an AC
sweep of a biased suspended-gate device exposes its mechanical
resonance — the RSG-MOSFET resonator behaviour of the paper's ref [22]
— including the spring-softening shift of the resonant frequency with
bias, with no additional modelling.

The ``C`` matrix is recovered without any new element code: the system
is assembled twice at the operating point, once with the integrator
disabled (giving ``G``) and once with unit integrator coefficient and
the history pinned to the present charges (adding exactly ``dq/dx`` to
the Jacobian); the difference is ``C``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.dc import OperatingPoint, operating_point
from repro.circuit.elements import CurrentSource, VoltageSource
from repro.circuit.mna import Assembler, SystemLayout
from repro.circuit.netlist import Circuit, is_ground
from repro.errors import AnalysisError, NetlistError


class ACResult:
    """Complex node-voltage spectra from an AC sweep."""

    def __init__(self, layout: SystemLayout, frequencies: np.ndarray,
                 solutions: np.ndarray, op: OperatingPoint):
        self.layout = layout
        self.f = frequencies
        self._X = solutions  # shape (len(f), layout.n), complex
        self.op = op

    def voltage(self, node: str) -> np.ndarray:
        """Complex small-signal voltage at ``node`` across the sweep."""
        if is_ground(node):
            return np.zeros_like(self.f, dtype=complex)
        return self._X[:, self.layout.node_index(node)].copy()

    def branch_current(self, element_name: str) -> np.ndarray:
        """Complex small-signal branch current of a voltage-defined
        element."""
        element = self.layout.circuit[element_name]
        if not element.branch_count:
            raise NetlistError(
                f"element '{element_name}' has no branch current")
        return self._X[:, self.layout.branch_start(element)].copy()

    def state(self, element_name: str, state_name: str) -> np.ndarray:
        """Complex small-signal device state (e.g. beam position)."""
        return self._X[:, self.layout.state_index(element_name,
                                                  state_name)].copy()

    def magnitude_db(self, node: str) -> np.ndarray:
        """|V(node)| in decibels (20 log10)."""
        mag = np.abs(self.voltage(node))
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, node: str) -> np.ndarray:
        """Phase of V(node) in degrees."""
        return np.degrees(np.angle(self.voltage(node)))

    def __len__(self) -> int:
        return len(self.f)


def _ac_rhs(circuit: Circuit, layout: SystemLayout) -> np.ndarray:
    """Small-signal excitation vector from sources' ``ac`` attributes."""
    b = np.zeros(layout.n, dtype=complex)
    found = False
    for element in circuit.elements:
        ac = getattr(element, "ac", 0.0)
        if not ac:
            continue
        found = True
        if isinstance(element, VoltageSource):
            b[layout.branch_start(element)] += complex(ac)
        elif isinstance(element, CurrentSource):
            a_idx = layout.node_index(element.nodes[0])
            b_idx = layout.node_index(element.nodes[1])
            if a_idx != layout.ground:
                b[a_idx] -= complex(ac)
            if b_idx != layout.ground:
                b[b_idx] += complex(ac)
        else:
            raise AnalysisError(
                f"element '{element.name}' has an 'ac' attribute but "
                f"is not an independent source")
    if not found:
        raise AnalysisError(
            "no AC excitation: set source.ac = magnitude on at least "
            "one independent source")
    return b


def ac_analysis(circuit: Circuit, frequencies: Sequence[float], *,
                op: Optional[OperatingPoint] = None,
                layout: Optional[SystemLayout] = None) -> ACResult:
    """Run an AC sweep over ``frequencies`` (hertz).

    The excitation amplitude is taken from each source's ``ac``
    attribute (assign ``circuit['VIN'].ac = 1.0`` for a unit stimulus);
    DC waveform values set the bias point.
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    if len(frequencies) == 0:
        raise AnalysisError("empty frequency list")
    if np.any(frequencies < 0):
        raise AnalysisError("frequencies must be non-negative")

    assembler = Assembler(circuit, layout)
    lay = assembler.layout
    if op is None:
        op = operating_point(circuit, layout=lay)
    elif op.layout is not lay:
        raise NetlistError(
            "operating point belongs to a different layout")

    # Static Jacobian G, then charge Jacobian C = J(c0=1) - G with the
    # charge history pinned so no residual is added.
    _, G, q_now = assembler.assemble(op.x, t=0.0)
    _, J1, _ = assembler.assemble(op.x, t=0.0, c0=1.0,
                                  q_prev=q_now,
                                  qdot_prev=np.zeros_like(q_now))
    C = J1 - G

    b = _ac_rhs(circuit, lay)
    solutions = np.empty((len(frequencies), lay.n), dtype=complex)
    for i, f in enumerate(frequencies):
        omega = 2.0 * np.pi * f
        A = G + 1j * omega * C
        try:
            solutions[i] = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            A = A + 1e-12 * np.eye(lay.n)
            solutions[i] = np.linalg.solve(A, b)
    return ACResult(lay, frequencies, solutions, op)

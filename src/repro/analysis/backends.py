"""Pluggable linear-solver backends for the MNA Newton core.

The damped Newton solver in :mod:`repro.analysis.solver` reduces every
analysis to repeated solves of ``J dx = -F``.  The seed implementation
hard-wired ``np.linalg.solve`` on a dense Jacobian, which costs O(n^2)
memory per assembly and O(n^3) per Newton step — fine for the paper's
single-gate circuits (n < 40), a wall for array-level netlists.  MNA
Jacobians are extremely sparse (a MOSFET touches at most 3 unknowns),
so this module makes the linear solve a pluggable *backend*:

* :class:`DenseSolver` — the seed behaviour, LAPACK ``gesv`` on a dense
  array.  Reference path and the right choice for tiny systems, where
  sparse bookkeeping costs more than it saves.
* :class:`SparseSolver` — SuperLU (``scipy.sparse.linalg.splu``) on a
  CSC matrix assembled from COO triplets.  The triplet -> CSC scatter
  pattern is cached per circuit layout (see
  :class:`repro.circuit.mna.SparsePattern`), so after the first
  assembly each Newton iteration only rewrites the numeric values of a
  fixed symbolic structure.

Backends share one singular-matrix escape hatch,
:func:`solve_linear`: on a singular factorisation the Jacobian is
regularised by a norm-scaled diagonal shift and factorised once more.
Both backends raise :class:`numpy.linalg.LinAlgError` for singular
systems so the Newton loop needs no backend-specific handling.

Selection is policy-driven: :func:`resolve_backend` consults the
active :class:`~repro.analysis.options.BackendOptions` (``"auto"``
picks sparse at ``sparse_threshold`` unknowns) unless the caller pins
a kind or passes a ready-made instance.  Each backend keeps cheap
``counters`` (factorisations, Jacobian/factor non-zeros, regularised
solves) that the solver folds into its
:class:`~repro.analysis.solver.SolveEvent` stream for telemetry.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Union

import numpy as np

from repro import profiling

from repro.analysis.options import BackendOptions, get_backend_options

#: Relative diagonal shift applied when a Jacobian factorises singular.
#: Scaled by the matrix's own infinity norm: an absolute shift vanishes
#: next to rows stamped in siemens times 1e9 and would leave the system
#: numerically singular.
REGULARIZATION_SCALE = 1e-12

#: Counter keys every backend maintains (all monotonic per instance).
COUNTER_KEYS = ("factorizations", "jacobian_nnz", "factor_nnz",
                "regularized")


def _fresh_counters() -> Dict[str, int]:
    return {key: 0 for key in COUNTER_KEYS}


class DenseSolver:
    """Seed behaviour: LAPACK solve on a dense Jacobian."""

    name = "dense"
    matrix_mode = "dense"

    def __init__(self):
        self.counters = _fresh_counters()

    def solve(self, J: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve ``J x = b``; raises ``LinAlgError`` when singular."""
        self.counters["factorizations"] += 1
        return np.linalg.solve(J, b)

    def regularize(self, J: np.ndarray, shift: float) -> np.ndarray:
        """``J`` with ``shift`` added along the diagonal."""
        return J + shift * np.eye(J.shape[0])

    def inf_norm(self, J: np.ndarray) -> float:
        """Infinity norm of the Jacobian (max absolute row sum)."""
        return float(np.linalg.norm(J, np.inf)) if J.size else 0.0

    def is_finite(self, J: np.ndarray) -> bool:
        """True when every Jacobian entry is finite."""
        return bool(np.all(np.isfinite(J)))


class SparseSolver:
    """SuperLU factorisation of a CSC Jacobian.

    Expects the matrices produced by a sparse-mode
    :class:`~repro.circuit.mna.Assembler` (``scipy.sparse.csc_matrix``).
    Every call refactorises numerically — SuperLU's cheap part — while
    the expensive symbolic work (triplet dedup, CSC structure) is done
    once per circuit by the assembler's cached pattern.
    """

    name = "sparse"
    matrix_mode = "sparse"

    def __init__(self):
        self.counters = _fresh_counters()
        # Fail at construction, not mid-Newton, when scipy is absent.
        from scipy.sparse.linalg import splu  # noqa: F401

    def solve(self, J, b: np.ndarray) -> np.ndarray:
        """Solve ``J x = b``; raises ``LinAlgError`` when singular."""
        from scipy.sparse.linalg import splu
        self.counters["factorizations"] += 1
        self.counters["jacobian_nnz"] += int(J.nnz)
        try:
            lu = splu(J)
        except RuntimeError as err:
            # SuperLU reports exact singularity as a RuntimeError;
            # normalise to the dense backend's exception type.
            raise np.linalg.LinAlgError(str(err)) from None
        self.counters["factor_nnz"] += int(lu.L.nnz + lu.U.nnz)
        x = lu.solve(b)
        if not np.all(np.isfinite(x)):
            # Near-singular pivots surface as inf/nan instead of an
            # exception; treat them as singularity so the shared
            # regularisation path applies.
            raise np.linalg.LinAlgError(
                "sparse factorisation produced non-finite solution")
        return x

    def regularize(self, J, shift: float):
        """``J`` with ``shift`` added along the diagonal (stays CSC)."""
        from scipy.sparse import identity
        return (J + shift * identity(J.shape[0], format="csc")).tocsc()

    def inf_norm(self, J) -> float:
        """Infinity norm of the Jacobian (max absolute row sum)."""
        if J.nnz == 0:
            return 0.0
        return float(np.max(np.abs(J).sum(axis=1)))

    def is_finite(self, J) -> bool:
        """True when every stored Jacobian entry is finite."""
        return bool(np.all(np.isfinite(J.data)))


#: A linear-solver backend: anything implementing the DenseSolver /
#: SparseSolver interface (solve, regularize, inf_norm, is_finite,
#: name, matrix_mode, counters).
LinearSolver = Union[DenseSolver, SparseSolver]


def solve_linear(backend, J, b: np.ndarray) -> np.ndarray:
    """Solve ``J x = b`` with the shared singularity fallback.

    This is the one regularisation path both backends use: when the
    factorisation reports a singular matrix, retry once with a
    norm-scaled diagonal shift (:data:`REGULARIZATION_SCALE` times the
    Jacobian's infinity norm).  A second failure propagates as
    :class:`numpy.linalg.LinAlgError` for the Newton loop to convert
    into a :class:`~repro.errors.ConvergenceError`.
    """
    started = perf_counter()
    try:
        return backend.solve(J, b)
    except np.linalg.LinAlgError:
        shift = REGULARIZATION_SCALE * max(1.0, backend.inf_norm(J))
        backend.counters["regularized"] += 1
        return backend.solve(backend.regularize(J, shift), b)
    finally:
        profiling.COUNTERS["solve_time"] += perf_counter() - started


def scipy_sparse_available() -> bool:
    """Whether the sparse backend's dependencies import cleanly."""
    try:
        from scipy.sparse.linalg import splu  # noqa: F401
    except ImportError:
        return False
    return True


def make_backend(kind: str) -> LinearSolver:
    """Construct a backend by name (``"dense"`` or ``"sparse"``)."""
    if kind == "dense":
        return DenseSolver()
    if kind == "sparse":
        return SparseSolver()
    raise ValueError(f"unknown backend kind '{kind}'")


def resolve_backend(spec: Union[None, str, LinearSolver],
                    n: int,
                    options: Optional[BackendOptions] = None
                    ) -> LinearSolver:
    """The backend an analysis with ``n`` unknowns should use.

    ``spec`` may be a ready-made backend instance (returned as-is, so a
    sweep can share one instance and its counters), a kind string, or
    ``None`` to follow the active policy: ``"auto"`` picks sparse once
    ``n`` reaches the policy's ``sparse_threshold`` — falling back to
    dense when scipy is unavailable — and dense below it.
    """
    if spec is not None and not isinstance(spec, str):
        return spec
    opts = options or get_backend_options()
    kind = spec if spec is not None else opts.kind
    if kind == "auto":
        if n >= opts.sparse_threshold and scipy_sparse_available():
            kind = "sparse"
        else:
            kind = "dense"
    return make_backend(kind)

"""Circuit analyses: DC operating point, DC sweeps, transient, measurement."""

from repro.analysis.options import NewtonOptions, TransientOptions
from repro.analysis.dc import operating_point, dc_sweep, OperatingPoint, DCSweepResult
from repro.analysis.transient import transient, TransientResult
from repro.analysis.ac import ac_analysis, ACResult
from repro.analysis import measure

__all__ = [
    "NewtonOptions",
    "TransientOptions",
    "operating_point",
    "dc_sweep",
    "OperatingPoint",
    "DCSweepResult",
    "transient",
    "TransientResult",
    "ac_analysis",
    "ACResult",
    "measure",
]

"""Circuit analyses: DC operating point, DC sweeps, transient, measurement."""

from repro.analysis.options import (
    BackendOptions,
    NewtonOptions,
    TransientOptions,
    backend_override,
    ensemble_override,
)
from repro.analysis.backends import (
    DenseSolver,
    SparseSolver,
    make_backend,
    resolve_backend,
)
from repro.analysis.dc import operating_point, dc_sweep, OperatingPoint, DCSweepResult
from repro.analysis.transient import transient, TransientResult
from repro.analysis.ac import ac_analysis, ACResult
from repro.analysis.ensemble import (
    EnsembleOperatingPoint,
    EnsembleSpec,
    EnsembleSweepResult,
    EnsembleTransientResult,
    ensemble_dc,
    ensemble_sweep,
    ensemble_transient,
)
from repro.analysis import measure

__all__ = [
    "BackendOptions",
    "NewtonOptions",
    "TransientOptions",
    "backend_override",
    "ensemble_override",
    "EnsembleSpec",
    "EnsembleOperatingPoint",
    "EnsembleSweepResult",
    "EnsembleTransientResult",
    "ensemble_dc",
    "ensemble_sweep",
    "ensemble_transient",
    "DenseSolver",
    "SparseSolver",
    "make_backend",
    "resolve_backend",
    "operating_point",
    "dc_sweep",
    "OperatingPoint",
    "DCSweepResult",
    "transient",
    "TransientResult",
    "ac_analysis",
    "ACResult",
    "measure",
]

"""Analysis option containers.

Besides the option dataclasses this module hosts the *option transform*
stack: callers above the analysis layer (notably the retry ladder in
:mod:`repro.engine.retry`) can push a transform that rewrites the
effective :class:`NewtonOptions` / :class:`HomotopyOptions` of every DC
solve entered while the transform is active.  The solver resolves its
options through :func:`resolve_solver_options`, so relaxations reach
solves buried arbitrarily deep inside an experiment without threading
option arguments through every call site.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple


@dataclass
class NewtonOptions:
    """Controls for the damped Newton solver.

    Attributes
    ----------
    max_iterations:
        Iteration cap per solve attempt.
    reltol / abstol_v:
        Update-size convergence test: ``|dx| <= reltol*|x| + abstol_v``.
    damping:
        Initial step scale (1.0 = full Newton steps).
    min_step_scale:
        Smallest allowed backtracking scale before declaring failure.
    """

    max_iterations: int = 120
    reltol: float = 1e-6
    abstol_v: float = 1e-9
    damping: float = 1.0
    min_step_scale: float = 1e-4
    #: Multiplies the layout's per-row residual tolerances.
    residual_scale: float = 1.0


@dataclass
class HomotopyOptions:
    """gmin- and source-stepping fallbacks for hard DC problems."""

    gmin_start: float = 1e-2
    gmin_final: float = 1e-12
    gmin_steps_per_decade: int = 1
    source_steps: int = 20


#: Signature of an option transform: receives the effective options and
#: returns (possibly replaced) ones.  Transforms compose in push order.
OptionTransform = Callable[["NewtonOptions", "HomotopyOptions"],
                           Tuple["NewtonOptions", "HomotopyOptions"]]

_option_transforms: List[OptionTransform] = []


@contextlib.contextmanager
def option_transform(transform: OptionTransform) -> Iterator[None]:
    """Apply ``transform`` to every DC solve entered in this block."""
    _option_transforms.append(transform)
    try:
        yield
    finally:
        _option_transforms.remove(transform)


def resolve_solver_options(newton: Optional["NewtonOptions"],
                           homotopy: Optional["HomotopyOptions"]
                           ) -> Tuple["NewtonOptions", "HomotopyOptions"]:
    """Effective options after defaults and any active transforms."""
    n = newton if newton is not None else NewtonOptions()
    h = homotopy if homotopy is not None else HomotopyOptions()
    for transform in _option_transforms:
        n, h = transform(n, h)
    return n, h


@dataclass(frozen=True)
class BackendOptions:
    """Which linear-solver backend the analyses should use.

    Attributes
    ----------
    kind:
        ``"auto"`` (default) picks :class:`~repro.analysis.backends.
        SparseSolver` when the unknown count reaches
        ``sparse_threshold`` (and scipy is importable), else the dense
        reference backend.  ``"dense"`` / ``"sparse"`` force a backend
        regardless of size.
    sparse_threshold:
        Unknown count at which ``"auto"`` switches to the sparse
        backend.  The paper's single-gate circuits sit far below it, so
        the default keeps the seed's dense behaviour there; array-level
        netlists cross it quickly.
    """

    kind: str = "auto"
    sparse_threshold: int = 64

    def __post_init__(self):
        if self.kind not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"unknown backend kind '{self.kind}' "
                f"(expected auto, dense or sparse)")
        if self.sparse_threshold < 1:
            raise ValueError(
                f"sparse_threshold must be >= 1, got "
                f"{self.sparse_threshold}")


_backend_options = BackendOptions()


def get_backend_options() -> BackendOptions:
    """The active backend-selection policy."""
    return _backend_options


def set_backend_options(options: BackendOptions) -> BackendOptions:
    """Install a new backend policy; returns the previous one."""
    global _backend_options
    previous = _backend_options
    _backend_options = options
    return previous


@contextlib.contextmanager
def backend_override(kind: Optional[str] = None,
                     sparse_threshold: Optional[int] = None
                     ) -> Iterator[BackendOptions]:
    """Temporarily replace fields of the active backend policy.

    Every analysis entered inside the block (however deeply nested in
    an experiment) resolves its linear-solver backend against the
    overridden policy; the previous policy is restored on exit.
    """
    current = get_backend_options()
    overridden = BackendOptions(
        kind=current.kind if kind is None else kind,
        sparse_threshold=(current.sparse_threshold
                          if sparse_threshold is None
                          else sparse_threshold))
    previous = set_backend_options(overridden)
    try:
        yield overridden
    finally:
        set_backend_options(previous)


@dataclass
class TransientOptions:
    """Controls for transient analysis.

    Attributes
    ----------
    method:
        ``"be"`` (backward Euler, L-stable, default) or ``"trap"``.
    dtmin:
        Smallest step accepted before raising
        :class:`~repro.errors.TimestepError`.
    adaptive:
        When true the step grows by ``growth`` after each easy solve and
        shrinks on Newton failures; when false a fixed step is used
        (except for breakpoint alignment).
    """

    method: str = "be"
    dtmin: float = 1e-18
    adaptive: bool = True
    growth: float = 1.4
    shrink: float = 0.25
    max_dt_factor: float = 8.0
    newton: NewtonOptions = field(default_factory=NewtonOptions)

    def __post_init__(self):
        if self.method not in ("be", "trap"):
            raise ValueError(f"unknown integration method '{self.method}'")

"""Analysis option containers.

Besides the option dataclasses this module hosts the *option transform*
stack: callers above the analysis layer (notably the retry ladder in
:mod:`repro.engine.retry`) can push a transform that rewrites the
effective :class:`NewtonOptions` / :class:`HomotopyOptions` of every DC
solve entered while the transform is active.  The solver resolves its
options through :func:`resolve_solver_options`, so relaxations reach
solves buried arbitrarily deep inside an experiment without threading
option arguments through every call site.

Every session policy in this module — the transform stack, the backend
policy, the default step control and the ensemble toggle — is stored
**thread-locally** (see :mod:`repro.ambient`): a ``set_*`` call or an
``*_override`` block affects only the calling thread, so concurrent
service workers resolve their own policies.  New threads start from
the shared defaults; explicit cross-thread propagation goes through
:class:`repro.analysis.context.AmbientContext`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple

from repro.ambient import ThreadLocalStack, ThreadLocalValue

# Device-evaluation policy (batched/scalar mode and SPICE-style
# bypass).  It lives in repro.circuit.batch — the assembler needs it
# below the analysis layer — and is re-exported here so callers find
# every session-wide analysis policy in one module.
from repro.circuit.batch import (  # noqa: F401
    EvalOptions,
    eval_override,
    get_eval_options,
    set_eval_options,
)


@dataclass
class NewtonOptions:
    """Controls for the damped Newton solver.

    Attributes
    ----------
    max_iterations:
        Iteration cap per solve attempt.
    reltol / abstol_v:
        Update-size convergence test: ``|dx| <= reltol*|x| + abstol_v``.
    damping:
        Initial step scale (1.0 = full Newton steps).
    min_step_scale:
        Smallest allowed backtracking scale before declaring failure.
    """

    max_iterations: int = 120
    reltol: float = 1e-6
    abstol_v: float = 1e-9
    damping: float = 1.0
    min_step_scale: float = 1e-4
    #: Multiplies the layout's per-row residual tolerances.
    residual_scale: float = 1.0


@dataclass
class HomotopyOptions:
    """gmin- and source-stepping fallbacks for hard DC problems."""

    gmin_start: float = 1e-2
    gmin_final: float = 1e-12
    gmin_steps_per_decade: int = 1
    source_steps: int = 20


#: Signature of an option transform: receives the effective options and
#: returns (possibly replaced) ones.  Transforms compose in push order.
OptionTransform = Callable[["NewtonOptions", "HomotopyOptions"],
                           Tuple["NewtonOptions", "HomotopyOptions"]]

#: Per-thread transform registrations: a transform pushed here rewrites
#: only solves entered by the pushing thread.
_option_transforms = ThreadLocalStack("option-transforms")


@contextlib.contextmanager
def option_transform(transform: OptionTransform) -> Iterator[None]:
    """Apply ``transform`` to every DC solve entered in this block.

    Blocks nest, including with the *same* transform object: exit pops
    the innermost matching registration (identity first, from the
    tail), so re-entering a shared transform never removes the outer
    registration or reorders the composition.
    """
    _option_transforms.push(transform)
    try:
        yield
    finally:
        _option_transforms.pop(transform)


def resolve_solver_options(newton: Optional["NewtonOptions"],
                           homotopy: Optional["HomotopyOptions"]
                           ) -> Tuple["NewtonOptions", "HomotopyOptions"]:
    """Effective options after defaults and any active transforms."""
    n = newton if newton is not None else NewtonOptions()
    h = homotopy if homotopy is not None else HomotopyOptions()
    for transform in _option_transforms:
        n, h = transform(n, h)
    return n, h


@dataclass(frozen=True)
class BackendOptions:
    """Which linear-solver backend the analyses should use.

    Attributes
    ----------
    kind:
        ``"auto"`` (default) picks :class:`~repro.analysis.backends.
        SparseSolver` when the unknown count reaches
        ``sparse_threshold`` (and scipy is importable), else the dense
        reference backend.  ``"dense"`` / ``"sparse"`` force a backend
        regardless of size.
    sparse_threshold:
        Unknown count at which ``"auto"`` switches to the sparse
        backend.  The paper's single-gate circuits sit far below it, so
        the default keeps the seed's dense behaviour there; array-level
        netlists cross it quickly.
    """

    kind: str = "auto"
    sparse_threshold: int = 64

    def __post_init__(self):
        if self.kind not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"unknown backend kind '{self.kind}' "
                f"(expected auto, dense or sparse)")
        if self.sparse_threshold < 1:
            raise ValueError(
                f"sparse_threshold must be >= 1, got "
                f"{self.sparse_threshold}")


_backend_options = ThreadLocalValue("backend-options", BackendOptions())


def get_backend_options() -> BackendOptions:
    """The calling thread's active backend-selection policy."""
    return _backend_options.get()


def set_backend_options(options: BackendOptions) -> BackendOptions:
    """Install a new backend policy for this thread; returns the
    previously effective one."""
    return _backend_options.set(options)


@contextlib.contextmanager
def backend_override(kind: Optional[str] = None,
                     sparse_threshold: Optional[int] = None
                     ) -> Iterator[BackendOptions]:
    """Temporarily replace fields of the active backend policy.

    Every analysis entered inside the block (however deeply nested in
    an experiment) resolves its linear-solver backend against the
    overridden policy; the previous policy is restored on exit.
    """
    current = get_backend_options()
    overridden = BackendOptions(
        kind=current.kind if kind is None else kind,
        sparse_threshold=(current.sparse_threshold
                          if sparse_threshold is None
                          else sparse_threshold))
    previous = set_backend_options(overridden)
    try:
        yield overridden
    finally:
        set_backend_options(previous)


#: Per-thread default transient step control ("lte" or "iter"); see
#: :func:`set_default_step_control` / :func:`step_control_override`.
_default_step_control = ThreadLocalValue("step-control", "lte")

_STEP_CONTROLS = ("lte", "iter")


def get_default_step_control() -> str:
    """The step-control mode used when TransientOptions leaves it None."""
    return _default_step_control.get()


def set_default_step_control(kind: str) -> str:
    """Install this thread's default step control; returns the
    previously effective one."""
    if kind not in _STEP_CONTROLS:
        raise ValueError(
            f"unknown step control '{kind}' (expected one of "
            f"{', '.join(_STEP_CONTROLS)})")
    return _default_step_control.set(kind)


@contextlib.contextmanager
def step_control_override(kind: Optional[str]) -> Iterator[None]:
    """Temporarily change the default transient step control.

    ``None`` is a no-op, so callers (the CLI) can pass an optional flag
    straight through.  Every transient entered inside the block whose
    options leave ``step_control`` unset resolves to ``kind``.
    """
    if kind is None:
        yield
        return
    previous = set_default_step_control(kind)
    try:
        yield
    finally:
        set_default_step_control(previous)


#: Session-wide toggle for the stacked ensemble path: when off, the
#: ``ensemble_*`` analyses run their per-sample sequential reference
#: path instead (identical numerics to the pre-ensemble code).  Folded
#: into the engine cache's ambient salt so stacked and sequential runs
#: never alias.
_ensemble_mode = ThreadLocalValue("ensemble-mode", True)


def get_ensemble_mode() -> bool:
    """Whether the ensemble analyses use the stacked lock-step path."""
    return _ensemble_mode.get()


def set_ensemble_mode(enabled: bool) -> bool:
    """Enable/disable the stacked ensemble path for this thread;
    returns the previously effective setting."""
    return _ensemble_mode.set(bool(enabled))


@contextlib.contextmanager
def ensemble_override(enabled: Optional[bool]) -> Iterator[None]:
    """Temporarily toggle the stacked ensemble path (``None`` no-op)."""
    if enabled is None:
        yield
        return
    previous = set_ensemble_mode(enabled)
    try:
        yield
    finally:
        set_ensemble_mode(previous)


@dataclass
class TransientOptions:
    """Controls for transient analysis.

    Attributes
    ----------
    method:
        ``"be"`` (backward Euler, L-stable, default) or ``"trap"``.
    dtmin:
        Smallest step accepted before raising
        :class:`~repro.errors.TimestepError`.
    adaptive:
        When true the step size is controlled automatically (see
        ``step_control``); when false a fixed step is used (except for
        breakpoint alignment).
    step_control:
        ``"lte"`` (local-truncation-error control, the default) sizes
        steps from a per-step error estimate: steps whose estimated LTE
        exceeds ``trtol * (lte_reltol*|x| + lte_abstol)`` are rejected
        and re-solved with a smaller step, and accepted steps grow by
        the error ratio.  ``"iter"`` is the legacy Newton-iteration
        heuristic (grow by ``growth`` after easy solves, halve after
        hard ones).  ``None`` defers to the session default
        (:func:`get_default_step_control`), so the CLI's
        ``--step-control`` flag reaches solves buried inside
        experiments.
    growth:
        Step growth factor of the ``"iter"`` heuristic; also the
        bootstrap growth used by ``"lte"`` while the divided-difference
        history is too short for an estimate (first steps of a run and
        after each breakpoint).
    shrink:
        Step shrink factor applied after a Newton convergence failure
        (both controls; distinct from an LTE rejection).
    max_dt_factor:
        Cap on the step as a multiple of the nominal ``dt`` for the
        ``"iter"`` heuristic.
    trtol:
        HSPICE-style divisor of the LTE tolerance (the raw estimate is
        conservative; larger values accept larger steps).
    lte_reltol / lte_abstol:
        Relative/absolute per-unknown truncation-error tolerance.
    lte_max_growth:
        Largest step growth per accepted step under LTE control.
    lte_safety:
        Safety factor on the error-ratio step predictor.
    lte_max_dt_factor:
        Cap on the step as a multiple of the nominal ``dt`` under LTE
        control.  Much larger than ``max_dt_factor``: with a real error
        bound the blunt cap is no longer the safety net.
    lte_min_dt_factor:
        Floor on LTE-driven shrink as a fraction of the nominal ``dt``.
        At a genuine solution corner (NEMFET contact, hard clamps) the
        divided-difference error estimate diverges and pure LTE control
        would grind the step toward ``dtmin``; once the step reaches
        ``dt * lte_min_dt_factor`` it is accepted instead of rejected,
        bounding the work spent resolving the corner.  Newton-failure
        shrink still goes all the way down to ``dtmin``.
    """

    method: str = "be"
    dtmin: float = 1e-18
    adaptive: bool = True
    growth: float = 1.4
    shrink: float = 0.25
    max_dt_factor: float = 8.0
    step_control: Optional[str] = None
    trtol: float = 7.0
    lte_reltol: float = 1e-3
    lte_abstol: float = 1e-6
    lte_max_growth: float = 4.0
    lte_safety: float = 0.9
    lte_max_dt_factor: float = 64.0
    lte_min_dt_factor: float = 1e-2
    newton: NewtonOptions = field(default_factory=NewtonOptions)

    def __post_init__(self):
        if self.method not in ("be", "trap"):
            raise ValueError(f"unknown integration method '{self.method}'")
        if self.step_control is not None and \
                self.step_control not in _STEP_CONTROLS:
            raise ValueError(
                f"unknown step control '{self.step_control}' (expected "
                f"one of {', '.join(_STEP_CONTROLS)})")
        if self.trtol <= 0:
            raise ValueError(f"trtol must be positive, got {self.trtol}")
        if self.lte_reltol <= 0 or self.lte_abstol < 0:
            raise ValueError(
                f"lte tolerances must be positive, got reltol="
                f"{self.lte_reltol}, abstol={self.lte_abstol}")
        if self.lte_max_growth <= 1.0:
            raise ValueError(
                f"lte_max_growth must exceed 1, got {self.lte_max_growth}")
        if not 0.0 < self.lte_safety <= 1.0:
            raise ValueError(
                f"lte_safety must be in (0, 1], got {self.lte_safety}")
        if not 0.0 < self.lte_min_dt_factor <= 1.0:
            raise ValueError(
                f"lte_min_dt_factor must be in (0, 1], got "
                f"{self.lte_min_dt_factor}")

    def resolve_step_control(self) -> str:
        """Effective step control after the session default."""
        return self.step_control or get_default_step_control()

"""Analysis option containers.

Besides the option dataclasses this module hosts the *option transform*
stack: callers above the analysis layer (notably the retry ladder in
:mod:`repro.engine.retry`) can push a transform that rewrites the
effective :class:`NewtonOptions` / :class:`HomotopyOptions` of every DC
solve entered while the transform is active.  The solver resolves its
options through :func:`resolve_solver_options`, so relaxations reach
solves buried arbitrarily deep inside an experiment without threading
option arguments through every call site.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple


@dataclass
class NewtonOptions:
    """Controls for the damped Newton solver.

    Attributes
    ----------
    max_iterations:
        Iteration cap per solve attempt.
    reltol / abstol_v:
        Update-size convergence test: ``|dx| <= reltol*|x| + abstol_v``.
    damping:
        Initial step scale (1.0 = full Newton steps).
    min_step_scale:
        Smallest allowed backtracking scale before declaring failure.
    """

    max_iterations: int = 120
    reltol: float = 1e-6
    abstol_v: float = 1e-9
    damping: float = 1.0
    min_step_scale: float = 1e-4
    #: Multiplies the layout's per-row residual tolerances.
    residual_scale: float = 1.0


@dataclass
class HomotopyOptions:
    """gmin- and source-stepping fallbacks for hard DC problems."""

    gmin_start: float = 1e-2
    gmin_final: float = 1e-12
    gmin_steps_per_decade: int = 1
    source_steps: int = 20


#: Signature of an option transform: receives the effective options and
#: returns (possibly replaced) ones.  Transforms compose in push order.
OptionTransform = Callable[["NewtonOptions", "HomotopyOptions"],
                           Tuple["NewtonOptions", "HomotopyOptions"]]

_option_transforms: List[OptionTransform] = []


@contextlib.contextmanager
def option_transform(transform: OptionTransform) -> Iterator[None]:
    """Apply ``transform`` to every DC solve entered in this block."""
    _option_transforms.append(transform)
    try:
        yield
    finally:
        _option_transforms.remove(transform)


def resolve_solver_options(newton: Optional["NewtonOptions"],
                           homotopy: Optional["HomotopyOptions"]
                           ) -> Tuple["NewtonOptions", "HomotopyOptions"]:
    """Effective options after defaults and any active transforms."""
    n = newton if newton is not None else NewtonOptions()
    h = homotopy if homotopy is not None else HomotopyOptions()
    for transform in _option_transforms:
        n, h = transform(n, h)
    return n, h


@dataclass
class TransientOptions:
    """Controls for transient analysis.

    Attributes
    ----------
    method:
        ``"be"`` (backward Euler, L-stable, default) or ``"trap"``.
    dtmin:
        Smallest step accepted before raising
        :class:`~repro.errors.TimestepError`.
    adaptive:
        When true the step grows by ``growth`` after each easy solve and
        shrinks on Newton failures; when false a fixed step is used
        (except for breakpoint alignment).
    """

    method: str = "be"
    dtmin: float = 1e-18
    adaptive: bool = True
    growth: float = 1.4
    shrink: float = 0.25
    max_dt_factor: float = 8.0
    newton: NewtonOptions = field(default_factory=NewtonOptions)

    def __post_init__(self):
        if self.method not in ("be", "trap"):
            raise ValueError(f"unknown integration method '{self.method}'")

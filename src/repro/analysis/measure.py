"""Waveform measurements: crossings, delays, power and energy integrals.

All functions operate on plain numpy arrays (time and signal of equal
length), so they compose with :class:`~repro.analysis.transient.
TransientResult` accessors and with synthetic data in tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MeasurementError

# numpy 2.0 renamed trapz to trapezoid.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _validate(t: np.ndarray, y: np.ndarray) -> None:
    t = np.asarray(t)
    y = np.asarray(y)
    if t.ndim != 1 or y.ndim != 1 or t.shape != y.shape:
        raise MeasurementError(
            f"time and signal must be equal-length 1-D arrays, got "
            f"{t.shape} and {y.shape}")
    if len(t) < 2:
        raise MeasurementError("need at least two samples to measure")


def cross_times(t, y, level: float, edge: str = "any") -> List[float]:
    """All times where ``y`` crosses ``level``, linearly interpolated.

    ``edge`` selects ``"rise"``, ``"fall"`` or ``"any"`` crossings.
    Samples exactly at the level are treated as crossings of the
    surrounding segment.
    """
    _validate(t, y)
    if edge not in ("rise", "fall", "any"):
        raise MeasurementError(f"unknown edge type '{edge}'")
    t = np.asarray(t, dtype=float)
    d = np.asarray(y, dtype=float) - level
    d0, d1 = d[:-1], d[1:]
    # A segment starting exactly at the level only counts as a rise when
    # the previous sample was not below it — a below-level predecessor
    # means the preceding segment already recorded this crossing.  The
    # first segment has no predecessor and always counts.
    prev_nonneg = np.empty(len(d0), dtype=bool)
    prev_nonneg[0] = True
    prev_nonneg[1:] = d[:-2] >= 0.0
    rise = ((d0 < 0.0) & (d1 >= 0.0)) | \
        ((d0 == 0.0) & (d1 > 0.0) & prev_nonneg)
    fall = (d0 >= 0.0) & (d1 < 0.0)
    if edge == "rise":
        mask = rise
    elif edge == "fall":
        mask = fall
    else:
        mask = rise | fall
    idx = np.nonzero(mask)[0]
    # Every selected segment has d1 != d0, so the interpolation is safe.
    frac = -d0[idx] / (d1[idx] - d0[idx])
    return [float(v) for v in t[idx] + frac * (t[idx + 1] - t[idx])]


def first_cross(t, y, level: float, edge: str = "any",
                after: float = 0.0) -> float:
    """First crossing of ``level`` at or after time ``after``.

    Raises :class:`MeasurementError` when no such crossing exists.
    """
    for tc in cross_times(t, y, level, edge):
        if tc >= after:
            return tc
    raise MeasurementError(
        f"signal never crosses {level} ({edge}) after t={after:.3e}s")


def propagation_delay(t, y_from, y_to, *, level_from: float,
                      level_to: float, edge_from: str = "any",
                      edge_to: str = "any", after: float = 0.0) -> float:
    """Delay from a reference-signal edge to the response-signal edge.

    Measures the first ``y_from`` crossing after ``after``, then the first
    ``y_to`` crossing after that reference instant.
    """
    t_ref = first_cross(t, y_from, level_from, edge_from, after)
    t_out = first_cross(t, y_to, level_to, edge_to, t_ref)
    return t_out - t_ref


def rise_time(t, y, low_frac: float = 0.1, high_frac: float = 0.9,
              vlow: Optional[float] = None,
              vhigh: Optional[float] = None) -> float:
    """10-90 % (by default) rise time of the first rising transition."""
    _validate(t, y)
    y = np.asarray(y, dtype=float)
    lo = float(np.min(y)) if vlow is None else vlow
    hi = float(np.max(y)) if vhigh is None else vhigh
    span = hi - lo
    if span <= 0:
        raise MeasurementError("signal has no rising span")
    t_lo = first_cross(t, y, lo + low_frac * span, "rise")
    t_hi = first_cross(t, y, lo + high_frac * span, "rise", after=t_lo)
    return t_hi - t_lo


def fall_time(t, y, low_frac: float = 0.1, high_frac: float = 0.9,
              vlow: Optional[float] = None,
              vhigh: Optional[float] = None) -> float:
    """90-10 % (by default) fall time of the first falling transition."""
    _validate(t, y)
    y = np.asarray(y, dtype=float)
    lo = float(np.min(y)) if vlow is None else vlow
    hi = float(np.max(y)) if vhigh is None else vhigh
    span = hi - lo
    if span <= 0:
        raise MeasurementError("signal has no falling span")
    t_hi = first_cross(t, y, lo + high_frac * span, "fall")
    t_lo = first_cross(t, y, lo + low_frac * span, "fall", after=t_hi)
    return t_lo - t_hi


def integrate(t, y, t0: Optional[float] = None,
              t1: Optional[float] = None) -> float:
    """Trapezoidal integral of ``y`` dt over ``[t0, t1]``.

    Window endpoints are interpolated, so energy measurements do not
    depend on sample placement.
    """
    _validate(t, y)
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    a = t[0] if t0 is None else float(t0)
    b = t[-1] if t1 is None else float(t1)
    if b < a:
        raise MeasurementError(f"empty window [{a}, {b}]")
    if a < t[0] - 1e-18 or b > t[-1] + 1e-18:
        raise MeasurementError(
            f"window [{a:.3e}, {b:.3e}] outside data range "
            f"[{t[0]:.3e}, {t[-1]:.3e}]")
    # Clip to the data and interpolate the window edges.
    a = max(a, t[0])
    b = min(b, t[-1])
    mask = (t > a) & (t < b)
    ts = np.concatenate(([a], t[mask], [b]))
    ys = np.concatenate(([np.interp(a, t, y)], y[mask],
                         [np.interp(b, t, y)]))
    return float(_trapezoid(ys, ts))


def average(t, y, t0: Optional[float] = None,
            t1: Optional[float] = None) -> float:
    """Time-average of ``y`` over ``[t0, t1]``."""
    _validate(t, y)
    t = np.asarray(t, dtype=float)
    a = t[0] if t0 is None else float(t0)
    b = t[-1] if t1 is None else float(t1)
    if b <= a:
        raise MeasurementError(f"empty averaging window [{a}, {b}]")
    return integrate(t, y, a, b) / (b - a)


def supply_energy(result, source_name: str, t0: Optional[float] = None,
                  t1: Optional[float] = None) -> float:
    """Energy delivered by a voltage source over a window [J].

    Positive values mean the source delivered net energy to the circuit.
    """
    return integrate(result.t, result.source_power(source_name), t0, t1)


def steady_state_power(result, source_name: str,
                       fraction: float = 0.2) -> float:
    """Average delivered power over the trailing ``fraction`` of the run.

    Used for leakage measurements: run the circuit to a quiescent state
    and average the supply power over the final stretch.
    """
    if not 0.0 < fraction <= 1.0:
        raise MeasurementError(
            f"fraction must be in (0, 1], got {fraction}")
    t = result.t
    t0 = t[-1] - fraction * (t[-1] - t[0])
    return average(t, result.source_power(source_name), t0, t[-1])

"""Explicit ambient-context propagation across threads and processes.

Every session policy that influences a solve — the linear-solver
backend policy, the default transient step control, the stacked
ensemble toggle, the device-evaluation policy and the active
option-transform stack — lives in thread-local storage (see
:mod:`repro.ambient` and :mod:`repro.analysis.options`).  That makes
concurrent orchestration safe, but it also means a worker thread or a
pool worker process starts from the shared defaults rather than from
whatever the submitting thread had configured.

:class:`AmbientContext` is the explicit hand-off: :meth:`capture` in
the submitting thread, ship the (picklable) snapshot to the worker,
and run the task inside :meth:`applied`.  The engine's job runner does
this for its ``jobs=N`` pool (see
:func:`repro.engine.runner.run_jobs`), so a ``backend_override`` or a
retry-ladder relaxation wrapped around a sweep reaches solves executed
by pool workers exactly as it reaches in-thread solves — and the
cache's :func:`~repro.engine.cache.ambient_salt` (computed from the
same policies in the submitting thread) stays truthful for the results
they produce.

``applied`` also gives the worker a *fresh observation scope*: any
solve observers inherited from the parent (via ``fork``) are masked
for the duration, because attribution flows back to the submitter
explicitly — as :class:`~repro.engine.telemetry.SolveStats` on each
:class:`~repro.engine.runner.JobResult` — never through ambient
callbacks crossing a thread or process boundary.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, Tuple

from repro.analysis import options as _options
from repro.analysis import solver as _solver
from repro.analysis.options import (
    BackendOptions,
    EvalOptions,
    OptionTransform,
    get_backend_options,
    get_default_step_control,
    get_ensemble_mode,
    get_eval_options,
    set_backend_options,
    set_default_step_control,
    set_ensemble_mode,
    set_eval_options,
)


@dataclass(frozen=True)
class AmbientContext:
    """Snapshot of every thread-local solve policy, ready to reinstall.

    The scalar policies are plain dataclasses/strings/bools and always
    pickle; the option transforms are whatever callables were pushed —
    module-level functions and the retry ladder's bound
    ``RetryRung.adjust`` methods pickle fine, ad-hoc lambdas do not
    (the same restriction the job runner already places on task
    functions).
    """

    backend: BackendOptions = field(default_factory=BackendOptions)
    step_control: str = "lte"
    ensemble_mode: bool = True
    eval_options: EvalOptions = field(default_factory=EvalOptions)
    option_transforms: Tuple[OptionTransform, ...] = ()

    @classmethod
    def capture(cls) -> "AmbientContext":
        """The calling thread's effective ambient solve policies."""
        return cls(
            backend=get_backend_options(),
            step_control=get_default_step_control(),
            ensemble_mode=get_ensemble_mode(),
            eval_options=get_eval_options(),
            option_transforms=_options._option_transforms.snapshot())

    @contextlib.contextmanager
    def applied(self) -> Iterator["AmbientContext"]:
        """Install this snapshot for the calling thread.

        The policy values are set thread-locally, the option-transform
        stack is *replaced* (not appended to) with the captured one,
        and the solve-observer stack is cleared — so the block behaves
        identically whether the thread inherited state (a forked pool
        worker) or started clean (a spawned one).  Everything is
        restored on exit; pool workers are reused across jobs and must
        not accumulate state.
        """
        prev_backend = set_backend_options(self.backend)
        prev_step = set_default_step_control(self.step_control)
        prev_ensemble = set_ensemble_mode(self.ensemble_mode)
        prev_eval = set_eval_options(self.eval_options)
        prev_transforms = _options._option_transforms.replace(
            self.option_transforms)
        prev_observers = _solver._solve_observers.replace(())
        try:
            yield self
        finally:
            _solver._solve_observers.replace(prev_observers)
            _options._option_transforms.replace(prev_transforms)
            set_eval_options(prev_eval)
            set_ensemble_mode(prev_ensemble)
            set_default_step_control(prev_step)
            set_backend_options(prev_backend)

"""Implicit transient analysis with breakpoint-aware adaptive stepping.

Step-size control
-----------------
With ``options.adaptive`` (the default) the step size is governed by the
resolved ``options.step_control`` (``None`` resolves through the
*thread-local* session default — see
:func:`repro.analysis.options.step_control_override` — so concurrent
service workers can run different controllers without interfering):

* ``"lte"`` (default) — true local-truncation-error control.  After each
  converged implicit solve the LTE of the candidate step is estimated
  from a divided-difference predictor (second divided difference for
  backward Euler, third for the trapezoidal rule), scaled against the
  HSPICE-style tolerance ``trtol * (lte_reltol*|x| + lte_abstol)``.
  Steps whose error ratio exceeds one are *rejected* and re-solved with
  a smaller step — a distinct path from the Newton-failure shrink — and
  accepted steps grow proportionally to ``ratio**(-1/(p+1))``, so smooth
  stretches take the largest step the tolerance allows instead of
  creeping up by a fixed factor.

* ``"iter"`` — the legacy Newton-iteration-count heuristic (grow by
  ``growth`` after easy solves, halve after hard ones), kept for
  comparison benchmarks and for callers that want the old trajectories.

Breakpoints (source corners) are always landed on exactly, using
*relative* time tolerances so detection keeps working at ``t`` large
enough that the float64 ulp exceeds any absolute epsilon.  The step
after every breakpoint is forced to backward Euler (trapezoidal rule
rings on discontinuous source slopes) and the LTE history restarts
there, since divided differences spanning a slope discontinuity are
meaningless.

Each run records a :class:`StepStats` (accepted / LTE-rejected /
Newton-rejected steps, step-size extrema, an error-ratio histogram)
exposed as ``TransientResult.stats`` and reported to the solver
observers as a ``kind="transient"`` :class:`~repro.analysis.solver.
SolveEvent`, which :mod:`repro.engine.telemetry` folds into
``python -m repro stats``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.analysis.backends import LinearSolver, resolve_backend
from repro.analysis.dc import OperatingPoint, operating_point
from repro.analysis.options import TransientOptions
from repro.analysis.solver import (
    SolveEvent,
    emit_solve_event,
    have_solve_observers,
    newton_solve,
)
from repro.circuit.mna import Assembler, SystemLayout
from repro.circuit.netlist import Circuit, is_ground
from repro.errors import ConvergenceError, NetlistError, TimestepError

#: Relative tolerance for aligning times with breakpoints and the stop
#: time.  Scaled by max(|t|, h): at t ~ 1e-4 s (thermal / reliability
#: runs) the float64 ulp is ~1e-20 s, far above any fixed epsilon that
#: would be appropriate at t ~ 1e-12 s.
_TIME_RTOL = 1e-12

#: Upper bin edges of the LTE error-ratio histogram; the last bin is
#: open-ended.  Ratios <= 1 are accepted steps, > 1 rejected ones.
ERROR_RATIO_EDGES = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


@dataclass
class StepStats:
    """Stepping statistics of one transient run."""

    control: str = "lte"        #: "lte", "iter" or "fixed"
    accepted: int = 0           #: accepted time steps
    rejected_lte: int = 0       #: steps re-solved after an LTE reject
    rejected_newton: int = 0    #: steps re-solved after a Newton fail
    newton_iterations: int = 0  #: cumulative Newton iterations
    h_min: float = 0.0          #: smallest accepted step [s]
    h_max: float = 0.0          #: largest accepted step [s]
    #: Counts of LTE error ratios per bin of :data:`ERROR_RATIO_EDGES`
    #: (one extra open-ended bin at the end).
    error_ratio_hist: List[int] = field(
        default_factory=lambda: [0] * (len(ERROR_RATIO_EDGES) + 1))

    @property
    def attempts(self) -> int:
        """Total implicit solves attempted (accepted + rejected)."""
        return self.accepted + self.rejected_lte + self.rejected_newton

    def record_ratio(self, ratio: float) -> None:
        self.error_ratio_hist[
            int(np.searchsorted(ERROR_RATIO_EDGES, ratio, "right"))] += 1

    def record_accept(self, h: float) -> None:
        self.accepted += 1
        self.h_min = h if self.h_min == 0.0 else min(self.h_min, h)
        self.h_max = max(self.h_max, h)

    def to_event(self, wall_time: float, backend: str) -> SolveEvent:
        """The run summary as a ``kind="transient"`` solve event."""
        return SolveEvent(
            kind="transient", strategy=self.control,
            iterations=self.newton_iterations, residual_norm=0.0,
            converged=True, wall_time=wall_time, backend=backend,
            steps_accepted=self.accepted,
            steps_rejected_lte=self.rejected_lte,
            steps_rejected_newton=self.rejected_newton,
            h_min=self.h_min, h_max=self.h_max,
            error_ratio_hist=tuple(self.error_ratio_hist))


class TransientResult:
    """Time-series solution of a transient run.

    Provides named access to node voltages, branch currents and device
    internal states as numpy arrays over the accepted time points, plus
    the run's :class:`StepStats` as ``stats``.
    """

    def __init__(self, layout: SystemLayout, times: np.ndarray,
                 solutions: np.ndarray,
                 stats: Optional[StepStats] = None):
        self.layout = layout
        self.t = times
        self._X = solutions  # shape (len(t), layout.n)
        self.stats = stats if stats is not None else StepStats()

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of ``node`` (zeros for ground)."""
        if is_ground(node):
            return np.zeros_like(self.t)
        return self._X[:, self.layout.node_index(node)].copy()

    def branch_current(self, element_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage-defined element."""
        element = self.layout.circuit[element_name]
        if not element.branch_count:
            raise NetlistError(
                f"element '{element_name}' has no branch current")
        return self._X[:, self.layout.branch_start(element)].copy()

    def state(self, element_name: str, state_name: str) -> np.ndarray:
        """Waveform of a device internal state."""
        return self._X[:, self.layout.state_index(
            element_name, state_name)].copy()

    def source_power(self, source_name: str) -> np.ndarray:
        """Instantaneous power delivered by a voltage source [W]."""
        element = self.layout.circuit[source_name]
        idx = [self.layout.node_index(n) for n in element.nodes]
        va = (np.zeros_like(self.t) if idx[0] == self.layout.ground
              else self._X[:, idx[0]])
        vb = (np.zeros_like(self.t) if idx[1] == self.layout.ground
              else self._X[:, idx[1]])
        return -(va - vb) * self.branch_current(source_name)

    def final(self) -> OperatingPoint:
        """The last accepted solution as an :class:`OperatingPoint`."""
        return OperatingPoint(self.layout, self._X[-1].copy(),
                              np.zeros(0))

    def __len__(self) -> int:
        return len(self.t)


def _collect_breakpoints(circuit: Circuit, tstop: float) -> np.ndarray:
    points = {0.0, tstop}
    for element in circuit.elements:
        for bp in element.breakpoints(tstop):
            if 0.0 < bp < tstop:
                points.add(float(bp))
    return np.array(sorted(points))


def _lte_estimate(hist_t: List[float], hist_x: List[np.ndarray],
                  t_new: float, x_new: np.ndarray,
                  trap: bool) -> Optional[Tuple[np.ndarray, int]]:
    """Divided-difference LTE estimate of the candidate step.

    Backward Euler has local error ``(h^2/2) x''``; the second divided
    difference over the last two accepted points and the candidate
    approximates ``x''/2``.  The trapezoidal rule has local error
    ``-(h^3/12) x'''``; the third divided difference approximates
    ``x'''/6``.  Returns ``(estimate, order)`` where ``order`` is the
    step-size power of the estimate (2 for the BE bound, 3 for trap),
    or None while the history since the last discontinuity is too short
    for the required difference order.
    """
    if len(hist_t) < 2:
        return None
    t_n, x_n = hist_t[-1], hist_x[-1]
    t_m, x_m = hist_t[-2], hist_x[-2]
    h = t_new - t_n
    if t_n <= t_m or h <= 0.0:
        # Degenerate history (should not happen; a duplicated point
        # would 0/0-poison the divided differences) — no estimate.
        return None
    dd1_new = (x_new - x_n) / h
    dd1_old = (x_n - x_m) / (t_n - t_m)
    dd2 = (dd1_new - dd1_old) / (t_new - t_m)
    if not trap:
        return h * h * dd2, 2
    if len(hist_t) < 3:
        return None
    t_k, x_k = hist_t[-3], hist_x[-3]
    if t_m <= t_k:
        return None
    dd1_older = (x_m - x_k) / (t_m - t_k)
    dd2_old = (dd1_old - dd1_older) / (t_n - t_k)
    dd3 = (dd2 - dd2_old) / (t_new - t_k)
    return 0.5 * h ** 3 * dd3, 3


def _error_ratio(lte: np.ndarray, x_new: np.ndarray, x_old: np.ndarray,
                 opts: TransientOptions) -> float:
    """Max over unknowns of |LTE| / tolerance; accept when <= 1."""
    tol = opts.trtol * (
        opts.lte_reltol * np.maximum(np.abs(x_new), np.abs(x_old))
        + opts.lte_abstol)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.abs(lte) / tol
    # 0/0 (zero error against a zero tolerance) carries no information.
    return float(np.max(np.where(np.isnan(ratio), 0.0, ratio)))


def transient(circuit: Circuit, tstop: float, dt: float, *,
              options: Optional[TransientOptions] = None,
              initial: Union[str, OperatingPoint] = "dc",
              layout: Optional[SystemLayout] = None,
              backend: Union[None, str, LinearSolver] = None
              ) -> TransientResult:
    """Integrate the circuit from 0 to ``tstop``.

    Parameters
    ----------
    tstop:
        End time in seconds.
    dt:
        Nominal time step.  With ``options.adaptive`` the step is sized
        automatically (LTE control by default — see
        :class:`~repro.analysis.options.TransientOptions`), restarting
        from ``dt`` after every source breakpoint; steps always land
        exactly on breakpoints.
    initial:
        ``"dc"`` computes a DC operating point at ``t=0`` (sources at
        their initial values); an :class:`OperatingPoint` re-uses a
        previous solution (it must come from the same layout).
    backend:
        Linear-solver backend (kind string or instance) used by every
        timestep — and by the initial DC solve, so the whole run stays
        on one backend.  Defaults to the active backend policy.
    """
    if tstop <= 0:
        raise ValueError(f"tstop must be positive, got {tstop}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    opts = options or TransientOptions()

    lay = layout if layout is not None else SystemLayout(circuit)
    solver = resolve_backend(backend, lay.n)
    assembler = Assembler(circuit, lay, matrix_mode=solver.matrix_mode)

    if isinstance(initial, OperatingPoint):
        if initial.layout is not lay:
            raise NetlistError(
                "initial operating point belongs to a different layout")
        op = initial
    elif initial == "dc":
        op = operating_point(circuit, layout=lay,
                             newton_options=opts.newton,
                             backend=solver)
    else:
        raise ValueError(f"unknown initial condition mode '{initial}'")

    # Initialise charge history from the DC solution.
    _, _, q_prev = assembler.assemble(op.x, t=0.0)
    qdot_prev = np.zeros_like(q_prev)

    breakpoints = _collect_breakpoints(circuit, tstop)
    bp_index = 1  # breakpoints[0] == 0.0

    times: List[float] = [0.0]
    solutions: List[np.ndarray] = [op.x.copy()]

    t = 0.0
    h = dt
    x = op.x.copy()
    control = opts.resolve_step_control() if opts.adaptive else "fixed"
    use_lte = opts.adaptive and control == "lte"
    h_cap = dt * ((opts.lte_max_dt_factor if use_lte
                   else opts.max_dt_factor) if opts.adaptive else 1.0)
    # LTE rejections stop shrinking at this floor (solution corners
    # would otherwise grind the step toward dtmin); Newton failures may
    # still shrink all the way to dtmin.
    h_floor = (max(opts.dtmin, dt * opts.lte_min_dt_factor) if use_lte
               else opts.dtmin)
    stats = StepStats(control=control)
    # LTE history: accepted (t, x) points since the last discontinuity.
    hist_t: List[float] = [0.0]
    hist_x: List[np.ndarray] = [x.copy()]
    # Force backward Euler for the step right after every breakpoint:
    # trapezoidal rule rings on discontinuous source slopes.
    force_be = True
    wall_started = time.perf_counter()

    stop_tol = _TIME_RTOL * tstop
    while t < tstop - stop_tol:
        # Advance past breakpoints already reached (relative tolerance:
        # an absolute epsilon misfires once t outgrows it) and clip the
        # step to the next one.  ``tstop`` is itself a breakpoint.
        t_tol = _TIME_RTOL * max(abs(t), h)
        while bp_index < len(breakpoints) and \
                breakpoints[bp_index] <= t + t_tol:
            bp_index += 1
        next_bp = (breakpoints[bp_index]
                   if bp_index < len(breakpoints) else tstop)
        limit = next_bp - t
        # Floor the step against dtmin — but never past the breakpoint:
        # a forced landing may be shorter than dtmin, a free step not.
        h_try = min(max(h, opts.dtmin), limit)
        hit_bp = (limit - h_try) <= _TIME_RTOL * max(abs(next_bp), h_try)
        t_new = next_bp if hit_bp else t + h_try
        h_step = t_new - t

        use_trap = opts.method == "trap" and not force_be
        if use_trap:
            c0, d1 = 2.0 / h_step, -1.0
        else:
            c0, d1 = 1.0 / h_step, 0.0

        def assemble(x_try, _t=t_new, _c0=c0, _d1=d1):
            return assembler.assemble(
                x_try, t=_t, c0=_c0, d1=_d1,
                q_prev=q_prev, qdot_prev=qdot_prev)

        try:
            x_new, q_new, info = newton_solve(
                assemble, x, row_tol=lay.row_tol, dx_limit=lay.dx_limit,
                options=opts.newton, backend=solver)
        except ConvergenceError:
            stats.rejected_newton += 1
            if h_step <= opts.dtmin * (1.0 + 1e-9):
                raise TimestepError(
                    f"transient step fell below dtmin={opts.dtmin} at "
                    f"t={t:.3e}s") from None
            h = max(h_step * opts.shrink, opts.dtmin)
            # Device-bypass caches describe the failed trajectory.
            assembler.notify_discontinuity()
            continue
        stats.newton_iterations += info.iterations

        # LTE accept/reject test (needs enough post-discontinuity
        # history for the divided-difference derivative estimate).
        ratio = None
        order = 2
        if use_lte:
            estimate = _lte_estimate(hist_t, hist_x, t_new, x_new,
                                     use_trap)
            if estimate is not None:
                lte, order = estimate
                ratio = _error_ratio(lte, x_new, x, opts)
                stats.record_ratio(ratio)
                if ratio > 1.0 and h_step > h_floor * (1.0 + 1e-9):
                    # Too inaccurate: reject and re-solve smaller.
                    # Distinct from the Newton-failure shrink above.
                    stats.rejected_lte += 1
                    factor = opts.lte_safety * ratio ** (-1.0 / order)
                    h = max(h_step * min(max(factor, 0.1), 0.9),
                            h_floor)
                    assembler.notify_discontinuity()
                    continue

        # Accept the step.
        qdot_prev = c0 * (q_new - q_prev) + (d1 * qdot_prev if d1 else 0.0)
        q_prev = q_new
        x = x_new
        t = t_new
        times.append(t)
        solutions.append(x.copy())
        stats.record_accept(h_step)
        force_be = hit_bp
        if hit_bp:
            # Source slopes may jump across a breakpoint; divided
            # differences spanning it are meaningless.  Restart the
            # history and rein in the step — the breakpoint may start a
            # transition the controller cannot see yet.  The restart
            # step is the one step no estimate supervises (and it is
            # forced to first-order BE), so under LTE control its size
            # scales with sqrt(lte_reltol): at the figure-level 2e-2
            # protocols it restarts at 2*dt, while tight-tolerance runs
            # restart small enough that the blind step's O(h^2) error
            # stays in line with what the controller permits elsewhere.
            hist_t = [t]
            hist_x = [x.copy()]
            # Source slopes may jump here; force the next step's device
            # evaluation to be a full one.
            assembler.notify_discontinuity()
            if opts.adaptive:
                if use_lte:
                    factor = 2.0 * (opts.lte_reltol / 2e-2) ** 0.5
                    h = min(h, dt * min(2.0, max(0.25, factor)))
                else:
                    h = min(h, dt)
        else:
            hist_t.append(t)
            hist_x.append(x.copy())
            if len(hist_t) > 3:
                hist_t.pop(0)
                hist_x.pop(0)

        if not opts.adaptive or hit_bp:
            continue
        if control == "iter":
            if info.iterations <= 8:
                h = min(h * opts.growth, h_cap)
            elif info.iterations > 20:
                h = max(h * 0.5, opts.dtmin)
        elif ratio is not None:
            # Grow (or shrink) from the measured error ratio so the
            # next step rides the tolerance instead of a fixed factor.
            factor = opts.lte_safety * max(ratio, 1e-12) ** (-1.0 / order)
            factor = min(max(factor, 0.2), opts.lte_max_growth)
            grown = h_step * factor
            if h_step < h * (1.0 - 1e-9):
                # The step was clipped for breakpoint alignment; do not
                # let the clip, rather than the error, shrink h.
                grown = max(grown, h)
            h = min(max(grown, h_floor), h_cap)
        else:
            # No estimate yet (the step right after a discontinuity):
            # grow cautiously — the solution may be entering a fast
            # transition the history cannot see yet.
            h = min(max(h_step, h) * opts.growth, h_cap)

    if have_solve_observers():
        emit_solve_event(stats.to_event(
            time.perf_counter() - wall_started, solver.name))
    return TransientResult(lay, np.asarray(times), np.asarray(solutions),
                           stats=stats)

"""Implicit transient analysis with breakpoint-aware adaptive stepping."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.backends import LinearSolver, resolve_backend
from repro.analysis.dc import OperatingPoint, operating_point
from repro.analysis.options import NewtonOptions, TransientOptions
from repro.analysis.solver import newton_solve
from repro.circuit.mna import Assembler, SystemLayout
from repro.circuit.netlist import Circuit, is_ground
from repro.errors import ConvergenceError, NetlistError, TimestepError


class TransientResult:
    """Time-series solution of a transient run.

    Provides named access to node voltages, branch currents and device
    internal states as numpy arrays over the accepted time points.
    """

    def __init__(self, layout: SystemLayout, times: np.ndarray,
                 solutions: np.ndarray):
        self.layout = layout
        self.t = times
        self._X = solutions  # shape (len(t), layout.n)

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of ``node`` (zeros for ground)."""
        if is_ground(node):
            return np.zeros_like(self.t)
        return self._X[:, self.layout.node_index(node)].copy()

    def branch_current(self, element_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage-defined element."""
        element = self.layout.circuit[element_name]
        if not element.branch_count:
            raise NetlistError(
                f"element '{element_name}' has no branch current")
        return self._X[:, self.layout.branch_start(element)].copy()

    def state(self, element_name: str, state_name: str) -> np.ndarray:
        """Waveform of a device internal state."""
        return self._X[:, self.layout.state_index(
            element_name, state_name)].copy()

    def source_power(self, source_name: str) -> np.ndarray:
        """Instantaneous power delivered by a voltage source [W]."""
        element = self.layout.circuit[source_name]
        idx = [self.layout.node_index(n) for n in element.nodes]
        va = (np.zeros_like(self.t) if idx[0] == self.layout.ground
              else self._X[:, idx[0]])
        vb = (np.zeros_like(self.t) if idx[1] == self.layout.ground
              else self._X[:, idx[1]])
        return -(va - vb) * self.branch_current(source_name)

    def final(self) -> OperatingPoint:
        """The last accepted solution as an :class:`OperatingPoint`."""
        return OperatingPoint(self.layout, self._X[-1].copy(),
                              np.zeros(0))

    def __len__(self) -> int:
        return len(self.t)


def _collect_breakpoints(circuit: Circuit, tstop: float) -> np.ndarray:
    points = {0.0, tstop}
    for element in circuit.elements:
        for bp in element.breakpoints(tstop):
            if 0.0 < bp < tstop:
                points.add(float(bp))
    return np.array(sorted(points))


def transient(circuit: Circuit, tstop: float, dt: float, *,
              options: Optional[TransientOptions] = None,
              initial: Union[str, OperatingPoint] = "dc",
              layout: Optional[SystemLayout] = None,
              backend: Union[None, str, LinearSolver] = None
              ) -> TransientResult:
    """Integrate the circuit from 0 to ``tstop``.

    Parameters
    ----------
    tstop:
        End time in seconds.
    dt:
        Nominal time step.  With ``options.adaptive`` the step may grow
        to ``options.max_dt_factor * dt`` and shrinks automatically on
        Newton failures; steps always land exactly on source breakpoints.
    initial:
        ``"dc"`` computes a DC operating point at ``t=0`` (sources at
        their initial values); an :class:`OperatingPoint` re-uses a
        previous solution (it must come from the same layout).
    backend:
        Linear-solver backend (kind string or instance) used by every
        timestep — and by the initial DC solve, so the whole run stays
        on one backend.  Defaults to the active backend policy.
    """
    if tstop <= 0:
        raise ValueError(f"tstop must be positive, got {tstop}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    opts = options or TransientOptions()

    lay = layout if layout is not None else SystemLayout(circuit)
    solver = resolve_backend(backend, lay.n)
    assembler = Assembler(circuit, lay, matrix_mode=solver.matrix_mode)

    if isinstance(initial, OperatingPoint):
        if initial.layout is not lay:
            raise NetlistError(
                "initial operating point belongs to a different layout")
        op = initial
    elif initial == "dc":
        op = operating_point(circuit, layout=lay,
                             newton_options=opts.newton,
                             backend=solver)
    else:
        raise ValueError(f"unknown initial condition mode '{initial}'")

    # Initialise charge history from the DC solution.
    _, _, q_prev = assembler.assemble(op.x, t=0.0)
    qdot_prev = np.zeros_like(q_prev)

    breakpoints = _collect_breakpoints(circuit, tstop)
    bp_index = 1  # breakpoints[0] == 0.0

    times: List[float] = [0.0]
    solutions: List[np.ndarray] = [op.x.copy()]

    t = 0.0
    h = dt
    h_max = dt * opts.max_dt_factor if opts.adaptive else dt
    x = op.x.copy()
    # Force backward Euler for the step right after every breakpoint:
    # trapezoidal rule rings on discontinuous source slopes.
    force_be = True

    while t < tstop - 1e-21:
        # Clip the step to the next breakpoint and the stop time.
        while bp_index < len(breakpoints) and breakpoints[bp_index] <= t + 1e-21:
            bp_index += 1
        next_bp = (breakpoints[bp_index]
                   if bp_index < len(breakpoints) else tstop)
        h_try = min(h, tstop - t, next_bp - t)
        hit_bp = abs((t + h_try) - next_bp) < 1e-21

        use_trap = opts.method == "trap" and not force_be
        if use_trap:
            c0, d1 = 2.0 / h_try, -1.0
        else:
            c0, d1 = 1.0 / h_try, 0.0
        t_new = t + h_try

        def assemble(x_try, _t=t_new, _c0=c0, _d1=d1):
            return assembler.assemble(
                x_try, t=_t, c0=_c0, d1=_d1,
                q_prev=q_prev, qdot_prev=qdot_prev)

        try:
            x_new, q_new, info = newton_solve(
                assemble, x, row_tol=lay.row_tol, dx_limit=lay.dx_limit,
                options=opts.newton, backend=solver)
        except ConvergenceError:
            h *= opts.shrink
            if h < opts.dtmin:
                raise TimestepError(
                    f"transient step fell below dtmin={opts.dtmin} at "
                    f"t={t:.3e}s") from None
            continue

        # Accept the step.
        qdot_prev = c0 * (q_new - q_prev) + (d1 * qdot_prev if d1 else 0.0)
        q_prev = q_new
        x = x_new
        t = t_new
        times.append(t)
        solutions.append(x.copy())
        force_be = hit_bp

        if opts.adaptive:
            if info.iterations <= 8:
                h = min(h * opts.growth, h_max)
            elif info.iterations > 20:
                h = max(h * 0.5, opts.dtmin)

    return TransientResult(lay, np.asarray(times), np.asarray(solutions))

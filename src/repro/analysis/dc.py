"""DC operating point and swept DC analyses."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.backends import LinearSolver, resolve_backend
from repro.analysis.options import HomotopyOptions, NewtonOptions
from repro.analysis.solver import newton_solve, solve_with_homotopy
from repro.circuit.mna import Assembler, SystemLayout
from repro.circuit.netlist import Circuit, is_ground
from repro.errors import ConvergenceError, NetlistError


class OperatingPoint:
    """A converged DC solution with named access to the unknowns."""

    def __init__(self, layout: SystemLayout, x: np.ndarray,
                 q: np.ndarray):
        self.layout = layout
        self.x = x
        self.q = q

    def voltage(self, node: str) -> float:
        """Node voltage in volts (ground is 0 by definition)."""
        if is_ground(node):
            return 0.0
        return float(self.x[self.layout.node_index(node)])

    def branch_current(self, element_name: str) -> float:
        """Branch current of a voltage-defined element, in amperes.

        For a voltage source the current flows *into* the positive
        terminal from the external circuit, so a source delivering power
        reports a negative current.
        """
        element = self.layout.circuit[element_name]
        if not element.branch_count:
            raise NetlistError(
                f"element '{element_name}' has no branch current")
        return float(self.x[self.layout.branch_start(element)])

    def state(self, element_name: str, state_name: str) -> float:
        """Value of a device internal state (e.g. NEMFET beam position)."""
        return float(self.x[self.layout.state_index(element_name,
                                                    state_name)])

    def source_power(self, source_name: str) -> float:
        """Power delivered by a voltage source (positive = delivering)."""
        element = self.layout.circuit[source_name]
        a, b = (self.layout.node_index(n) for n in element.nodes)
        x_ext = self.layout.extend(self.x)
        v = x_ext[a] - x_ext[b]
        return float(-v * self.branch_current(source_name))


def operating_point(circuit: Circuit, *,
                    x0: Optional[np.ndarray] = None,
                    layout: Optional[SystemLayout] = None,
                    newton_options: Optional[NewtonOptions] = None,
                    homotopy: Optional[HomotopyOptions] = None,
                    backend: Union[None, str, LinearSolver] = None
                    ) -> OperatingPoint:
    """Compute the DC operating point of ``circuit``.

    Capacitors are open, inductors are short, and device mechanical
    states settle to force equilibrium.  Sources are evaluated at
    ``t = 0``.  ``x0`` provides a warm start (e.g. from a neighbouring
    sweep point), which is what makes hysteretic NEMS sweeps follow the
    correct branch.  ``backend`` pins the linear-solver backend (a kind
    string or instance); by default the active
    :class:`~repro.analysis.options.BackendOptions` policy picks one
    from the unknown count.
    """
    lay = layout if layout is not None else SystemLayout(circuit)
    solver = resolve_backend(backend, lay.n)
    assembler = Assembler(circuit, lay, matrix_mode=solver.matrix_mode)

    def make_assemble(gmin: float, source_scale: float):
        def assemble(x):
            return assembler.assemble(
                x, t=0.0, source_scale=source_scale, gmin=gmin)
        return assemble

    guess = lay.x_default if x0 is None else np.asarray(x0, dtype=float)
    try:
        x, q, _ = solve_with_homotopy(
            make_assemble, guess, row_tol=lay.row_tol,
            dx_limit=lay.dx_limit, newton_options=newton_options,
            homotopy=homotopy, backend=solver)
    except ConvergenceError:
        # Electromechanical fold (pull-in/pull-out): no static Newton path
        # connects the branches — integrate the damped dynamics instead.
        x = _pseudo_transient(assembler, guess, newton_options,
                              backend=solver)
        x, q, _ = solve_with_homotopy(
            make_assemble, x, row_tol=lay.row_tol,
            dx_limit=lay.dx_limit, newton_options=newton_options,
            homotopy=homotopy, backend=solver)
    return OperatingPoint(lay, x, q)


def _pseudo_transient(assembler: Assembler, x0: np.ndarray,
                      newton_options: Optional[NewtonOptions],
                      h_start: float = 1e-12, h_final: float = 1.0,
                      growth: float = 2.0,
                      backend: Optional[LinearSolver] = None
                      ) -> np.ndarray:
    """Pseudo-transient continuation toward the DC solution.

    Integrates the circuit's damped dynamics with a geometrically growing
    backward-Euler step, starting from ``x0``.  This carries the solution
    across saddle-node bifurcations (NEMS pull-in/pull-out snap-through)
    that plain Newton homotopies cannot cross: the beam physically falls
    to its new equilibrium.  Returns the final state, which is then
    polished by a direct DC solve.
    """
    lay = assembler.layout
    x = np.array(x0, dtype=float, copy=True)
    _, _, q_prev = assembler.assemble(x, t=0.0)
    h = h_start
    failures = 0
    while h < h_final:
        def assemble(x_try, _h=h, _q=q_prev):
            return assembler.assemble(x_try, t=0.0, c0=1.0 / _h,
                                      q_prev=_q,
                                      qdot_prev=np.zeros_like(_q))
        try:
            x_new, q_new, _ = newton_solve(
                assemble, x, row_tol=lay.row_tol, dx_limit=lay.dx_limit,
                options=newton_options, backend=backend)
        except ConvergenceError:
            failures += 1
            h *= 0.25
            if failures > 60 or h < 1e-18:
                raise
            continue
        x, q_prev = x_new, q_new
        h *= growth
    return x


class DCSweepResult:
    """Result of a DC sweep: one operating point per sweep value."""

    def __init__(self, parameter: str, values: np.ndarray,
                 points: List[OperatingPoint]):
        self.parameter = parameter
        self.values = values
        self.points = points

    def voltage(self, node: str) -> np.ndarray:
        """Array of node voltages across the sweep."""
        return np.array([p.voltage(node) for p in self.points])

    def branch_current(self, element_name: str) -> np.ndarray:
        """Array of branch currents across the sweep."""
        return np.array([p.branch_current(element_name)
                         for p in self.points])

    def state(self, element_name: str, state_name: str) -> np.ndarray:
        """Array of a device internal state across the sweep."""
        return np.array([p.state(element_name, state_name)
                         for p in self.points])

    def __len__(self) -> int:
        return len(self.points)


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float], *,
             layout: Optional[SystemLayout] = None,
             newton_options: Optional[NewtonOptions] = None,
             homotopy: Optional[HomotopyOptions] = None,
             x0: Optional[np.ndarray] = None,
             backend: Union[None, str, LinearSolver] = None
             ) -> DCSweepResult:
    """Sweep the DC value of an independent source.

    Each point warm-starts from the previous solution (continuation), so
    hysteretic devices traverse the branch corresponding to the sweep
    direction — sweeping a NEMFET gate up then down exposes the
    pull-in/pull-out loop.

    The source's original value is restored afterwards.  The backend is
    resolved once and shared by every sweep point, so the sparse
    backend's cached scatter pattern amortises across the sweep.
    """
    source = circuit[source_name]
    if not hasattr(source, "value"):
        raise NetlistError(
            f"'{source_name}' is not a source with a settable value")
    lay = layout if layout is not None else SystemLayout(circuit)
    solver = resolve_backend(backend, lay.n)

    original = source.value
    points: List[OperatingPoint] = []
    guess = x0
    try:
        for v in values:
            source.value = float(v)
            op = operating_point(
                circuit, x0=guess, layout=lay,
                newton_options=newton_options, homotopy=homotopy,
                backend=solver)
            points.append(op)
            guess = op.x
    finally:
        source.value = original
    return DCSweepResult(source_name, np.asarray(values, dtype=float),
                         points)

"""Damped Newton-Raphson solver for the MNA residual system.

The solver expects an ``assemble(x) -> (F, J, q_now)`` callable produced
by the analyses in :mod:`repro.analysis.dc` and
:mod:`repro.analysis.transient`.  Robustness measures:

* per-unknown update clamping (SPICE-style voltage limiting), with clamp
  magnitudes supplied by the system layout so mechanical states get their
  own, much smaller, limits;
* residual-norm backtracking line search;
* caller-driven gmin and source stepping (see :func:`solve_with_homotopy`).

The linear solve inside each Newton iteration goes through a pluggable
backend (:mod:`repro.analysis.backends`): the dense LAPACK reference or
a SuperLU sparse factorisation, both sharing one norm-scaled
singular-Jacobian regularisation path.  Callers pass the backend that
matches their assembler's ``matrix_mode``; the default is dense.

Observability: callers can register a *solve observer* via
:func:`add_solve_observer` to receive one :class:`SolveEvent` per Newton
solve (kind ``"newton"``) and one per DC homotopy solve (kind ``"dc"``,
carrying the winning strategy and cumulative iteration count).  The
telemetry layer in :mod:`repro.engine.telemetry` builds on this; when no
observer is registered the hooks cost nothing.

The observer stack is **thread-local** (a
:class:`repro.ambient.ThreadLocalStack`): a thread only sees events
from solves it performed itself, so concurrent service workers or
engine orchestrators never merge each other's telemetry.  Deregistering
an observer that is already gone is a tolerated no-op, so teardown
paths (cancel during cleanup) can never crash a worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro import profiling
from repro.ambient import ThreadLocalStack
from repro.analysis.backends import DenseSolver, LinearSolver, solve_linear
from repro.analysis.options import (
    HomotopyOptions,
    NewtonOptions,
    resolve_solver_options,
)
from repro.errors import ConvergenceError


@dataclass
class NewtonInfo:
    """Diagnostics returned alongside a converged solution.

    ``strategy`` names how the solution was reached: ``"direct"`` for a
    plain Newton solve, ``"gmin"`` / ``"source"`` when
    :func:`solve_with_homotopy` needed the corresponding stepping
    fallback.  For homotopy solves ``iterations`` is *cumulative* across
    every Newton attempt made (including failed strategies), so it
    measures the true cost of the solve.
    """

    iterations: int
    residual_norm: float
    converged: bool
    strategy: str = "direct"


@dataclass(frozen=True)
class SolveEvent:
    """One observed solve, reported to registered solve observers."""

    kind: str            #: ``"newton"``, ``"dc"`` or ``"transient"``
    strategy: str        #: ``"direct"`` / ``"gmin"`` / ``"source"``,
                         #: or the step control of a transient run
    iterations: int
    residual_norm: float
    converged: bool
    wall_time: float     #: [s]
    backend: str = "dense"   #: linear-solver backend name
    factorizations: int = 0  #: Jacobian factorisations in this solve
    jacobian_nnz: int = 0    #: summed Jacobian non-zeros (sparse only)
    factor_nnz: int = 0      #: summed L+U non-zeros (sparse only)
    # -- transient-run step statistics (kind == "transient" only).
    # One event is emitted per transient() run; its per-step Newton
    # solves have already been reported as their own "newton" events,
    # so aggregators must not re-count iterations or wall time.
    steps_accepted: int = 0      #: accepted time steps
    steps_rejected_lte: int = 0  #: steps re-solved after an LTE reject
    steps_rejected_newton: int = 0  #: steps re-solved after Newton fail
    h_min: float = 0.0           #: smallest accepted step [s]
    h_max: float = 0.0           #: largest accepted step [s]
    #: Log-binned histogram of LTE error ratios of *attempted* steps
    #: (see :data:`repro.analysis.transient.ERROR_RATIO_EDGES`).
    error_ratio_hist: Tuple[int, ...] = ()
    # -- per-phase wall-time split and device-bypass counters, from
    # :mod:`repro.profiling` deltas over the solve.  Like the backend
    # counters, aggregators should fold these from "newton" events only
    # ("dc" events cover the same work again).
    eval_time: float = 0.0      #: device/model evaluation [s]
    assemble_time: float = 0.0  #: matrix/residual fold [s]
    solve_time: float = 0.0     #: linear solves [s]
    bypass_hits: int = 0        #: device evals skipped by bypass
    bypass_evals: int = 0       #: device evals performed under bypass
    # -- ensemble (stacked multi-sample) solve statistics, carried on
    # "newton" events emitted by the lock-step ensemble solver
    # (strategy "ensemble").  ``ensemble_active_iterations`` sums the
    # active-sample count over every lock-step iteration while
    # ``ensemble_sample_iterations`` is iterations x samples, so their
    # ratio is the active-mask occupancy.
    ensemble_samples: int = 0       #: samples in the stacked solve
    ensemble_fallbacks: int = 0     #: samples re-run on the scalar path
    ensemble_active_iterations: int = 0
    ensemble_sample_iterations: int = 0
    stacked_solve_time: float = 0.0  #: batched-LU wall time [s]


SolveObserver = Callable[[SolveEvent], None]

#: Per-thread observer registrations (see the module docstring).
_solve_observers = ThreadLocalStack("solve-observers")


def add_solve_observer(observer: SolveObserver) -> None:
    """Register a callback invoked once per solve with a SolveEvent.

    Registration is thread-local: only solves performed by the calling
    thread are reported to ``observer``.
    """
    _solve_observers.push(observer)


def remove_solve_observer(observer: SolveObserver) -> None:
    """Unregister a previously added solve observer.

    Removes the most recent matching registration; removing an
    observer that was never registered (or was already removed) is a
    no-op, so cleanup paths are safe to run twice.
    """
    _solve_observers.pop(observer)


def _notify(event: SolveEvent) -> None:
    for observer in _solve_observers.snapshot():
        observer(event)


def emit_solve_event(event: SolveEvent) -> None:
    """Report a composite solve (e.g. a whole transient run) to the
    registered observers.  No-op when nothing is listening."""
    _notify(event)


def have_solve_observers() -> bool:
    """Whether any solve observer is currently registered."""
    return bool(_solve_observers)


def _scaled_residual_norm(F: np.ndarray, row_tol: np.ndarray) -> float:
    """Max of |F_i| / tol_i — convergence when < 1."""
    return float(np.max(np.abs(F) / row_tol))


def _backend_event(kind: str, strategy: str, iterations: int,
                   residual_norm: float, converged: bool,
                   wall_time: float, backend,
                   counters_before: dict,
                   phases_before: Optional[dict] = None) -> SolveEvent:
    """A SolveEvent carrying the backend counter and phase deltas."""
    after = backend.counters
    phases = (profiling.delta(phases_before)
              if phases_before is not None else {})
    return SolveEvent(
        kind, strategy, iterations, residual_norm, converged, wall_time,
        backend=backend.name,
        factorizations=(after["factorizations"]
                        - counters_before["factorizations"]),
        jacobian_nnz=after["jacobian_nnz"] - counters_before["jacobian_nnz"],
        factor_nnz=after["factor_nnz"] - counters_before["factor_nnz"],
        eval_time=phases.get("eval_time", 0.0),
        assemble_time=phases.get("assemble_time", 0.0),
        solve_time=phases.get("solve_time", 0.0),
        bypass_hits=int(phases.get("bypass_hits", 0)),
        bypass_evals=int(phases.get("bypass_evals", 0)))


def newton_solve(assemble: Callable, x0: np.ndarray, *,
                 row_tol: np.ndarray, dx_limit: np.ndarray,
                 options: Optional[NewtonOptions] = None,
                 backend: Optional[LinearSolver] = None
                 ) -> Tuple[np.ndarray, np.ndarray, NewtonInfo]:
    """Solve ``F(x) = 0`` starting from ``x0``.

    Returns ``(x, q_now, info)`` where ``q_now`` is the charge-history
    vector recorded at the accepted solution.  Raises
    :class:`ConvergenceError` when the iteration limit is exhausted.
    ``backend`` must match the representation ``assemble`` produces
    (dense array for :class:`~repro.analysis.backends.DenseSolver`, CSC
    for :class:`~repro.analysis.backends.SparseSolver`); the default is
    the dense reference backend.
    """
    if backend is None:
        backend = DenseSolver()
    if not _solve_observers:
        return _newton_iterate(assemble, x0, row_tol=row_tol,
                               dx_limit=dx_limit, options=options,
                               backend=backend)
    started = time.perf_counter()
    before = dict(backend.counters)
    phases_before = profiling.snapshot()
    try:
        x, q, info = _newton_iterate(assemble, x0, row_tol=row_tol,
                                     dx_limit=dx_limit, options=options,
                                     backend=backend)
    except ConvergenceError as err:
        _notify(_backend_event("newton", "direct", err.iterations,
                               err.residual_norm, False,
                               time.perf_counter() - started,
                               backend, before, phases_before))
        raise
    _notify(_backend_event("newton", "direct", info.iterations,
                           info.residual_norm, True,
                           time.perf_counter() - started,
                           backend, before, phases_before))
    return x, q, info


def _newton_iterate(assemble: Callable, x0: np.ndarray, *,
                    row_tol: np.ndarray, dx_limit: np.ndarray,
                    options: Optional[NewtonOptions] = None,
                    backend: Optional[LinearSolver] = None
                    ) -> Tuple[np.ndarray, np.ndarray, NewtonInfo]:
    opts = options or NewtonOptions()
    if backend is None:
        backend = DenseSolver()
    x = np.array(x0, dtype=float, copy=True)
    tol = row_tol * opts.residual_scale

    F, J, q_now = assemble(x)
    fnorm = _scaled_residual_norm(F, tol)
    for iteration in range(1, opts.max_iterations + 1):
        if not np.all(np.isfinite(F)) or not backend.is_finite(J):
            raise ConvergenceError(
                "non-finite residual or Jacobian encountered",
                residual_norm=float("nan"), iterations=iteration)
        try:
            # Backend-agnostic solve with the shared norm-scaled
            # regularisation fallback for singular Jacobians.
            dx = solve_linear(backend, J, -F)
        except np.linalg.LinAlgError:
            raise ConvergenceError(
                "singular Jacobian", residual_norm=fnorm,
                iterations=iteration) from None

        # Per-unknown clamping keeps devices inside their trusted region.
        clip = np.minimum(np.abs(dx), dx_limit)
        dx = np.sign(dx) * clip

        # Backtracking line search on the scaled residual norm.
        scale = opts.damping
        best = None
        while scale >= opts.min_step_scale:
            x_try = x + scale * dx
            F_try, J_try, q_try = assemble(x_try)
            if np.all(np.isfinite(F_try)):
                f_try = _scaled_residual_norm(F_try, tol)
                if best is None or f_try < best[0]:
                    best = (f_try, x_try, F_try, J_try, q_try, scale)
                if f_try < fnorm or f_try < 1.0:
                    break
            scale *= 0.5
        if best is None:
            raise ConvergenceError(
                "line search produced no finite residual",
                residual_norm=fnorm, iterations=iteration)
        f_new, x_new, F, J, q_now, used_scale = best

        step = np.abs(x_new - x)
        x = x_new
        fnorm = f_new

        small_update = np.all(
            step <= opts.reltol * np.abs(x) + opts.abstol_v)
        if fnorm < 1.0 and (small_update or used_scale == opts.damping):
            return x, q_now, NewtonInfo(iteration, fnorm, True)

    raise ConvergenceError(
        f"Newton failed to converge in {opts.max_iterations} iterations "
        f"(scaled residual {fnorm:.3g})",
        residual_norm=fnorm, iterations=opts.max_iterations)


def solve_with_homotopy(make_assemble: Callable, x0: np.ndarray, *,
                        row_tol: np.ndarray, dx_limit: np.ndarray,
                        newton_options: Optional[NewtonOptions] = None,
                        homotopy: Optional[HomotopyOptions] = None,
                        backend: Optional[LinearSolver] = None
                        ) -> Tuple[np.ndarray, np.ndarray, NewtonInfo]:
    """DC solve with gmin-stepping and source-stepping fallbacks.

    ``make_assemble(gmin, source_scale)`` must return an
    ``assemble(x)`` callable.  The strategies are tried in order:

    1. direct Newton at the target problem;
    2. gmin stepping: solve with a large conductance to ground on every
       node, then reduce it decade by decade, warm-starting each solve;
    3. source stepping: ramp all independent sources from zero.

    The returned :class:`NewtonInfo` carries the winning ``strategy``
    and the *cumulative* iteration count across every attempt, failed
    strategies included.  The same ``backend`` (default: dense) is used
    by every attempt — fallback strategies relax the homotopy, never
    the linear algebra.
    """
    nopt, hopt = resolve_solver_options(newton_options, homotopy)
    if backend is None:
        backend = DenseSolver()
    started = time.perf_counter() if _solve_observers else 0.0
    counters_before = dict(backend.counters) if _solve_observers else {}
    phases_before = profiling.snapshot() if _solve_observers else None
    total_iterations = 0

    def attempt(gmin: float, scale: float, guess: np.ndarray):
        nonlocal total_iterations
        try:
            x, q, info = newton_solve(
                make_assemble(gmin, scale), guess,
                row_tol=row_tol, dx_limit=dx_limit, options=nopt,
                backend=backend)
        except ConvergenceError as err:
            total_iterations += err.iterations
            raise
        total_iterations += info.iterations
        return x, q, info

    def finish(x, q, info: NewtonInfo, strategy: str):
        final = NewtonInfo(total_iterations, info.residual_norm,
                           True, strategy)
        if _solve_observers:
            _notify(_backend_event("dc", strategy, total_iterations,
                                   info.residual_norm, True,
                                   time.perf_counter() - started,
                                   backend, counters_before,
                                   phases_before))
        return x, q, final

    try:
        x, q, info = attempt(0.0, 1.0, x0)
        return finish(x, q, info, "direct")
    except ConvergenceError:
        pass

    # gmin stepping.
    try:
        x = np.array(x0, dtype=float, copy=True)
        gmin = hopt.gmin_start
        while gmin > hopt.gmin_final:
            x, _, _ = attempt(gmin, 1.0, x)
            gmin /= 10.0 ** (1.0 / hopt.gmin_steps_per_decade)
        x, q, info = attempt(0.0, 1.0, x)
        return finish(x, q, info, "gmin")
    except ConvergenceError:
        pass

    # Source stepping.
    x = np.zeros_like(x0)
    try:
        for k in range(1, hopt.source_steps + 1):
            scale = k / hopt.source_steps
            x, _, _ = attempt(0.0, scale, x)
        x, q, info = attempt(0.0, 1.0, x)
        return finish(x, q, info, "source")
    except ConvergenceError as err:
        if _solve_observers:
            _notify(_backend_event("dc", "source", total_iterations,
                                   err.residual_norm, False,
                                   time.perf_counter() - started,
                                   backend, counters_before,
                                   phases_before))
        raise ConvergenceError(
            f"DC solution failed after direct, gmin and source stepping: "
            f"{err}", residual_norm=err.residual_norm,
            iterations=total_iterations) from err

"""Physical constants and engineering-unit helpers.

All library code works in base SI units (volts, amperes, seconds, metres,
farads, kilograms).  The helpers in this module exist so user-facing code
can be written in the units circuit designers actually think in::

    from repro.units import nm, um, fF, ns, uA

    width = 2 * um
    delay = 35 * ps
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Physical constants (CODATA values, SI units)
# ---------------------------------------------------------------------------

#: Vacuum permittivity [F/m].
EPS0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPS_SIO2 = 3.9

#: Relative permittivity of silicon.
EPS_SI = 11.7

#: Elementary charge [C].
Q_ELECTRON = 1.602176634e-19

#: Boltzmann constant [J/K].
K_BOLTZMANN = 1.380649e-23

#: Default simulation temperature [K] (27 C, SPICE convention).
T_NOMINAL = 300.15

#: Density of AlSi suspended-gate material [kg/m^3] (aluminium-rich alloy).
RHO_ALSI = 2700.0

#: Young's modulus of AlSi [Pa].
E_ALSI = 70e9

#: Density of polysilicon [kg/m^3].
RHO_POLYSI = 2330.0

#: Young's modulus of polysilicon [Pa].
E_POLYSI = 160e9


def thermal_voltage(temperature: float = T_NOMINAL) -> float:
    """Return kT/q in volts at the given temperature in kelvin."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return K_BOLTZMANN * temperature / Q_ELECTRON


# ---------------------------------------------------------------------------
# SI prefixes — multiply literals by these to express engineering units.
# ---------------------------------------------------------------------------

tera = 1e12
giga = 1e9
mega = 1e6
kilo = 1e3
milli = 1e-3
micro = 1e-6
nano = 1e-9
pico = 1e-12
femto = 1e-15
atto = 1e-18

# Common engineering shorthands (value of ONE unit, in SI base units).
nm = 1e-9
um = 1e-6
mm = 1e-3

ps = 1e-12
ns = 1e-9
us = 1e-6
ms = 1e-3

mV = 1e-3

pA = 1e-12
nA = 1e-9
uA = 1e-6
mA = 1e-3

aF = 1e-18
fF = 1e-15
pF = 1e-12
nF = 1e-9

nH = 1e-9
uH = 1e-6

kohm = 1e3
Mohm = 1e6
Gohm = 1e9

fJ = 1e-15
pJ = 1e-12

nW = 1e-9
uW = 1e-6
mW = 1e-3

MHz = 1e6
GHz = 1e9


def db10(ratio: float) -> float:
    """Power ratio expressed in decibels (10*log10)."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def decades(ratio: float) -> float:
    """Number of decades spanned by a positive ratio (log10)."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return math.log10(ratio)


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(3.2e-9, 'A')``.

    Returns strings like ``"3.2 nA"``.  Zero and non-finite values are
    rendered without a prefix.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:.{digits}g} {unit}".rstrip()
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
        (1e-18, "a"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()

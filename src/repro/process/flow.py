"""The paper's Figure 7 fabrication flow as a structured description.

Section 3 argues feasibility of co-fabricating suspended-gate NEMS with
standard CMOS.  The flow itself is not executable, but capturing it as
data lets design tools cross-check electrical targets against process
capabilities — most importantly that the air gap a pull-in target
requires is manufacturable by the sacrificial-layer options the flow
offers (dry-etched gaps of a few nanometres, per ref [13]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.devices.nemfet import NemfetParams
from repro.errors import DesignError


@dataclass(frozen=True)
class ProcessStep:
    """One fabrication step of the hybrid flow."""

    figure: str       #: panel of the paper's Figure 7
    name: str
    description: str
    #: Maximum temperature of the step [C]; post-CMOS MEMS steps must
    #: stay within the back-end thermal budget (ref [19]).
    max_temperature: float


#: The simplified hybrid NEMS-CMOS flow of Figure 7.
HYBRID_PROCESS_FLOW: Tuple[ProcessStep, ...] = (
    ProcessStep("7a", "CMOS gate definition",
                "Polysilicon gate patterning, thermal oxidation and "
                "nitride deposition forming the isolation bi-layer.",
                900.0),
    ProcessStep("7b", "CMOS source/drain",
                "Self-aligned source/drain implantation for the CMOS "
                "devices.", 1000.0),
    ProcessStep("7c", "NEMS active area",
                "Phosphorous implant defining NEMS source/drain; the "
                "suspended gate precludes self-alignment.", 1000.0),
    ProcessStep("7d", "Field oxide",
                "Thick field oxide formation.", 900.0),
    ProcessStep("7e", "Sacrificial layer",
                "Cured polyimide (dry-oxygen etched) or polysilicon "
                "(SF6 etched) sacrificial layer; two-step CMP; dry "
                "etching reaches nm-order gap thickness.", 350.0),
    ProcessStep("7f", "Suspended gate",
                "AlSi sputtering and chlorine plasma patterning of the "
                "mechanical gate.", 350.0),
    ProcessStep("7g", "Release",
                "Isotropic dry release: oxygen plasma (polyimide) or "
                "SF6 plasma (polysilicon).", 300.0),
)

#: Smallest air gap the dry-etched sacrificial process reliably yields
#: [m] (nm-order gaps, ref [13]).
MIN_GAP = 1e-9

#: Largest practical sacrificial thickness for the flow [m].
MAX_GAP = 200e-9

#: Post-CMOS thermal budget [C] (ref [19]).
BACKEND_THERMAL_BUDGET = 450.0


def check_gap_feasibility(params: NemfetParams) -> None:
    """Validate a NEMFET design against the process capabilities.

    Raises :class:`DesignError` when the requested air gap falls outside
    the sacrificial-layer window.  Returns ``None`` on success.
    """
    if not MIN_GAP <= params.gap <= MAX_GAP:
        raise DesignError(
            f"air gap {params.gap * 1e9:.2f} nm outside the process "
            f"window [{MIN_GAP * 1e9:.0f}, {MAX_GAP * 1e9:.0f}] nm")


def post_cmos_steps() -> Tuple[ProcessStep, ...]:
    """Steps executed after CMOS metallisation (thermal-budget bound)."""
    return tuple(s for s in HYBRID_PROCESS_FLOW
                 if s.max_temperature <= BACKEND_THERMAL_BUDGET)


def thermal_budget_violations() -> Tuple[ProcessStep, ...]:
    """Post-CMOS steps exceeding the back-end budget (empty when OK)."""
    return tuple(s for s in post_cmos_steps()
                 if s.max_temperature > BACKEND_THERMAL_BUDGET)

"""Hybrid NEMS-CMOS process-flow description (the paper's Section 3)."""

from repro.process.flow import (
    ProcessStep,
    HYBRID_PROCESS_FLOW,
    check_gap_feasibility,
)

__all__ = ["ProcessStep", "HYBRID_PROCESS_FLOW", "check_gap_feasibility"]

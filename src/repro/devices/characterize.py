"""Device characterisation: I-V families for any supported device.

Produces the transfer (Id-Vg) and output (Id-Vd) curve families that
datasheets and model-calibration reports are made of, uniformly for the
MOSFET compact model and the electromechanical NEMFET (with its
hysteresis branch made explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.devices.mosfet import MosfetParams, mosfet_current
from repro.devices.nemfet import NemfetParams
from repro.errors import DesignError


@dataclass
class IVFamily:
    """A family of I-V curves: one row of currents per fixed bias."""

    kind: str                 #: "transfer" (vs Vg) or "output" (vs Vd)
    sweep: np.ndarray         #: swept voltage axis [V]
    fixed: np.ndarray         #: the per-curve fixed bias values [V]
    currents: np.ndarray      #: shape (len(fixed), len(sweep)) [A]
    label: str = ""

    def curve(self, fixed_value: float) -> np.ndarray:
        """The current row whose fixed bias is closest to the request."""
        idx = int(np.argmin(np.abs(self.fixed - fixed_value)))
        return self.currents[idx].copy()

    def to_rows(self) -> List[tuple]:
        """Flatten to ``(fixed, sweep, current)`` rows."""
        rows = []
        for i, fx in enumerate(self.fixed):
            for j, sv in enumerate(self.sweep):
                rows.append((float(fx), float(sv),
                             float(self.currents[i, j])))
        return rows


DeviceParams = Union[MosfetParams, NemfetParams]


def _current(params: DeviceParams, width: float, vg: float, vd: float,
             branch: str) -> float:
    if isinstance(params, MosfetParams):
        return mosfet_current(params, width, vg, vd, 0.0)[0]
    if isinstance(params, NemfetParams):
        return params.static_current(width, vg, vd, 0.0, branch=branch)
    raise DesignError(
        f"cannot characterise parameters of type "
        f"{type(params).__name__}")


def _check_params(params: DeviceParams) -> None:
    if not isinstance(params, (MosfetParams, NemfetParams)):
        raise DesignError(
            f"cannot characterise parameters of type "
            f"{type(params).__name__}")


def transfer_family(params: DeviceParams, width: float = 1e-6,
                    vg: Sequence[float] = None,
                    vd_values: Sequence[float] = (0.1, 1.2),
                    branch: str = "up") -> IVFamily:
    """Id-Vg curves at several drain biases.

    For NEMFETs ``branch`` selects the hysteresis branch ("up" =
    sweeping from the released state); the pull-in step appears as the
    branch's discontinuity.
    """
    _check_params(params)
    pol = params.polarity
    if vg is None:
        vg = np.linspace(0.0, 1.2, 61) * pol
    vg = np.asarray(list(vg), dtype=float)
    vd_values = np.asarray([pol * abs(v) for v in vd_values])
    currents = np.empty((len(vd_values), len(vg)))
    for i, vd in enumerate(vd_values):
        for j, v in enumerate(vg):
            currents[i, j] = _current(params, width, float(v),
                                      float(vd), branch)
    return IVFamily("transfer", vg, vd_values, currents,
                    label=type(params).__name__)


def output_family(params: DeviceParams, width: float = 1e-6,
                  vd: Sequence[float] = None,
                  vg_values: Sequence[float] = (0.6, 0.9, 1.2),
                  branch: str = "auto") -> IVFamily:
    """Id-Vd curves at several gate biases.

    ``branch='auto'`` puts a NEMFET on the contact branch when its gate
    bias exceeds pull-in (the quasi-static truth for a slow sweep).
    """
    _check_params(params)
    pol = params.polarity
    if vd is None:
        vd = np.linspace(0.0, 1.2, 61) * pol
    vd = np.asarray(list(vd), dtype=float)
    vg_values = np.asarray([pol * abs(v) for v in vg_values])
    currents = np.empty((len(vg_values), len(vd)))
    for i, vg in enumerate(vg_values):
        if branch == "auto" and isinstance(params, NemfetParams):
            use = ("down" if abs(vg) >= params.pull_in_voltage
                   else "up")
        elif branch == "auto":
            use = "up"
        else:
            use = branch
        for j, v in enumerate(vd):
            currents[i, j] = _current(params, width, float(vg),
                                      float(v), use)
    return IVFamily("output", vd, vg_values, currents,
                    label=type(params).__name__)

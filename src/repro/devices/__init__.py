"""Device compact models: 90 nm MOSFETs and electromechanical NEMS switches."""

from repro.devices.mosfet import (
    Mosfet,
    MosfetParams,
    mosfet_current,
    nmos_90nm,
    pmos_90nm,
    nmos_90nm_hvt,
    pmos_90nm_hvt,
)
from repro.devices.mechanics import (
    BeamMaterial,
    BeamGeometry,
    ALSI,
    POLYSILICON,
    beam_stiffness,
    beam_modal_mass,
    resonant_frequency,
    damping_coefficient,
    pull_in_voltage,
    pull_out_voltage,
)
from repro.devices.nemfet import Nemfet, NemfetParams, nemfet_90nm, pemfet_90nm
from repro.devices.relay import NanoRelay, NanoRelayParams, nano_relay_default

__all__ = [
    "Mosfet",
    "MosfetParams",
    "mosfet_current",
    "nmos_90nm",
    "pmos_90nm",
    "nmos_90nm_hvt",
    "pmos_90nm_hvt",
    "BeamMaterial",
    "BeamGeometry",
    "ALSI",
    "POLYSILICON",
    "beam_stiffness",
    "beam_modal_mass",
    "resonant_frequency",
    "damping_coefficient",
    "pull_in_voltage",
    "pull_out_voltage",
    "Nemfet",
    "NemfetParams",
    "nemfet_90nm",
    "pemfet_90nm",
    "NanoRelay",
    "NanoRelayParams",
    "nano_relay_default",
]

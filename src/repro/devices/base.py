"""Overflow-safe smooth nonlinearities shared by the device models.

All device equations in this library are built from these C-infinity
primitives so that the Newton solver always sees finite, continuous
derivatives.  Each helper returns ``(value, derivative)`` pairs where
useful.
"""

from __future__ import annotations

import math
from typing import Tuple

#: Exponent magnitude beyond which exp() saturates to its asymptote.
_EXP_CLIP = 45.0


def safe_exp(x: float) -> float:
    """exp(x) clipped to avoid overflow (saturates near x = 45)."""
    if x > _EXP_CLIP:
        return math.exp(_EXP_CLIP)
    if x < -_EXP_CLIP:
        return math.exp(-_EXP_CLIP)
    return math.exp(x)


def softplus(x: float) -> Tuple[float, float]:
    """Smooth max(0, x): returns ``(log(1+exp(x)), sigmoid(x))``.

    Asymptotically exact: for large ``|x|`` it returns ``x`` (slope 1) or
    ``exp(x)`` (slope ``exp(x)``) without overflow.
    """
    if x > _EXP_CLIP:
        return x, 1.0
    if x < -_EXP_CLIP:
        e = math.exp(x)
        return e, e
    e = math.exp(x)
    return math.log1p(e), e / (1.0 + e)


def sigmoid(x: float) -> Tuple[float, float]:
    """Logistic function and its derivative."""
    if x > _EXP_CLIP:
        return 1.0, 0.0
    if x < -_EXP_CLIP:
        e = math.exp(x)
        return e, e
    e = math.exp(-abs(x))
    s = 1.0 / (1.0 + e)
    if x < 0:
        s = 1.0 - s
    return s, s * (1.0 - s)


def smooth_tanh(x: float) -> Tuple[float, float]:
    """tanh(x) and its derivative ``1 - tanh(x)**2``."""
    t = math.tanh(x)
    return t, 1.0 - t * t


def smooth_abs(x: float, eps: float = 1e-12) -> Tuple[float, float]:
    """sqrt(x^2 + eps^2): smooth |x| with derivative."""
    r = math.sqrt(x * x + eps * eps)
    return r, x / r


def power(base: float, exponent: float) -> Tuple[float, float]:
    """``base**exponent`` and its derivative w.r.t. ``base`` (base > 0)."""
    if base <= 0.0:
        raise ValueError(f"power() requires positive base, got {base}")
    v = base ** exponent
    return v, exponent * v / base

"""Overflow-safe smooth nonlinearities shared by the device models.

All device equations in this library are built from these C-infinity
primitives so that the Newton solver always sees finite, continuous
derivatives.  Each helper returns ``(value, derivative)`` pairs where
useful.

Each scalar primitive has a ``*_vec`` numpy counterpart used by the
batched evaluation path (:mod:`repro.circuit.batch`).  The vector
versions reproduce the scalar branch structure through masked selects,
so batched and scalar evaluation agree to floating-point roundoff
(~1e-16 relative; the parity suite enforces 1e-12).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

#: Exponent magnitude beyond which exp() saturates to its asymptote.
_EXP_CLIP = 45.0


def safe_exp(x: float) -> float:
    """exp(x) clipped to avoid overflow (saturates near x = 45)."""
    if x > _EXP_CLIP:
        return math.exp(_EXP_CLIP)
    if x < -_EXP_CLIP:
        return math.exp(-_EXP_CLIP)
    return math.exp(x)


def softplus(x: float) -> Tuple[float, float]:
    """Smooth max(0, x): returns ``(log(1+exp(x)), sigmoid(x))``.

    Asymptotically exact: for large ``|x|`` it returns ``x`` (slope 1) or
    ``exp(x)`` (slope ``exp(x)``) without overflow.
    """
    if x > _EXP_CLIP:
        return x, 1.0
    if x < -_EXP_CLIP:
        e = math.exp(x)
        return e, e
    e = math.exp(x)
    return math.log1p(e), e / (1.0 + e)


def sigmoid(x: float) -> Tuple[float, float]:
    """Logistic function and its derivative."""
    if x > _EXP_CLIP:
        return 1.0, 0.0
    if x < -_EXP_CLIP:
        e = math.exp(x)
        return e, e
    e = math.exp(-abs(x))
    s = 1.0 / (1.0 + e)
    if x < 0:
        s = 1.0 - s
    return s, s * (1.0 - s)


def smooth_tanh(x: float) -> Tuple[float, float]:
    """tanh(x) and its derivative ``1 - tanh(x)**2``."""
    t = math.tanh(x)
    return t, 1.0 - t * t


def smooth_abs(x: float, eps: float = 1e-12) -> Tuple[float, float]:
    """sqrt(x^2 + eps^2): smooth |x| with derivative."""
    r = math.sqrt(x * x + eps * eps)
    return r, x / r


def power(base: float, exponent: float) -> Tuple[float, float]:
    """``base**exponent`` and its derivative w.r.t. ``base`` (base > 0)."""
    if base <= 0.0:
        raise ValueError(f"power() requires positive base, got {base}")
    v = base ** exponent
    return v, exponent * v / base


def softplus_vec(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`softplus`, branch-free.

    Uses the overflow-safe identity ``softplus(x) = max(x, 0) +
    log1p(exp(-|x|))``, which reproduces the scalar function's
    asymptotic branches exactly in floating point: past ``x > 45`` the
    ``log1p`` term is below one ulp of ``x`` (value ``x``, slope 1),
    and past ``x < -45`` both ``log1p(e)`` and ``e / (1 + e)`` round
    to ``e = exp(x)``.
    """
    e = np.exp(-np.abs(x))
    value = np.maximum(x, 0.0) + np.log1p(e)
    s = 1.0 / (1.0 + e)
    deriv = np.where(x >= 0.0, s, e * s)
    return value, deriv


def sigmoid_vec(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`sigmoid` with the same branch structure."""
    e = np.exp(-np.abs(x))
    s = 1.0 / (1.0 + e)
    s = np.where(x < 0.0, 1.0 - s, s)
    hi = x > _EXP_CLIP
    lo = x < -_EXP_CLIP
    value = np.where(hi, 1.0, np.where(lo, e, s))
    deriv = np.where(hi, 0.0, np.where(lo, e, s * (1.0 - s)))
    return value, deriv


def smooth_tanh_vec(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`smooth_tanh`."""
    t = np.tanh(x)
    return t, 1.0 - t * t


def power_vec(base: np.ndarray, exponent
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised guarded power: ``(0, 0)`` where ``base <= 0``.

    Folds in the ``if vov > 0`` guard the device models wrap around the
    scalar :func:`power` (which raises on a non-positive base).
    ``exponent`` may be a scalar or a per-instance array.
    """
    positive = base > 0.0
    safe = np.where(positive, base, 1.0)
    value = safe ** exponent
    deriv = exponent * value / safe
    return (np.where(positive, value, 0.0),
            np.where(positive, deriv, 0.0))

"""The paper's Figure 6(b) all-electrical NEMS macro-model.

Pott et al. [23] map the suspended gate's mechanical variables onto an
electrical equivalent: the damping factor ``c`` becomes a resistance, the
beam mass ``m`` an inductance, the spring an elastance, and the
gate-voltage-dependent actuation force a controlled source approximated
by a *polynomial* ``f(V_g)`` obtained from curve fitting.  The paper runs
all its HSPICE simulations with that macro-model calibrated to the
NEMFET data of ref [13].

This module reproduces the macro-model: :class:`MacroNemfet` keeps the
same two internal states (position/velocity), but replaces the physical
position-dependent electrostatic force with a fitted polynomial in the
gate-source voltage alone, exactly the simplification of [23].  The
fitting routine :func:`fit_force_polynomial` generates the polynomial
from the physical model's stable-branch force, so the macro-model can be
compared against the full electromechanical model (an ablation the
library's benchmarks exercise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.circuit.elements import Element
from repro.devices.base import smooth_tanh, softplus
from repro.devices.mosfet import mosfet_current
from repro.devices.nemfet import NemfetParams, _channel_current
from repro.errors import CalibrationError, NetlistError


@dataclass(frozen=True)
class ForcePolynomial:
    """Fitted normalised actuation force ``f(v_gs) = sum c_k v^k``."""

    coefficients: Tuple[float, ...]
    v_min: float
    v_max: float

    def evaluate(self, v: float) -> Tuple[float, float]:
        """Normalised force and its derivative at ``v`` (clamped range)."""
        v = min(max(v, self.v_min), self.v_max)
        f = 0.0
        df = 0.0
        for k in range(len(self.coefficients) - 1, 0, -1):
            c = self.coefficients[k]
            f = f * v + c
            df = df * v + k * c
        f = f * v + self.coefficients[0]
        return f, df


def fit_force_polynomial(params: NemfetParams, degree: int = 6,
                         v_max: float = 1.5, samples: int = 120
                         ) -> ForcePolynomial:
    """Fit the macro-model force polynomial against the physical model.

    Samples the physical electrostatic force along the *followed*
    equilibrium branch (up-state until pull-in, contact beyond — the
    curve a quasi-static up-sweep traces) and least-squares fits an even
    polynomial in ``|v_gs|``.  The force is normalised by ``k * gap`` as
    in the state equations.
    """
    if degree < 2:
        raise CalibrationError("polynomial degree must be at least 2")
    v_pi = params.pull_in_voltage
    v = np.linspace(0.0, v_max, samples)
    f = np.empty_like(v)
    for i, vi in enumerate(v):
        branch = "up" if vi < v_pi else "down"
        u = params.static_position(float(vi), branch)
        f[i] = params.force_electrostatic_hat(float(vi), u)[0]
    # Even polynomial (force is symmetric in v_gs): fit in v^2, with
    # relative weighting so the small below-pull-in forces are tracked
    # as well as the large contact-state ones.
    half_deg = degree // 2
    design = np.vander(v * v, half_deg + 1, increasing=True)
    weights = 1.0 / (0.2 + np.abs(f))
    coeff_sq, *_ = np.linalg.lstsq(design * weights[:, None],
                                   f * weights, rcond=None)
    coeffs = [0.0] * (2 * half_deg + 1)
    for k, c in enumerate(coeff_sq):
        coeffs[2 * k] = float(c)
    poly = ForcePolynomial(tuple(coeffs), -v_max, v_max)
    # Quality gate: the fit must track the sampled force reasonably.
    fitted = np.array([poly.evaluate(float(vi))[0] for vi in v])
    err = float(np.max(np.abs(fitted - f)))
    scale = float(np.max(np.abs(f))) or 1.0
    if err > 0.35 * scale:
        raise CalibrationError(
            f"force polynomial fit error {err:.3g} exceeds 35% of force "
            f"scale {scale:.3g}; raise the degree")
    return poly


class MacroNemfet(Element):
    """Figure 6(b) macro-model NEMFET (drain, gate, source).

    Same interface and state names as the physical
    :class:`~repro.devices.nemfet.Nemfet`, but driven by the fitted
    ``f(V_g)`` polynomial instead of the gap-dependent electrostatic
    force.  Because the polynomial ignores the position feedback, the
    model loses the pull-in fold (and therefore hysteresis) — the
    fidelity gap the macro-model ablation benchmark quantifies.
    """

    TERMINALS = 3

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 params: NemfetParams, width: float,
                 force_poly: ForcePolynomial = None):
        super().__init__(name, (drain, gate, source))
        if width <= 0:
            raise NetlistError(
                f"macro nemfet '{name}' needs positive width, got {width}")
        self.params = params
        self.width = float(width)
        self.force_poly = (force_poly if force_poly is not None
                           else fit_force_polynomial(params))

    @property
    def state_count(self) -> int:
        return 2

    def state_names(self) -> Tuple[str, ...]:
        return ("position", "velocity")

    def state_initial(self) -> np.ndarray:
        return np.zeros(2)

    def state_dx_limit(self) -> np.ndarray:
        return np.array([0.05, 2.0])

    def load(self, ctx) -> None:
        d, g, s = self._n
        su = self._state0
        sw = self._state0 + 1
        x = ctx.x
        p = self.params
        u, w = x[su], x[sw]
        vgb = x[g] - x[s]

        i, di_g, di_d, di_s, di_u = _channel_current(
            p, self.width, x[g], x[d], x[s], u)
        cols = (g, d, s, su)
        ctx.add(d, i, cols, (di_g, di_d, di_s, di_u))
        ctx.add(s, -i, cols, (-di_g, -di_d, -di_s, -di_u))

        inv_w0 = 1.0 / p.omega0
        ctx.add_dot(su, u * inv_w0, (su,), (inv_w0,))
        ctx.add(su, -w, (sw,), (-1.0,))

        f_e, df_dv = self.force_poly.evaluate(vgb)
        f_pen, dfp_du = p.force_penalty_hat(u)
        ctx.add_dot(sw, w * inv_w0, (sw,), (inv_w0,))
        resid = w / p.q_factor + u + f_pen - f_e
        ctx.add(sw, resid, (sw, su, g, s),
                (1.0 / p.q_factor, 1.0 + dfp_du, -df_dv, df_dv))

        # Fixed up-state gate capacitance (the macro-model's C element).
        from repro.units import EPS0
        c_air = EPS0 * p.area / (p.gap + p.dielectric_gap)
        q_g = c_air * vgb
        ctx.add_dot(g, q_g, (g, s), (c_air, -c_air))
        ctx.add_dot(s, -q_g, (g, s), (-c_air, c_air))

        cj = p.c_junction_per_width * self.width
        q_db = cj * (x[d] - x[s])
        ctx.add_dot(d, q_db, (d, s), (cj, -cj))
        ctx.add_dot(s, -q_db, (d, s), (-cj, cj))

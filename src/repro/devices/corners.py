"""Global process corners for the CMOS devices.

Complements the per-device statistical variation of
:mod:`repro.devices.variation` with the classic *global* corners — all
NMOS and all PMOS devices shifted together:

========  =====================  =====================
corner    NMOS                   PMOS
========  =====================  =====================
TT        typical                typical
FF        fast (low Vt, high k)  fast
SS        slow (high Vt, low k)  slow
FS        fast                   slow
SF        slow                   fast
========  =====================  =====================

NEMS devices are *not* shifted: their pull-in voltage is set by beam
geometry and gap, which vary with different (mechanical) process
parameters — one of the hybrid technology's robustness arguments, since
the hybrid gate's noise margin (pinned at pull-in) is immune to the
transistor corners that force CMOS keeper over-design.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.devices.mosfet import MosfetParams
from repro.errors import DesignError

#: Corner names understood by :func:`apply_corner`.
CORNERS = ("TT", "FF", "SS", "FS", "SF")


@dataclass(frozen=True)
class CornerModel:
    """Magnitude of a global corner's parameter shifts.

    ``dvth`` shifts the threshold magnitude (fast = lower), ``dk_rel``
    scales the transconductance (fast = higher).
    """

    dvth: float = 0.04
    dk_rel: float = 0.08

    def shift(self, params: MosfetParams, fast: bool) -> MosfetParams:
        """Shifted copy of a parameter set."""
        sign = -1.0 if fast else +1.0
        return replace(
            params,
            vth0=params.vth0 + sign * self.dvth,
            k_trans=params.k_trans * (1.0 - sign * self.dk_rel))


def corner_params(nmos: MosfetParams, pmos: MosfetParams, corner: str,
                  model: CornerModel = CornerModel()
                  ) -> Tuple[MosfetParams, MosfetParams]:
    """NMOS/PMOS parameter sets at a named global corner."""
    corner = corner.upper()
    if corner not in CORNERS:
        raise DesignError(
            f"unknown corner '{corner}' (choose from {CORNERS})")
    if corner == "TT":
        return nmos, pmos
    n_fast = corner[0] == "F"
    p_fast = corner[1] == "F"
    return (model.shift(nmos, n_fast), model.shift(pmos, p_fast))


def corner_table(nmos: MosfetParams, pmos: MosfetParams,
                 model: CornerModel = CornerModel()
                 ) -> Dict[str, Tuple[MosfetParams, MosfetParams]]:
    """All five corners as a name -> (nmos, pmos) mapping."""
    return {c: corner_params(nmos, pmos, c, model) for c in CORNERS}

"""Beam mechanics for suspended-gate and cantilever NEMS switches.

Provides the lumped spring-mass-damper abstraction used by the NEMFET and
nano-relay models (the paper's Figure 6a): Euler-Bernoulli bending
stiffness for the two anchor styles, modal mass, damping from a quality
factor, and the classic parallel-plate pull-in/pull-out voltages used to
sanity-check device designs analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import EPS0, E_ALSI, E_POLYSI, RHO_ALSI, RHO_POLYSI


@dataclass(frozen=True)
class BeamMaterial:
    """Structural material of the suspended electrode."""

    name: str
    youngs_modulus: float  #: [Pa]
    density: float         #: [kg/m^3]


#: Sputtered AlSi — the suspended-gate material of the paper's process
#: flow (Figure 7f).
ALSI = BeamMaterial("AlSi", E_ALSI, RHO_ALSI)

#: Polysilicon, the classic surface-micromachining structural layer.
POLYSILICON = BeamMaterial("poly-Si", E_POLYSI, RHO_POLYSI)


@dataclass(frozen=True)
class BeamGeometry:
    """Rectangular beam dimensions and anchoring style.

    ``anchor`` is ``"fixed-fixed"`` for the suspended-gate bridge of
    Figure 3/4 or ``"cantilever"`` for the relay of Figure 5.
    """

    length: float     #: [m]
    width: float      #: [m]
    thickness: float  #: [m]
    anchor: str = "fixed-fixed"

    def __post_init__(self):
        if min(self.length, self.width, self.thickness) <= 0:
            raise ValueError("beam dimensions must be positive")
        if self.anchor not in ("fixed-fixed", "cantilever"):
            raise ValueError(f"unknown anchor style '{self.anchor}'")

    @property
    def area_moment(self) -> float:
        """Second moment of area I = w t^3 / 12 [m^4]."""
        return self.width * self.thickness ** 3 / 12.0

    @property
    def volume(self) -> float:
        """Beam volume [m^3]."""
        return self.length * self.width * self.thickness


def beam_stiffness(geometry: BeamGeometry, material: BeamMaterial) -> float:
    """Effective point-load bending stiffness [N/m].

    Fixed-fixed centre load: ``k = 192 E I / L^3``; cantilever end load:
    ``k = 3 E I / L^3``.
    """
    ei = material.youngs_modulus * geometry.area_moment
    l3 = geometry.length ** 3
    if geometry.anchor == "fixed-fixed":
        return 192.0 * ei / l3
    return 3.0 * ei / l3


def beam_modal_mass(geometry: BeamGeometry, material: BeamMaterial) -> float:
    """Effective modal mass of the fundamental bending mode [kg].

    Standard participation factors: 0.40 of the physical mass for a
    fixed-fixed bridge, 0.24 for a cantilever.
    """
    factor = 0.40 if geometry.anchor == "fixed-fixed" else 0.24
    return factor * material.density * geometry.volume


def resonant_frequency(stiffness: float, mass: float) -> float:
    """Fundamental resonance f0 = sqrt(k/m) / 2pi [Hz]."""
    if stiffness <= 0 or mass <= 0:
        raise ValueError("stiffness and mass must be positive")
    return math.sqrt(stiffness / mass) / (2.0 * math.pi)


def damping_coefficient(stiffness: float, mass: float,
                        quality_factor: float) -> float:
    """Viscous damping c = sqrt(k m) / Q [N s/m].

    Q of order 1-5 represents operation in air (squeeze-film dominated,
    the CMOS-compatible packaging the paper assumes); Q of hundreds
    represents vacuum packaging.
    """
    if quality_factor <= 0:
        raise ValueError("quality factor must be positive")
    return math.sqrt(stiffness * mass) / quality_factor


def pull_in_voltage(stiffness: float, gap: float, dielectric_gap: float,
                    area: float) -> float:
    """Parallel-plate pull-in voltage [V].

    ``gap`` is the air gap at rest, ``dielectric_gap`` the equivalent
    air thickness of the fixed dielectric (t_ox / eps_r), ``area`` the
    actuation overlap area.  Classic result: instability at one third of
    the total effective gap, ``V_PI = sqrt(8 k g_eff^3 / (27 eps0 A))``.
    """
    if min(stiffness, gap, area) <= 0 or dielectric_gap < 0:
        raise ValueError("stiffness, gap and area must be positive")
    g_eff = gap + dielectric_gap
    return math.sqrt(8.0 * stiffness * g_eff ** 3 / (27.0 * EPS0 * area))


def pull_out_voltage(stiffness: float, gap: float, dielectric_gap: float,
                     area: float, contact_gap: float = 0.0,
                     adhesion_force: float = 0.0) -> float:
    """Release (pull-out) voltage of a closed switch [V].

    In contact the electrostatic force acts across the thin dielectric
    only, so a much lower voltage sustains contact than was needed to
    close it — the source of the hysteresis that gives NEMS memories
    and sharp switching.  Release occurs when the spring force at full
    travel exceeds the electrostatic force plus surface adhesion::

        k (g - x_c) = eps0 A V^2 / (2 (x_c + g_d)^2) + F_adh

    where ``x_c = contact_gap`` is the residual air gap in contact.
    Returns 0 when adhesion alone holds the switch closed.
    """
    if min(stiffness, gap, area) <= 0 or dielectric_gap < 0:
        raise ValueError("stiffness, gap and area must be positive")
    restoring = stiffness * (gap - contact_gap)
    net = restoring - adhesion_force
    if net <= 0:
        return 0.0
    g_close = contact_gap + dielectric_gap
    return math.sqrt(2.0 * net * g_close ** 2 / (EPS0 * area))


def pull_in_travel(gap: float, dielectric_gap: float) -> float:
    """Beam displacement at the pull-in instability [m] (g_eff / 3)."""
    return (gap + dielectric_gap) / 3.0


def switching_time_estimate(stiffness: float, mass: float, gap: float,
                            dielectric_gap: float, area: float,
                            drive_voltage: float) -> float:
    """First-order closing-time estimate for a step drive [s].

    Uses the standard strong-overdrive approximation
    ``t_s ~ (V_PI / V) * sqrt(27 / 2) / omega0`` valid for
    ``V >> V_PI``; near the pull-in voltage the true time diverges, so a
    meander factor caps the estimate at 20 mechanical periods.
    """
    v_pi = pull_in_voltage(stiffness, gap, dielectric_gap, area)
    if drive_voltage <= 0:
        raise ValueError("drive voltage must be positive")
    omega0 = math.sqrt(stiffness / mass)
    base = math.sqrt(27.0 / 2.0) / omega0
    ratio = v_pi / drive_voltage
    estimate = base * ratio if ratio < 1.0 else base / max(1e-9, 1 - ratio)
    return min(abs(estimate), 40.0 * math.pi / omega0)

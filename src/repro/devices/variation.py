"""Process-variation modelling for threshold voltages.

The paper's Figure 9 methodology (from ref [24]) characterises wide
fan-in dynamic gates under threshold-voltage variation expressed as
``sigma_Vth / mu_Vth`` percentages.  Two usage styles are provided:

* **corner analysis** — deterministic worst cases: the keeper's noise
  margin is stressed when the pull-down network is *leaky* (Vth shifted
  down), and the evaluation delay is stressed when the pull-down is
  *weak* (Vth shifted up) while the keeper is strong;
* **Monte Carlo** — independent Gaussian Vth samples per transistor.

Both act through the :attr:`~repro.devices.mosfet.Mosfet.vth_shift`
attribute, so a circuit can be re-analysed at many corners/samples
without rebuilding it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.circuit.netlist import Circuit
from repro.devices.mosfet import Mosfet


@dataclass(frozen=True)
class VariationModel:
    """Gaussian threshold-voltage variation.

    ``sigma_rel`` is sigma(Vth)/mu(Vth) — the paper's Figure 9 sweeps
    this at 5/10/15 %.  ``n_sigma`` sets how many sigmas the corner
    analyses use (3-sigma worst case by default).
    """

    sigma_rel: float
    n_sigma: float = 3.0

    def __post_init__(self):
        if self.sigma_rel < 0:
            raise ValueError(
                f"sigma_rel must be non-negative, got {self.sigma_rel}")
        if self.n_sigma <= 0:
            raise ValueError(
                f"n_sigma must be positive, got {self.n_sigma}")

    def corner_shift(self, device: Mosfet, direction: str) -> float:
        """Deterministic n-sigma Vth shift for a device [V].

        ``direction='weak'`` raises the threshold magnitude (less drive,
        less leakage); ``'leaky'`` lowers it (more drive, more leakage).
        """
        mu = device.params.vth0
        sigma = self.sigma_rel * mu
        if direction == "weak":
            return +self.n_sigma * sigma
        if direction == "leaky":
            return -self.n_sigma * sigma
        raise ValueError(f"unknown corner direction '{direction}'")

    def sigma_row(self, devices: Sequence[Mosfet]) -> np.ndarray:
        """Per-device shift standard deviations [V], shape ``(D,)``."""
        return np.array([self.sigma_rel * d.params.vth0
                         for d in devices])

    def sample_shifts(self, devices: Sequence[Mosfet],
                      rng: np.random.Generator) -> Dict[str, float]:
        """Independent Gaussian Vth shifts for each device [V]."""
        values = self.sample_shift_matrix(devices, 1, rng)[0]
        return {d.name: float(v) for d, v in zip(devices, values)}

    def sample_shift_matrix(self, devices: Sequence[Mosfet],
                            samples: int,
                            rng: np.random.Generator) -> np.ndarray:
        """``(samples, len(devices))`` matrix of Gaussian Vth shifts.

        One vectorised draw.  ``Generator.normal(0, sigma)`` is
        ``sigma * standard_normal()`` on the same bit stream, and numpy
        fills arrays in C order, so row-major ``standard_normal`` times
        the per-device sigma row consumes the stream exactly like the
        historical nested loop (sample-major, device-minor) — seeded
        shift sequences are bit-identical to the scalar path (locked
        down by the draw-order regression test).
        """
        return rng.standard_normal(
            (samples, len(devices))) * self.sigma_row(devices)


@contextlib.contextmanager
def applied_shifts(circuit: Circuit,
                   shifts: Dict[str, float]) -> Iterator[None]:
    """Temporarily apply ``{element_name: vth_shift}`` to a circuit.

    Restores the previous shifts on exit, so analyses at different
    corners can share one netlist.
    """
    saved: Dict[str, float] = {}
    try:
        for name, shift in shifts.items():
            device = circuit[name]
            if not isinstance(device, Mosfet):
                raise TypeError(
                    f"element '{name}' is not a Mosfet; cannot shift Vth")
            saved[name] = device.vth_shift
            device.vth_shift = device.vth_shift + shift
        yield
    finally:
        for name, old in saved.items():
            circuit[name].vth_shift = old


def corner_shifts(model: VariationModel, weak: Iterable[Mosfet] = (),
                  leaky: Iterable[Mosfet] = ()) -> Dict[str, float]:
    """Build a corner shift map: some devices weak, some leaky."""
    shifts: Dict[str, float] = {}
    for device in weak:
        shifts[device.name] = model.corner_shift(device, "weak")
    for device in leaky:
        shifts[device.name] = model.corner_shift(device, "leaky")
    return shifts


def monte_carlo_shift_matrix(model: VariationModel,
                             devices: Sequence[Mosfet], samples: int,
                             seed: int = 0) -> np.ndarray:
    """Seeded Monte-Carlo Vth shifts as a ``(samples, D)`` matrix.

    The array-of-shifts form feeds the stacked ensemble analyses
    directly (one column per device, in ``devices`` order); the draw
    is bit-identical to :func:`monte_carlo_shifts` at the same seed.
    """
    rng = np.random.default_rng(seed)
    return model.sample_shift_matrix(devices, samples, rng)


def monte_carlo_shifts(model: VariationModel, devices: Sequence[Mosfet],
                       samples: int, seed: int = 0
                       ) -> List[Dict[str, float]]:
    """A list of independent Monte-Carlo shift maps."""
    matrix = monte_carlo_shift_matrix(model, devices, samples, seed)
    return [{d.name: float(v) for d, v in zip(devices, row)}
            for row in matrix]

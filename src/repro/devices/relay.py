"""Cantilever / carbon-nanotube nano-relay (the paper's Figure 5).

An ohmic three-terminal switch: a conductive cantilever anchored at the
source is suspended over a gate electrode; sufficient gate-source bias
bends it until its tip lands on the drain contact.  Unlike the NEMFET
there is no MOS channel — conduction is metallic through the contact
resistance — which makes this structure attractive as a sleep switch
(Section 6): the paper's three-orders-of-magnitude OFF-current reduction
comes from the physical air gap.

The mechanical model is the same normalised spring-mass-damper used by
:class:`~repro.devices.nemfet.Nemfet`, with conduction
``G(u) = G_off + G_on * sigma((u - 1)/s)`` smoothly switching on at
contact, plus an optional surface-adhesion force that deepens the
pull-out hysteresis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.circuit.elements import Element
from repro.devices import mechanics
from repro.devices.base import sigmoid, softplus
from repro.errors import DesignError, NetlistError
from repro.units import EPS0


@dataclass(frozen=True)
class NanoRelayParams:
    """Nano-relay parameters.

    ``g_on`` is the fully-closed contact conductance [S] (1/R_contact)
    and ``g_off`` the open-state leakage conductance [S] (vacuum
    tunnelling / surface leakage floor).
    """

    stiffness: float
    mass: float
    q_factor: float
    gap: float
    contact_gap: float
    area: float
    g_on: float
    g_off: float
    adhesion_force: float = 0.0
    k_penalty: float = 2000.0
    s_penalty: float = 0.01
    s_gap: float = 0.02
    #: Conduction turns on as the tip crosses ``contact_threshold``
    #: (slightly before the penalty equilibrium, so a closed switch is
    #: fully conducting, not half-way up its sigmoid).
    s_contact: float = 0.005
    contact_threshold: float = 0.985

    def __post_init__(self):
        for label, v in (("stiffness", self.stiffness), ("mass", self.mass),
                         ("q_factor", self.q_factor), ("gap", self.gap),
                         ("contact_gap", self.contact_gap),
                         ("area", self.area), ("g_on", self.g_on),
                         ("g_off", self.g_off)):
            if v <= 0:
                raise DesignError(f"relay {label} must be positive, got {v}")

    @property
    def omega0(self) -> float:
        """Mechanical angular resonance sqrt(k/m) [rad/s]."""
        return math.sqrt(self.stiffness / self.mass)

    @property
    def pull_in_voltage(self) -> float:
        """Analytic pull-in voltage of the actuation gap [V]."""
        return mechanics.pull_in_voltage(
            self.stiffness, self.gap, self.contact_gap, self.area)

    @property
    def pull_out_voltage(self) -> float:
        """Analytic release voltage including adhesion [V]."""
        return mechanics.pull_out_voltage(
            self.stiffness, self.gap, self.contact_gap, self.area,
            contact_gap=self.s_gap * math.log(2.0) * self.gap,
            adhesion_force=self.adhesion_force)

    def gap_distance(self, u: float) -> Tuple[float, float]:
        """Smoothly clamped air gap [m] and derivative at position ``u``."""
        s = self.s_gap
        sp, dsp = softplus((1.0 - u) / s)
        return self.gap * s * sp, -self.gap * dsp

    def conductance(self, u: float) -> Tuple[float, float]:
        """Drain-source conductance [S] and d/du at position ``u``."""
        sig, dsig = sigmoid((u - self.contact_threshold)
                            / self.s_contact)
        g = self.g_off + self.g_on * sig
        return g, self.g_on * dsig / self.s_contact


class NanoRelay(Element):
    """Three-terminal ohmic nano-relay (drain, gate, source)."""

    TERMINALS = 3

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 params: NanoRelayParams, initial_contact: bool = False):
        super().__init__(name, (drain, gate, source))
        self.params = params
        self.initial_contact = bool(initial_contact)

    @property
    def state_count(self) -> int:
        return 2

    def state_names(self) -> Tuple[str, ...]:
        return ("position", "velocity")

    def state_initial(self) -> np.ndarray:
        if self.initial_contact:
            return np.array([1.0, 0.0])
        return np.zeros(2)

    def state_dx_limit(self) -> np.ndarray:
        return np.array([0.05, 2.0])

    def load(self, ctx) -> None:
        d, g, s = self._n
        su = self._state0
        sw = self._state0 + 1
        x = ctx.x
        p = self.params
        u, w = x[su], x[sw]
        vgs = x[g] - x[s]
        vds = x[d] - x[s]

        # Ohmic conduction through the (position-dependent) contact.
        cond, dcond_du = p.conductance(u)
        i = cond * vds
        ctx.add(d, i, (d, s, su), (cond, -cond, dcond_du * vds))
        ctx.add(s, -i, (d, s, su), (-cond, cond, -dcond_du * vds))

        # Mechanics (normalised as in the NEMFET; see its docstring).
        inv_w0 = 1.0 / p.omega0
        ctx.add_dot(su, u * inv_w0, (su,), (inv_w0,))
        ctx.add(su, -w, (sw,), (-1.0,))

        g_gap, dg_du = p.gap_distance(u)
        g_eff = g_gap + p.contact_gap
        norm = p.stiffness * p.gap
        pref = EPS0 * p.area / (2.0 * g_eff * g_eff * norm)
        f_e = pref * vgs * vgs
        df_dv = 2.0 * pref * vgs
        df_du = -2.0 * f_e / g_eff * dg_du

        sp, dsp = softplus((u - 1.0) / p.s_penalty)
        f_pen = p.k_penalty * p.s_penalty * sp
        dfp_du = p.k_penalty * dsp

        # Adhesion pulls the beam toward contact once it is nearly closed.
        sig_a, dsig_a = sigmoid((u - p.contact_threshold) / p.s_contact)
        f_adh = p.adhesion_force / norm * sig_a
        dfa_du = p.adhesion_force / norm * dsig_a / p.s_contact

        ctx.add_dot(sw, w * inv_w0, (sw,), (inv_w0,))
        resid = w / p.q_factor + u + f_pen - f_e - f_adh
        ctx.add(sw, resid, (sw, su, g, s),
                (1.0 / p.q_factor,
                 1.0 + dfp_du - df_du - dfa_du,
                 -df_dv, df_dv))

        # Gate actuation capacitance.
        c_air = EPS0 * p.area / g_eff
        dc_du = -c_air / g_eff * dg_du
        q_g = c_air * vgs
        ctx.add_dot(g, q_g, (g, s, su), (c_air, -c_air, dc_du * vgs))
        ctx.add_dot(s, -q_g, (g, s, su), (-c_air, c_air, -dc_du * vgs))


def nano_relay_default(r_on: float = 5e3, **overrides) -> NanoRelayParams:
    """A CMOS-compatible cantilever relay sized for ~0.5 V pull-in.

    ``r_on`` sets the closed contact resistance; the open-state leakage
    floor corresponds to ~100 fA at 1.2 V across the open contact.
    """
    geometry = mechanics.BeamGeometry(
        length=300e-9, width=200e-9, thickness=40e-9, anchor="cantilever")
    k = mechanics.beam_stiffness(geometry, mechanics.ALSI)
    m = mechanics.beam_modal_mass(geometry, mechanics.ALSI)
    base = NanoRelayParams(
        stiffness=k,
        mass=m,
        q_factor=2.0,
        gap=2.5e-9,
        contact_gap=0.8e-9,
        area=geometry.length * geometry.width * 0.5,
        g_on=1.0 / r_on,
        g_off=1e-13,
    )
    return replace(base, **overrides) if overrides else base

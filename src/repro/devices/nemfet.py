"""Electromechanical suspended-gate MOSFET (NEMFET) compact model.

Implements the device of the paper's Figures 3/4: a conductive beam
suspended over the gate dielectric.  Applying gate bias pulls the beam
down electrostatically; past the pull-in voltage it snaps into contact
with the dielectric and the underlying MOS channel turns on with
near-full gate coupling.  Releasing requires a much lower voltage
(pull-out), giving the abrupt, hysteretic transfer characteristic —
effective subthreshold swings of ~2 mV/decade [12] — that motivates the
hybrid NEMS-CMOS circuits.

The mechanical degree of freedom is *part of the MNA system*: the beam's
normalised position ``u`` (0 = rest, 1 = contact) and velocity ``w`` are
internal-state unknowns, so the electromechanical coupling is solved
implicitly together with the circuit by the same Newton iteration.
Equations (normalised, ``omega0 = sqrt(k/m)``)::

    d(u)/dt / omega0 = w
    d(w)/dt / omega0 = -w/Q - B_c(u) w - u - F_pen(u) + F_e(V_GS, u)

with a smooth stiff-penalty contact force ``F_pen``, a contact-localised
damping ``B_c(u) = contact_damping * logistic((u - 1)/s_penalty)``
(squeeze-film and impact dissipation at the dielectric surface — sized
to the penalty spring's impedance so the beam latches on first touch
instead of rebounding elastically, matching the latched down-branch the
static hysteresis model assumes; it vanishes mid-gap, leaving resonant
and pull-in dynamics untouched), and the parallel-plate
electrostatic force ``F_e = eps0 A V^2 / (2 (g_gap + g_d)^2)`` where
``g_d`` is the dielectric's equivalent air thickness.  The channel uses
the same smooth MOSFET core with the gate drive scaled by the capacitive
divider ``kappa(u) = g_d / (g_gap(u) + g_d)``, plus a floor leakage
(Brownian-motion / tunnelling currents, refs [17]-[18]) calibrated to
Table 1's NEMS I_OFF of 110 pA/um.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro import profiling
from repro.circuit.batch import (
    BatchGroup,
    PlanStale,
    _flatten_charges,
    companion_values,
)
from repro.circuit.elements import Element
from repro.devices import mechanics
from repro.devices.base import (
    sigmoid,
    sigmoid_vec,
    smooth_tanh,
    smooth_tanh_vec,
    softplus,
    softplus_vec,
)
from repro.devices.mosfet import (
    MosfetParams,
    mosfet_current,
    mosfet_current_vec,
    nmos_90nm,
)
from repro.errors import DesignError, NetlistError
from repro.units import EPS0, EPS_SIO2


@dataclass(frozen=True)
class NemfetParams:
    """NEMFET parameter set: beam mechanics plus channel electronics.

    Attributes
    ----------
    channel:
        MOSFET core parameters of the underlying channel (its
        ``c_gate_per_width`` is ignored — the air-gap capacitor replaces
        it).
    stiffness / mass / q_factor:
        Lumped beam spring constant [N/m], modal mass [kg], quality
        factor (dimensionless).
    gap:
        Air gap at rest [m].
    dielectric_gap:
        Equivalent air thickness of the gate dielectric, t_ox/eps_r [m].
    area:
        Electrostatic actuation overlap area [m^2].
    i_floor_per_width:
        OFF-state floor leakage per metre of width [A/m].
    k_penalty / s_penalty:
        Normalised contact-penalty stiffness and smoothing width.
    contact_damping:
        Normalised damping coefficient active only at the contact
        surface (same logistic window as the penalty force).  The
        default matches the penalty spring's impedance
        (``sqrt(k_penalty)``), absorbing the impact energy so the beam
        latches on first touch — the behaviour the static down-branch
        model assumes.  Set to 0 for a lossless (bouncing) contact.
    s_gap:
        Normalised smoothing of the gap clamp (keeps ``g_gap > 0``).
    """

    channel: MosfetParams
    stiffness: float
    mass: float
    q_factor: float
    gap: float
    dielectric_gap: float
    area: float
    i_floor_per_width: float
    k_penalty: float = 2000.0
    s_penalty: float = 0.01
    contact_damping: float = 45.0
    s_gap: float = 0.02
    c_junction_per_width: float = 0.4e-9

    def __post_init__(self):
        for label, v in (("stiffness", self.stiffness), ("mass", self.mass),
                         ("q_factor", self.q_factor), ("gap", self.gap),
                         ("area", self.area),
                         ("dielectric_gap", self.dielectric_gap)):
            if v <= 0:
                raise DesignError(f"NEMFET {label} must be positive, got {v}")
        if self.contact_damping < 0:
            raise DesignError(
                f"NEMFET contact_damping must be non-negative, got "
                f"{self.contact_damping}")

    @property
    def polarity(self) -> int:
        """+1 for an n-channel NEMFET, -1 for p-channel."""
        return self.channel.polarity

    @property
    def omega0(self) -> float:
        """Mechanical angular resonance sqrt(k/m) [rad/s]."""
        return math.sqrt(self.stiffness / self.mass)

    @property
    def resonant_frequency(self) -> float:
        """Mechanical resonance frequency [Hz]."""
        return self.omega0 / (2.0 * math.pi)

    @property
    def pull_in_voltage(self) -> float:
        """Analytic parallel-plate pull-in voltage [V]."""
        return mechanics.pull_in_voltage(
            self.stiffness, self.gap, self.dielectric_gap, self.area)

    @property
    def pull_out_voltage(self) -> float:
        """Analytic release voltage [V] (residual contact gap included)."""
        contact_gap = self.s_gap * math.log(2.0) * self.gap
        return mechanics.pull_out_voltage(
            self.stiffness, self.gap, self.dielectric_gap, self.area,
            contact_gap=contact_gap)

    # -- normalised force terms ---------------------------------------------

    def gap_distance(self, u: float) -> Tuple[float, float]:
        """Smoothly clamped air gap [m] and d(gap)/du at position ``u``."""
        s = self.s_gap
        sp, dsp = softplus((1.0 - u) / s)
        return self.gap * s * sp, -self.gap * dsp

    def coupling(self, u: float) -> Tuple[float, float]:
        """Gate coupling factor kappa(u) in (0, 1] and dkappa/du."""
        g_gap, dg = self.gap_distance(u)
        g_d = self.dielectric_gap
        g_eff = g_gap + g_d
        kappa = g_d / g_eff
        dkappa = -g_d / (g_eff * g_eff) * dg
        return kappa, dkappa

    def force_electrostatic_hat(self, vgb: float, u: float
                                ) -> Tuple[float, float, float]:
        """Normalised electrostatic force and partials (d/dvgb, d/du).

        Normalisation: the spring force at full travel, ``k * gap``.
        """
        g_gap, dg = self.gap_distance(u)
        g_eff = g_gap + self.dielectric_gap
        norm = self.stiffness * self.gap
        pref = EPS0 * self.area / (2.0 * g_eff * g_eff * norm)
        f = pref * vgb * vgb
        df_dv = 2.0 * pref * vgb
        df_du = -2.0 * f / g_eff * dg
        return f, df_dv, df_du

    def force_penalty_hat(self, u: float) -> Tuple[float, float]:
        """Normalised smooth contact-penalty force and d/du."""
        s = self.s_penalty
        sp, dsp = softplus((u - 1.0) / s)
        return self.k_penalty * s * sp, self.k_penalty * dsp

    def contact_damping_hat(self, u: float) -> Tuple[float, float]:
        """Normalised contact damping coefficient B_c(u) and d/du."""
        s = self.s_penalty
        sg, dsg = sigmoid((u - 1.0) / s)
        return self.contact_damping * sg, self.contact_damping * dsg / s

    # -- static characterisation --------------------------------------------

    def equilibrium_positions(self, vgb: float,
                              u_max: float = 1.2,
                              samples: int = 400) -> List[float]:
        """All static equilibria of the beam at gate bias ``vgb``.

        Scans the normalised force balance for sign changes and refines
        by bisection.  Below pull-in (and above pull-out) three equilibria
        exist: stable up-state, unstable middle, stable contact.
        """
        def balance(u: float) -> float:
            f_e = self.force_electrostatic_hat(vgb, u)[0]
            f_p = self.force_penalty_hat(u)[0]
            return u + f_p - f_e

        grid = np.linspace(-0.05, u_max, samples)
        values = np.array([balance(float(u)) for u in grid])
        roots: List[float] = []
        for i in range(len(grid) - 1):
            if values[i] == 0.0:
                roots.append(float(grid[i]))
            elif values[i] * values[i + 1] < 0.0:
                lo, hi = float(grid[i]), float(grid[i + 1])
                for _ in range(60):
                    mid = 0.5 * (lo + hi)
                    if balance(lo) * balance(mid) <= 0.0:
                        hi = mid
                    else:
                        lo = mid
                roots.append(0.5 * (lo + hi))
        return roots

    def static_position(self, vgb: float, branch: str = "up") -> float:
        """Stable beam position on the requested hysteresis branch.

        ``branch='up'`` follows the released state until pull-in;
        ``branch='down'`` follows the contact state until pull-out.
        """
        roots = self.equilibrium_positions(vgb)
        if not roots:
            raise DesignError(
                f"no static equilibrium at vgb={vgb} (model error)")
        if branch == "up":
            return roots[0]
        if branch == "down":
            return roots[-1]
        raise ValueError(f"unknown branch '{branch}'")

    def static_current(self, width: float, vg: float, vd: float,
                       vs: float, branch: str = "up") -> float:
        """Static drain current with the beam at its equilibrium [A]."""
        u = self.static_position(vg - vs, branch)
        return _channel_current(self, width, vg, vd, vs, u)[0]

    def softened_frequency(self, vgb: float,
                           branch: str = "up") -> float:
        """Bias-dependent mechanical resonance [Hz].

        The electrostatic force gradient acts as a negative spring:
        at the equilibrium position ``u*`` the effective stiffness is
        ``k_eff = k (1 + dF_pen/du - dF_e/du)`` and the small-signal
        resonance is ``f0 sqrt(k_eff / k)``.  Approaching pull-in on
        the released branch, ``k_eff -> 0`` and the resonance tunes to
        zero — the RSG-MOSFET tuning law of the paper's ref [22].
        """
        u = self.static_position(vgb, branch)
        _, _, df_du = self.force_electrostatic_hat(vgb, u)
        _, dfp_du = self.force_penalty_hat(u)
        k_eff_hat = 1.0 + dfp_du - df_du
        if k_eff_hat <= 0:
            return 0.0
        return self.resonant_frequency * math.sqrt(k_eff_hat)


def _channel_current(p: NemfetParams, width: float, vg: float, vd: float,
                     vs: float, u: float):
    """Drain current with partials (d/dvg, d/dvd, d/dvs, d/du)."""
    kappa, dkappa = p.coupling(u)
    vg_virtual = vs + kappa * (vg - vs)
    i, di_dvgv, di_dvd, di_dvs_v = mosfet_current(
        p.channel, width, vg_virtual, vd, vs)
    di_dvg = di_dvgv * kappa
    di_dvs = di_dvs_v + di_dvgv * (1.0 - kappa)
    di_du = di_dvgv * (vg - vs) * dkappa

    # Floor leakage: Brownian displacement + tunnelling currents.
    v_scale = 0.1
    th, dth = smooth_tanh((vd - vs) / v_scale)
    i_fl = p.i_floor_per_width * width
    i += i_fl * th
    di_dvd += i_fl * dth / v_scale
    di_dvs -= i_fl * dth / v_scale
    return i, di_dvg, di_dvd, di_dvs, di_du


# -- vectorised model kernels (batched evaluation path) ---------------------
#
# Array counterparts of the normalised-force methods above, reproducing
# the scalar arithmetic op-for-op so the parity suite can hold the two
# paths to 1e-12.

def _gap_distance_vec(p: NemfetParams, u: np.ndarray):
    s = p.s_gap
    sp, dsp = softplus_vec((1.0 - u) / s)
    return p.gap * s * sp, -p.gap * dsp


def _coupling_vec(p: NemfetParams, u: np.ndarray):
    g_gap, dg = _gap_distance_vec(p, u)
    g_d = p.dielectric_gap
    g_eff = g_gap + g_d
    kappa = g_d / g_eff
    dkappa = -g_d / (g_eff * g_eff) * dg
    return kappa, dkappa


def _force_electrostatic_vec(p: NemfetParams, vgb: np.ndarray,
                             u: np.ndarray):
    g_gap, dg = _gap_distance_vec(p, u)
    g_eff = g_gap + p.dielectric_gap
    norm = p.stiffness * p.gap
    pref = EPS0 * p.area / (2.0 * g_eff * g_eff * norm)
    f = pref * vgb * vgb
    df_dv = 2.0 * pref * vgb
    df_du = -2.0 * f / g_eff * dg
    return f, df_dv, df_du


def _force_penalty_vec(p: NemfetParams, u: np.ndarray):
    s = p.s_penalty
    sp, dsp = softplus_vec((u - 1.0) / s)
    return p.k_penalty * s * sp, p.k_penalty * dsp


def _contact_damping_vec(p: NemfetParams, u: np.ndarray):
    s = p.s_penalty
    sg, dsg = sigmoid_vec((u - 1.0) / s)
    return p.contact_damping * sg, p.contact_damping * dsg / s


def _channel_current_vec(p: NemfetParams, width: np.ndarray,
                         vg: np.ndarray, vd: np.ndarray, vs: np.ndarray,
                         u: np.ndarray, kappa: np.ndarray = None,
                         dkappa: np.ndarray = None):
    """Vectorised :func:`_channel_current`.

    ``kappa``/``dkappa`` may be passed in when the caller has already
    evaluated the gap coupling (the :func:`_nemfet_nonlinear` hot path
    shares one gap evaluation across every gap-dependent quantity).
    """
    if kappa is None:
        kappa, dkappa = _coupling_vec(p, u)
    vg_virtual = vs + kappa * (vg - vs)
    i, di_dvgv, di_dvd, di_dvs_v = mosfet_current_vec(
        p.channel, width, p.channel.vth0, vg_virtual, vd, vs)
    di_dvg = di_dvgv * kappa
    di_dvs = di_dvs_v + di_dvgv * (1.0 - kappa)
    di_du = di_dvgv * (vg - vs) * dkappa

    v_scale = 0.1
    th, dth = smooth_tanh_vec((vd - vs) / v_scale)
    i_fl = p.i_floor_per_width * width
    i = i + i_fl * th
    di_dvd = di_dvd + i_fl * dth / v_scale
    di_dvs = di_dvs - i_fl * dth / v_scale
    return i, di_dvg, di_dvd, di_dvs, di_du


def _nemfet_nonlinear(p: NemfetParams, width: np.ndarray, vg: np.ndarray,
                      vd: np.ndarray, vs: np.ndarray, u: np.ndarray):
    """Every bypassable nonlinear output at one operating point.

    Returns the 14-tuple ``(i, di_dvg, di_dvd, di_dvs, di_du, f_e,
    df_dv, df_du, f_pen, dfp_du, b_c, dbc_du, c_air, dc_du)``.  All of
    it depends only on ``(vg, vd, vs, u)`` and the per-instance width —
    the beam velocity enters the residual linearly and is always applied
    live, so caching this tuple is exact up to the bypass tolerance.
    """
    # One gap evaluation feeds the coupling, the electrostatic force
    # and the air-gap capacitance (the standalone _*_vec helpers each
    # recompute it; the values are identical, this just skips the
    # repeated softplus).
    g_gap, dg_du = _gap_distance_vec(p, u)
    g_d = p.dielectric_gap
    g_eff = g_gap + g_d
    kappa = g_d / g_eff
    dkappa = -g_d / (g_eff * g_eff) * dg_du
    i, di_g, di_d, di_s, di_u = _channel_current_vec(
        p, width, vg, vd, vs, u, kappa, dkappa)
    vgb = vg - vs
    norm = p.stiffness * p.gap
    pref = EPS0 * p.area / (2.0 * g_eff * g_eff * norm)
    f_e = pref * vgb * vgb
    df_dv = 2.0 * pref * vgb
    df_du = -2.0 * f_e / g_eff * dg_du
    f_pen, dfp_du = _force_penalty_vec(p, u)
    b_c, dbc_du = _contact_damping_vec(p, u)
    c_air = EPS0 * p.area / g_eff
    dc_du = -c_air / g_eff * dg_du
    return (i, di_g, di_d, di_s, di_u, f_e, df_dv, df_du,
            f_pen, dfp_du, b_c, dbc_du, c_air, dc_du)


class Nemfet(Element):
    """Three-terminal suspended-gate NEMFET (drain, gate, source).

    Adds two internal MNA states: normalised beam position ``u`` and
    velocity ``w``.  ``initial_contact=True`` starts the beam in the
    closed state (used to initialise hysteresis-branch analyses).
    """

    TERMINALS = 3

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 params: NemfetParams, width: float,
                 initial_contact: bool = False):
        super().__init__(name, (drain, gate, source))
        if width <= 0:
            raise NetlistError(
                f"nemfet '{name}' needs positive width, got {width}")
        self.params = params
        self.width = float(width)
        self.initial_contact = bool(initial_contact)

    @property
    def state_count(self) -> int:
        return 2

    def state_names(self) -> Tuple[str, ...]:
        return ("position", "velocity")

    def state_initial(self) -> np.ndarray:
        if self.initial_contact:
            return np.array([1.0, 0.0])
        return np.zeros(2)

    def state_dx_limit(self) -> np.ndarray:
        return np.array([0.05, 2.0])

    def load(self, ctx) -> None:
        d, g, s = self._n
        su = self._state0
        sw = self._state0 + 1
        x = ctx.x
        p = self.params
        u, w = x[su], x[sw]
        vgb = x[g] - x[s]

        # Channel current.
        i, di_g, di_d, di_s, di_u = _channel_current(
            p, self.width, x[g], x[d], x[s], u)
        cols = (g, d, s, su)
        ctx.add(d, i, cols, (di_g, di_d, di_s, di_u))
        ctx.add(s, -i, cols, (-di_g, -di_d, -di_s, -di_u))

        # Mechanical equations (normalised; see module docstring).
        inv_w0 = 1.0 / p.omega0
        ctx.add_dot(su, u * inv_w0, (su,), (inv_w0,))
        ctx.add(su, -w, (sw,), (-1.0,))

        f_e, df_dv, df_du = p.force_electrostatic_hat(vgb, u)
        f_pen, dfp_du = p.force_penalty_hat(u)
        b_c, dbc_du = p.contact_damping_hat(u)
        ctx.add_dot(sw, w * inv_w0, (sw,), (inv_w0,))
        resid = (1.0 / p.q_factor + b_c) * w + u + f_pen - f_e
        ctx.add(sw, resid, (sw, su, g, s),
                (1.0 / p.q_factor + b_c,
                 1.0 + dfp_du - df_du + dbc_du * w,
                 -df_dv, df_dv))

        # Gate charge through the moving air-gap capacitor.
        g_gap, dg_du = p.gap_distance(u)
        g_eff = g_gap + p.dielectric_gap
        c_air = EPS0 * p.area / g_eff
        dc_du = -c_air / g_eff * dg_du
        q_g = c_air * vgb
        ctx.add_dot(g, q_g, (g, s, su), (c_air, -c_air, dc_du * vgb))
        ctx.add_dot(s, -q_g, (g, s, su), (-c_air, c_air, -dc_du * vgb))

        # Drain junction capacitance.
        cj = p.c_junction_per_width * self.width
        q_db = cj * (x[d] - x[s])
        ctx.add_dot(d, q_db, (d, s), (cj, -cj))
        ctx.add_dot(s, -q_db, (d, s), (-cj, cj))

    # -- batched evaluation ------------------------------------------------

    def batch_key(self):
        return ("nemfet", self.params)

    @staticmethod
    def make_batch_group(members, q_bases, layout) -> "NemfetGroup":
        return NemfetGroup(members, q_bases, layout)

    # -- characterisation helpers -------------------------------------------

    def gate_capacitance(self, u: float = 0.0) -> float:
        """Air-gap gate capacitance at beam position ``u`` [F]."""
        g_gap, _ = self.params.gap_distance(u)
        return EPS0 * self.params.area / (g_gap +
                                          self.params.dielectric_gap)


class NemfetGroup(BatchGroup):
    """All NEMFETs sharing one parameter set (any width).

    Stamp structure per member: 10 residual blocks (channel current
    into d/s, the two mechanical equations, six charge companions) and
    25 Jacobian entries.  The bypass cache keys on ``(vg, vd, vs, u)``
    and stores the full nonlinear output tuple; the beam velocity ``w``
    enters the residual and Jacobian linearly through cached
    coefficients (``b_c``, ``dbc_du``), so it is always applied live.
    """

    q_slots_per_member = 6

    def _build(self, layout) -> None:
        d, g, s = self._terminals()
        self.d, self.g, self.s = d, g, s
        su = np.array([el._state0 for el in self.members],
                      dtype=np.int64)
        sw = su + 1
        self.su, self.sw = su, sw
        self.f_rows = np.concatenate(
            (d, s, su, sw,            # current + mechanical statics
             su, sw, g, s, d, s))     # charge companions
        self.j_rows = np.concatenate(
            (d, d, d, d,              # channel current, row d
             s, s, s, s,              # channel current, row s
             su,                      # position equation: -w
             sw, sw, sw, sw,          # force-balance statics
             su, sw,                  # mechanical d/dt terms
             g, g, g, s, s, s,        # air-gap charge
             d, d, s, s))             # junction charge
        self.j_cols = np.concatenate(
            (g, d, s, su,
             g, d, s, su,
             sw,
             sw, su, g, s,
             su, sw,
             g, s, su, g, s, su,
             d, s, d, s))
        self.fvals = np.empty(10 * self.m)
        self.jvals = np.empty(25 * self.m)
        self.q_slot_mat = (self.q_bases[None, :]
                           + np.arange(6, dtype=np.int64)[:, None])
        self._q_stack = np.empty((6, self.m))
        self.params = self.members[0].params
        # Grouping is by parameter-set *equality*; remember each
        # member's object to detect a swap (identity change) later.
        self._member_params = [el.params for el in self.members]
        self._w_list = None
        self._w_dev = None

    def _gather_instances(self) -> None:
        w = [el.width for el in self.members]
        if w != self._w_list:
            self._w_list = w
            self._w_dev = np.array(w)

    def eval(self, x, t, source_scale, c0, d1, q_prev, qdot_prev,
             q_now, options, bypass) -> None:
        p = self.params
        for el, recorded in zip(self.members, self._member_params):
            if el.params is not recorded:
                raise PlanStale(
                    f"nemfet {el.name!r} changed its parameter set")
        self._gather_instances()
        m = self.m
        w_dev = self._w_dev
        vg, vd, vs = x[..., self.g], x[..., self.d], x[..., self.s]
        u, wvel = x[..., self.su], x[..., self.sw]
        vgb = vg - vs

        # NEMFETs are exempt from bypass: the contact-penalty force is
        # so stiff in ``u`` that reusing a cached force under even a
        # sub-nanometre gap change injects residual error orders of
        # magnitude above the state-row tolerance, stalling Newton.
        # Under a bypass-enabled run their evaluations are still
        # counted (as misses) so the reported hit rate stays honest.
        out = _nemfet_nonlinear(p, w_dev, vg, vd, vs, u)
        if options.bypass:
            profiling.COUNTERS["bypass_evals"] += m
        (i, dig, did, dis, diu, f_e, df_dv, df_du,
         f_pen, dfp_du, b_c, dbc_du, c_air, dc_du) = out

        inv_w0 = 1.0 / p.omega0
        resid = (1.0 / p.q_factor + b_c) * wvel + u + f_pen - f_e
        q_g = c_air * vgb
        dcv = dc_du * vgb
        cj = p.c_junction_per_width * w_dev
        q_db = cj * (vd - vs)

        fv, jv = self._buffers(x)
        fv[..., :m] = i
        fv[..., m:2 * m] = -i
        fv[..., 2 * m:3 * m] = -wvel
        fv[..., 3 * m:4 * m] = resid
        qs = self._charge_stack(x)
        qs[..., 0, :] = u * inv_w0
        qs[..., 1, :] = wvel * inv_w0
        qs[..., 2, :] = q_g
        qs[..., 3, :] = -q_g
        qs[..., 4, :] = q_db
        qs[..., 5, :] = -q_db
        fv[..., 4 * m:] = _flatten_charges(companion_values(
            qs, self.q_slot_mat, c0, d1, q_prev, qdot_prev, q_now))

        c0w0 = c0 * inv_w0
        cac = c0 * c_air
        cdv = c0 * dcv
        cjc = c0 * cj
        jv[..., :m] = dig
        jv[..., m:2 * m] = did
        jv[..., 2 * m:3 * m] = dis
        jv[..., 3 * m:4 * m] = diu
        jv[..., 4 * m:5 * m] = -dig
        jv[..., 5 * m:6 * m] = -did
        jv[..., 6 * m:7 * m] = -dis
        jv[..., 7 * m:8 * m] = -diu
        jv[..., 8 * m:9 * m] = -1.0
        jv[..., 9 * m:10 * m] = 1.0 / p.q_factor + b_c
        jv[..., 10 * m:11 * m] = 1.0 + dfp_du - df_du + dbc_du * wvel
        jv[..., 11 * m:12 * m] = -df_dv
        jv[..., 12 * m:13 * m] = df_dv
        jv[..., 13 * m:14 * m] = c0w0
        jv[..., 14 * m:15 * m] = c0w0
        jv[..., 15 * m:16 * m] = cac
        jv[..., 16 * m:17 * m] = -cac
        jv[..., 17 * m:18 * m] = cdv
        jv[..., 18 * m:19 * m] = -cac
        jv[..., 19 * m:20 * m] = cac
        jv[..., 20 * m:21 * m] = -cdv
        jv[..., 21 * m:22 * m] = cjc
        jv[..., 22 * m:23 * m] = -cjc
        jv[..., 23 * m:24 * m] = -cjc
        jv[..., 24 * m:] = cjc


# ---------------------------------------------------------------------------
# Calibrated 90 nm-node NEMFET factories (Table 1: 330 uA/um, 110 pA/um).
# ---------------------------------------------------------------------------

# Channel parameters fitted by repro.devices.calibration.fit_nemfet so the
# contact-state device meets Table 1's NEMS I_ON (330 uA/um) and the
# released device meets I_OFF (110 pA/um, 90% from the floor leakage).
# Regenerated by tests/test_calibration.py.
_NEMS_N_VTH0 = 0.434628
_NEMS_N_K = 4.096053e2    # A/(m V^alpha)
_NEMS_P_VTH0 = 0.413452
_NEMS_P_K = 1.806407e2
_NEMS_I_FLOOR = 9.9e-5    # A/m (99 pA/um)
#: P-channel NEMS drive target, same NMOS:PMOS ratio as the CMOS node.
NEMS_P_ION_TARGET = 150.0  # A/m


def _beam_defaults() -> Tuple[float, float]:
    geometry = mechanics.BeamGeometry(
        length=500e-9, width=200e-9, thickness=30e-9,
        anchor="fixed-fixed")
    k = mechanics.beam_stiffness(geometry, mechanics.ALSI)
    m = mechanics.beam_modal_mass(geometry, mechanics.ALSI)
    return k, m


def nemfet_90nm(**overrides) -> NemfetParams:
    """N-channel NEMFET co-integrated with 90 nm CMOS.

    An AlSi fixed-fixed bridge (500 x 200 x 30 nm) over a ~1.8 nm air
    gap and 2 nm SiO2, giving a pull-in voltage around 0.45 V (well
    below Vdd = 1.2 V), sub-ns mechanical switching, and the Table 1
    current anchors.
    """
    k, m = _beam_defaults()
    channel = replace(
        nmos_90nm(),
        vth0=_NEMS_N_VTH0,
        k_trans=_NEMS_N_K,
        # The suspended gate does not modulate leakage below pull-out, so
        # a near-ideal body factor is used for the contact-state channel.
        n_sub=1.3,
    )
    base = NemfetParams(
        channel=channel,
        stiffness=k,
        mass=m,
        q_factor=2.5,
        gap=1.8e-9,
        dielectric_gap=2e-9 / EPS_SIO2,
        area=500e-9 * 200e-9,
        i_floor_per_width=_NEMS_I_FLOOR,
    )
    return replace(base, **overrides) if overrides else base


def pemfet_90nm(**overrides) -> NemfetParams:
    """P-channel NEMFET (for hybrid SRAM pull-ups and header switches)."""
    base = nemfet_90nm()
    channel = replace(base.channel, polarity=-1,
                      vth0=_NEMS_P_VTH0, k_trans=_NEMS_P_K)
    base = replace(base, channel=channel)
    return replace(base, **overrides) if overrides else base

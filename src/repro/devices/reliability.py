"""Mechanical reliability metrics for NEMS switching transients.

NEMS switches fail mechanically: hard landings erode contacts, bounce
prolongs the effective switching time and causes contact chatter, and
deep release overshoot stresses the anchors.  These are first-order
design constraints for the paper's devices (its refs [19]-[21] discuss
the fabrication/reliability side) even though the paper's circuit
analysis ignores them.

Given a transient result containing a NEMFET or relay, this module
extracts:

* **landing velocity** — normalised beam speed at first contact (wear
  proxy; contact-damage models scale with impact kinetic energy);
* **bounce count** — how many times the beam leaves and re-enters
  contact before settling (chatter);
* **settling time** — first contact to staying-in-contact;
* **release overshoot** — how far past the rest position the beam
  swings when released (anchor stress proxy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.transient import TransientResult
from repro.errors import MeasurementError

#: Position threshold treated as "in contact" (normalised travel).
CONTACT_LEVEL = 0.98


@dataclass(frozen=True)
class ContactEvent:
    """Summary of one closing event."""

    t_first_contact: float     #: [s]
    landing_velocity: float    #: normalised (g0 * omega0 units)
    bounce_count: int
    settling_time: float       #: first contact -> final entry [s]


def analyze_closing(result: TransientResult, element: str,
                    t_start: float = 0.0,
                    t_end: Optional[float] = None) -> ContactEvent:
    """Extract the closing-event metrics for one device."""
    t = result.t
    u = result.state(element, "position")
    w = result.state(element, "velocity")
    t_end = t[-1] if t_end is None else t_end
    window = (t >= t_start) & (t <= t_end)
    t_w, u_w, w_w = t[window], u[window], w[window]
    if len(t_w) < 3:
        raise MeasurementError("window too short for contact analysis")

    in_contact = u_w >= CONTACT_LEVEL
    if not in_contact.any():
        raise MeasurementError(
            f"'{element}' never reaches contact in the window")
    entries = np.nonzero(np.diff(in_contact.astype(int)) == 1)[0] + 1
    if in_contact[0]:
        entries = np.concatenate(([0], entries))
    first = int(entries[0])
    last_entry = int(entries[-1])
    return ContactEvent(
        t_first_contact=float(t_w[first]),
        landing_velocity=float(abs(w_w[first])),
        bounce_count=int(len(entries) - 1),
        settling_time=float(t_w[last_entry] - t_w[first]),
    )


def release_overshoot(result: TransientResult, element: str,
                      t_start: float = 0.0) -> float:
    """Maximum negative excursion past the rest position (normalised).

    After release the beam springs back through u = 0; an
    underdamped beam overshoots to negative positions, stressing the
    anchors.  Returns ``max(0, -min(u))`` over the window.
    """
    t = result.t
    u = result.state(element, "position")
    window = t >= t_start
    if not window.any():
        raise MeasurementError("empty analysis window")
    return float(max(0.0, -np.min(u[window])))


def recommended_quality_factor_range() -> tuple:
    """Q band trading bounce against speed.

    Below ~0.7 the closing is sluggish (overdamped); above ~3 landing
    bounce and release overshoot grow quickly.  The library's default
    device (Q = 2.5) sits at the fast-but-bounded edge.
    """
    return (0.7, 3.0)

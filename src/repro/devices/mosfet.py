"""Smooth short-channel MOSFET compact model for the 90 nm node.

The model is a single C1-continuous expression covering subthreshold,
linear and saturation regions — the same role BSIM plays in the paper's
HSPICE setup, reduced to the behaviours the experiments depend on:

* a smooth unified overdrive ``V_ov = n v_T ln(1 + exp((V_GS-V_th)/(n v_T)))``
  giving exponential subthreshold conduction with swing
  ``S = n v_T ln 10 / alpha`` and a power-law strong-inversion region;
* velocity-saturation-style output characteristic ``tanh(V_DS / V_dsat)``
  with ``V_dsat`` proportional to the overdrive;
* drain-induced barrier lowering (``V_th`` reduction proportional to
  ``V_DS``) and channel-length modulation;
* source/drain symmetry: the conducting terminal roles swap with the sign
  of ``V_DS`` so pass-gate and access-transistor configurations work.

Parameters are calibrated (see :mod:`repro.devices.calibration`) to the
paper's Table 1 anchors for the 90 nm node: NMOS I_ON = 1110 uA/um and
I_OFF = 50 nA/um at |Vdd| = 1.2 V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro import profiling
from repro.circuit.batch import (
    BatchGroup,
    PlanStale,
    _flatten_charges,
    companion_values,
)
from repro.circuit.elements import Element
from repro.devices.base import (
    power,
    power_vec,
    smooth_tanh,
    smooth_tanh_vec,
    softplus,
    softplus_vec,
)
from repro.errors import NetlistError
from repro.units import thermal_voltage


@dataclass(frozen=True)
class MosfetParams:
    """Compact-model parameter set.

    Attributes
    ----------
    polarity:
        +1 for NMOS, -1 for PMOS.
    vth0:
        Zero-bias threshold voltage magnitude [V].
    n_sub:
        Subthreshold ideality factor of the smooth overdrive.
    alpha:
        Velocity-saturation current exponent (alpha-power law).
    k_trans:
        Transconductance coefficient [A / (m * V**alpha)] per metre of
        channel width.
    eta_dibl:
        DIBL coefficient: Vth reduction per volt of |V_DS|.
    lambda_clm:
        Channel-length modulation [1/V].
    kappa_sat / vdsat_floor:
        Saturation voltage ``V_dsat = kappa_sat * V_ov + vdsat_floor``.
    c_gate_per_width:
        Total gate capacitance per metre of width [F/m] (intrinsic at the
        drawn channel length plus overlaps), split equally gate-source /
        gate-drain.
    c_junction_per_width:
        Source/drain junction capacitance per metre of width [F/m].
    l_channel:
        Drawn channel length [m]; informational (capacitance is folded
        into ``c_gate_per_width``).
    temperature:
        Simulation temperature [K].
    """

    polarity: int
    vth0: float
    n_sub: float
    alpha: float
    k_trans: float
    eta_dibl: float
    lambda_clm: float
    kappa_sat: float
    vdsat_floor: float
    c_gate_per_width: float
    c_junction_per_width: float
    l_channel: float
    temperature: float = 300.15
    #: Minimum drain-source conductance per metre of width [S/m] — keeps
    #: the Jacobian well conditioned when the device is fully off.
    gds_min_per_width: float = 1e-9

    def with_vth_shift(self, delta: float) -> "MosfetParams":
        """A copy with the threshold magnitude shifted by ``delta`` volts."""
        return replace(self, vth0=self.vth0 + delta)

    @property
    def subthreshold_swing(self) -> float:
        """Nominal subthreshold swing [V/decade] at zero V_DS."""
        return self.n_sub * thermal_voltage(self.temperature) \
            * math.log(10.0) / self.alpha


def _core(p: MosfetParams, vgs: float, vds: float
          ) -> Tuple[float, float, float]:
    """Channel current per metre width for ``vds >= 0``.

    Returns ``(i, di/dvgs, di/dvds)``.
    """
    vt = thermal_voltage(p.temperature)
    nvt = p.n_sub * vt
    vth = p.vth0 - p.eta_dibl * vds
    u = (vgs - vth) / nvt
    sp, dsp = softplus(u)
    vov = nvt * sp
    dvov_dvgs = dsp
    dvov_dvds = dsp * p.eta_dibl

    vdsat = p.kappa_sat * vov + p.vdsat_floor
    r = vds / vdsat
    f, df_dr = smooth_tanh(r)
    df_dvds = df_dr / vdsat
    df_dvov = -df_dr * vds * p.kappa_sat / (vdsat * vdsat)

    clm = 1.0 + p.lambda_clm * vds
    vov_a, dvov_a = power(vov, p.alpha) if vov > 0 else (0.0, 0.0)
    kw = p.k_trans

    i = kw * vov_a * f * clm
    di_dvov = kw * clm * (dvov_a * f + vov_a * df_dvov)
    di_dvgs = di_dvov * dvov_dvgs
    di_dvds = (di_dvov * dvov_dvds
               + kw * vov_a * (df_dvds * clm + f * p.lambda_clm))
    return i, di_dvgs, di_dvds


def mosfet_current(p: MosfetParams, width: float, vg: float, vd: float,
                   vs: float) -> Tuple[float, float, float, float]:
    """Drain current and terminal derivatives of the compact model.

    Returns ``(i_d, di/dvg, di/dvd, di/dvs)`` where ``i_d`` is the
    conventional current flowing from the drain terminal through the
    channel to the source terminal (negative for a conducting PMOS).
    Handles both ``V_DS`` polarities by swapping terminal roles, so the
    model is usable as a pass gate.
    """
    pol = p.polarity
    vds_p = pol * (vd - vs)
    if vds_p >= 0.0:
        vgs_p = pol * (vg - vs)
        i, dig, did = _core(p, vgs_p, vds_p)
        # i flows drain->source internally; map derivative chain:
        # vgs_p = pol*(vg - vs); vds_p = pol*(vd - vs).
        di_dvg = pol * dig
        di_dvd = pol * did
        di_dvs = -pol * (dig + did)
        sign = 1.0
    else:
        # Conduction reversed: the nominal drain acts as source.
        vgs_p = pol * (vg - vd)
        i, dig, did = _core(p, vgs_p, -vds_p)
        # vds_roles = pol*(vs - vd); current flows s->d internally.
        di_dvg = pol * dig
        di_dvd = -pol * (dig + did)
        di_dvs = pol * did
        sign = -1.0

    w = width
    id_total = sign * pol * i * w
    d_vg = sign * pol * di_dvg * w
    d_vd = sign * pol * di_dvd * w
    d_vs = sign * pol * di_dvs * w

    # Parallel minimum conductance for numerical conditioning.
    g_min = p.gds_min_per_width * w
    id_total += g_min * (vd - vs)
    d_vd += g_min
    d_vs -= g_min
    return id_total, d_vg, d_vd, d_vs


def _mosfet_current_core(width, vth0, vg, vd, vs, pol, nvt, eta_dibl,
                         kappa_sat, vdsat_floor, lambda_clm, alpha,
                         k_trans, gmin_pw
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]:
    """Vectorised drain-current kernel over instance arrays.

    Every card-derived parameter after ``vs`` may be a scalar (all
    instances share one card) *or* a per-instance array — this is what
    lets :class:`MosfetGroup` evaluate MOSFETs of *different* model
    cards in a single kernel call.  The V_DS polarity branch becomes a
    masked terminal-role swap: both polarities share one
    ``_core``-equivalent evaluation of ``(vgs, |vds|)`` and the
    derivative chain is mapped back per the active role, reproducing
    the scalar arithmetic op-for-op.
    """
    vds_p = pol * (vd - vs)
    fwd = vds_p >= 0.0
    vref = np.where(fwd, vs, vd)
    vgs = pol * (vg - vref)
    vds = np.abs(vds_p)

    # _core, vectorised (vds >= 0 by construction).
    vth = vth0 - eta_dibl * vds
    u = (vgs - vth) / nvt
    sp, dsp = softplus_vec(u)
    vov = nvt * sp
    dvov_dvgs = dsp
    dvov_dvds = dsp * eta_dibl

    vdsat = kappa_sat * vov + vdsat_floor
    r = vds / vdsat
    f, df_dr = smooth_tanh_vec(r)
    df_dvds = df_dr / vdsat
    df_dvov = -(df_dvds * r * kappa_sat)

    clm = 1.0 + lambda_clm * vds
    vov_a, dvov_a = power_vec(vov, alpha)
    kva = k_trans * vov_a

    i = kva * f * clm
    di_dvov = clm * (k_trans * dvov_a * f + kva * df_dvov)
    dig = di_dvov * dvov_dvgs
    did = (di_dvov * dvov_dvds
           + kva * (df_dvds * clm + f * lambda_clm))

    # Map the (vgs, vds) derivatives back to terminal derivatives for
    # the active role assignment, then restore the external sign.
    swap = -pol * (dig + did)
    pold = pol * did
    di_dvd = np.where(fwd, pold, swap)
    di_dvs = np.where(fwd, swap, pold)

    # The common factor sign*pol*width (sign = +-1 per the role swap)
    # is applied once; pol enters the terminal derivatives twice and
    # pol**2 == 1, so the result equals the scalar chain up to
    # reassociation.
    spw = np.where(fwd, pol, -pol) * width
    id_total = i * spw
    d_vg = dig * pol * spw
    d_vd = di_dvd * spw
    d_vs = di_dvs * spw

    g_min = gmin_pw * width
    id_total += g_min * (vd - vs)
    d_vd += g_min
    d_vs -= g_min
    return id_total, d_vg, d_vd, d_vs


def mosfet_current_vec(p: MosfetParams, width: np.ndarray,
                       vth0: np.ndarray, vg: np.ndarray, vd: np.ndarray,
                       vs: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
    """Vectorised :func:`mosfet_current` over instances of one card.

    ``vth0`` is per-instance (the model-card threshold plus any
    ``vth_shift``); all other parameters come from the shared card
    ``p``.  Thin wrapper over :func:`_mosfet_current_core` with the
    card parameters as scalars.
    """
    nvt = p.n_sub * thermal_voltage(p.temperature)
    return _mosfet_current_core(
        width, vth0, vg, vd, vs, p.polarity, nvt, p.eta_dibl,
        p.kappa_sat, p.vdsat_floor, p.lambda_clm, p.alpha, p.k_trans,
        p.gds_min_per_width)


class Mosfet(Element):
    """Three-terminal MOSFET (drain, gate, source); body tied to source.

    The ``vth_shift`` attribute adds to the threshold magnitude and is the
    hook used by :mod:`repro.devices.variation` for process-variation
    studies (positive shifts always weaken the device, for either
    polarity).
    """

    TERMINALS = 3

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 params: MosfetParams, width: float,
                 vth_shift: float = 0.0):
        super().__init__(name, (drain, gate, source))
        if width <= 0:
            raise NetlistError(
                f"mosfet '{name}' needs positive width, got {width}")
        self.params = params
        self.width = float(width)
        self.vth_shift = float(vth_shift)

    def _effective_params(self) -> MosfetParams:
        if self.vth_shift == 0.0:
            return self.params
        return self.params.with_vth_shift(self.vth_shift)

    def load(self, ctx) -> None:
        d, g, s = self._n
        x = ctx.x
        p = self._effective_params()
        i, di_g, di_d, di_s = mosfet_current(
            p, self.width, x[g], x[d], x[s])
        cols = (g, d, s)
        ctx.add(d, i, cols, (di_g, di_d, di_s))
        ctx.add(s, -i, cols, (-di_g, -di_d, -di_s))

        # Gate-source and gate-drain capacitances (half of total each).
        cg = 0.5 * p.c_gate_per_width * self.width
        qgs = cg * (x[g] - x[s])
        ctx.add_dot(g, qgs, (g, s), (cg, -cg))
        ctx.add_dot(s, -qgs, (g, s), (-cg, cg))
        qgd = cg * (x[g] - x[d])
        ctx.add_dot(g, qgd, (g, d), (cg, -cg))
        ctx.add_dot(d, -qgd, (g, d), (-cg, cg))

        # Drain junction capacitance to the source/body terminal.
        cj = p.c_junction_per_width * self.width
        qdb = cj * (x[d] - x[s])
        ctx.add_dot(d, qdb, (d, s), (cj, -cj))
        ctx.add_dot(s, -qdb, (d, s), (-cj, cj))

    # -- batched evaluation ------------------------------------------------

    def batch_key(self):
        # Every MOSFET shares one group regardless of model card: the
        # kernel takes card parameters as per-instance arrays, so one
        # vectorised call covers NMOS/PMOS/HVT mixes.
        return ("mosfet",)

    @staticmethod
    def make_batch_group(members, q_bases, layout) -> "MosfetGroup":
        return MosfetGroup(members, q_bases, layout)

    # -- characterisation helpers -------------------------------------------

    def drain_current(self, vg: float, vd: float, vs: float) -> float:
        """Drain current at the given terminal voltages [A]."""
        return mosfet_current(self._effective_params(), self.width,
                              vg, vd, vs)[0]

    def gate_capacitance(self) -> float:
        """Total gate capacitance [F]."""
        return self.params.c_gate_per_width * self.width


class MosfetGroup(BatchGroup):
    """Every MOSFET in the circuit (any card / width / vth_shift).

    Model-card parameters are gathered into per-instance arrays at
    build time, so NMOS, PMOS and HVT devices all evaluate in one
    :func:`_mosfet_current_core` call.  Stamp structure per member: 8
    residual contributions (current into d and s, six charge
    companions) and 18 Jacobian entries (2x3 conduction block + three
    2x2 capacitor blocks), laid out in fixed blocks of ``m`` so
    evaluation is pure array assignment.
    """

    q_slots_per_member = 6

    def _build(self, layout) -> None:
        d, g, s = self._terminals()
        self.d, self.g, self.s = d, g, s
        self.f_rows = np.concatenate((d, s, g, s, g, d, d, s))
        self.j_rows = np.concatenate(
            (d, d, d, s, s, s,           # conduction
             g, g, s, s,                 # qgs
             g, g, d, d,                 # qgd
             d, d, s, s))                # qdb
        self.j_cols = np.concatenate(
            (g, d, s, g, d, s,
             g, s, g, s,
             g, d, g, d,
             d, s, d, s))
        self.fvals = np.empty(8 * self.m)
        self.jvals = np.empty(18 * self.m)
        m = self.m
        # Charge slots for the merged companion call: row k holds the
        # k-th add_dot slot of every member.
        self.q_slot_mat = (self.q_bases[None, :]
                           + np.arange(6, dtype=np.int64)[:, None])
        self._q_stack = np.empty((6, m))
        # One group serves every model card: card parameters become
        # per-instance arrays for the kernel.  The card *objects* are
        # remembered so a swapped card (even an equal one — dataclass
        # equality cannot tell) invalidates the plan and rebuilds these
        # arrays.
        cards = self._member_params = [el.params for el in self.members]

        def per_card(get):
            return np.fromiter((get(c) for c in cards), dtype=float,
                               count=m)

        self._pol = per_card(lambda c: c.polarity)
        self._nvt = per_card(
            lambda c: c.n_sub * thermal_voltage(c.temperature))
        self._eta = per_card(lambda c: c.eta_dibl)
        self._kappa = per_card(lambda c: c.kappa_sat)
        self._vfloor = per_card(lambda c: c.vdsat_floor)
        self._lam = per_card(lambda c: c.lambda_clm)
        self._alpha = per_card(lambda c: c.alpha)
        self._ktrans = per_card(lambda c: c.k_trans)
        self._gmin_pw = per_card(lambda c: c.gds_min_per_width)
        self._cg_pw = per_card(lambda c: 0.5 * c.c_gate_per_width)
        self._cj_pw = per_card(lambda c: c.c_junction_per_width)
        self._vth0_card = per_card(lambda c: c.vth0)
        self._w_list = None
        self._vsh_list = None
        self._w = None
        self._vth0 = None
        self._cache = None
        #: Ensemble per-sample parameter overrides, installed by the
        #: ensemble solver as ``(S, m)`` arrays (or ``None``): an
        #: additive threshold shift and a multiplicative k_trans scale
        #: per (sample, instance).  Consulted only for stacked ``x``,
        #: so the scalar path is untouched by a live ensemble.
        self.ens_vth_shift = None
        self.ens_k_scale = None

    def _gather_instances(self) -> None:
        """Refresh width/vth arrays; sweeps mutate these in place.

        The probe is a plain-list comparison — far cheaper per
        iteration than rebuilding numpy arrays — and the arrays (and
        the bypass cache, which keys on them) are only regenerated on
        an actual change.
        """
        w = [el.width for el in self.members]
        vsh = [el.vth_shift for el in self.members]
        if w != self._w_list or vsh != self._vsh_list:
            self._w_list = w
            self._vsh_list = vsh
            self._w = np.array(w)
            self._vth0 = self._vth0_card + np.array(vsh)
            self._cache = None

    def eval(self, x, t, source_scale, c0, d1, q_prev, qdot_prev,
             q_now, options, bypass) -> None:
        for el, recorded in zip(self.members, self._member_params):
            if el.params is not recorded:
                raise PlanStale(
                    f"mosfet {el.name!r} changed its model card")
        self._gather_instances()
        m = self.m
        w = self._w
        vg, vd, vs = x[..., self.g], x[..., self.d], x[..., self.s]
        vth0 = self._vth0
        ktrans = self._ktrans
        if x.ndim == 2:
            # Ensemble evaluation: per-sample overrides are (S, m)
            # arrays that broadcast straight through the kernel.
            if self.ens_vth_shift is not None:
                vth0 = vth0 + self.ens_vth_shift
            if self.ens_k_scale is not None:
                ktrans = ktrans * self.ens_k_scale

        cache = self._cache
        if bypass and cache is not None and x.ndim == 1:
            cvg, cvd, cvs, ci, cdg, cdd, cds = cache
            rtol = options.bypass_reltol
            atol = options.bypass_abstol
            stale = (np.abs(vg - cvg)
                     > rtol * np.maximum(np.abs(vg), np.abs(cvg)) + atol)
            stale |= (np.abs(vd - cvd)
                      > rtol * np.maximum(np.abs(vd), np.abs(cvd)) + atol)
            stale |= (np.abs(vs - cvs)
                      > rtol * np.maximum(np.abs(vs), np.abs(cvs)) + atol)
            idx = np.nonzero(stale)[0]
            if idx.size:
                i_f, dg_f, dd_f, ds_f = _mosfet_current_core(
                    w[idx], self._vth0[idx],
                    vg[idx], vd[idx], vs[idx],
                    self._pol[idx], self._nvt[idx], self._eta[idx],
                    self._kappa[idx], self._vfloor[idx],
                    self._lam[idx], self._alpha[idx],
                    self._ktrans[idx], self._gmin_pw[idx])
                cvg[idx] = vg[idx]
                cvd[idx] = vd[idx]
                cvs[idx] = vs[idx]
                ci[idx] = i_f
                cdg[idx] = dg_f
                cdd[idx] = dd_f
                cds[idx] = ds_f
            profiling.COUNTERS["bypass_hits"] += int(m - idx.size)
            profiling.COUNTERS["bypass_evals"] += int(idx.size)
            i, dig, did, dis = ci, cdg, cdd, cds
        else:
            i, dig, did, dis = _mosfet_current_core(
                w, vth0, vg, vd, vs,
                self._pol, self._nvt, self._eta, self._kappa,
                self._vfloor, self._lam, self._alpha, ktrans,
                self._gmin_pw)
            if options.bypass and x.ndim == 1:
                self._cache = [vg, vd, vs, i, dig, did, dis]
                profiling.COUNTERS["bypass_evals"] += m

        # Charges are linear and cheap: always recomputed exactly.
        cg = self._cg_pw * w
        qgs = cg * (vg - vs)
        qgd = cg * (vg - vd)
        cj = self._cj_pw * w
        qdb = cj * (vd - vs)

        fv, jv = self._buffers(x)
        fv[..., :m] = i
        fv[..., m:2 * m] = -i
        qs = self._charge_stack(x)
        qs[..., 0, :] = qgs
        qs[..., 1, :] = -qgs
        qs[..., 2, :] = qgd
        qs[..., 3, :] = -qgd
        qs[..., 4, :] = qdb
        qs[..., 5, :] = -qdb
        fv[..., 2 * m:8 * m] = _flatten_charges(companion_values(
            qs, self.q_slot_mat, c0, d1, q_prev, qdot_prev, q_now))

        cgc = c0 * cg
        cjc = c0 * cj
        jv[..., :m] = dig
        jv[..., m:2 * m] = did
        jv[..., 2 * m:3 * m] = dis
        jv[..., 3 * m:4 * m] = -dig
        jv[..., 4 * m:5 * m] = -did
        jv[..., 5 * m:6 * m] = -dis
        jv[..., 6 * m:7 * m] = cgc
        jv[..., 7 * m:8 * m] = -cgc
        jv[..., 8 * m:9 * m] = -cgc
        jv[..., 9 * m:10 * m] = cgc
        jv[..., 10 * m:11 * m] = cgc
        jv[..., 11 * m:12 * m] = -cgc
        jv[..., 12 * m:13 * m] = -cgc
        jv[..., 13 * m:14 * m] = cgc
        jv[..., 14 * m:15 * m] = cjc
        jv[..., 15 * m:16 * m] = -cjc
        jv[..., 16 * m:17 * m] = -cjc
        jv[..., 17 * m:] = cjc


# ---------------------------------------------------------------------------
# 90 nm parameter factories (calibrated to the paper's Table 1; see
# repro.devices.calibration and tests/test_calibration.py).
# ---------------------------------------------------------------------------

#: Nominal supply voltage of the 90 nm node used throughout the paper [V].
VDD_90NM = 1.2

# Calibration anchors from Table 1 of the paper (per micron of width).
NMOS_ION_TARGET = 1110e-6 / 1e-6  # [A/m]
NMOS_IOFF_TARGET = 50e-9 / 1e-6   # [A/m]
# PMOS drive is ~45% of NMOS at matched leakage (typical 90 nm ratio).
PMOS_ION_TARGET = 500e-6 / 1e-6
PMOS_IOFF_TARGET = 50e-9 / 1e-6

# Values produced by repro.devices.calibration.fit_mosfet against the
# anchors above (regenerated by tests/test_calibration.py).
_NMOS_VTH0 = 0.283990
_NMOS_K = 1.082822e3   # A/(m V^alpha)
_PMOS_VTH0 = 0.257497
_PMOS_K = 4.740000e2

#: Threshold increase of the high-Vt flavour used by dual-Vt / asymmetric
#: SRAM cells [V] (~9x leakage reduction at the 90 nm effective swing).
HVT_SHIFT = 0.07


def nmos_90nm(**overrides) -> MosfetParams:
    """Calibrated 90 nm NMOS parameters (Table 1 anchors)."""
    base = MosfetParams(
        polarity=+1,
        vth0=_NMOS_VTH0,
        n_sub=1.6,
        alpha=1.3,
        k_trans=_NMOS_K,
        eta_dibl=0.08,
        lambda_clm=0.06,
        kappa_sat=0.6,
        vdsat_floor=0.078,
        c_gate_per_width=1.5e-9,      # 1.5 fF/um
        c_junction_per_width=0.4e-9,  # 0.4 fF/um
        l_channel=90e-9,
    )
    return replace(base, **overrides) if overrides else base


def pmos_90nm(**overrides) -> MosfetParams:
    """Calibrated 90 nm PMOS parameters."""
    base = MosfetParams(
        polarity=-1,
        vth0=_PMOS_VTH0,
        n_sub=1.6,
        alpha=1.3,
        k_trans=_PMOS_K,
        eta_dibl=0.08,
        lambda_clm=0.06,
        kappa_sat=0.6,
        vdsat_floor=0.078,
        c_gate_per_width=1.5e-9,
        c_junction_per_width=0.8e-9,
        l_channel=90e-9,
    )
    return replace(base, **overrides) if overrides else base


def nmos_90nm_hvt(**overrides) -> MosfetParams:
    """High-threshold NMOS flavour (dual-Vt designs, ref [25]/[26])."""
    params = nmos_90nm().with_vth_shift(HVT_SHIFT)
    return replace(params, **overrides) if overrides else params


def pmos_90nm_hvt(**overrides) -> MosfetParams:
    """High-threshold PMOS flavour (dual-Vt designs, ref [25]/[26])."""
    params = pmos_90nm().with_vth_shift(HVT_SHIFT)
    return replace(params, **overrides) if overrides else params

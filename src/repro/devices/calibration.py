"""Calibration of device models to published anchor currents.

The paper calibrates its NEMS model against reported I_ON/I_OFF values and
uses 90 nm BSIM models for CMOS (Table 1):

=========  ===========  ==========
Device     I_ON         I_OFF
=========  ===========  ==========
CMOS [4]   1110 uA/um   50 nA/um
NEMS [13]  330 uA/um    110 pA/um
=========  ===========  ==========

This module provides the fitting routines that produce the constants baked
into :mod:`repro.devices.mosfet` and :mod:`repro.devices.nemfet`, plus
swing extraction used by the Figure 2 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.devices.mosfet import MosfetParams, mosfet_current
from repro.errors import CalibrationError


@dataclass(frozen=True)
class CurrentTargets:
    """I_ON/I_OFF calibration anchors, per metre of device width."""

    i_on: float
    i_off: float
    vdd: float = 1.2

    def __post_init__(self):
        if self.i_on <= self.i_off:
            raise CalibrationError(
                f"I_ON ({self.i_on}) must exceed I_OFF ({self.i_off})")


def fit_mosfet(base: MosfetParams, targets: CurrentTargets,
               vth_bracket: Tuple[float, float] = (0.05, 0.8)
               ) -> MosfetParams:
    """Fit ``vth0`` and ``k_trans`` so the model hits the target currents.

    I_ON is measured at ``|V_GS| = |V_DS| = Vdd`` and I_OFF at
    ``V_GS = 0, |V_DS| = Vdd``.  Because the current is proportional to
    ``k_trans``, the ON/OFF *ratio* depends only on ``vth0``; we solve the
    ratio equation by bracketed root finding, then scale ``k_trans``.
    """
    vdd = targets.vdd
    pol = base.polarity

    def currents(params: MosfetParams) -> Tuple[float, float]:
        # Use a unit width of 1 m so currents are per-metre values.
        i_on = abs(mosfet_current(params, 1.0, pol * vdd, pol * vdd, 0.0)[0])
        i_off = abs(mosfet_current(params, 1.0, 0.0, pol * vdd, 0.0)[0])
        return i_on, i_off

    target_ratio = math.log(targets.i_on / targets.i_off)

    def ratio_error(vth0: float) -> float:
        params = replace(base, vth0=vth0)
        i_on, i_off = currents(params)
        if i_off <= 0 or i_on <= 0:
            return -target_ratio
        return math.log(i_on / i_off) - target_ratio

    lo, hi = vth_bracket
    f_lo, f_hi = ratio_error(lo), ratio_error(hi)
    if f_lo * f_hi > 0:
        raise CalibrationError(
            f"vth bracket [{lo}, {hi}] does not straddle the target "
            f"ON/OFF ratio (errors {f_lo:.3g}, {f_hi:.3g})")
    vth0 = optimize.brentq(ratio_error, lo, hi, xtol=1e-9)

    params = replace(base, vth0=vth0)
    i_on, _ = currents(params)
    k_fit = base.k_trans * targets.i_on / i_on
    fitted = replace(params, k_trans=k_fit)

    i_on, i_off = currents(fitted)
    on_err = abs(i_on - targets.i_on) / targets.i_on
    off_err = abs(i_off - targets.i_off) / targets.i_off
    if on_err > 0.02 or off_err > 0.02:
        raise CalibrationError(
            f"calibration residual too large: I_ON err {on_err:.2%}, "
            f"I_OFF err {off_err:.2%}")
    return fitted


def fit_nemfet(base, targets: CurrentTargets,
               floor_fraction: float = 0.9,
               vth_bracket: Tuple[float, float] = (0.1, 1.0)):
    """Fit the NEMFET channel ``vth0``/``k_trans`` to Table 1 anchors.

    ``I_ON`` is measured on the contact (pulled-in) branch at
    ``V_G = V_D = Vdd``; ``I_OFF`` on the released branch at ``V_G = 0``.
    The OFF target is split: ``floor_fraction`` of it is assigned to the
    position-independent floor leakage (Brownian motion + tunnelling) and
    the remainder to residual channel subthreshold leakage, which pins
    the channel threshold.

    Returns a new :class:`~repro.devices.nemfet.NemfetParams`.
    """
    from repro.devices.nemfet import NemfetParams  # local: avoid cycle

    if not isinstance(base, NemfetParams):
        raise CalibrationError("fit_nemfet needs NemfetParams")
    if not 0.0 < floor_fraction < 1.0:
        raise CalibrationError(
            f"floor_fraction must be in (0,1), got {floor_fraction}")

    vdd = targets.vdd
    pol = base.polarity
    i_floor = floor_fraction * targets.i_off
    i_chan_off_target = targets.i_off - i_floor

    def currents(params) -> Tuple[float, float]:
        i_on = abs(params.static_current(
            1.0, pol * vdd, pol * vdd, 0.0, branch="down"))
        # Channel-only OFF current: suppress the floor term.
        bare = replace(params, i_floor_per_width=1e-30)
        i_off = abs(bare.static_current(
            1.0, 0.0, pol * vdd, 0.0, branch="up"))
        return i_on, i_off

    target_ratio = math.log(targets.i_on / i_chan_off_target)

    def ratio_error(vth0: float) -> float:
        params = replace(base, channel=replace(base.channel, vth0=vth0))
        i_on, i_off = currents(params)
        if i_on <= 0 or i_off <= 0:
            return -target_ratio
        return math.log(i_on / i_off) - target_ratio

    lo, hi = vth_bracket
    if ratio_error(lo) * ratio_error(hi) > 0:
        raise CalibrationError(
            f"NEMFET vth bracket [{lo}, {hi}] does not straddle the "
            f"target ON/OFF ratio")
    vth0 = optimize.brentq(ratio_error, lo, hi, xtol=1e-9)

    params = replace(base, channel=replace(base.channel, vth0=vth0))
    i_on, _ = currents(params)
    k_fit = base.channel.k_trans * targets.i_on / i_on
    fitted = replace(
        params,
        channel=replace(params.channel, vth0=vth0, k_trans=k_fit),
        i_floor_per_width=i_floor)

    i_on, i_chan = currents(fitted)
    i_off_total = i_chan + i_floor
    on_err = abs(i_on - targets.i_on) / targets.i_on
    off_err = abs(i_off_total - targets.i_off) / targets.i_off
    if on_err > 0.02 or off_err > 0.05:
        raise CalibrationError(
            f"NEMFET calibration residual too large: I_ON err "
            f"{on_err:.2%}, I_OFF err {off_err:.2%}")
    return fitted


def extract_swing(vg: Sequence[float], i_d: Sequence[float],
                  i_min: float = 1e-14, i_max: float = 1e-4) -> float:
    """Minimum subthreshold swing [V/decade] from a transfer sweep.

    Computes ``dV_G / dlog10(I_D)`` between consecutive sweep points and
    returns the smallest value inside the current window — the standard
    way experimental papers quote S (e.g. the 2 mV/dec of ref [12]).
    """
    vg = np.asarray(vg, dtype=float)
    i_d = np.abs(np.asarray(i_d, dtype=float))
    if vg.shape != i_d.shape or vg.ndim != 1 or len(vg) < 3:
        raise CalibrationError("need matching 1-D sweep arrays (>= 3 pts)")
    mask = (i_d > i_min) & (i_d < i_max)
    if mask.sum() < 3:
        raise CalibrationError(
            "too few sweep points inside the current window")
    v = vg[mask]
    logi = np.log10(i_d[mask])
    dlogi = np.diff(logi)
    dv = np.diff(v)
    valid = np.abs(dlogi) > 1e-12
    if not np.any(valid):
        raise CalibrationError("current does not vary inside the window")
    swings = np.abs(dv[valid] / dlogi[valid])
    return float(np.min(swings))


def transfer_sweep(current_fn: Callable[[float], float],
                   vg_values: Sequence[float]) -> np.ndarray:
    """Evaluate a ``vg -> i_d`` callable over a sweep; returns currents."""
    return np.array([current_fn(float(v)) for v in vg_values])

"""Simulation-as-a-service over :mod:`repro.engine`.

The service turns experiment runs into *jobs*: submit over HTTP (or
in-process), poll status, tail progress events, fetch results and
artifacts, cancel — all backed by a persistent sqlite job store so a
server restart resumes queued work instead of losing it.

Layers, bottom-up:

* :mod:`repro.service.schemas` — job specs, validation, lifecycle
  state machine;
* :mod:`repro.service.store` — the :class:`JobStore` interface and
  its sqlite implementation;
* :mod:`repro.service.limits` — per-tenant token-bucket rate limits
  and running-job concurrency caps;
* :mod:`repro.service.app` — :class:`ServiceApp`: worker threads,
  dispatch through the engine runner, cancellation, artifacts;
* :mod:`repro.service.http` — the stdlib HTTP surface and
  ``repro serve`` entry point;
* :mod:`repro.service.client` — a small polling client for tests,
  benchmarks, and scripts.
"""

from repro.service.app import JobNotDone, ServiceApp, ServiceConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ServiceServer, serve
from repro.service.limits import RateLimited, TenantGovernor, TokenBucket
from repro.service.schemas import (
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    SUCCEEDED,
    TERMINAL_STATES,
    JobSpec,
    ValidationError,
)
from repro.service.store import JobStore, SqliteJobStore

__all__ = [
    "CANCELLED",
    "FAILED",
    "JobNotDone",
    "JobSpec",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "RateLimited",
    "STATES",
    "SUCCEEDED",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "SqliteJobStore",
    "TERMINAL_STATES",
    "TenantGovernor",
    "TokenBucket",
    "ValidationError",
    "serve",
]

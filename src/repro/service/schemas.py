"""Job specifications and the job lifecycle state machine.

A submitted job is a :class:`JobSpec`: which experiment to run, with
which ``run()`` keyword arguments, for which tenant.  Validation
happens here, at the submission boundary — a spec that validates is
guaranteed dispatchable by a worker, so a typo costs a 400 response
instead of a failed job minutes later.

States form a small explicit machine::

                 submit            claim
    (created) ─────────> queued ─────────> running ──> succeeded
                           │                  │  │
                           │ cancel           │  └───> failed
                           │                  │ cancel
                           └──> cancelled <───┘
                           ▲
              restart      │
    running ──────────> queued   (recovery: in-flight work resumes)

``queued → running → succeeded | failed | cancelled`` is the normal
life; a server restart demotes ``running`` back to ``queued`` so
in-flight work resumes instead of stranding.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.registry import validate_params

#: Every job state, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)

#: States a job never leaves (except ``running → queued`` on restart,
#: which is recovery, not a transition the API exposes).
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})

#: Legal transitions of the lifecycle machine.
TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({SUCCEEDED, FAILED, CANCELLED, QUEUED}),
    SUCCEEDED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

DEFAULT_TENANT = "default"


class ValidationError(ValueError):
    """A submission that cannot become a job; carries every problem."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = list(errors)


def check_transition(current: str, target: str) -> None:
    """Raise ``ValueError`` unless ``current → target`` is legal."""
    if target not in TRANSITIONS.get(current, frozenset()):
        raise ValueError(
            f"illegal job state transition {current!r} -> {target!r}")


@dataclass
class JobSpec:
    """What to run: the validated, persistable submission payload."""

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    quick: bool = False
    tenant: str = DEFAULT_TENANT

    @classmethod
    def from_payload(cls, payload: Any,
                     tenant: Optional[str] = None) -> "JobSpec":
        """Validate a decoded JSON submission body into a spec.

        ``tenant`` (e.g. from a header) wins over the body's field.
        Raises :class:`ValidationError` listing *every* problem.
        """
        errors: List[str] = []
        if not isinstance(payload, dict):
            raise ValidationError(
                [f"submission body must be a JSON object, got "
                 f"{type(payload).__name__}"])
        unknown = set(payload) - {"experiment", "params", "quick",
                                  "tenant"}
        if unknown:
            errors.append(f"unknown field(s): "
                          f"{', '.join(sorted(unknown))}")
        experiment = payload.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            errors.append("'experiment' must be a non-empty string")
            experiment = ""
        params = payload.get("params") or {}
        quick = payload.get("quick", False)
        if not isinstance(quick, bool):
            errors.append("'quick' must be a boolean")
            quick = False
        tenant = tenant or payload.get("tenant") or DEFAULT_TENANT
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            errors.append(
                "'tenant' must match [A-Za-z0-9._-]{1,64}")
            tenant = DEFAULT_TENANT
        if experiment:
            errors.extend(validate_params(experiment, params,
                                          quick=quick))
        if isinstance(params, dict):
            try:
                json.dumps(params)
            except (TypeError, ValueError):
                errors.append("'params' must be JSON-serialisable")
        else:
            errors.append(f"'params' must be an object, got "
                          f"{type(params).__name__}")
            params = {}
        if errors:
            raise ValidationError(errors)
        return cls(experiment=experiment, params=dict(params),
                   quick=quick, tenant=tenant)

    def to_dict(self) -> Dict[str, Any]:
        return {"experiment": self.experiment, "params": self.params,
                "quick": self.quick, "tenant": self.tenant}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(experiment=data["experiment"],
                   params=dict(data.get("params") or {}),
                   quick=bool(data.get("quick", False)),
                   tenant=data.get("tenant") or DEFAULT_TENANT)

"""The HTTP surface: stdlib-only JSON API over :class:`ServiceApp`.

Endpoints (all JSON unless noted)::

    GET  /api/health                      liveness + queue counters
    GET  /api/experiments                 submittable experiments
    POST /api/jobs                        submit → 202 {id, state}
    GET  /api/jobs?tenant=&state=&limit=  recent jobs, newest first
    GET  /api/jobs/<id>                   job record (poll this)
    GET  /api/jobs/<id>/events?after=N    progress events (tail by seq)
    GET  /api/jobs/<id>/result            finished result as JSON
    GET  /api/jobs/<id>/artifacts         artifact names
    GET  /api/jobs/<id>/artifacts/<name>  artifact bytes (octet-stream)
    POST /api/jobs/<id>/cancel            request cancellation
    GET  /api/stats                       store + service aggregates
    GET  /api/service/events?after=N      service incidents (tail by seq)

The tenant is taken from the ``X-Repro-Tenant`` header (falling back
to the submission body's ``tenant`` field, then ``"default"``).
Error mapping: validation → 400, unknown id/artifact → 404, result
before completion → 409, rate limit → 429 with ``Retry-After``.

Threading model: ``ThreadingHTTPServer`` serves each request on its
own thread; every handler call is a short store/filesystem read or a
queue insert — experiments themselves run on the app's worker
threads, never on request threads.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.app import JobNotDone, ServiceApp, ServiceConfig
from repro.service.limits import RateLimited
from repro.service.schemas import ValidationError

_ID = r"(?P<job_id>[0-9a-f]{1,32})"
_ROUTES = [
    ("GET", re.compile(r"^/api/health$"), "health"),
    ("GET", re.compile(r"^/api/experiments$"), "experiments"),
    ("POST", re.compile(r"^/api/jobs$"), "submit"),
    ("GET", re.compile(r"^/api/jobs$"), "list_jobs"),
    ("GET", re.compile(rf"^/api/jobs/{_ID}$"), "job"),
    ("GET", re.compile(rf"^/api/jobs/{_ID}/events$"), "events"),
    ("GET", re.compile(rf"^/api/jobs/{_ID}/result$"), "result"),
    ("GET", re.compile(rf"^/api/jobs/{_ID}/artifacts$"), "artifacts"),
    ("GET", re.compile(
        rf"^/api/jobs/{_ID}/artifacts/(?P<name>[\w.-]+)$"),
     "artifact"),
    ("POST", re.compile(rf"^/api/jobs/{_ID}/cancel$"), "cancel"),
    ("GET", re.compile(r"^/api/stats$"), "stats"),
    ("GET", re.compile(r"^/api/service/events$"), "service_events"),
]


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to ``_ep_*`` endpoint methods."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # The server is quiet by default; `serve(verbose=True)` re-enables
    # the stdlib per-request log line.
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def app(self) -> ServiceApp:
        return self.server.app

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        self.query = {k: v[-1] for k, v in
                      parse_qs(url.query).items()}
        path_matched = False
        for verb, pattern, name in _ROUTES:
            match = pattern.match(url.path)
            if match is None:
                continue
            # A path can carry several verbs (POST/GET /api/jobs):
            # keep looking for a verb match before concluding 405.
            path_matched = True
            if verb != method:
                continue
            try:
                getattr(self, f"_ep_{name}")(**match.groupdict())
            except ValidationError as err:
                self._send_json(400, {"error": str(err),
                                      "details": err.errors})
            except RateLimited as err:
                self._send_json(
                    429, {"error": str(err),
                          "retry_after": err.retry_after},
                    headers=[("Retry-After",
                              f"{max(1, int(err.retry_after + 1))}")])
            except JobNotDone as err:
                self._send_json(409, {"error": str(err)})
            except KeyError as err:
                self._send_json(404, {"error": err.args[0]
                                      if err.args else "not found"})
            except ValueError as err:
                self._send_json(400, {"error": str(err)})
            except Exception as err:  # pragma: no cover - last resort
                self._send_json(500, {"error": f"{type(err).__name__}: "
                                               f"{err}"})
            return
        if path_matched:
            self._send_json(405, {"error": f"{method} not allowed "
                                           f"on {url.path}"})
        else:
            self._send_json(404, {"error": f"no route for {url.path}"})

    # -- plumbing ----------------------------------------------------

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as err:
            raise ValidationError([f"request body is not valid JSON: "
                                   f"{err}"]) from None

    def _tenant(self) -> Optional[str]:
        return self.headers.get("X-Repro-Tenant") or None

    def _send_json(self, status: int, payload: Any,
                   headers: Tuple = ()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- endpoints ---------------------------------------------------

    def _ep_health(self) -> None:
        stats = self.app.store.stats()
        self._send_json(200, {"status": "ok",
                              "queue_depth": stats["queue_depth"],
                              "running": stats["running"]})

    def _ep_experiments(self) -> None:
        self._send_json(200, {"experiments": self.app.experiments()})

    def _ep_submit(self) -> None:
        record = self.app.submit(self._read_body(),
                                 tenant=self._tenant())
        self._send_json(202, record)

    def _ep_list_jobs(self) -> None:
        self._send_json(200, {"jobs": self.app.list_jobs(
            tenant=self.query.get("tenant"),
            state=self.query.get("state"),
            limit=int(self.query.get("limit", 100)))})

    def _ep_job(self, job_id: str) -> None:
        self._send_json(200, self.app.job(job_id))

    def _ep_events(self, job_id: str) -> None:
        after = int(self.query.get("after", 0))
        events = self.app.events(
            job_id, after=after,
            limit=int(self.query.get("limit", 500)))
        self._send_json(200, {
            "events": events,
            "next_after": events[-1]["seq"] if events else after,
        })

    def _ep_result(self, job_id: str) -> None:
        self._send_json(200, self.app.result(job_id))

    def _ep_artifacts(self, job_id: str) -> None:
        self._send_json(200, {"artifacts": self.app.artifacts(job_id)})

    def _ep_artifact(self, job_id: str, name: str) -> None:
        path = self.app.artifact_path(job_id, name)
        with open(path, "rb") as handle:
            blob = handle.read()
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _ep_cancel(self, job_id: str) -> None:
        self._send_json(200, self.app.cancel(job_id))

    def _ep_stats(self) -> None:
        self._send_json(200, self.app.stats())

    def _ep_service_events(self) -> None:
        after = int(self.query.get("after", 0))
        events = self.app.service_events(
            after=after, limit=int(self.query.get("limit", 100)))
        self._send_json(200, {
            "events": events,
            "next_after": events[-1]["seq"] if events else after,
        })


class ServiceServer:
    """A started app plus its HTTP server, as one handle.

    ``with ServiceServer(config) as server:`` boots the workers and
    the listener (port 0 picks an ephemeral port — read it back from
    ``server.port``), serves on a background thread, and tears
    everything down on exit.  The CLI uses the same object in the
    foreground via :meth:`serve_forever`.
    """

    def __init__(self, config: ServiceConfig,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False,
                 app: Optional[ServiceApp] = None):
        self.app = app or ServiceApp(config)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.app = self.app
        self.httpd.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def start(self) -> "ServiceServer":
        self.app.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-http",
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground mode (the CLI): blocks until interrupted."""
        self.app.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.stop()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(config: ServiceConfig, host: str = "127.0.0.1",
          port: int = 8451, verbose: bool = True) -> None:
    """Boot the service and serve until interrupted (the CLI entry)."""
    server = ServiceServer(config, host=host, port=port,
                           verbose=verbose)
    print(f"repro service listening on "
          f"http://{server.host}:{server.port}/api/ "
          f"(store: {config.db_path})")
    server.serve_forever()

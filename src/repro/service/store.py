"""Persistent job store: the service's source of truth.

:class:`JobStore` is the thin interface the service layer programs
against; :class:`SqliteJobStore` is the first implementation.  The
interface is deliberately small and value-oriented (dict in, dict out,
JSON-safe) so a different backing store — Postgres, Redis, a cloud
queue — can swap in without touching the app or HTTP layers.

Two tables::

    jobs(id PRIMARY KEY, tenant, experiment, spec, state,
         created, started, finished, cancel_requested,
         error, result_path, summary)
    events(job_id, seq, ts, kind, payload, PRIMARY KEY(job_id, seq))

``spec`` and ``summary`` are JSON blobs; ``events`` is the append-only
progress log (state transitions, per-point engine results, telemetry
summaries) that the tail endpoint serves incrementally by ``seq``.

Every mutation happens inside one lock-guarded transaction on a single
WAL-mode connection, so the store is safe to share between the HTTP
threads and the worker threads of one server process, and crash-safe
across server restarts.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional

from repro.service.schemas import (
    CANCELLED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    check_transition,
)


class JobStore:
    """Interface every job-store backend implements."""

    def create(self, spec: JobSpec) -> Dict[str, Any]:
        """Persist a new queued job; returns its record."""
        raise NotImplementedError

    def get(self, job_id: str) -> Dict[str, Any]:
        """The record of one job; raises ``KeyError`` if unknown."""
        raise NotImplementedError

    def list_jobs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        """Recent job records, newest first, optionally filtered."""
        raise NotImplementedError

    def claim_next(self, exclude_tenants: Iterable[str] = ()
                   ) -> Optional[Dict[str, Any]]:
        """Atomically move the oldest eligible queued job to running."""
        raise NotImplementedError

    def finish(self, job_id: str, state: str, *,
               error: Optional[str] = None,
               result_path: Optional[str] = None,
               summary: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        """Move a running job to a terminal state."""
        raise NotImplementedError

    def request_cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job now; flag a running one for its worker."""
        raise NotImplementedError

    def cancel_requested(self, job_id: str) -> bool:
        """Whether a cancel has been requested for this job."""
        raise NotImplementedError

    def append_event(self, job_id: str, kind: str,
                     payload: Optional[Dict[str, Any]] = None) -> int:
        """Append one progress event; returns its sequence number."""
        raise NotImplementedError

    def events(self, job_id: str, after: int = 0,
               limit: int = 500) -> List[Dict[str, Any]]:
        """Events of one job with ``seq > after``, oldest first."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Aggregate statistics across every job ever stored."""
        raise NotImplementedError

    def recover(self) -> int:
        """Requeue jobs left ``running`` by a dead server; returns
        how many were requeued."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SqliteJobStore(JobStore):
    """SQLite-backed job store (one file, WAL mode, thread-safe)."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS jobs (
        id               TEXT PRIMARY KEY,
        tenant           TEXT NOT NULL,
        experiment       TEXT NOT NULL,
        spec             TEXT NOT NULL,
        state            TEXT NOT NULL,
        created          REAL NOT NULL,
        started          REAL,
        finished         REAL,
        cancel_requested INTEGER NOT NULL DEFAULT 0,
        error            TEXT,
        result_path      TEXT,
        summary          TEXT
    );
    CREATE INDEX IF NOT EXISTS jobs_state_created
        ON jobs(state, created);
    CREATE INDEX IF NOT EXISTS jobs_tenant ON jobs(tenant);
    CREATE TABLE IF NOT EXISTS events (
        job_id  TEXT NOT NULL,
        seq     INTEGER NOT NULL,
        ts      REAL NOT NULL,
        kind    TEXT NOT NULL,
        payload TEXT,
        PRIMARY KEY (job_id, seq)
    );
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # One shared connection under a lock: simple, correct, and
        # plenty for a store whose transactions are all sub-millisecond
        # metadata writes (results live on the filesystem, not here).
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(self._SCHEMA)
            self._conn.commit()

    # -- helpers -----------------------------------------------------

    @staticmethod
    def _record(row: sqlite3.Row) -> Dict[str, Any]:
        record = dict(row)
        record["spec"] = json.loads(record["spec"])
        record["summary"] = (json.loads(record["summary"])
                             if record["summary"] else None)
        record["cancel_requested"] = bool(record["cancel_requested"])
        return record

    def _get_locked(self, job_id: str) -> Dict[str, Any]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise KeyError(f"unknown job '{job_id}'")
        return self._record(row)

    def _append_event_locked(self, job_id: str, kind: str,
                             payload: Optional[Dict[str, Any]]) -> int:
        seq = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM events "
            "WHERE job_id = ?", (job_id,)).fetchone()[0]
        self._conn.execute(
            "INSERT INTO events (job_id, seq, ts, kind, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            (job_id, seq, time.time(), kind,
             json.dumps(payload) if payload is not None else None))
        return seq

    # -- JobStore interface ------------------------------------------

    def create(self, spec: JobSpec) -> Dict[str, Any]:
        job_id = uuid.uuid4().hex[:16]
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (id, tenant, experiment, spec, "
                "state, created) VALUES (?, ?, ?, ?, ?, ?)",
                (job_id, spec.tenant, spec.experiment,
                 json.dumps(spec.to_dict()), QUEUED, time.time()))
            self._append_event_locked(
                job_id, "submitted",
                {"experiment": spec.experiment, "tenant": spec.tenant})
            self._conn.commit()
            return self._get_locked(job_id)

    def get(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            return self._get_locked(job_id)

    def list_jobs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        clauses, args = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            args.append(tenant)
        if state is not None:
            clauses.append("state = ?")
            args.append(state)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        args.append(max(1, int(limit)))
        with self._lock:
            rows = self._conn.execute(
                f"SELECT * FROM jobs {where} "
                f"ORDER BY created DESC, id DESC LIMIT ?",
                args).fetchall()
            return [self._record(row) for row in rows]

    def claim_next(self, exclude_tenants: Iterable[str] = ()
                   ) -> Optional[Dict[str, Any]]:
        excluded = sorted(set(exclude_tenants))
        holes = ",".join("?" for _ in excluded)
        not_in = f"AND tenant NOT IN ({holes})" if excluded else ""
        with self._lock:
            row = self._conn.execute(
                f"SELECT id FROM jobs WHERE state = ? {not_in} "
                f"ORDER BY created, id LIMIT 1",
                [QUEUED, *excluded]).fetchone()
            if row is None:
                return None
            job_id = row["id"]
            self._conn.execute(
                "UPDATE jobs SET state = ?, started = ? "
                "WHERE id = ? AND state = ?",
                (RUNNING, time.time(), job_id, QUEUED))
            self._append_event_locked(job_id, "started", None)
            self._conn.commit()
            return self._get_locked(job_id)

    def finish(self, job_id: str, state: str, *,
               error: Optional[str] = None,
               result_path: Optional[str] = None,
               summary: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, "
                             f"got {state!r}")
        with self._lock:
            record = self._get_locked(job_id)
            check_transition(record["state"], state)
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished = ?, error = ?, "
                "result_path = ?, summary = ? WHERE id = ?",
                (state, time.time(), error, result_path,
                 json.dumps(summary) if summary is not None else None,
                 job_id))
            self._append_event_locked(
                job_id, state,
                {"error": error} if error else None)
            self._conn.commit()
            return self._get_locked(job_id)

    def request_cancel(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            record = self._get_locked(job_id)
            state = record["state"]
            if state in TERMINAL_STATES:
                return record  # nothing to cancel; idempotent
            if state == QUEUED:
                # Never started: cancel immediately.
                self._conn.execute(
                    "UPDATE jobs SET state = ?, finished = ?, "
                    "cancel_requested = 1 WHERE id = ? AND state = ?",
                    (CANCELLED, time.time(), job_id, QUEUED))
                self._append_event_locked(job_id, CANCELLED, None)
            else:
                # Running: flag it; the worker's cancel_scope observes
                # the flag between engine jobs / retry rungs.
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 "
                    "WHERE id = ?", (job_id,))
                self._append_event_locked(job_id, "cancel-requested",
                                          None)
            self._conn.commit()
            return self._get_locked(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?",
                (job_id,)).fetchone()
            return bool(row and row["cancel_requested"])

    def append_event(self, job_id: str, kind: str,
                     payload: Optional[Dict[str, Any]] = None) -> int:
        with self._lock:
            seq = self._append_event_locked(job_id, kind, payload)
            self._conn.commit()
            return seq

    def events(self, job_id: str, after: int = 0,
               limit: int = 500) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, ts, kind, payload FROM events "
                "WHERE job_id = ? AND seq > ? ORDER BY seq LIMIT ?",
                (job_id, int(after), max(1, int(limit)))).fetchall()
        return [{"seq": row["seq"], "ts": row["ts"],
                 "kind": row["kind"],
                 "payload": (json.loads(row["payload"])
                             if row["payload"] else {})}
                for row in rows]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_state = dict(self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs "
                "GROUP BY state").fetchall())
            by_experiment = dict(self._conn.execute(
                "SELECT experiment, COUNT(*) FROM jobs "
                "GROUP BY experiment").fetchall())
            summaries = [json.loads(row[0]) for row in
                         self._conn.execute(
                             "SELECT summary FROM jobs "
                             "WHERE summary IS NOT NULL").fetchall()]
        totals = {"engine_jobs": 0, "cache_hits": 0,
                  "point_failures": 0, "wall_time": 0.0}
        for summary in summaries:
            for key in totals:
                totals[key] = (totals[key]
                               + summary.get(key, 0))
        return {
            "jobs": sum(by_state.values()),
            "by_state": {state: by_state.get(state, 0)
                         for state in sorted(by_state)},
            "by_experiment": by_experiment,
            "queue_depth": by_state.get(QUEUED, 0),
            "running": by_state.get(RUNNING, 0),
            "totals": totals,
        }

    def recover(self) -> int:
        """Requeue every ``running`` job (the server that claimed them
        is gone).  Cancel-requested ones complete their cancellation
        instead of restarting."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, cancel_requested FROM jobs "
                "WHERE state = ?", (RUNNING,)).fetchall()
            requeued = 0
            for row in rows:
                job_id = row["id"]
                if row["cancel_requested"]:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, finished = ? "
                        "WHERE id = ?",
                        (CANCELLED, time.time(), job_id))
                    self._append_event_locked(job_id, CANCELLED, None)
                    continue
                self._conn.execute(
                    "UPDATE jobs SET state = ?, started = NULL "
                    "WHERE id = ?", (QUEUED, job_id))
                self._append_event_locked(
                    job_id, "requeued",
                    {"reason": "server restart"})
                requeued += 1
            self._conn.commit()
            return requeued

    def close(self) -> None:
        with self._lock:
            self._conn.close()

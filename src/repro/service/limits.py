"""Rate and concurrency limits: one tenant cannot starve the rest.

Two mechanisms, both tenant-scoped:

* a :class:`TokenBucket` per tenant throttles *submissions* — a burst
  budget refilled at a steady rate, so an aggressive client gets 429s
  instead of flooding the queue;
* :class:`TenantGovernor` also bounds how many of a tenant's jobs may
  *run* concurrently, so the worker pool keeps serving other tenants
  while one tenant's campaign is in flight.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, FrozenSet


class RateLimited(RuntimeError):
    """A submission rejected by the rate limiter (HTTP 429)."""

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant '{tenant}' is over its submission rate; retry "
            f"in {retry_after:.1f} s")
        self.tenant = tenant
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate``/s refill."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = time.monotonic()
            self._refill_locked(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def wait_time(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (0 if now)."""
        with self._lock:
            self._refill_locked(time.monotonic())
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate)


class TenantGovernor:
    """Per-tenant submission rate + running-job concurrency limits."""

    def __init__(self, *, submissions_per_minute: float = 120.0,
                 submission_burst: int = 20,
                 max_running_per_tenant: int = 2):
        if max_running_per_tenant < 1:
            raise ValueError("max_running_per_tenant must be >= 1")
        self.submissions_per_minute = float(submissions_per_minute)
        self.submission_burst = int(submission_burst)
        self.max_running = int(max_running_per_tenant)
        self._buckets: Dict[str, TokenBucket] = {}
        self._running: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.submissions_per_minute / 60.0,
                    self.submission_burst)
            return bucket

    def admit_submission(self, tenant: str) -> None:
        """Charge one submission; raises :class:`RateLimited` when the
        tenant's bucket is dry."""
        bucket = self._bucket(tenant)
        if not bucket.try_acquire():
            raise RateLimited(tenant, bucket.wait_time())

    def job_started(self, tenant: str) -> None:
        with self._lock:
            self._running[tenant] = self._running.get(tenant, 0) + 1

    def job_finished(self, tenant: str) -> None:
        with self._lock:
            count = self._running.get(tenant, 0) - 1
            if count <= 0:
                self._running.pop(tenant, None)
            else:
                self._running[tenant] = count

    def saturated_tenants(self) -> FrozenSet[str]:
        """Tenants at their running-job cap (skipped by claim_next)."""
        with self._lock:
            return frozenset(t for t, n in self._running.items()
                             if n >= self.max_running)

"""The service core: queue workers, artifacts, recovery, stats.

:class:`ServiceApp` owns everything behind the HTTP surface:

* the persistent :class:`~repro.service.store.JobStore` (submissions,
  states, events);
* a pool of worker threads claiming queued jobs and running them
  through :func:`repro.experiments.registry.run_experiment` — which
  dispatches every sweep through :mod:`repro.engine` with the shared
  result cache, retry ladder and telemetry.  ``workers > 1`` is safe:
  every ambient registry a solve touches (solve observers, option
  transforms, backend/step/ensemble/eval policies, phase counters,
  progress observers) is thread-local, so each worker's
  ``telemetry.collecting()`` and progress observer see exactly the
  jobs that worker ran — concurrent jobs never merge telemetry or
  swap solver policies;
* per-job progress streaming: the engine's thread-local progress
  observer forwards each :class:`~repro.engine.runner.JobResult`
  (cache hits included) into the job's event log as it lands;
* worker resilience: an unexpected exception from the store or the
  governor is logged as a *service event* (surfaced under
  ``/api/stats`` and ``/api/service/events``) and the worker loop
  continues — a storage hiccup degrades one claim, it never silently
  shrinks the worker pool;
* cooperative cancellation: an ambient
  :func:`~repro.engine.runner.cancel_scope` polls the store's
  cancel flag between engine jobs and retry rungs;
* artifacts: the finished ``ExperimentResult`` is pickled (exact) and
  rendered to JSON/CSV next to it, under ``<data_dir>/artifacts/``;
* cache eviction: a background loop prunes the shared result cache to
  ``cache_max_bytes`` (LRU) so tenants cannot grow it unboundedly.

On :meth:`start` the app recovers the store: jobs a dead server left
``running`` are requeued, so a kill/reboot mid-queue resumes instead of
stranding work.
"""

from __future__ import annotations

import collections
import logging
import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

logger = logging.getLogger("repro.service")

from repro.engine import telemetry
from repro.engine.cache import ResultCache
from repro.engine.config import EngineConfig, set_config
from repro.engine.runner import JobResult, cancel_scope, observing_progress
from repro.experiments.registry import (
    DESCRIPTIONS,
    REGISTRY,
    experiment_parameters,
    run_experiment,
)
from repro.service.limits import TenantGovernor
from repro.service.schemas import (
    CANCELLED,
    FAILED,
    SUCCEEDED,
    JobSpec,
)
from repro.service.store import JobStore, SqliteJobStore


class JobNotDone(RuntimeError):
    """Result requested before the job reached ``succeeded`` (409)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything `repro serve` (or a test) needs to boot a service.

    ``data_dir`` holds the durable state: ``jobs.sqlite3`` (the job
    store) and ``artifacts/<job-id>/`` (results).  ``cache_dir`` is
    the *shared* engine result cache — warm across jobs, tenants and
    server restarts; ``cache_max_bytes`` bounds it with LRU eviction.
    """

    data_dir: str
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    engine_jobs: int = 1
    workers: int = 1
    submissions_per_minute: float = 120.0
    submission_burst: int = 20
    max_running_per_tenant: int = 2
    eviction_interval: float = 60.0

    @property
    def db_path(self) -> str:
        return os.path.join(self.data_dir, "jobs.sqlite3")

    @property
    def artifact_dir(self) -> str:
        return os.path.join(self.data_dir, "artifacts")


def _json_safe(value: Any) -> Any:
    """Reduce an experiment row value to a JSON-representable one."""
    if isinstance(value, (str, bool, int)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):        # numpy scalar
        return value.item()
    return str(value)


class ServiceApp:
    """The long-lived service: store + workers + limits + artifacts."""

    def __init__(self, config: ServiceConfig,
                 store: Optional[JobStore] = None):
        self.config = config
        os.makedirs(config.artifact_dir, exist_ok=True)
        self.store = store or SqliteJobStore(config.db_path)
        self.governor = TenantGovernor(
            submissions_per_minute=config.submissions_per_minute,
            submission_burst=config.submission_burst,
            max_running_per_tenant=config.max_running_per_tenant)
        self.cache = (ResultCache(config.cache_dir,
                                  max_bytes=config.cache_max_bytes)
                      if config.cache_dir else None)
        self.started_at: Optional[float] = None
        self.recovered = 0
        self._stop = threading.Event()
        self._wake = threading.Condition()
        self._threads: List[threading.Thread] = []
        self._workers: List[threading.Thread] = []
        self._previous_engine_config: Optional[EngineConfig] = None
        # Service-level (not job-level) incidents: worker-loop errors,
        # recoveries.  Bounded so a flapping store cannot grow it.
        self._events_lock = threading.Lock()
        self._service_events: collections.deque = collections.deque(
            maxlen=200)
        self._event_seq = 0
        self.worker_errors = 0

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "ServiceApp":
        """Recover the store and start the worker/eviction threads."""
        if self.started_at is not None:
            return self
        self.recovered = self.store.recover()
        self.started_at = time.time()
        # Workers execute experiments through the process-global engine
        # config; install the service's once, restore on stop.
        self._previous_engine_config = set_config(EngineConfig(
            jobs=self.config.engine_jobs,
            cache_dir=self.config.cache_dir))
        for index in range(max(1, self.config.workers)):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)
            self._workers.append(thread)
        if self.cache is not None and self.config.cache_max_bytes:
            thread = threading.Thread(
                target=self._eviction_loop, name="repro-cache-evict",
                daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, join: bool = True, timeout: float = 10.0) -> None:
        """Stop the workers (finishing nothing new) and close the store."""
        if self.started_at is None:
            return
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        if join:
            for thread in self._threads:
                thread.join(timeout=timeout)
        self._threads.clear()
        self._workers.clear()
        if self._previous_engine_config is not None:
            set_config(self._previous_engine_config)
            self._previous_engine_config = None
        self.started_at = None
        self.store.close()

    # -- API surface (called by the HTTP layer and the test client) --

    def submit(self, payload: Any,
               tenant: Optional[str] = None) -> Dict[str, Any]:
        """Validate, rate-limit and enqueue one submission."""
        spec = JobSpec.from_payload(payload, tenant=tenant)
        self.governor.admit_submission(spec.tenant)
        record = self.store.create(spec)
        with self._wake:
            self._wake.notify()
        return record

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.store.get(job_id)

    def list_jobs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, Any]]:
        return self.store.list_jobs(tenant=tenant, state=state,
                                    limit=limit)

    def events(self, job_id: str, after: int = 0,
               limit: int = 500) -> List[Dict[str, Any]]:
        self.store.get(job_id)  # 404 for unknown ids
        return self.store.events(job_id, after=after, limit=limit)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.store.request_cancel(job_id)

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's result rendered as JSON."""
        record = self._finished(job_id)
        with open(os.path.join(record["result_path"], "result.pkl"),
                  "rb") as handle:
            result = pickle.load(handle)
        return {
            "job_id": job_id,
            "experiment_id": result.experiment_id,
            "title": result.title,
            "columns": list(result.columns),
            "rows": [[_json_safe(v) for v in row]
                     for row in result.rows],
            "notes": result.notes,
            "extras": sorted(result.extras),
        }

    def artifact_path(self, job_id: str, name: str = "result.pkl"
                      ) -> str:
        """Filesystem path of one artifact of a finished job."""
        record = self._finished(job_id)
        if os.path.basename(name) != name:
            raise KeyError(f"unknown artifact '{name}'")
        path = os.path.join(record["result_path"], name)
        if not os.path.isfile(path):
            raise KeyError(f"unknown artifact '{name}'")
        return path

    def artifacts(self, job_id: str) -> List[str]:
        record = self._finished(job_id)
        return sorted(os.listdir(record["result_path"]))

    def _finished(self, job_id: str) -> Dict[str, Any]:
        record = self.store.get(job_id)
        if record["state"] != SUCCEEDED or not record["result_path"]:
            raise JobNotDone(
                f"job '{job_id}' is {record['state']}, not succeeded")
        return record

    def experiments(self) -> List[Dict[str, Any]]:
        """Every submittable experiment with parameters and defaults."""
        return [{
            "id": exp_id,
            "description": DESCRIPTIONS[exp_id],
            "parameters": experiment_parameters(exp_id),
            "quick_params": {k: repr(v) for k, v in
                             REGISTRY[exp_id][1].items()},
        } for exp_id in REGISTRY]

    def service_events(self, after: int = 0,
                       limit: int = 100) -> List[Dict[str, Any]]:
        """Recent service-level incidents (worker errors, recoveries).

        ``after`` is the last event ``seq`` the caller has seen, so a
        monitoring poller can tail the log the same way job events are
        tailed.
        """
        with self._events_lock:
            events = [e for e in self._service_events
                      if e["seq"] > after]
        return events[:max(0, limit)]

    def _service_event(self, kind: str, detail: str) -> None:
        logger.warning("service event [%s]: %s", kind, detail)
        with self._events_lock:
            self._event_seq += 1
            self._service_events.append({
                "seq": self._event_seq,
                "time": time.time(),
                "worker": threading.current_thread().name,
                "kind": kind,
                "detail": detail,
            })

    def stats(self) -> Dict[str, Any]:
        """Store aggregates plus live service counters."""
        stats = self.store.stats()
        stats["service"] = {
            "uptime_s": (time.time() - self.started_at
                         if self.started_at else 0.0),
            "workers": self.config.workers,
            "workers_alive": sum(t.is_alive() for t in self._workers),
            "engine_jobs": self.config.engine_jobs,
            "recovered_on_start": self.recovered,
            "worker_errors": self.worker_errors,
        }
        if self.cache is not None:
            stats["cache"] = {
                "directory": self.cache.directory,
                "max_bytes": self.cache.max_bytes,
                "total_bytes": self.cache.total_bytes(),
                "evicted": self.cache.evicted,
            }
        return stats

    # -- workers -----------------------------------------------------

    def _worker_loop(self) -> None:
        # A worker thread must survive anything short of process
        # death: an unexpected exception from the store or the
        # governor is a degraded claim, not a permanently smaller
        # worker pool.  Errors are logged as service events and the
        # loop backs off briefly before retrying.
        while not self._stop.is_set():
            try:
                claimed = self._claim_and_run()
            except Exception as err:  # noqa: BLE001 - worker survives
                self.worker_errors += 1
                self._service_event(
                    "worker-error",
                    f"{type(err).__name__}: {err}")
                self._stop.wait(timeout=0.5)
                continue
            if not claimed:
                # Idle: block on the wake condition.  Submissions and
                # freed tenant capacity notify it, so the timeout is
                # only a backstop (store edits made behind the
                # service's back), not a polling cadence.
                with self._wake:
                    self._wake.wait(timeout=1.0)

    def _claim_and_run(self) -> bool:
        """Claim one queued job and run it; False when none claimable."""
        record = self.store.claim_next(
            self.governor.saturated_tenants())
        if record is None:
            return False
        tenant = record["tenant"]
        self.governor.job_started(tenant)
        try:
            self._run_job(record)
        finally:
            self.governor.job_finished(tenant)
            with self._wake:
                self._wake.notify_all()  # capacity freed
        return True

    def _run_job(self, record: Dict[str, Any]) -> None:
        job_id = record["id"]
        spec = JobSpec.from_dict(record["spec"])

        def cancelled() -> bool:
            return self.store.cancel_requested(job_id)

        counters = {"engine_jobs": 0, "cache_hits": 0,
                    "point_failures": 0, "points_cancelled": 0}
        # Engine-executed solves arrive aggregated on each JobResult;
        # ``direct_solves`` catches any analysis the experiment runs
        # outside the engine.  Both collectors are thread-local, so
        # with several workers running concurrently each job's numbers
        # are exactly its own.
        solves = telemetry.SolveStats()
        direct_solves = telemetry.SolveStats()

        def observe(result: JobResult, group: str) -> None:
            counters["engine_jobs"] += 1
            counters["cache_hits"] += result.cache_hit
            counters["point_failures"] += (not result.ok
                                           and not result.cancelled)
            counters["points_cancelled"] += result.cancelled
            solves.merge(result.solves)
            self.store.append_event(job_id, "point", {
                "group": group, "tag": result.tag, "ok": result.ok,
                "cache_hit": result.cache_hit,
                "cancelled": result.cancelled,
                "attempts": result.attempts,
                "wall_time": round(result.wall_time, 6),
            })

        def summary(wall: float) -> Dict[str, Any]:
            total = telemetry.SolveStats()
            total.merge(solves)
            total.merge(direct_solves)
            return {
                **counters,
                "wall_time": round(wall, 6),
                "newton_iterations": total.newton_iterations,
                "solver_time": round(total.solver_time, 6),
                "steps_accepted": total.steps_accepted,
            }

        started = time.perf_counter()
        if cancelled():
            self.store.finish(job_id, CANCELLED, summary=summary(0.0))
            return
        try:
            with cancel_scope(cancelled), observing_progress(observe), \
                    telemetry.collecting(direct_solves):
                result = run_experiment(spec.experiment,
                                        quick=spec.quick,
                                        params=spec.params)
        except Exception as err:  # a failed job, never a dead worker
            self.store.finish(
                job_id, FAILED,
                error=f"{type(err).__name__}: {err}",
                summary=summary(time.perf_counter() - started))
            return
        wall = time.perf_counter() - started
        if cancelled() or counters["points_cancelled"]:
            # The experiment ran to completion structurally, but some
            # points were skipped by the cancel: the job is cancelled,
            # its partial result is not stored.
            self.store.finish(job_id, CANCELLED,
                              summary=summary(wall))
            return
        result_path = self._store_artifacts(job_id, result)
        self.store.finish(job_id, SUCCEEDED, result_path=result_path,
                          summary=summary(wall))

    def _store_artifacts(self, job_id: str, result) -> str:
        directory = os.path.join(self.config.artifact_dir, job_id)
        os.makedirs(directory, exist_ok=True)
        # The pickle is the exact object (numpy extras included); the
        # CSV and text renderings are the human/spreadsheet views.
        with open(os.path.join(directory, "result.pkl"), "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        result.save_csv(os.path.join(directory, "result.csv"))
        with open(os.path.join(directory, "result.txt"), "w") as fh:
            fh.write(result.to_text() + "\n")
        return directory

    def _eviction_loop(self) -> None:
        while not self._stop.wait(timeout=self.config.eviction_interval):
            try:
                self.cache.prune(self.config.cache_max_bytes)
            except OSError:
                pass  # transient filesystem trouble; retry next tick

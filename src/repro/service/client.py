"""A small stdlib client for the service, used by tests and scripts.

``ServiceClient`` wraps ``http.client`` — one method per endpoint,
JSON in/out, and a :class:`ServiceError` carrying the HTTP status and
server-reported message on any non-2xx response.  ``wait()`` polls a
job to a terminal state with a deadline.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Dict, List, Optional

from repro.service.schemas import TERMINAL_STATES


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, Any]] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Talks JSON to a running service at ``host:port``.

    A fresh connection per request keeps the client trivially
    thread-safe (benchmarks spawn one client per thread anyway).
    """

    def __init__(self, host: str, port: int,
                 tenant: Optional[str] = None, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ---------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        headers = {"Content-Type": "application/json"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        try:
            conn.request(method, path,
                         body=json.dumps(body) if body is not None
                         else None,
                         headers=headers)
            response = conn.getresponse()
            blob = response.read()
            if not 200 <= response.status < 300:
                try:
                    payload = json.loads(blob)
                except (ValueError, UnicodeDecodeError):
                    payload = {"error": blob.decode("utf-8",
                                                    "replace")}
                raise ServiceError(response.status,
                                   payload.get("error", "unknown"),
                                   payload)
            if raw:
                return blob
            return json.loads(blob) if blob else {}
        finally:
            conn.close()

    # -- endpoints ---------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/api/health")

    def experiments(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/api/experiments")["experiments"]

    def submit(self, experiment: str,
               params: Optional[Dict[str, Any]] = None,
               quick: bool = False) -> Dict[str, Any]:
        body: Dict[str, Any] = {"experiment": experiment,
                                "quick": quick}
        if params:
            body["params"] = params
        return self._request("POST", "/api/jobs", body=body)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/api/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None,
             limit: int = 100) -> List[Dict[str, Any]]:
        query = [f"limit={limit}"]
        if tenant:
            query.append(f"tenant={tenant}")
        if state:
            query.append(f"state={state}")
        return self._request(
            "GET", f"/api/jobs?{'&'.join(query)}")["jobs"]

    def events(self, job_id: str, after: int = 0,
               limit: int = 500) -> Dict[str, Any]:
        return self._request(
            "GET",
            f"/api/jobs/{job_id}/events?after={after}&limit={limit}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def artifacts(self, job_id: str) -> List[str]:
        return self._request(
            "GET", f"/api/jobs/{job_id}/artifacts")["artifacts"]

    def artifact(self, job_id: str, name: str) -> bytes:
        return self._request(
            "GET", f"/api/jobs/{job_id}/artifacts/{name}", raw=True)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/api/jobs/{job_id}/cancel")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/api/stats")

    def service_events(self, after: int = 0,
                       limit: int = 100) -> Dict[str, Any]:
        """Service-level incidents (worker errors), tailed by seq."""
        return self._request(
            "GET", f"/api/service/events?after={after}&limit={limit}")

    # -- conveniences ------------------------------------------------

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Returns the final job record; raises ``TimeoutError`` if the
        deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout:.0f} s")
            time.sleep(poll)

    def run(self, experiment: str,
            params: Optional[Dict[str, Any]] = None,
            quick: bool = False,
            timeout: float = 120.0) -> Dict[str, Any]:
        """Submit, wait, and return the result payload (or raise)."""
        record = self.submit(experiment, params=params, quick=quick)
        final = self.wait(record["id"], timeout=timeout)
        if final["state"] != "succeeded":
            raise ServiceError(
                500, f"job {record['id']} ended {final['state']}: "
                     f"{final.get('error')}", final)
        return self.result(record["id"])

"""NEMS and CMOS sleep transistors (the paper's Section 6).

Two analysis levels:

* **Device level** (Figure 17) — ON resistance and OFF leakage versus
  device area, with areas normalised to the paper's reference: a CMOS
  device with W/L = 5 at the 90 nm node.  A NEMS switch occupies its
  beam footprint, so at equal area it offers less conduction width *and*
  less per-width drive — a higher ON resistance — but its OFF current is
  orders of magnitude lower, and because both resistances fall as 1/area
  the absolute resistance gap becomes negligible for large switches.

* **Block level** (Figures 16a-d) — a logic block (inverter chain)
  power-gated by a footer (or header) sleep device, in fine-grain (one
  switch per gate) or coarse-grain (one shared switch) style.  Metrics:
  active-mode delay degradation from the virtual-rail bounce, and
  sleep-mode leakage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from scipy import optimize

from repro.analysis import measure
from repro.analysis.dc import operating_point
from repro.analysis.options import TransientOptions
from repro.analysis.transient import transient
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import (
    Mosfet,
    MosfetParams,
    nmos_90nm,
    pmos_90nm,
)
from repro.devices.nemfet import (
    Nemfet,
    NemfetParams,
    nemfet_90nm,
    pemfet_90nm,
)
from repro.errors import DesignError, MeasurementError

#: The paper's area unit: a W/L = 5 CMOS device at L = 90 nm.
CMOS_UNIT_WIDTH = 5 * 90e-9           # [m]
CMOS_UNIT_AREA = CMOS_UNIT_WIDTH * 90e-9  # [m^2]

#: Small drain bias used for ON-resistance extraction [V].
RON_VDS = 0.05


@dataclass(frozen=True)
class SleepDevice:
    """A sleep switch described by technology and normalised area."""

    kind: str                 #: "cmos" or "nems"
    area_units: float         #: area / CMOS_UNIT_AREA
    vdd: float = 1.2
    nmos: MosfetParams = field(default_factory=nmos_90nm)
    nems: NemfetParams = field(default_factory=nemfet_90nm)

    def __post_init__(self):
        if self.kind not in ("cmos", "nems"):
            raise DesignError(f"unknown sleep device kind '{self.kind}'")
        if self.area_units <= 0:
            raise DesignError(
                f"area must be positive, got {self.area_units}")

    @property
    def width(self) -> float:
        """Conduction width the area budget buys [m].

        CMOS: ``W = area / L``.  NEMS: beams tile the footprint, so the
        summed channel width is ``area / beam_length``.
        """
        area = self.area_units * CMOS_UNIT_AREA
        if self.kind == "cmos":
            return area / self.nmos.l_channel
        beam_length = self.nems.area / _beam_width(self.nems)
        return area / beam_length

    def on_resistance(self) -> float:
        """ON-state resistance at full gate drive, small V_DS [ohm]."""
        if self.kind == "cmos":
            from repro.devices.mosfet import mosfet_current
            i = mosfet_current(self.nmos, self.width, self.vdd,
                               RON_VDS, 0.0)[0]
        else:
            i = self.nems.static_current(self.width, self.vdd, RON_VDS,
                                         0.0, branch="down")
        if i <= 0:
            raise MeasurementError("sleep device does not conduct")
        return RON_VDS / i

    def off_current(self) -> float:
        """OFF-state leakage at V_GS = 0, V_DS = Vdd [A]."""
        if self.kind == "cmos":
            from repro.devices.mosfet import mosfet_current
            return abs(mosfet_current(self.nmos, self.width, 0.0,
                                      self.vdd, 0.0)[0])
        return abs(self.nems.static_current(self.width, 0.0, self.vdd,
                                            0.0, branch="up"))


def _beam_width(nems: NemfetParams) -> float:
    """Beam width implied by the actuation area and default geometry."""
    # area = beam_length * beam_width with the factory's 500 nm length.
    return nems.area / 500e-9


def sweep_sleep_devices(area_units: List[float], vdd: float = 1.2
                        ) -> List[Tuple[float, float, float, float, float]]:
    """Figure 17 sweep: ``(area, Ron_cmos, Ioff_cmos, Ron_nems, Ioff_nems)``."""
    rows = []
    for a in area_units:
        cmos = SleepDevice("cmos", a, vdd=vdd)
        nems = SleepDevice("nems", a, vdd=vdd)
        rows.append((a, cmos.on_resistance(), cmos.off_current(),
                     nems.on_resistance(), nems.off_current()))
    return rows


# ---------------------------------------------------------------------------
# Block-level power gating.
# ---------------------------------------------------------------------------


@dataclass
class GatedBlockSpec:
    """An inverter chain power-gated by sleep switches.

    ``grain='coarse'`` shares one footer across the chain (Figure 16d);
    ``'fine'`` gives each stage its own footer sized ``1/n_stages`` of
    the area budget (Figure 16c).  ``header=True`` gates the Vdd side
    with a PMOS / p-NEMS device instead (Figure 16a vs 16b).
    """

    kind: str = "cmos"            #: sleep-switch technology
    area_units: float = 4.0       #: total sleep-switch area budget
    n_stages: int = 4
    grain: str = "coarse"
    header: bool = False          #: True = gate the Vdd rail (Fig 16a)
    vdd: float = 1.2
    w_inv_n: float = 1e-6
    w_inv_p: float = 2e-6
    load_cap: float = 5e-15
    t_input: float = 0.4e-9
    t_stop: float = 2.5e-9
    nmos: MosfetParams = field(default_factory=nmos_90nm)
    pmos: MosfetParams = field(default_factory=pmos_90nm)
    nems: NemfetParams = field(default_factory=nemfet_90nm)
    nems_p: NemfetParams = field(default_factory=pemfet_90nm)

    def __post_init__(self):
        if self.n_stages < 1:
            raise DesignError("need at least one stage")
        if self.grain not in ("coarse", "fine"):
            raise DesignError(f"unknown grain '{self.grain}'")
        if self.kind not in ("cmos", "nems", "none"):
            raise DesignError(f"unknown sleep kind '{self.kind}'")


class GatedBlock:
    """A built power-gated inverter chain with handles for measurement."""

    def __init__(self, spec: GatedBlockSpec):
        self.spec = spec
        self.circuit = Circuit(
            f"gated_{spec.kind}_{spec.grain}_{spec.n_stages}")
        self._build()

    def _sleep_device(self, name: str, rail: str, area_units: float):
        """Insert one sleep switch between ``rail`` and its supply."""
        spec = self.spec
        device = SleepDevice(spec.kind, area_units, vdd=spec.vdd,
                             nmos=spec.nmos, nems=spec.nems)
        if spec.header:
            # Header switch between the real and virtual Vdd, active-low
            # control on the 'slpb' node.
            if spec.kind == "cmos":
                return self.circuit.add(
                    Mosfet(name, rail, "slpb", "vdd", spec.pmos,
                           device.width))
            return self.circuit.add(
                Nemfet(name, rail, "slpb", "vdd", spec.nems_p,
                       device.width, initial_contact=True))
        if spec.kind == "cmos":
            return self.circuit.add(
                Mosfet(name, rail, "slp", "0", spec.nmos, device.width))
        return self.circuit.add(
            Nemfet(name, rail, "slp", "0", spec.nems, device.width,
                   initial_contact=True))

    def _build(self) -> None:
        spec = self.spec
        c = self.circuit
        c.vsource("VDD", "vdd", "0", spec.vdd)
        # Sleep controls: footer 'slp' is active-high, header 'slpb' is
        # active-low.  Both rails exist so measurements can flip either.
        self.sleep_source = c.vsource(
            "VSLP", "slpb" if spec.header else "slp", "0",
            0.0 if spec.header else spec.vdd)
        self.input_source = c.vsource(
            "VIN", "n0", "0",
            Pulse(0.0, spec.vdd, td=spec.t_input, tr=30e-12, tf=30e-12,
                  pw=spec.t_stop, per=None))

        gated_rail = "vvdd" if spec.header else "vgnd"

        def rail_for(stage: int) -> str:
            if spec.kind == "none":
                return "vdd" if spec.header else "0"
            if spec.grain == "coarse":
                return gated_rail
            return f"{gated_rail}{stage}"

        for i in range(spec.n_stages):
            inp, out = f"n{i}", f"n{i + 1}"
            p_rail = rail_for(i) if spec.header else "vdd"
            n_rail = "0" if spec.header else rail_for(i)
            c.add(Mosfet(f"MP{i}", out, inp, p_rail, spec.pmos,
                         spec.w_inv_p))
            c.add(Mosfet(f"MN{i}", out, inp, n_rail, spec.nmos,
                         spec.w_inv_n))
            c.capacitor(f"CL{i}", out, "0", spec.load_cap)

        if spec.kind != "none":
            if spec.grain == "coarse":
                self._sleep_device("MSLP", gated_rail, spec.area_units)
            else:
                per_stage = spec.area_units / spec.n_stages
                for i in range(spec.n_stages):
                    self._sleep_device(f"MSLP{i}", f"{gated_rail}{i}",
                                       per_stage)

    @property
    def output_node(self) -> str:
        return f"n{self.spec.n_stages}"


def block_delay(spec: GatedBlockSpec, dt: float = 4e-12,
                options: Optional[TransientOptions] = None) -> float:
    """Active-mode propagation delay through the gated chain [s]."""
    block = GatedBlock(spec)
    if options is None:
        options = _block_transient_options(spec)
    result = transient(block.circuit, spec.t_stop, dt, options=options)
    half = spec.vdd / 2
    edge_out = "rise" if spec.n_stages % 2 == 0 else "fall"
    return measure.propagation_delay(
        result.t, result.voltage("n0"), result.voltage(block.output_node),
        level_from=half, level_to=half, edge_from="rise",
        edge_to=edge_out)


def block_sleep_leakage(spec: GatedBlockSpec, dt: float = 4e-12,
                        options: Optional[TransientOptions] = None
                        ) -> float:
    """Sleep-mode leakage power of the gated block [W].

    The sleep control is low; inputs are held low.  The NEMS switch
    starts closed (its worst case) and releases, so the measurement
    includes the mechanical opening transient before the DC polish.
    """
    block = GatedBlock(spec)
    block.sleep_source.value = spec.vdd if spec.header else 0.0
    block.input_source.value = 0.0
    if options is None:
        options = _block_transient_options(spec)
    result = transient(block.circuit, 1.5e-9, dt, options=options)
    op = operating_point(block.circuit, x0=result.final().x,
                         layout=result.layout)
    return op.source_power("VDD")


def _block_transient_options(spec: GatedBlockSpec) -> TransientOptions:
    """Step-control defaults for block-level transients.

    Mirrors :func:`repro.library.gate_metrics.default_transient_options`:
    second-order trapezoidal integration for pure-CMOS blocks, L-stable
    backward Euler when a NEMS sleep switch brings pull-in/release
    corners into the waveforms.
    """
    if spec.kind == "nems":
        return TransientOptions(lte_reltol=1e-2)
    return TransientOptions(method="trap", lte_reltol=2e-2,
                            lte_max_dt_factor=256.0)


def delay_degradation(kind: str, area_units: float,
                      base: Optional[GatedBlockSpec] = None) -> float:
    """Fractional delay increase versus the ungated chain.

    Both chains are integrated with the *gated* spec's step-control
    options: the degradation is a few-percent delay ratio, and mixing
    methods (trapezoidal baseline vs backward-Euler NEMS chain) would
    leak their differing integration biases into it.
    """
    template = base or GatedBlockSpec()
    ungated = replace_spec(template, kind="none", area_units=1.0)
    gated = replace_spec(template, kind=kind, area_units=area_units)
    options = _block_transient_options(gated)
    d0 = block_delay(ungated, options=options)
    d1 = block_delay(gated, options=options)
    return (d1 - d0) / d0


def replace_spec(spec: GatedBlockSpec, **overrides) -> GatedBlockSpec:
    """Copy a block spec with field overrides (dataclasses.replace)."""
    fields = {f: getattr(spec, f) for f in spec.__dataclass_fields__}
    fields.update(overrides)
    return GatedBlockSpec(**fields)


def size_for_delay_budget(kind: str, max_degradation: float,
                          base: Optional[GatedBlockSpec] = None,
                          a_min: float = 0.5, a_max: float = 256.0
                          ) -> float:
    """Smallest sleep-switch area meeting a delay-degradation budget.

    Returns the area in paper units.  This is the sizing loop behind the
    paper's claim that an (up-sized) NEMS sleep switch matches CMOS block
    performance while keeping its leakage advantage.

    The degradation is not monotone in area: around the minimum size the
    virtual-rail bounce of a switching event can give the single-edge
    delay metric a transient head start (degradation even goes negative),
    and the rail's junction-cap RC adds a mid-range hump.  Sizing
    therefore bisects down from the known-good large-area side and
    returns the crossing of the ON-resistance-dominated descending
    branch — the branch the paper's sizing methodology reasons about —
    rather than trusting small-area points.
    """
    if max_degradation <= 0:
        raise DesignError("delay budget must be positive")
    if delay_degradation(kind, a_max, base) > max_degradation:
        raise DesignError(
            f"even area {a_max} units exceeds the delay budget")
    lo, hi = a_min, a_max
    for _ in range(24):
        mid = math.sqrt(lo * hi)
        if delay_degradation(kind, mid, base) <= max_degradation:
            hi = mid
        else:
            lo = mid
    return hi

"""Bank-level SRAM metrics: read/write timing, energy, retention.

Each measurement builds a bank netlist via
:func:`repro.library.sram_bank.build_bank`, warm-starts the DC solve
from the bank's stored-state vector, and runs the access transient.
All delays are referenced to the 50% rising wordline edge, matching
the single-cell conventions of :mod:`repro.library.sram_metrics`.

The ``options`` parameter reaches the transient solver directly; the
parity suite passes a fixed-step :class:`TransientOptions` so the flat
and trimmed banks integrate on the *same time grid* — since trimming
is exact (see :mod:`repro.library.sram_bank`), the two solutions then
agree to Newton tolerance rather than merely to LTE tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis import measure
from repro.analysis.options import TransientOptions
from repro.analysis.transient import transient
from repro.errors import MeasurementError
from repro.library.sram_bank import BankSpec, SramBank, build_bank
from repro.library.sram_metrics import DEFAULT_DT, SENSE_THRESHOLD


@dataclass(frozen=True)
class BankReadMetrics:
    """One read access of a bank."""

    read_delay: float        #: wordline edge -> 100 mV bitline split [s]
    sense_delay: float       #: wordline edge -> 100 mV sense-node split [s]
    replica_delay: float     #: wordline edge -> replica bitline at Vdd/2 [s]
    bitline_swing: float     #: bitline split at the end of the read window [V]
    precharge_energy: float  #: supply energy of the post-read recharge [J]
    access_energy: float     #: total supply energy over the window [J]
    n_unknowns: int


@dataclass(frozen=True)
class BankWriteMetrics:
    """One write access of a bank (flipping the probed cell 0 -> 1)."""

    write_delay: float       #: wordline edge -> storage node at 95% Vdd [s]
    bitline_swing: float     #: bitline split at the end of the window [V]
    access_energy: float     #: total supply energy over the window [J]
    n_unknowns: int


@dataclass(frozen=True)
class BankRetentionMetrics:
    """Static retention state of a bank (no access)."""

    leakage_power: float     #: supply power in standby [W]
    n_unknowns: int


def solve_bank(bank: SramBank, tstop: float, *,
               dt: float = DEFAULT_DT,
               options: Optional[TransientOptions] = None,
               backend=None):
    """Warm-started operating point + access transient for a bank."""
    op = bank.operating_point(backend=backend)
    return transient(bank.circuit, tstop, dt, options=options,
                     initial=op, layout=bank.layout, backend=backend)


def _wordline_edge(result, bank: SramBank) -> float:
    return measure.first_cross(result.t, result.voltage("wl"),
                               bank.spec.cell.vdd / 2, "rise")


def measure_bank_read(spec: BankSpec, address: Optional[int] = None, *,
                      trim: bool = True, probe_bit: int = 0,
                      dt: float = DEFAULT_DT,
                      options: Optional[TransientOptions] = None,
                      backend=None) -> BankReadMetrics:
    """Read-access metrics of the probed column.

    The probed cell stores 0, so the read discharges ``bl_sel``; the
    transient runs one precharge period past the wordline window to
    capture the bitline recharge energy.
    """
    bank = build_bank(spec, address, mode="read", trim=trim,
                      probe_bit=probe_bit)
    cell = spec.cell
    t_window = cell.t_wordline + cell.t_read
    tstop = t_window + cell.t_precharge
    result = solve_bank(bank, tstop, dt=dt, options=options,
                        backend=backend)
    t_wl = _wordline_edge(result, bank)

    split = np.abs(result.voltage(bank.nodes["blb"])
                   - result.voltage(bank.nodes["bl"]))
    try:
        t_bl = measure.first_cross(result.t, split, SENSE_THRESHOLD,
                                   "rise", after=t_wl)
    except MeasurementError as err:
        raise MeasurementError(
            f"bank ({spec.style}, {spec.rows}x{spec.cols}) never "
            f"develops a {SENSE_THRESHOLD * 1e3:.0f} mV bitline "
            f"split: {err}") from err
    sa_split = np.abs(result.voltage(bank.nodes["sa_blb"])
                      - result.voltage(bank.nodes["sa_bl"]))
    t_sa = measure.first_cross(result.t, sa_split, SENSE_THRESHOLD,
                               "rise", after=t_wl)
    t_rep = measure.first_cross(result.t,
                                result.voltage(bank.nodes["rbl"]),
                                cell.vdd / 2, "fall", after=t_wl)

    power = result.source_power("VDD")
    return BankReadMetrics(
        read_delay=t_bl - t_wl,
        sense_delay=t_sa - t_wl,
        replica_delay=t_rep - t_wl,
        bitline_swing=float(np.interp(t_window, result.t, split)),
        precharge_energy=measure.integrate(result.t, power, t_window,
                                           tstop),
        access_energy=measure.integrate(result.t, power, 0.0, tstop),
        n_unknowns=bank.n_unknowns)


def measure_bank_write(spec: BankSpec, address: Optional[int] = None, *,
                       trim: bool = True, probe_bit: int = 0,
                       dt: float = DEFAULT_DT,
                       options: Optional[TransientOptions] = None,
                       backend=None) -> BankWriteMetrics:
    """Write-access metrics: flip the probed cell from 0 to 1.

    The settle criterion is the full-rail 95% Vdd level on the rising
    storage node, so for the hybrid style the NEMS pull-up actuation
    time is included (the hidden mechanical write cost).
    """
    bank = build_bank(spec, address, mode="write", trim=trim,
                      write_value=1, probe_bit=probe_bit)
    cell = spec.cell
    tstop = cell.t_wordline + cell.t_read
    result = solve_bank(bank, tstop, dt=dt, options=options,
                        backend=backend)
    t_wl = _wordline_edge(result, bank)
    try:
        t_flip = measure.first_cross(result.t,
                                     result.voltage(bank.nodes["q"]),
                                     0.95 * cell.vdd, "rise",
                                     after=t_wl)
    except MeasurementError as err:
        raise MeasurementError(
            f"bank ({spec.style}, {spec.rows}x{spec.cols}) failed to "
            f"write within {cell.t_read * 1e9:.1f} ns: {err}") from err
    split = np.abs(result.voltage(bank.nodes["blb"])
                   - result.voltage(bank.nodes["bl"]))
    power = result.source_power("VDD")
    return BankWriteMetrics(
        write_delay=t_flip - t_wl,
        bitline_swing=float(split[-1]),
        access_energy=measure.integrate(result.t, power, 0.0, tstop),
        n_unknowns=bank.n_unknowns)


def measure_bank_retention(spec: BankSpec, *, trim: bool = True,
                           backend=None) -> BankRetentionMetrics:
    """Standby leakage power of the whole (represented) bank.

    Every source is static in retention mode, so the warm-started DC
    operating point *is* the standby state — no transient needed.  For
    the ``nems_sleep`` style the footer beam is released, so the
    virtual ground floats to its equilibrium and the figure reflects
    the sleep-mode leakage floor.
    """
    bank = build_bank(spec, mode="retention", trim=trim)
    op = bank.operating_point(backend=backend)
    return BankRetentionMetrics(
        leakage_power=float(op.source_power("VDD")),
        n_unknowns=bank.n_unknowns)

"""Variation-aware conditional keeper (the paper's ref [24]).

The Figure 9 trade-off exists because a *standard* keeper fights the
pull-down network during the entire evaluation.  Dadgour, Joshi &
Banerjee (DAC 2006) break the trade-off by splitting the keeper:

* a minimum-size keeper holds the dynamic node from the start;
* a large keeper is enabled only after a delay chain times out —
  long after a genuine evaluation would have finished — so it provides
  the late-window leakage robustness without contending with a real
  transition.

:class:`ConditionalKeeperGate` extends the standard dynamic OR gate
with the delayed branch: a series-enabled PMOS pair whose enable is an
inverted, RC-delayed copy of the clock.  The late-window noise margin
is set by the *total* keeper width, while the evaluation delay sees
only the small keeper — quantified by the ``ext_conditional_keeper``
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.mosfet import Mosfet
from repro.errors import DesignError
from repro.library.dynamic_logic import DynamicOrGate, DynamicOrSpec


@dataclass
class ConditionalKeeperSpec:
    """Parameters of the conditional-keeper branch.

    ``delay_stages`` must be odd so the enable is the *complement* of
    the delayed clock (PMOS enable: low = on).  ``c_stage`` loads each
    chain node to set the enable delay.
    """

    w_small: float = 0.12e-6
    w_large: float = 4e-6
    delay_stages: int = 3
    c_stage: float = 8e-15
    w_chain_n: float = 0.4e-6
    w_chain_p: float = 0.8e-6

    def __post_init__(self):
        if self.delay_stages < 1 or self.delay_stages % 2 == 0:
            raise DesignError(
                f"delay_stages must be odd and positive, got "
                f"{self.delay_stages}")
        if self.w_small <= 0 or self.w_large <= 0:
            raise DesignError("keeper widths must be positive")


class ConditionalKeeperGate(DynamicOrGate):
    """A dynamic OR gate with the split (conditional) keeper of [24].

    The base gate's keeper is set to ``w_small``; the delayed branch is
    MKL (gate = out, like a keeper) in series with MKEN (gate = the
    inverted delayed clock ``ken``).
    """

    def __init__(self, spec: DynamicOrSpec,
                 keeper: Optional[ConditionalKeeperSpec] = None):
        self.keeper_spec = keeper or ConditionalKeeperSpec()
        spec.w_keeper = self.keeper_spec.w_small
        super().__init__(spec)
        self._add_conditional_branch()

    def _add_conditional_branch(self) -> None:
        spec = self.spec
        ks = self.keeper_spec
        c = self.circuit

        # Inverter delay chain from the clock: odd length -> 'ken' is
        # the complement of a delayed clock (high during precharge,
        # falling a while after the evaluation edge).
        prev = "clk"
        for i in range(ks.delay_stages):
            node = f"ken" if i == ks.delay_stages - 1 else f"kd{i}"
            c.add(Mosfet(f"MKDP{i}", node, prev, "vdd", spec.pmos,
                         ks.w_chain_p))
            c.add(Mosfet(f"MKDN{i}", node, prev, "0", spec.nmos,
                         ks.w_chain_n))
            c.capacitor(f"CKD{i}", node, "0", ks.c_stage)
            prev = node

        # The large keeper branch: enabled (MKEN on) only once 'ken'
        # has fallen, i.e. after the delay-chain timeout.
        c.add(Mosfet("MKEN", "kint", "ken", "vdd", spec.pmos,
                     ks.w_large))
        self.large_keeper = Mosfet("MKL", "dyn", "out", "kint",
                                   spec.pmos, ks.w_large)
        c.add(self.large_keeper)

    @property
    def keeper_width(self) -> float:
        """Total late-window keeper width (small + large) [m].

        This is the width the static noise-margin criterion sees: once
        the delayed branch is enabled, both keepers hold the node.
        """
        return self.keeper.width + self.large_keeper.width

    def set_keeper_width(self, width: float) -> None:
        """Resize the *large* branch, keeping the small keeper minimal."""
        small = self.keeper.width
        if width <= small:
            raise DesignError(
                f"total keeper width {width} must exceed the small "
                f"keeper {small}")
        self.large_keeper.width = width - small
        self.circuit["MKEN"].width = width - small

    def enable_delay_estimate(self) -> float:
        """Crude RC estimate of the delayed-enable timeout [s]."""
        ks = self.keeper_spec
        # Each stage drives c_stage plus the next stage's gate.
        r_stage = 1.2 / (ks.w_chain_n * 1e3)  # ~1 mA/um drive at Vdd
        c_node = ks.c_stage + (ks.w_chain_n + ks.w_chain_p) \
            * self.spec.nmos.c_gate_per_width
        return ks.delay_stages * r_stage * c_node


def build_conditional_keeper_gate(
        fan_in: int, fan_out: float,
        keeper: Optional[ConditionalKeeperSpec] = None
        ) -> ConditionalKeeperGate:
    """Convenience builder mirroring ``build_dynamic_or``."""
    spec = DynamicOrSpec(fan_in=fan_in, fan_out=fan_out, style="cmos")
    return ConditionalKeeperGate(spec, keeper)

"""Multi-stage domino pipelines of dynamic OR gates.

Wide fan-in dynamic OR gates are used as stages of domino pipelines
(the application context of the paper's Section 4).  This builder
chains :class:`~repro.library.dynamic_logic.DynamicOrGate` stages on a
shared clock, with each stage's output driving one input of the next —
the configuration in which the monotonicity property matters and in
which the hybrid gate's mechanical closing overlaps upstream
evaluation.

The pipeline exposes end-to-end latency measurement (clock edge to the
last stage's output) for both gate styles, quantifying how the
NEMFET's mechanical delay amortises across a chain: only the stages
whose inputs arrive during evaluation pay it, and deeper pipelines pay
it once per stage *in parallel with* the electrical propagation of the
previous stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis import measure
from repro.analysis.transient import transient
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import Mosfet
from repro.devices.nemfet import Nemfet
from repro.errors import DesignError, MeasurementError
from repro.library.dynamic_logic import DynamicOrSpec


@dataclass
class DominoPipelineSpec:
    """A chain of ``stages`` dynamic OR gates on one clock."""

    stages: int = 3
    fan_in: int = 4
    style: str = "cmos"
    t_precharge: float = 1.2e-9
    t_eval: float = 4.0e-9
    gate: DynamicOrSpec = None  # template; built in __post_init__

    def __post_init__(self):
        if self.stages < 1:
            raise DesignError(
                f"pipeline needs at least one stage, got {self.stages}")
        if self.gate is None:
            self.gate = DynamicOrSpec(
                fan_in=self.fan_in, fan_out=0, style=self.style,
                t_precharge=self.t_precharge, t_eval=self.t_eval)

    @property
    def period(self) -> float:
        return self.t_precharge + self.t_eval


class DominoPipeline:
    """A built pipeline with measurement helpers.

    Stage ``s`` uses nodes ``s{s}_dyn``, ``s{s}_out`` etc.; the primary
    input drives input 0 of stage 0, and each stage's output drives
    input 0 of the next.  Unused OR inputs are tied low.
    """

    def __init__(self, spec: DominoPipelineSpec):
        self.spec = spec
        self.circuit = Circuit(
            f"domino_{spec.style}_{spec.stages}x{spec.fan_in}")
        self._build()

    def _build(self) -> None:
        spec = self.spec
        g = spec.gate
        c = self.circuit
        vdd = g.vdd

        c.vsource("VDD", "vdd", "0", vdd)
        self.clock_source = c.vsource(
            "VCLK", "clk", "0",
            Pulse(0.0, vdd, td=g.t_precharge, tr=20e-12, tf=20e-12,
                  pw=g.t_eval - 40e-12, per=spec.period))
        # Primary input: rises right at the evaluation edge — the
        # monotonic-domino worst case for stage 0.
        self.input_source = c.vsource(
            "VIN", "s0_in0", "0",
            Pulse(0.0, vdd, td=g.t_precharge + 60e-12, tr=30e-12,
                  pw=g.t_eval, per=None))
        c.vsource("VLOW", "tied_low", "0", 0.0)

        for s in range(spec.stages):
            prefix = f"s{s}_"
            dyn, out, foot = (prefix + n for n in ("dyn", "out", "foot"))
            c.add(Mosfet(prefix + "PRE", dyn, "clk", "vdd", g.pmos,
                         g.w_precharge))
            keeper_w = g.w_keeper if g.w_keeper is not None \
                else g.default_keeper_width()
            c.add(Mosfet(prefix + "KEEP", dyn, out, "vdd", g.pmos,
                         keeper_w))
            for i in range(g.fan_in):
                gate_node = (prefix + f"in{i}" if (s == 0 and i == 0)
                             else f"s{s - 1}_out" if i == 0
                             else "tied_low")
                if g.style == "cmos":
                    c.add(Mosfet(prefix + f"PD{i}", dyn, gate_node,
                                 foot, g.nmos, g.w_pulldown))
                else:
                    mid = prefix + f"mid{i}"
                    c.add(Mosfet(prefix + f"PD{i}", dyn, gate_node,
                                 mid, g.nmos, g.w_pulldown))
                    c.add(Nemfet(prefix + f"NEM{i}", mid, gate_node,
                                 foot, g.nems, g.w_nems))
            c.add(Mosfet(prefix + "FOOT", foot, "clk", "0", g.nmos,
                         g.w_footer))
            c.add(Mosfet(prefix + "INVP", out, dyn, "vdd", g.pmos,
                         g.w_inv_p))
            c.add(Mosfet(prefix + "INVN", out, dyn, "0", g.nmos,
                         g.w_inv_n))

    @property
    def output_node(self) -> str:
        return f"s{self.spec.stages - 1}_out"

    def latency(self, dt: float = 5e-12) -> float:
        """Clock-to-final-output latency through the whole chain [s]."""
        spec = self.spec
        result = transient(self.circuit, spec.period - 0.1e-9, dt)
        half = spec.gate.vdd / 2
        try:
            return measure.propagation_delay(
                result.t, result.voltage("clk"),
                result.voltage(self.output_node), level_from=half,
                level_to=half, edge_from="rise", edge_to="rise")
        except MeasurementError as err:
            raise MeasurementError(
                f"pipeline '{self.circuit.title}' did not propagate "
                f"within the evaluation phase: {err}") from err


def build_pipeline(spec: DominoPipelineSpec) -> DominoPipeline:
    """Construct a domino pipeline from its specification."""
    return DominoPipeline(spec)

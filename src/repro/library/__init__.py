"""Hybrid NEMS-CMOS circuit library: the paper's three applications.

* :mod:`repro.library.dynamic_logic` / :mod:`repro.library.gate_metrics` —
  wide fan-in dynamic OR gates (Section 4, Figures 8-12);
* :mod:`repro.library.sram` / :mod:`repro.library.sram_metrics` — SRAM
  cells (Section 5, Figures 13-15);
* :mod:`repro.library.sleep` — sleep transistors (Section 6, Figures
  16-17);
* :mod:`repro.library.metrics` — shared figures of merit (Equation 1).
"""

from repro.library.dynamic_logic import DynamicOrSpec, DynamicOrGate, build_dynamic_or
from repro.library.keeper import ConditionalKeeperGate, ConditionalKeeperSpec
from repro.library.domino import DominoPipelineSpec, DominoPipeline, build_pipeline
from repro.library.sram import SramSpec, SramCell, build_read_harness
from repro.library.metrics import power_delay_product

__all__ = [
    "DynamicOrSpec",
    "DynamicOrGate",
    "build_dynamic_or",
    "ConditionalKeeperGate",
    "ConditionalKeeperSpec",
    "DominoPipelineSpec",
    "DominoPipeline",
    "build_pipeline",
    "SramSpec",
    "SramCell",
    "build_read_harness",
    "power_delay_product",
]

"""Shared six-transistor bitcell and precharge construction.

Single source of truth for instantiating the Figure 13 cell topology
anywhere it appears — the single-cell read harness
(:mod:`repro.library.sram`), the explicit benchmark column
(:mod:`repro.library.sram_array`) and the hierarchical bank builder
(:mod:`repro.library.sram_bank`) all emit their transistors through
:func:`add_bitcell` / :func:`add_precharge`, so a sizing or flavour
change propagates to every harness at once.

The builders carry a ``scale`` factor because the bank's netlist
trimmer represents ``k`` *identical* unaccessed cells as one aggregate
cell.  ``k`` parallel identical subcircuits whose boundary nodes are
shared are exactly equivalent to a single copy with every conductance
and capacitance multiplied by ``k``:

* MOSFETs — every current and charge term is linear in the drawn
  width, so the aggregate device just has width ``k * W``;
* NEMFETs — channel current, floor leakage and junction charge scale
  with width, but the beam mechanics and the air-gap gate charge scale
  with the actuation *area*.  :func:`scale_nemfet_params` therefore
  multiplies ``area``, ``stiffness`` and ``mass`` together by ``k``:
  the normalised beam dynamics (``omega0``, the force balance, pull-in
  and pull-out voltages) are invariant under that substitution while
  the gate charge ``eps0 * area / g_eff`` picks up the factor ``k`` —
  ``k`` beams moving in lock-step are replaced by one ``k``-fold beam
  with machine-precision equivalence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.circuit.netlist import Circuit
from repro.devices.mosfet import Mosfet
from repro.devices.nemfet import Nemfet, NemfetParams
from repro.errors import DesignError

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids a cycle)
    from repro.library.sram import SramSpec

#: Cell transistor emission order (stable node-discovery order).
CELL_ROLES = ("PL", "NL", "PR", "NR", "AL", "AR")


def scale_nemfet_params(params: NemfetParams,
                        scale: float) -> NemfetParams:
    """Parameter set of a ``scale``-fold aggregate NEMFET.

    Multiplying ``area``, ``stiffness`` and ``mass`` by the same factor
    leaves every normalised quantity (``omega0``, the electrostatic /
    penalty force balance, pull-in and pull-out voltages) unchanged
    while the absolute gate charge scales — exactly the behaviour of
    ``scale`` identical beams actuating in lock-step.
    """
    if scale == 1.0:
        return params
    if scale <= 0:
        raise DesignError(f"aggregate scale must be positive, "
                          f"got {scale}")
    return replace(params, area=params.area * scale,
                   stiffness=params.stiffness * scale,
                   mass=params.mass * scale)


def contact_devices(stored_one: bool) -> frozenset:
    """Cell transistors whose beams start in contact for a stored bit.

    The devices that *hold* the state conduct: storing a zero
    (``QL = 0, QR = 1``) keeps NL (gate at QR, high) and PR (PMOS gate
    at QL, low) on; storing a one mirrors to NR and PL.
    """
    return frozenset({"NR", "PL"} if stored_one else {"NL", "PR"})


def add_bitcell(circuit: Circuit, spec: SramSpec, *,
                q: str, qb: str, bl: str, blb: str, wl: str,
                vdd: str = "vdd", vss: str = "0",
                name: Callable[[str], str] = lambda role: role,
                scale: float = 1.0,
                stored_one: bool = False,
                open_loop: bool = False,
                set_contacts: bool = True) -> None:
    """Emit one (possibly aggregate) six-transistor cell.

    ``name`` maps a device role (PL/NL/PR/NR/AL/AR) to the instance
    name.  ``scale`` builds the ``scale``-fold aggregate cell (see the
    module docstring).  ``open_loop`` pins the cross-coupled pair by
    driving each inverter from the *data rail* of the stored value
    instead of the opposite storage node — the single-valued DC
    configuration the explicit benchmark column uses; closed-loop cells
    are genuinely bistable and rely on a warm-started solve (plus
    ``set_contacts`` beam initialisation for NEMS flavours) to select
    the stored state.
    """
    if open_loop:
        data = vdd if stored_one else vss
        data_b = vss if stored_one else vdd
        gate_left, gate_right = data_b, data
        contacts = frozenset()
    else:
        gate_left, gate_right = qb, q
        contacts = (contact_devices(stored_one) if set_contacts
                    else frozenset())

    def emit(role: str, drain: str, gate: str, source: str) -> None:
        kind, params = spec.flavor(role)
        width = spec.width_of(role) * scale
        if kind == "nemfet":
            circuit.add(Nemfet(name(role), drain, gate, source,
                               scale_nemfet_params(params, scale),
                               width,
                               initial_contact=role in contacts))
        else:
            circuit.add(Mosfet(name(role), drain, gate, source,
                               params, width))

    emit("PL", q, gate_left, vdd)
    emit("NL", q, gate_left, vss)
    emit("PR", qb, gate_right, vdd)
    emit("NR", qb, gate_right, vss)
    emit("AL", bl, wl, q)
    emit("AR", blb, wl, qb)


def add_precharge(circuit: Circuit, spec: SramSpec, *,
                  bl: str, blb: str,
                  name: Callable[[str], str] = lambda side: f"MPRE{side}",
                  vdd: str = "vdd",
                  pre: str = "pre",
                  scale: float = 1.0,
                  r_resistive: Optional[float] = None) -> None:
    """Emit a bitline precharge pair.

    The default is the active form: a PMOS pair of width
    ``spec.w_precharge * scale`` gated by ``pre`` (low = precharging).
    ``r_resistive`` selects the passive form instead — a resistive pull
    to VDD per bitline (value divided by ``scale``), which is what the
    DC-only explicit column uses to keep its system single-valued.
    """
    if r_resistive is not None:
        circuit.resistor(name("L"), vdd, bl, r_resistive / scale)
        circuit.resistor(name("R"), vdd, blb, r_resistive / scale)
        return
    width = spec.w_precharge * scale
    circuit.add(Mosfet(name("L"), bl, pre, vdd, spec.pmos, width))
    circuit.add(Mosfet(name("R"), blb, pre, vdd, spec.pmos, width))

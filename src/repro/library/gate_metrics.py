"""Figures of merit for dynamic OR gates: delay, power, noise margin.

Measurement protocols (identical for CMOS and hybrid gates so ratios are
meaningful):

* **worst-case delay** — domino convention: a single active input settles
  during precharge; delay is measured from the 50% rising clock edge to
  the 50% rising output edge.  A single input is the worst case for an
  OR gate because one pull-down path fights the keeper alone.
* **switching power** — supply energy over one complete switching event
  (evaluation discharge, keeper contention, and the following precharge
  recovery), divided by the clock period.
* **leakage power** — average supply power late in an idle evaluation
  phase (all inputs low, dynamic node held by the keeper).
* **noise margin** — the classic keeper-contention criterion of ref
  [24]: the common input noise level at which the pull-down network
  current through the dynamic node equals the maximum keeper current at
  the output-inverter trip point.  A transient verification variant
  drives all inputs with a noise step and checks whether the output
  stays low.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.analysis import measure
from repro.analysis.ensemble import EnsembleSpec, ensemble_transient
from repro.analysis.options import TransientOptions
from repro.analysis.transient import transient
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import MosfetParams, mosfet_current
from repro.devices.nemfet import NemfetParams
from repro.errors import AnalysisError, DesignError, MeasurementError
from repro.library.dynamic_logic import DynamicOrGate

#: Default transient step for gate simulations [s].
DEFAULT_DT = 4e-12


def default_transient_options(style: str) -> TransientOptions:
    """Tuned step-control defaults for gate transients.

    Pure-CMOS gates integrate with the trapezoidal rule: it is second
    order, so the LTE controller rides switching edges and settling
    tails at several times the backward-Euler step for the same
    tolerance, and the waveforms are smooth enough that trap's weak
    damping never matters (the step after every source corner is forced
    to backward Euler anyway).  Hybrid gates keep L-stable backward
    Euler for the NEMS pull-in/release events.  The tolerance is sized
    for figure-level accuracy: on the Figure 9 keeper sweep it tracks a
    dense-reference delay to <0.5% where the legacy iteration heuristic
    erred by ~2.5% — using less than half the accepted steps.
    """
    if style == "cmos":
        return TransientOptions(method="trap", lte_reltol=2e-2,
                                lte_max_dt_factor=256.0)
    return TransientOptions(lte_reltol=1e-2)


def comparison_transient_options(style: str) -> TransientOptions:
    """Tighter tolerances for *cross-style* delay/power comparisons.

    The CMOS-vs-hybrid gaps the comparison figures resolve (Figures
    10-12) are only a few percent at high fan-out, so the styles must be
    integrated to well under that: 5e-3 holds each style's delay to
    ~0.6% of a dense reference, an order below the smallest gap.  The
    per-style method split matches :func:`default_transient_options`.
    """
    if style == "cmos":
        return TransientOptions(method="trap", lte_reltol=5e-3,
                                lte_max_dt_factor=256.0)
    return TransientOptions(lte_reltol=5e-3)


@dataclass(frozen=True)
class GateMetrics:
    """Characterisation summary of one dynamic OR gate configuration."""

    delay: float             #: worst-case clk->out delay [s]
    switching_power: float   #: [W] at the gate's own clock period
    switching_energy: float  #: [J] per switching event
    leakage_power: float     #: [W] in the idle evaluation state
    noise_margin: float      #: [V] static keeper-contention margin


def inverter_trip_voltage(nmos: MosfetParams, w_n: float,
                          pmos: MosfetParams, w_p: float,
                          vdd: float) -> float:
    """Input voltage where the static inverter output crosses itself.

    Solved from ``I_N(v, v) = |I_P(v, v)|`` — the metastable point of the
    voltage transfer curve.
    """
    def balance(v: float) -> float:
        i_n = mosfet_current(nmos, w_n, v, v, 0.0)[0]
        i_p = mosfet_current(pmos, w_p, v, v, vdd)[0]
        return i_n + i_p  # i_p is negative when the PMOS conducts

    return float(optimize.brentq(balance, 1e-4, vdd - 1e-4, xtol=1e-6))


def _pulldown_path_current(gate: DynamicOrGate, v_noise: float,
                           v_dyn: float, pd_shift: float = 0.0) -> float:
    """Current one pull-down path sinks from the dynamic node [A].

    For the hybrid gate this solves the series NMOS + NEMFET divider for
    the intermediate node voltage; the NEMFET's beam position follows the
    static hysteresis branch for the applied input level (released below
    pull-in, closed above — which is what bounds the hybrid gate's noise
    margin at the pull-in voltage).
    """
    spec = gate.spec
    nmos = spec.nmos.with_vth_shift(pd_shift) if pd_shift else spec.nmos

    if spec.style == "cmos":
        return mosfet_current(nmos, spec.w_pulldown, v_noise, v_dyn,
                              0.0)[0]

    nems: NemfetParams = spec.nems
    branch = "up" if v_noise < nems.pull_in_voltage else "down"

    def mismatch(v_mid: float) -> float:
        i_top = mosfet_current(nmos, spec.w_pulldown, v_noise, v_dyn,
                               v_mid)[0]
        i_bot = nems.static_current(spec.w_nems, v_noise, v_mid, 0.0,
                                    branch=branch)
        return i_top - i_bot

    lo, hi = 0.0, max(v_dyn, 1e-3)
    f_lo, f_hi = mismatch(lo), mismatch(hi)
    # mismatch() decreases with v_mid (NMOS weakens, NEMFET strengthens).
    if f_lo <= 0.0:
        # The NMOS limits the path even with its source grounded.
        return mosfet_current(nmos, spec.w_pulldown, v_noise, v_dyn,
                              lo)[0]
    if f_hi >= 0.0:
        # The NEMFET limits the path even with the full drop across it.
        return nems.static_current(spec.w_nems, v_noise, hi, 0.0,
                                   branch=branch)
    v_mid = optimize.brentq(mismatch, lo, hi, xtol=1e-9)
    return mosfet_current(nmos, spec.w_pulldown, v_noise, v_dyn,
                          float(v_mid))[0]


def noise_margin_static(gate: DynamicOrGate, pd_shift: float = 0.0,
                        keeper_shift: float = 0.0) -> float:
    """Static noise margin [V] by the keeper-contention criterion.

    Finds the common input level at which the total pull-down current at
    the inverter trip point equals the fully-on keeper current.  ``pd_shift``
    (negative = leaky) and ``keeper_shift`` model variation corners.
    """
    spec = gate.spec
    vdd = spec.vdd
    trip = inverter_trip_voltage(spec.nmos, spec.w_inv_n, spec.pmos,
                                 spec.w_inv_p, vdd)
    keeper_params = (spec.pmos.with_vth_shift(keeper_shift)
                     if keeper_shift else spec.pmos)
    i_keeper = abs(mosfet_current(keeper_params, gate.keeper_width,
                                  0.0, trip, vdd)[0])

    def excess(v_noise: float) -> float:
        i_path = _pulldown_path_current(gate, v_noise, trip, pd_shift)
        return spec.fan_in * i_path - i_keeper

    if excess(vdd) < 0:
        return vdd  # keeper wins even at full-rail noise
    if excess(0.0) > 0:
        return 0.0  # leakage alone defeats the keeper
    return float(optimize.brentq(excess, 0.0, vdd, xtol=1e-5))


def noise_margin_transient(gate: DynamicOrGate, v_noise: float,
                           dt: float = DEFAULT_DT,
                           options: Optional[TransientOptions] = None
                           ) -> bool:
    """Whether the gate survives a noise step of ``v_noise`` volts.

    All inputs step to ``v_noise`` at the start of evaluation; returns
    True when the output stays below the half-rail for the whole phase.
    """
    spec = gate.spec
    if options is None:
        options = default_transient_options(spec.style)
    rise = spec.t_precharge + 50e-12
    for src in gate.input_sources:
        src.value = Pulse(0.0, v_noise, td=rise, tr=30e-12,
                          pw=spec.t_eval, per=None)
    try:
        result = transient(gate.circuit, spec.t_precharge + spec.t_eval,
                           dt, options=options)
    finally:
        gate.set_inputs_static([0.0] * spec.fan_in)
    out = result.voltage("out")
    window = result.t >= rise
    return bool((out[window] < spec.vdd / 2).all())


def measure_worst_case_delay(gate: DynamicOrGate,
                             dt: float = DEFAULT_DT,
                             options: Optional[TransientOptions] = None
                             ) -> float:
    """Worst-case evaluation delay [s]: clock edge to output edge."""
    spec = gate.spec
    if options is None:
        options = default_transient_options(spec.style)
    gate.set_inputs_domino([0])
    try:
        result = transient(gate.circuit, spec.period, dt, options=options)
    finally:
        gate.set_inputs_static([0.0] * spec.fan_in)
    half = spec.vdd / 2
    try:
        return measure.propagation_delay(
            result.t, result.voltage("clk"), result.voltage("out"),
            level_from=half, level_to=half, edge_from="rise",
            edge_to="rise")
    except MeasurementError as err:
        raise MeasurementError(
            f"gate '{gate.circuit.title}' failed to evaluate: {err}"
        ) from err


def measure_worst_case_delays(gate: DynamicOrGate,
                              espec: EnsembleSpec,
                              dt: float = DEFAULT_DT,
                              options: Optional[TransientOptions] = None
                              ) -> np.ndarray:
    """Worst-case evaluation delays of a whole ensemble [s].

    One lock-step stacked transient (see
    :mod:`repro.analysis.ensemble`) replaces ``espec.samples`` scalar
    runs of :func:`measure_worst_case_delay`; returns one delay per
    sample, NaN for samples that failed to solve or never evaluated
    (callers filter, mirroring the engine's per-job failure handling).
    """
    spec = gate.spec
    if options is None:
        options = default_transient_options(spec.style)
    gate.set_inputs_domino([0])
    try:
        result = ensemble_transient(gate.circuit, espec, spec.period,
                                    dt, options=options)
    finally:
        gate.set_inputs_static([0.0] * spec.fan_in)
    half = spec.vdd / 2
    delays = np.full(espec.samples, np.nan)
    for s in range(espec.samples):
        try:
            res = result.sample(s)
            delays[s] = measure.propagation_delay(
                res.t, res.voltage("clk"), res.voltage("out"),
                level_from=half, level_to=half, edge_from="rise",
                edge_to="rise")
        except (AnalysisError, MeasurementError):
            continue
    return delays


def measure_switching_power(gate: DynamicOrGate,
                            dt: float = DEFAULT_DT,
                            options: Optional[TransientOptions] = None
                            ) -> tuple:
    """Switching power [W] and per-event energy [J].

    Simulates one full switching event plus the following precharge
    recovery: the energy window runs from the evaluation edge to the end
    of the next precharge phase, capturing keeper contention, the output
    transition, and the dynamic-node recharge.
    """
    spec = gate.spec
    if options is None:
        options = default_transient_options(spec.style)
    gate.set_inputs_domino([0])
    tstop = spec.period + spec.t_precharge
    try:
        result = transient(gate.circuit, tstop, dt, options=options)
    finally:
        gate.set_inputs_static([0.0] * spec.fan_in)
    energy = measure.supply_energy(result, "VDD", spec.t_precharge, tstop)
    return energy / spec.period, energy


def measure_leakage_power(gate: DynamicOrGate,
                          dt: float = DEFAULT_DT,
                          options: Optional[TransientOptions] = None
                          ) -> float:
    """Idle evaluation-phase leakage power [W] (all inputs low).

    Settles the gate through precharge into the evaluation phase with a
    transient run, then polishes to a true DC point with the clock held
    high — so sub-nanowatt leakage levels (the hybrid gate) are resolved
    exactly instead of being buried in integration noise.
    """
    from repro.analysis.dc import operating_point

    spec = gate.spec
    if options is None:
        options = default_transient_options(spec.style)
    gate.set_inputs_static([0.0] * spec.fan_in)
    t_settle = spec.t_precharge + 0.5 * spec.t_eval
    result = transient(gate.circuit, t_settle, dt, options=options)
    saved_clock = gate.clock_source.value
    try:
        gate.clock_source.value = spec.vdd
        op = operating_point(gate.circuit, x0=result.final().x,
                             layout=result.layout)
    finally:
        gate.clock_source.value = saved_clock
    return op.source_power("VDD")


def characterize(gate: DynamicOrGate, dt: float = DEFAULT_DT,
                 options: Optional[TransientOptions] = None
                 ) -> GateMetrics:
    """Full characterisation of one gate configuration."""
    delay = measure_worst_case_delay(gate, dt, options)
    p_sw, e_sw = measure_switching_power(gate, dt, options)
    p_leak = measure_leakage_power(gate, dt, options)
    nm = noise_margin_static(gate)
    return GateMetrics(delay=delay, switching_power=p_sw,
                       switching_energy=e_sw, leakage_power=p_leak,
                       noise_margin=nm)


def max_functional_keeper_width(gate: DynamicOrGate,
                                contention_ratio: float = 0.8) -> float:
    """Largest keeper the gate can still evaluate against [m].

    Standard keeper-ratio constraint: the fully-on keeper current at the
    inverter trip point must not exceed ``contention_ratio`` times the
    current a single active pull-down path sinks there, or the worst-case
    (single-input) evaluation stalls.
    """
    spec = gate.spec
    trip = inverter_trip_voltage(spec.nmos, spec.w_inv_n, spec.pmos,
                                 spec.w_inv_p, spec.vdd)
    i_path = _pulldown_path_current(gate, spec.vdd, trip)
    i_keeper_per_width = abs(
        mosfet_current(spec.pmos, 1.0, 0.0, trip, spec.vdd)[0])
    return contention_ratio * i_path / i_keeper_per_width


def size_keeper_for_noise_margin(gate: DynamicOrGate, target: float,
                                 w_min: float = 0.05e-6,
                                 w_max: Optional[float] = None,
                                 pd_shift: float = 0.0,
                                 strict: bool = False) -> float:
    """Smallest keeper width meeting a static noise-margin target [m].

    Binary search over the keeper width, bounded above by the functional
    keeper-ratio limit (see :func:`max_functional_keeper_width`) so the
    returned design can always evaluate.  When the target is unreachable
    within that bound the bound itself is returned — the gate gets the
    best noise margin it can still function with — unless ``strict`` is
    set, in which case :class:`DesignError` is raised.  This is the
    design loop the paper's Figure 9 trade-off curve sweeps.
    """
    cap = max_functional_keeper_width(gate)
    hi_limit = cap if w_max is None else min(w_max, cap)
    if hi_limit <= w_min:
        raise DesignError(
            f"functional keeper bound {hi_limit * 1e6:.2f} um is below "
            f"the minimum width {w_min * 1e6:.2f} um")
    original = gate.keeper_width
    try:
        gate.set_keeper_width(hi_limit)
        if noise_margin_static(gate, pd_shift=pd_shift) < target:
            if strict:
                raise DesignError(
                    f"noise margin target {target:.3f} V unreachable "
                    f"within the functional keeper bound "
                    f"{hi_limit * 1e6:.2f} um")
            return hi_limit
        gate.set_keeper_width(w_min)
        if noise_margin_static(gate, pd_shift=pd_shift) >= target:
            return w_min
        lo, hi = w_min, hi_limit
        for _ in range(50):
            mid = math.sqrt(lo * hi)
            gate.set_keeper_width(mid)
            if noise_margin_static(gate, pd_shift=pd_shift) >= target:
                hi = mid
            else:
                lo = mid
        return hi
    finally:
        gate.set_keeper_width(original)

"""Array-level SRAM effects: bitline leakage and access-device choices.

Section 5.1 of the paper argues that read latency degrades with scaling
because "the higher leakage current of OFF access transistors (in other
cells that are connected to the BLB) makes it tougher for the access
transistors to create the necessary voltage difference for sense
amplifiers".  This module makes that argument measurable:

* :func:`build_array_read_harness` attaches the aggregated OFF access
  transistors of the other ``rows - 1`` cells to both bitlines (lumped
  as one wide device per bitline, the standard bitline-leakage model),
  with the worst-case data pattern — every unselected cell on the
  *high-going* bitline stores a zero, so its leakage fights the
  developing differential;
* :class:`NemsAccessSramSpec` builds the variant the paper explicitly
  rejects ("replacing access transistors with NEMS devices is not a
  good idea because of their huge impact on latency"): reads must wait
  for the access beams to actuate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.circuit.mna import SystemLayout
from repro.circuit.netlist import Circuit
from repro.devices.mosfet import Mosfet
from repro.errors import DesignError
from repro.library.sram import (
    SramCell,
    SramSpec,
    build_read_harness,
)
from repro.library.sram_cells import add_bitcell, add_precharge


@dataclass
class ArraySpec:
    """A column of ``rows`` cells sharing one bitline pair."""

    cell: SramSpec = field(default_factory=SramSpec)
    rows: int = 128
    #: Extra bitline capacitance per row [F] (wire + drain junctions).
    c_bitline_per_row: float = 0.25e-15

    def __post_init__(self):
        if self.rows < 1:
            raise DesignError(f"need at least one row, got {self.rows}")


def build_array_read_harness(spec: ArraySpec,
                             leaker_vth_shift: float = 0.0) -> SramCell:
    """Read harness with the unselected rows' bitline leakage attached.

    The ``rows - 1`` OFF access transistors per bitline are lumped into
    a single wide device (gate grounded).  On the BLB side (which must
    stay high during a read of the stored zero) the leakers' sources sit
    at ground — the worst-case pattern — so their subthreshold current
    directly erodes the sense differential.  ``leaker_vth_shift``
    models a leaky process corner (negative = leakier).
    """
    # Clone the cell spec (preserving subclass flavour overrides) with
    # the bitline capacitance grown to the column height.
    cell_spec = type(spec.cell)(**{f: getattr(spec.cell, f)
                                   for f in SramSpec.__dataclass_fields__})
    cell_spec.c_bitline = (spec.cell.c_bitline
                           + spec.rows * spec.c_bitline_per_row)
    cell = SramCell(cell_spec)

    n_leakers = spec.rows - 1
    if n_leakers > 0:
        w_lump = n_leakers * cell_spec.w_access
        params = cell_spec.nmos.with_vth_shift(leaker_vth_shift) \
            if leaker_vth_shift else cell_spec.nmos
        # Unselected cells storing 0 on each bitline: OFF access
        # devices from the (high) bitline into grounded storage nodes.
        cell.circuit.add(Mosfet("MLEAKL", "bl", "0", "0", params,
                                w_lump))
        cell.circuit.add(Mosfet("MLEAKR", "blb", "0", "0", params,
                                w_lump))
    return cell


def array_read_latency(spec: ArraySpec, dt: float = 4e-12,
                       leaker_vth_shift: float = 0.0) -> float:
    """Read latency of the selected cell inside the column [s]."""
    from repro.analysis import measure
    from repro.analysis.transient import transient
    from repro.library.sram_metrics import SENSE_THRESHOLD
    import numpy as np

    cell = build_array_read_harness(spec, leaker_vth_shift)
    cspec = cell.spec
    tstop = cspec.t_wordline + cspec.t_read
    result = transient(cell.circuit, tstop, dt)
    t_wl = measure.first_cross(result.t, result.voltage("wl"),
                               cspec.vdd / 2, "rise")
    split = np.abs(result.voltage("blb") - result.voltage("bl"))
    t_sense = measure.first_cross(result.t, split, SENSE_THRESHOLD,
                                  "rise", after=t_wl)
    return t_sense - t_wl


@dataclass
class ExplicitColumn:
    """An unlumped column: every cell instantiated, shared bitlines.

    Unlike :func:`build_array_read_harness` (which lumps the unselected
    rows into one wide leaker, keeping the unknown count tiny), this
    netlist carries two storage nodes per row — the MNA system grows as
    ``n ~ 2 * rows`` — which is what the linear-solver scaling work
    (dense vs sparse backends) needs to measure.
    """

    circuit: Circuit
    rows: int
    n_unknowns: int


def build_explicit_column(rows: int,
                          spec: Optional[SramSpec] = None,
                          r_precharge: float = 10e3) -> ExplicitColumn:
    """Build a DC-solvable column of ``rows`` explicit cells.

    Row 0 is the accessed row (wordline high); every other row's access
    devices are gated off.  Each cell's stored bit alternates down the
    column and is pinned by driving the cross-coupled pair open-loop
    (the feedback gate sits on the driven data rail instead of the
    opposite storage node), which keeps the DC problem single-valued:
    the benchmark then times linear algebra, not bistability
    continuation.  The bitlines see every row's access-device loading
    plus a resistive precharge pull to VDD — the worst-case bitline
    leakage picture of Section 5.1 at full array height.
    """
    if rows < 1:
        raise DesignError(f"need at least one row, got {rows}")
    spec = spec or SramSpec()
    c = Circuit(f"column_{rows}x")
    vdd = spec.vdd
    c.vsource("VDD", "vdd", "0", vdd)
    c.vsource("VWL", "wl", "0", vdd)      # row 0 selected
    add_precharge(c, spec, bl="bl", blb="blb",
                  name=lambda side: f"RPRE{side}",
                  r_resistive=r_precharge)
    c.capacitor("CBL", "bl", "0", spec.c_bitline)
    c.capacitor("CBLB", "blb", "0", spec.c_bitline)
    for i in range(rows):
        # Each cell's stored bit alternates down the column; the
        # open-loop form pins the inverter gates to the data rails.
        add_bitcell(c, spec, q=f"q{i}", qb=f"qb{i}", bl="bl",
                    blb="blb", wl="wl" if i == 0 else "0",
                    name=lambda role, i=i: f"{role}{i}",
                    stored_one=(i % 2 == 0), open_loop=True)
    layout = SystemLayout(c)
    return ExplicitColumn(circuit=c, rows=rows, n_unknowns=layout.n)


class NemsAccessSramSpec(SramSpec):
    """The rejected design: NEMS access transistors (AL/AR).

    Inherits the hybrid cell's NEMS cross-coupled devices and replaces
    the access transistors too, so a read must first actuate the access
    beams mechanically.
    """

    def flavor(self, device: str):
        if device in ("AL", "AR"):
            return ("nemfet", self.nems_n)
        return super().flavor(device)


def nems_access_spec(**overrides) -> NemsAccessSramSpec:
    """Build the all-NEMS-access variant (hybrid cell plus NEMS access)."""
    spec = NemsAccessSramSpec(variant="hybrid", **overrides)
    return spec

"""Shared figures of merit for the paper's comparisons."""

from __future__ import annotations


def power_delay_product(leakage_power: float, switching_power: float,
                        delay: float, activity: float) -> float:
    """The paper's Equation 1: ``P.D = ((1-a) P_L + a P_S) D``.

    ``activity`` is the dynamic-circuit activity factor in [0, 1]:
    the fraction of cycles in which the gate actually switches.  At low
    activity the leakage power ``P_L`` dominates (where the NEMS-based
    gates shine); at high activity the switching power ``P_S`` does.
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    if delay < 0 or leakage_power < 0 or switching_power < 0:
        raise ValueError("powers and delay must be non-negative")
    total_power = (1.0 - activity) * leakage_power \
        + activity * switching_power
    return total_power * delay


def energy_delay_product(switching_energy: float, delay: float) -> float:
    """Classic EDP metric (extension beyond the paper's Equation 1)."""
    if delay < 0 or switching_energy < 0:
        raise ValueError("energy and delay must be non-negative")
    return switching_energy * delay

"""SRAM cell architectures of the paper's Figure 13.

Four six-transistor cell variants are built from the same topology by
assigning per-transistor device flavours:

* **conventional** — all nominal-Vt CMOS;
* **dual_vt** (ref [25]) — high-Vt cross-coupled inverters, nominal
  access transistors: less leakage, weaker cell;
* **asymmetric** (ref [26]) — high-Vt on the cross-coupled devices that
  leak when the cell stores the (statistically dominant) zero at QL —
  NR and PL — leaving the frequent-zero read path (AL + NL) at nominal
  speed;
* **hybrid** (the paper's proposal, Figure 13d) — the cross-coupled
  inverter transistors NL/NR/PL/PR are NEMFETs, access transistors stay
  CMOS (replacing the access devices would put the mechanical switching
  time into every read).

Transistor names follow the paper: ``NL/NR`` pull-downs, ``PL/PR``
pull-ups, ``AL/AR`` access devices, storage nodes ``QL/QR``; bitline
``BL`` couples to ``QL`` through ``AL``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import (
    Mosfet,
    MosfetParams,
    nmos_90nm,
    nmos_90nm_hvt,
    pmos_90nm,
    pmos_90nm_hvt,
)
from repro.devices.nemfet import Nemfet, NemfetParams, nemfet_90nm, pemfet_90nm
from repro.errors import DesignError

#: Cell variants understood by the builders.
VARIANTS = ("conventional", "dual_vt", "asymmetric", "hybrid")

#: Which transistors are NEMFETs in the hybrid cell.
HYBRID_NEMS_DEVICES = frozenset({"NL", "NR", "PL", "PR"})


@dataclass
class SramSpec:
    """Cell sizing and device-flavour selection.

    Default widths give a read beta ratio (pull-down : access) of 5,
    which once the hybrid variant's weaker NEMS pull-downs are accounted
    for keeps every variant read-stable.
    """

    variant: str = "conventional"
    vdd: float = 1.2
    w_pulldown: float = 0.5e-6
    w_pullup: float = 0.2e-6
    w_access: float = 0.1e-6
    c_bitline: float = 40e-15
    w_precharge: float = 2e-6
    #: Read-timing protocol [s]: bitline precharge window, then wordline.
    t_precharge: float = 0.6e-9
    t_wordline: float = 0.8e-9
    t_read: float = 1.5e-9
    nmos: MosfetParams = field(default_factory=nmos_90nm)
    pmos: MosfetParams = field(default_factory=pmos_90nm)
    nmos_hvt: MosfetParams = field(default_factory=nmos_90nm_hvt)
    pmos_hvt: MosfetParams = field(default_factory=pmos_90nm_hvt)
    nems_n: NemfetParams = field(default_factory=nemfet_90nm)
    nems_p: NemfetParams = field(default_factory=pemfet_90nm)

    def __post_init__(self):
        if self.variant not in VARIANTS:
            raise DesignError(
                f"unknown SRAM variant '{self.variant}' "
                f"(choose from {VARIANTS})")
        for label, v in (("w_pulldown", self.w_pulldown),
                         ("w_pullup", self.w_pullup),
                         ("w_access", self.w_access),
                         ("c_bitline", self.c_bitline)):
            if getattr(self, label.split()[0]) <= 0:
                raise DesignError(f"{label} must be positive, got {v}")

    # -- flavour table -------------------------------------------------------

    def flavor(self, device: str):
        """MOSFET parameter set (or NEMFET marker) for a cell transistor.

        Returns ``("mosfet", params)`` or ``("nemfet", params)``.
        """
        if device not in ("NL", "NR", "PL", "PR", "AL", "AR"):
            raise DesignError(f"unknown cell transistor '{device}'")
        is_pullup = device in ("PL", "PR")
        is_access = device in ("AL", "AR")

        if self.variant == "hybrid" and device in HYBRID_NEMS_DEVICES:
            return ("nemfet", self.nems_p if is_pullup else self.nems_n)

        if self.variant == "dual_vt" and not is_access:
            return ("mosfet",
                    self.pmos_hvt if is_pullup else self.nmos_hvt)

        if self.variant == "asymmetric" and device in ("NR", "PL"):
            return ("mosfet",
                    self.pmos_hvt if is_pullup else self.nmos_hvt)

        if is_pullup:
            return ("mosfet", self.pmos)
        return ("mosfet", self.nmos)

    def width_of(self, device: str) -> float:
        """Drawn width of a cell transistor [m]."""
        if device in ("PL", "PR"):
            return self.w_pullup
        if device in ("AL", "AR"):
            return self.w_access
        return self.w_pulldown


def _add_cell_transistor(circuit: Circuit, spec: SramSpec, name: str,
                         drain: str, gate: str, source: str,
                         initial_contact: bool = False):
    kind, params = spec.flavor(name)
    width = spec.width_of(name)
    if kind == "nemfet":
        return circuit.add(Nemfet(name, drain, gate, source, params,
                                  width, initial_contact=initial_contact))
    return circuit.add(Mosfet(name, drain, gate, source, params, width))


class SramCell:
    """A full SRAM read/standby harness.

    Contains the six-transistor cell, bitline capacitances, a bitline
    precharge pair, wordline and supply sources, and a transient
    state-setting pull that deterministically initialises the cell to
    ``QL = 0, QR = 1`` (released after ``spec.t_precharge / 2``).

    Timeline of the built waveforms::

        0 .. t_precharge         bitlines precharged, cell settles
        t_wordline ..            wordline rises (read access)
    """

    def __init__(self, spec: SramSpec):
        self.spec = spec
        self.circuit = Circuit(f"sram_{spec.variant}")
        self._build()

    def _build(self) -> None:
        spec = self.spec
        c = self.circuit
        vdd = spec.vdd

        self.vdd_source = c.vsource("VDD", "vdd", "0", vdd)
        self.wordline_source = c.vsource(
            "VWL", "wl", "0",
            Pulse(0.0, vdd, td=spec.t_wordline, tr=20e-12, tf=20e-12,
                  pw=spec.t_read, per=None))
        # Precharge control: low (PMOS on) during the precharge window.
        self.precharge_source = c.vsource(
            "VPRE", "pre", "0",
            Pulse(0.0, vdd, td=spec.t_precharge, tr=20e-12, tf=20e-12,
                  pw=1.0, per=None))

        # Six-transistor cell storing QL=0 / QR=1: the devices that hold
        # that state (NL, PR) start in contact for NEMS flavours.  The
        # shared builder is the single source of truth for the cell
        # topology across the read harness, the explicit column and the
        # hierarchical bank.
        from repro.library.sram_cells import add_bitcell, add_precharge
        add_bitcell(c, spec, q="ql", qb="qr", bl="bl", blb="blb",
                    wl="wl", stored_one=False)

        # Bitlines: capacitance plus precharge PMOS pair.
        c.capacitor("CBL", "bl", "0", spec.c_bitline)
        c.capacitor("CBLB", "blb", "0", spec.c_bitline)
        add_precharge(c, spec, bl="bl", blb="blb")

        # State-setting pull: drags QL low while the cell powers up, then
        # releases well before the wordline event.
        self.state_source = c.isource(
            "ISET", "ql", "0",
            Pulse(50e-6, 0.0, td=0.3 * spec.t_precharge, tr=20e-12,
                  pw=1.0, per=None))

    def hold_wordline_low(self) -> None:
        """Reconfigure for standby: the wordline never rises."""
        self.wordline_source.value = 0.0

    def write_pulse(self, value: int, t_start: float,
                    duration: float) -> None:
        """Drive the bitlines to write ``value`` into QL during a window.

        Adds strong drivers emulating the write circuitry; call before
        running the transient.
        """
        spec = self.spec
        if value not in (0, 1):
            raise DesignError(f"write value must be 0 or 1, got {value}")
        high, low = ("bl", "blb") if value == 1 else ("blb", "bl")
        # Write driver: yank the low-going bitline to ground.
        self.circuit.add(Mosfet("MWDRV", low, "wen", "0",
                                spec.nmos, 4e-6))
        self.circuit.vsource("VWEN", "wen", "0",
                             Pulse(0.0, spec.vdd, td=t_start, tr=20e-12,
                                   pw=duration, per=None))


def build_read_harness(spec: SramSpec) -> SramCell:
    """Construct the full read/standby harness for a cell variant."""
    return SramCell(spec)


def build_vtc_circuit(spec: SramSpec, side: str) -> Circuit:
    """Half-cell circuit for one inverter's read-condition VTC.

    ``side='right'`` builds the QL -> QR inverter (PR, NR) with its
    access transistor AR tied to a full-rail bitline and the wordline
    high — the read-disturb loading condition under which the paper's
    Figure 14 butterfly curves are drawn.  The input node is ``in``
    (driven externally via the ``VIN`` source); the output is ``q``.
    """
    if side not in ("left", "right"):
        raise DesignError(f"side must be 'left' or 'right', got '{side}'")
    c = Circuit(f"sram_vtc_{spec.variant}_{side}")
    vdd = spec.vdd
    c.vsource("VDD", "vdd", "0", vdd)
    c.vsource("VWL", "wl", "0", vdd)
    c.vsource("VBL", "bit", "0", vdd)
    c.vsource("VIN", "in", "0", 0.0)
    if side == "right":
        _add_cell_transistor(c, spec, "PR", "q", "in", "vdd",
                             initial_contact=True)
        _add_cell_transistor(c, spec, "NR", "q", "in", "0")
        _add_cell_transistor(c, spec, "AR", "bit", "wl", "q")
    else:
        _add_cell_transistor(c, spec, "PL", "q", "in", "vdd",
                             initial_contact=True)
        _add_cell_transistor(c, spec, "NL", "q", "in", "0")
        _add_cell_transistor(c, spec, "AL", "bit", "wl", "q")
    return c

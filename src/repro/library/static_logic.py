"""Static CMOS wide-OR gates: the baseline of the paper's Section 4.1.

The paper motivates dynamic OR gates by the *static* alternative's
weakness: an N-input static OR is a NOR plus inverter, and the NOR
needs a **series stack of N PMOS devices** whose resistance grows
linearly with fan-in — which is exactly why "dynamic implementation of
wide fan-in OR-gates offers low latency".  This module builds that
baseline so the claim is measurable: delay and power of static vs
dynamic vs hybrid OR gates across fan-in
(``repro.experiments.ext_static_comparison``).

Topology: NOR stage (parallel NMOS pull-down, series PMOS pull-up,
each PMOS upsized by the stack depth to partially compensate), then an
output inverter so the gate is non-inverting like the domino gates it
is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis import measure
from repro.analysis.dc import operating_point
from repro.analysis.transient import transient
from repro.circuit.elements import VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import Mosfet, MosfetParams, nmos_90nm, pmos_90nm
from repro.errors import DesignError
from repro.library.dynamic_logic import FANOUT_UNIT_CAP


@dataclass
class StaticOrSpec:
    """A static (NOR + inverter) OR gate.

    ``pmos_upsizing`` scales each series PMOS by the stack depth times
    this factor (1.0 = full delay compensation at quadratic area cost;
    real designs use less, which is part of why wide static OR loses).
    """

    fan_in: int = 8
    fan_out: float = 1.0
    vdd: float = 1.2
    w_nmos: float = 1e-6
    w_pmos_unit: float = 2e-6
    pmos_upsizing: float = 0.5
    w_inv_n: float = 1e-6
    w_inv_p: float = 2e-6
    t_input: float = 0.4e-9
    t_stop: float = 4e-9
    nmos: MosfetParams = field(default_factory=nmos_90nm)
    pmos: MosfetParams = field(default_factory=pmos_90nm)

    def __post_init__(self):
        if self.fan_in < 1:
            raise DesignError(
                f"static OR needs fan_in >= 1, got {self.fan_in}")
        if self.pmos_upsizing <= 0:
            raise DesignError("pmos_upsizing must be positive")

    @property
    def w_pmos_stack(self) -> float:
        """Width of each series PMOS in the stack [m]."""
        return self.w_pmos_unit * (1 + self.pmos_upsizing
                                   * (self.fan_in - 1))

    @property
    def load_cap(self) -> float:
        return self.fan_out * FANOUT_UNIT_CAP


class StaticOrGate:
    """A built static OR gate with stimulus and metric helpers."""

    def __init__(self, spec: StaticOrSpec):
        self.spec = spec
        self.circuit = Circuit(f"static_or_fi{spec.fan_in}")
        self.input_sources: List[VoltageSource] = []
        self._build()

    def _build(self) -> None:
        spec = self.spec
        c = self.circuit
        c.vsource("VDD", "vdd", "0", spec.vdd)
        for i in range(spec.fan_in):
            self.input_sources.append(
                c.vsource(f"VIN{i}", f"in{i}", "0", 0.0))

        # NOR: parallel NMOS to ground.
        for i in range(spec.fan_in):
            c.add(Mosfet(f"MN{i}", "nor", f"in{i}", "0", spec.nmos,
                         spec.w_nmos))
        # Series PMOS stack from vdd to the NOR node.
        top = "vdd"
        for i in range(spec.fan_in):
            bottom = "nor" if i == spec.fan_in - 1 else f"sp{i}"
            c.add(Mosfet(f"MP{i}", bottom, f"in{i}", top, spec.pmos,
                         spec.w_pmos_stack))
            top = bottom

        # Output inverter makes the gate non-inverting (an OR).
        c.add(Mosfet("MINVP", "out", "nor", "vdd", spec.pmos,
                     spec.w_inv_p))
        c.add(Mosfet("MINVN", "out", "nor", "0", spec.nmos,
                     spec.w_inv_n))
        if spec.load_cap > 0:
            c.capacitor("CL", "out", "0", spec.load_cap)

    def set_inputs_static(self, levels: List[float]) -> None:
        """Drive each input with a DC level (volts)."""
        if len(levels) != self.spec.fan_in:
            raise DesignError(
                f"expected {self.spec.fan_in} levels, got {len(levels)}")
        for src, level in zip(self.input_sources, levels):
            src.value = float(level)

    def _pulse_one_input(self, index: int, falling: bool) -> None:
        spec = self.spec
        v1, v2 = (spec.vdd, 0.0) if falling else (0.0, spec.vdd)
        for i, src in enumerate(self.input_sources):
            if i == index:
                src.value = Pulse(v1, v2, td=spec.t_input, tr=30e-12,
                                  tf=30e-12, pw=spec.t_stop, per=None)
            else:
                src.value = 0.0

    def worst_case_delay(self, dt: float = 4e-12) -> float:
        """Worst-case propagation delay [s].

        For an OR gate the slow edge is the output *rise through the
        full PMOS stack* after the last high input falls... but rising
        through the stack happens when ALL inputs are low; the critical
        transition is the falling input that releases the NOR node: the
        stack then charges `nor` through N series devices.
        """
        self._pulse_one_input(0, falling=True)
        try:
            result = transient(self.circuit, self.spec.t_stop, dt)
        finally:
            self.set_inputs_static([0.0] * self.spec.fan_in)
        half = self.spec.vdd / 2
        return measure.propagation_delay(
            result.t, result.voltage("in0"), result.voltage("out"),
            level_from=half, level_to=half, edge_from="fall",
            edge_to="fall")

    def switching_energy(self, dt: float = 4e-12) -> float:
        """Supply energy for one full output high->low event [J]."""
        self._pulse_one_input(0, falling=True)
        try:
            result = transient(self.circuit, self.spec.t_stop, dt)
        finally:
            self.set_inputs_static([0.0] * self.spec.fan_in)
        return measure.supply_energy(result, "VDD")

    def leakage_power(self) -> float:
        """Static power with all inputs low (output low) [W]."""
        self.set_inputs_static([0.0] * self.spec.fan_in)
        op = operating_point(self.circuit)
        return op.source_power("VDD")


def build_static_or(spec: StaticOrSpec) -> StaticOrGate:
    """Construct a static OR gate from its specification."""
    return StaticOrGate(spec)

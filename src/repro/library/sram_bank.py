"""Hierarchical SRAM bank builder with exact netlist trimming.

Memory-compiler-scale composition of the paper's Figure 13 bitcells:
a ``rows x cols`` bitcell array with per-column precharge, write
drivers, an NMOS column mux into per-word sense nodes, a replica
bitline for timing, and a wordline driver — assembled by
:func:`build_bank` for three styles:

* ``cmos`` — conventional 6T cells throughout;
* ``hybrid`` — the paper's NEMS cross-coupled cell (Figure 13d);
* ``nems_sleep`` — conventional cells on a virtual ground rail gated
  by a NEMS sleep footer (Section 6 applied to memory retention).

**Trimming.** A flat 256x256 bank carries ~130k unknowns — far past
what a transient solve should touch for one access.  Following the
OpenRAM characterizer trick (simulate the accessed row/column, lump
everything else into loading), :func:`plan_bank` reduces the netlist
to:

* the **accessed column**, every cell explicit (the wordline event,
  the developing differential and the probed cell's bistability are
  exact);
* aggregate columns — the mux-off columns of the accessed word-bit
  group, the mux-on columns of the other groups, and the remaining
  off/off columns — each represented by one column whose devices and
  capacitances are scaled by the number of columns merged;
* within each aggregate column, the half-selected row cell plus one
  aggregate cell per stored value for the unselected rows.

Because ``k`` identical parallel subcircuits sharing boundary nodes
are *exactly* equivalent to one copy with conductances and
capacitances scaled by ``k`` (see :mod:`repro.library.sram_cells` for
the NEMFET area/stiffness/mass substitution), trimming is not an
approximation: the trimmed and flat netlists integrate the same
equations, which is what ``tests/test_sram_bank_parity.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuit.elements import Capacitor
from repro.circuit.mna import SystemLayout
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import Mosfet
from repro.devices.nemfet import Nemfet
from repro.errors import DesignError
from repro.library.sleep import SleepDevice
from repro.library.sram import SramSpec
from repro.library.sram_cells import (
    add_bitcell,
    add_precharge,
    scale_nemfet_params,
)

#: Bank styles understood by :func:`build_bank`.
STYLES = ("cmos", "hybrid", "nems_sleep")

#: Access modes: the source waveforms built into the bank netlist.
MODES = ("read", "write", "retention")

#: Background data patterns for the unaccessed cells.
BACKGROUNDS = ("rowstripe", "zeros")

#: Virtual-ground node used by the ``nems_sleep`` style.
VIRTUAL_GROUND = "vssv"


@dataclass
class BankSpec:
    """Bank geometry, style, and periphery sizing."""

    rows: int = 256
    cols: int = 256
    mux_ratio: int = 8
    style: str = "cmos"
    #: Cell spec; derived from ``style`` when omitted.
    cell: Optional[SramSpec] = None
    #: Column-mux NMOS width per column [m].
    w_mux: float = 0.4e-6
    #: Write-driver pull-down width per column [m].
    w_write: float = 4e-6
    #: Wordline driver (inverter) widths [m] — sized for a full row of
    #: access gates, harmlessly overdriven for small banks.
    w_wl_driver_n: float = 6e-6
    w_wl_driver_p: float = 12e-6
    #: Bitline wire + junction capacitance per row [F].
    c_bl_per_row: float = 0.25e-15
    #: Fixed per-bitline capacitance (periphery junctions, vias) [F].
    c_bl_fixed: float = 2e-15
    #: Wordline wire capacitance per column [F].
    c_wl_per_col: float = 0.15e-15
    #: Sense-node capacitance per word bit [F].
    c_sense: float = 8e-15
    #: NEMS sleep footer area (``nems_sleep`` style) [CMOS units].
    sleep_area_units: float = 16.0
    data_background: str = "rowstripe"

    def __post_init__(self):
        if self.style not in STYLES:
            raise DesignError(f"unknown bank style '{self.style}' "
                              f"(choose from {STYLES})")
        if self.data_background not in BACKGROUNDS:
            raise DesignError(
                f"unknown data background '{self.data_background}' "
                f"(choose from {BACKGROUNDS})")
        if self.rows < 1:
            raise DesignError(f"need at least one row, got {self.rows}")
        if self.mux_ratio < 1:
            raise DesignError(
                f"mux_ratio must be >= 1, got {self.mux_ratio}")
        if self.cols < self.mux_ratio:
            raise DesignError(
                f"need at least mux_ratio={self.mux_ratio} columns, "
                f"got {self.cols}")
        if self.cols % self.mux_ratio != 0:
            raise DesignError(
                f"cols ({self.cols}) must be a multiple of mux_ratio "
                f"({self.mux_ratio})")
        if self.cell is None:
            variant = "hybrid" if self.style == "hybrid" \
                else "conventional"
            self.cell = SramSpec(variant=variant)

    @property
    def words(self) -> int:
        """Word width: columns sharing one mux offset."""
        return self.cols // self.mux_ratio

    def stored_background(self, row: int) -> bool:
        """Background bit stored at ``row`` (before the probe override)."""
        if self.data_background == "rowstripe":
            return row % 2 == 1
        return False


class AddressDecoder:
    """Row + column-offset decode for a ``rows x mux_ratio`` space.

    ``address = row * mux_ratio + col_offset``; the decoder exposes
    the one-hot wordline vector and the column-select vector the bank
    wires into its netlist (selected wordline driven, every other row
    tied off; mux gates on where the offset matches).
    """

    def __init__(self, rows: int, mux_ratio: int):
        if rows < 1 or mux_ratio < 1:
            raise DesignError("decoder needs rows >= 1 and "
                              "mux_ratio >= 1")
        self.rows = rows
        self.mux_ratio = mux_ratio

    @property
    def n_addresses(self) -> int:
        return self.rows * self.mux_ratio

    def decode(self, address: int) -> Tuple[int, int]:
        """``(row, col_offset)`` of an access address."""
        if not 0 <= address < self.n_addresses:
            raise DesignError(
                f"address {address} out of range "
                f"[0, {self.n_addresses})")
        return address // self.mux_ratio, address % self.mux_ratio

    def one_hot(self, address: int) -> Tuple[int, ...]:
        """Wordline select vector (exactly one element is 1)."""
        row, _ = self.decode(address)
        return tuple(1 if r == row else 0 for r in range(self.rows))

    def column_select(self, address: int) -> Tuple[int, ...]:
        """Mux-gate vector over the ``mux_ratio`` offsets."""
        _, offset = self.decode(address)
        return tuple(1 if m == offset else 0
                     for m in range(self.mux_ratio))


# ---------------------------------------------------------------------------
# Bank plan: which cells are explicit, which are aggregated.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellGroup:
    """One (possibly aggregate) cell position within a column group."""

    tag: str
    rows: Tuple[int, ...]
    stored_one: bool
    selected: bool
    probed: bool = False

    @property
    def scale(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class ColumnGroup:
    """One (possibly aggregate) column of the planned netlist."""

    label: str
    columns: Tuple[int, ...]
    mux_on: bool
    sense: str
    cells: Tuple[CellGroup, ...]

    @property
    def scale(self) -> int:
        return len(self.columns)

    @property
    def cells_represented(self) -> int:
        return self.scale * sum(cg.scale for cg in self.cells)


@dataclass(frozen=True)
class BankPlan:
    """The netlist plan :func:`build_bank` emits."""

    rows: int
    cols: int
    mux_ratio: int
    address: int
    row: int
    col_offset: int
    probe_bit: int
    col: int
    trimmed: bool
    columns: Tuple[ColumnGroup, ...]

    @property
    def cells_represented(self) -> int:
        """Total bitcells the plan stands for (must equal rows*cols)."""
        return sum(g.cells_represented for g in self.columns)

    @property
    def accessed_column(self) -> ColumnGroup:
        for g in self.columns:
            if g.label == "sel":
                return g
        raise DesignError("plan has no accessed column")  # pragma: no cover


def _cell_rows(spec: BankSpec, col: int, probed_col: bool, row: int
               ) -> Tuple[CellGroup, ...]:
    """Explicit per-row cell groups for one column."""
    groups = []
    for r in range(spec.rows):
        probed = probed_col and r == row
        # Probed cell always stores 0: the read protocol senses the
        # falling bitline, the write protocol flips it to 1.
        stored = False if probed else spec.stored_background(r)
        groups.append(CellGroup(tag=f"r{r}", rows=(r,),
                                stored_one=stored,
                                selected=(r == row), probed=probed))
    return tuple(groups)


def _aggregate_rows(spec: BankSpec, row: int) -> Tuple[CellGroup, ...]:
    """Half-selected + per-stored-value aggregate cell groups."""
    groups = [CellGroup(tag="hs", rows=(row,),
                        stored_one=spec.stored_background(row),
                        selected=True)]
    zeros = tuple(r for r in range(spec.rows)
                  if r != row and not spec.stored_background(r))
    ones = tuple(r for r in range(spec.rows)
                 if r != row and spec.stored_background(r))
    if zeros:
        groups.append(CellGroup(tag="a0", rows=zeros, stored_one=False,
                                selected=False))
    if ones:
        groups.append(CellGroup(tag="a1", rows=ones, stored_one=True,
                                selected=False))
    return tuple(groups)


def plan_bank(spec: BankSpec, address: int, *, probe_bit: int = 0,
              trim: bool = True) -> BankPlan:
    """Plan the (flat or trimmed) netlist for one access address.

    ``probe_bit`` picks which word bit's column is observed; the
    accessed column is always labelled ``sel`` so flat and trimmed
    builds share node names.  The trimmed plan keeps the accessed
    column fully explicit and merges the rest into three aggregate
    columns (same-group mux-off, other-group mux-on, other-group
    mux-off), each scaled by the column count it represents.
    """
    decoder = AddressDecoder(spec.rows, spec.mux_ratio)
    row, offset = decoder.decode(address)
    if not 0 <= probe_bit < spec.words:
        raise DesignError(f"probe_bit {probe_bit} out of range "
                          f"[0, {spec.words})")
    col = probe_bit * spec.mux_ratio + offset

    columns = []
    if not trim:
        for j in range(spec.cols):
            group = j // spec.mux_ratio
            accessed = j == col
            columns.append(ColumnGroup(
                label="sel" if accessed else f"c{j}",
                columns=(j,),
                mux_on=(j % spec.mux_ratio == offset),
                sense="sel" if group == probe_bit else f"g{group}",
                cells=_cell_rows(spec, j, accessed, row)))
    else:
        agg = _aggregate_rows(spec, row)
        columns.append(ColumnGroup(
            label="sel", columns=(col,), mux_on=True, sense="sel",
            cells=_cell_rows(spec, col, True, row)))
        same_group = tuple(j for j in range(probe_bit * spec.mux_ratio,
                                            (probe_bit + 1)
                                            * spec.mux_ratio)
                           if j != col)
        if same_group:
            columns.append(ColumnGroup(
                label="mux", columns=same_group, mux_on=False,
                sense="sel", cells=agg))
        other_on = tuple(j for j in range(spec.cols)
                         if j // spec.mux_ratio != probe_bit
                         and j % spec.mux_ratio == offset)
        if other_on:
            columns.append(ColumnGroup(
                label="on", columns=other_on, mux_on=True,
                sense="agg", cells=agg))
        other_off = tuple(j for j in range(spec.cols)
                          if j // spec.mux_ratio != probe_bit
                          and j % spec.mux_ratio != offset)
        if other_off:
            columns.append(ColumnGroup(
                label="off", columns=other_off, mux_on=False,
                sense="agg", cells=agg))

    plan = BankPlan(rows=spec.rows, cols=spec.cols,
                    mux_ratio=spec.mux_ratio, address=address,
                    row=row, col_offset=offset, probe_bit=probe_bit,
                    col=col, trimmed=trim, columns=tuple(columns))
    assert plan.cells_represented == spec.rows * spec.cols
    return plan


# ---------------------------------------------------------------------------
# Netlist emission.
# ---------------------------------------------------------------------------

@dataclass
class SramBank:
    """A built bank netlist plus its warm-start solve context.

    ``x0`` pins every storage node to its stored rail value and the
    bitlines to VDD, so the damped-Newton DC solve lands on the
    intended member of the bistable solution family — the protocol
    :func:`repro.analysis.dc.operating_point` + ``transient(initial=
    op)`` expect (the layout object must be reused for both).
    """

    spec: BankSpec
    plan: BankPlan
    mode: str
    circuit: Circuit
    layout: SystemLayout
    x0: np.ndarray
    nodes: Dict[str, str]

    @property
    def n_unknowns(self) -> int:
        return self.layout.n

    def operating_point(self, backend=None):
        from repro.analysis.dc import operating_point
        return operating_point(self.circuit, x0=self.x0,
                               layout=self.layout, backend=backend)


def _emit_access_device(circuit: Circuit, cell: SramSpec, name: str,
                        drain: str, gate: str, source: str,
                        scale: float = 1.0) -> None:
    """One (possibly aggregate) access-flavoured device (replica rows)."""
    kind, params = cell.flavor("AL")
    width = cell.w_access * scale
    if kind == "nemfet":
        circuit.add(Nemfet(name, drain, gate, source,
                           scale_nemfet_params(params, scale), width))
    else:
        circuit.add(Mosfet(name, drain, gate, source, params, width))


def build_bank(spec: BankSpec, address: Optional[int] = None, *,
               mode: str = "read", trim: bool = True,
               write_value: int = 1, probe_bit: int = 0) -> SramBank:
    """Build the bank netlist for one access.

    ``mode`` selects the source waveforms: ``read`` precharges then
    raises the selected wordline; ``write`` additionally fires the
    accessed column's write driver to store ``write_value`` into the
    probed cell (which starts at 0); ``retention`` holds every control
    static (wordline low, precharge on, sleep footer released for the
    ``nems_sleep`` style) for leakage measurement.
    """
    if mode not in MODES:
        raise DesignError(f"unknown bank mode '{mode}' "
                          f"(choose from {MODES})")
    if write_value not in (0, 1):
        raise DesignError(
            f"write value must be 0 or 1, got {write_value}")
    if address is None:
        address = (spec.rows // 2) * spec.mux_ratio
    plan = plan_bank(spec, address, probe_bit=probe_bit, trim=trim)

    cell = spec.cell
    vdd = cell.vdd
    c = Circuit(f"bank_{spec.style}_{spec.rows}x{spec.cols}"
                f"_{'trim' if trim else 'flat'}_{mode}")
    c.vsource("VDD", "vdd", "0", vdd)

    # Precharge control: low (PMOS on) until t_precharge.  In read mode
    # it re-engages after the wordline window so the post-access bitline
    # recharge energy is measurable; in write mode it stays off (the
    # write driver owns the bitlines); in retention the bitlines are
    # held at VDD throughout.
    if mode == "retention":
        c.vsource("VPRE", "pre", "0", 0.0)
    elif mode == "read":
        c.vsource("VPRE", "pre", "0",
                  Pulse(0.0, vdd, td=cell.t_precharge, tr=20e-12,
                        tf=20e-12,
                        pw=cell.t_wordline + cell.t_read
                        - cell.t_precharge, per=None))
    else:
        c.vsource("VPRE", "pre", "0",
                  Pulse(0.0, vdd, td=cell.t_precharge, tr=20e-12,
                        tf=20e-12, pw=1.0, per=None))

    # Wordline: active-low driver input into a sized inverter, loaded
    # by the full row's wire capacitance.
    if mode == "retention":
        c.vsource("VWLIN", "wlin", "0", vdd)
    else:
        c.vsource("VWLIN", "wlin", "0",
                  Pulse(vdd, 0.0, td=cell.t_wordline, tr=20e-12,
                        tf=20e-12, pw=cell.t_read, per=None))
    c.add(Mosfet("MWLDRVP", "wl", "wlin", "vdd", cell.pmos,
                 spec.w_wl_driver_p))
    c.add(Mosfet("MWLDRVN", "wl", "wlin", "0", cell.nmos,
                 spec.w_wl_driver_n))
    c.capacitor("CWL", "wl", "0", spec.c_wl_per_col * spec.cols)

    # Write enable (write mode only; drivers elsewhere stay gated off).
    if mode == "write":
        c.vsource("VWEN", "wen", "0",
                  Pulse(0.0, vdd, td=cell.t_wordline - 0.1e-9,
                        tr=20e-12, pw=cell.t_read + 0.2e-9, per=None))

    # Virtual ground + NEMS sleep footer for the sleep-gated style.
    vss_rail = "0"
    if spec.style == "nems_sleep":
        vss_rail = VIRTUAL_GROUND
        sleep = SleepDevice("nems", spec.sleep_area_units, vdd=vdd,
                            nems=cell.nems_n)
        asleep = mode == "retention"
        c.vsource("VSLP", "slp", "0", 0.0 if asleep else vdd)
        c.add(Nemfet("XSLEEP", vss_rail, "slp", "0", cell.nems_n,
                     sleep.width, initial_contact=not asleep))

    # Sense nodes: one pair per distinct sense label, capacitance
    # scaled by the number of word bits the label represents.
    sense_labels: Dict[str, int] = {}
    for group in plan.columns:
        sense_labels[group.sense] = (sense_labels.get(group.sense, 0)
                                     + group.scale)
    for sense, n_cols in sense_labels.items():
        sense_scale = n_cols / spec.mux_ratio
        c.capacitor(f"CSAL_{sense}", f"sa_bl_{sense}", "0",
                    spec.c_sense * sense_scale)
        c.capacitor(f"CSAR_{sense}", f"sa_blb_{sense}", "0",
                    spec.c_sense * sense_scale)

    c_bl = spec.c_bl_fixed + spec.rows * spec.c_bl_per_row
    for group in plan.columns:
        label, k = group.label, group.scale
        bl, blb = f"bl_{label}", f"blb_{label}"
        c.capacitor(f"CBL_{label}", bl, "0", c_bl * k)
        c.capacitor(f"CBLB_{label}", blb, "0", c_bl * k)
        add_precharge(c, cell, bl=bl, blb=blb,
                      name=lambda side, lb=label: f"MPRE{side}_{lb}",
                      pre="pre", scale=k)
        mux_gate = "vdd" if group.mux_on else "0"
        c.add(Mosfet(f"MMUXL_{label}", f"sa_bl_{group.sense}",
                     mux_gate, bl, cell.nmos, spec.w_mux * k))
        c.add(Mosfet(f"MMUXR_{label}", f"sa_blb_{group.sense}",
                     mux_gate, blb, cell.nmos, spec.w_mux * k))
        # Write drivers: enabled only on the accessed column in write
        # mode, on the side that must go low for the written value.
        gate_l = gate_r = "0"
        if mode == "write" and label == "sel":
            if write_value == 1:
                gate_r = "wen"
            else:
                gate_l = "wen"
        c.add(Mosfet(f"MWDL_{label}", bl, gate_l, "0", cell.nmos,
                     spec.w_write * k))
        c.add(Mosfet(f"MWDR_{label}", blb, gate_r, "0", cell.nmos,
                     spec.w_write * k))
        for cg in group.cells:
            suffix = f"{cg.tag}_{label}"
            add_bitcell(c, cell,
                        q=f"q_{suffix}", qb=f"qb_{suffix}",
                        bl=bl, blb=blb,
                        wl="wl" if cg.selected else "0",
                        vss=vss_rail,
                        name=lambda role, s=suffix: f"{role}_{s}",
                        scale=k * cg.scale,
                        stored_one=cg.stored_one)

    # Replica bitline: a full-height dummy column whose always-storing-
    # zero replica cell discharges it once the wordline rises — the
    # sense-timing reference.  Off-row access loads are explicit in
    # the flat build and one aggregate device in the trimmed build.
    c.capacitor("CRBL", "rbl", "0", c_bl)
    c.add(Mosfet("MPRE_rep", "rbl", "pre", "vdd", cell.pmos,
                 cell.w_precharge))
    _emit_access_device(c, cell, "MREP_on", "rbl", "wl", "0")
    n_off = spec.rows - 1
    if n_off > 0:
        if trim:
            _emit_access_device(c, cell, "MREP_off", "rbl", "0", "0",
                                scale=n_off)
        else:
            for r in range(1, spec.rows):
                _emit_access_device(c, cell, f"MREP_off{r}", "rbl",
                                    "0", "0")

    layout = SystemLayout(c)
    x0 = layout.x_default.copy()

    def setv(node: str, value: float) -> None:
        x0[layout.node_index(node)] = value

    setv("vdd", vdd)
    setv("wlin", vdd)
    if mode == "write":
        setv("wen", 0.0)
    if spec.style == "nems_sleep":
        setv("slp", 0.0 if mode == "retention" else vdd)
    setv("rbl", vdd)
    for sense in sense_labels:
        setv(f"sa_bl_{sense}", vdd)
        setv(f"sa_blb_{sense}", vdd)
    for group in plan.columns:
        setv(f"bl_{group.label}", vdd)
        setv(f"blb_{group.label}", vdd)
        for cg in group.cells:
            suffix = f"{cg.tag}_{group.label}"
            setv(f"q_{suffix}", vdd if cg.stored_one else 0.0)
            setv(f"qb_{suffix}", 0.0 if cg.stored_one else vdd)

    nodes = {"bl": "bl_sel", "blb": "blb_sel",
             "sa_bl": "sa_bl_sel", "sa_blb": "sa_blb_sel",
             "wl": "wl", "rbl": "rbl",
             "q": f"q_r{plan.row}_sel", "qb": f"qb_r{plan.row}_sel"}
    return SramBank(spec=spec, plan=plan, mode=mode, circuit=c,
                    layout=layout, x0=x0, nodes=nodes)


# ---------------------------------------------------------------------------
# Trimming invariants (used by the property tests and docs).
# ---------------------------------------------------------------------------

def bitline_capacitance(circuit: Circuit, node: str) -> float:
    """Total small-signal capacitance hanging on a bitline node [F].

    Sums explicit capacitors plus the junction capacitance of every
    MOSFET/NEMFET terminal (drain or source) attached to ``node`` —
    the width-linear loading terms the trimmer must preserve exactly.
    """
    total = 0.0
    for el in circuit.elements:
        if isinstance(el, Capacitor):
            if node in el.nodes:
                total += el.capacitance
        elif isinstance(el, (Mosfet, Nemfet)):
            drain, _, source = el.nodes
            for term in (drain, source):
                if term == node:
                    total += el.params.c_junction_per_width * el.width
    return total


def wordline_access_width(circuit: Circuit, wl: str = "wl") -> float:
    """Summed width of devices gated by the wordline [m].

    The wordline load (and hence its rise time) depends on the total
    gated width; the trimmer keeps the selected row's access devices
    explicit, so this must match between flat and trimmed builds.
    """
    total = 0.0
    for el in circuit.elements:
        if isinstance(el, (Mosfet, Nemfet)):
            _, gate, _ = el.nodes
            if gate == wl:
                total += el.width
    return total

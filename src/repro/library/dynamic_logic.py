"""Wide fan-in dynamic OR gates: conventional CMOS and hybrid NEMS-CMOS.

Reproduces the paper's Figure 8 topologies:

* **Figure 8(a)** — conventional dynamic (domino) OR: clocked PMOS
  precharge, parallel NMOS pull-down network (one per input) over a
  clocked NMOS footer, PMOS keeper closed around the output inverter.
  The keeper must be upsized with fan-in to hold the dynamic node against
  the summed subthreshold leakage of the parallel pull-downs, which costs
  evaluation speed through keeper contention.

* **Figure 8(b)** — hybrid NEMS-CMOS: identical, but each pull-down NMOS
  has a same-sized NEMFET in series below it, driven by the same input.
  Because a released NEMFET passes only ~pA, the pull-down network's
  leakage collapses and a *minimum-size* keeper suffices regardless of
  fan-in — the source of both the switching-power saving (no contention)
  and the large-fan-in delay win.

Domino timing convention: inputs settle during the precharge phase (they
are outputs of the previous pipeline stage), so the NEMFET's mechanical
closing overlaps precharge and the measured worst-case delay is the
clock-to-output evaluation delay.  This matches the paper's "minor delay
penalty" observation; the input-limited case (mechanical closing in the
critical path) is reported separately by the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.circuit.elements import VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.mosfet import (
    Mosfet,
    MosfetParams,
    nmos_90nm,
    pmos_90nm,
)
from repro.devices.nemfet import Nemfet, NemfetParams, nemfet_90nm
from repro.errors import DesignError

#: Input gate capacitance of the reference fan-out inverter (Wn = 1 um,
#: Wp = 2 um at 1.5 fF/um) — one "fan-out unit" of load.
FANOUT_UNIT_CAP = 4.5e-15

#: Styles understood by the builder.
STYLES = ("cmos", "hybrid")


@dataclass
class DynamicOrSpec:
    """Parameters of a dynamic OR gate instance.

    Attributes
    ----------
    fan_in:
        Number of OR inputs (the paper sweeps 4-16).
    fan_out:
        Output load in fan-out units (reference inverter input caps).
    style:
        ``"cmos"`` (Figure 8a) or ``"hybrid"`` (Figure 8b).
    w_keeper:
        Keeper PMOS width [m]; ``None`` selects the style default
        (fan-in-proportional for CMOS, minimum-size for hybrid).
    t_precharge / t_eval:
        Clock phase durations [s]; inputs settle during precharge.
    """

    fan_in: int = 8
    fan_out: float = 1.0
    style: str = "cmos"
    vdd: float = 1.2
    w_pulldown: float = 4e-6
    w_nems: float = 4e-6
    w_precharge: float = 4e-6
    w_footer: float = 12e-6
    w_keeper: Optional[float] = None
    w_inv_n: float = 1e-6
    w_inv_p: float = 2e-6
    t_precharge: float = 1.2e-9
    t_eval: float = 2.0e-9
    #: Hybrid only: also precharge the NMOS/NEMFET mid nodes (small
    #: clocked PMOS per input, width ``w_mid_precharge``).  Mitigates
    #: charge sharing: when an input rises mid-evaluation, a discharged
    #: mid node steals charge from the dynamic node before the NEMFET
    #: has even closed, eroding noise margin on the monotonic-domino
    #: protocol.
    precharge_mid: bool = False
    w_mid_precharge: float = 0.3e-6
    nmos: MosfetParams = field(default_factory=nmos_90nm)
    pmos: MosfetParams = field(default_factory=pmos_90nm)
    nems: NemfetParams = field(default_factory=nemfet_90nm)

    #: Minimum keeper width used by the hybrid gate [m].
    W_KEEPER_MIN = 0.12e-6
    #: CMOS keeper width per input, matching the variation-aware
    #: noise-margin sizing at the default target (see
    #: ``gate_metrics.size_keeper_for_noise_margin``) [m].
    W_KEEPER_PER_INPUT = 0.55e-6

    def __post_init__(self):
        if self.fan_in < 1:
            raise DesignError(
                f"dynamic OR needs fan_in >= 1, got {self.fan_in}")
        if self.fan_out < 0:
            raise DesignError(
                f"fan_out must be non-negative, got {self.fan_out}")
        if self.style not in STYLES:
            raise DesignError(
                f"unknown dynamic gate style '{self.style}' "
                f"(choose from {STYLES})")

    def default_keeper_width(self) -> float:
        """Style-default keeper width [m].

        The CMOS keeper grows with fan-in because the noise margin is set
        by the keeper current against ``fan_in`` parallel leaky
        pull-downs; the hybrid keeper stays at minimum size because the
        released NEMFETs cut the leakage path.
        """
        if self.style == "hybrid":
            return self.W_KEEPER_MIN
        return max(self.W_KEEPER_MIN,
                   self.W_KEEPER_PER_INPUT * self.fan_in)

    @property
    def period(self) -> float:
        """One precharge + evaluate cycle [s]."""
        return self.t_precharge + self.t_eval

    @property
    def load_cap(self) -> float:
        """Output load capacitance [F]."""
        return self.fan_out * FANOUT_UNIT_CAP


class DynamicOrGate:
    """A built dynamic OR gate: circuit plus named handles.

    Node names: ``dyn`` (dynamic node), ``out`` (inverter output),
    ``foot`` (footer rail), ``clk``, ``vdd``, ``in0..in{N-1}`` and, for
    the hybrid style, ``mid0..mid{N-1}`` between each NMOS and its series
    NEMFET.
    """

    def __init__(self, spec: DynamicOrSpec):
        self.spec = spec
        self.circuit = Circuit(f"dynamic_or_{spec.style}_fi{spec.fan_in}")
        self.input_sources: List[VoltageSource] = []
        self._build()

    def _build(self) -> None:
        spec = self.spec
        c = self.circuit
        vdd = spec.vdd

        self.vdd_source = c.vsource("VDD", "vdd", "0", vdd)
        # Clock: low = precharge, high = evaluate; one cycle per period.
        self.clock_source = c.vsource(
            "VCLK", "clk", "0",
            Pulse(0.0, vdd, td=spec.t_precharge, tr=20e-12, tf=20e-12,
                  pw=spec.t_eval - 40e-12, per=spec.period))

        # Input sources: quiet low by default; metrics reassign waveforms.
        for i in range(spec.fan_in):
            src = c.vsource(f"VIN{i}", f"in{i}", "0", 0.0)
            self.input_sources.append(src)

        # Precharge PMOS.
        c.add(Mosfet("MPRE", "dyn", "clk", "vdd", spec.pmos,
                     spec.w_precharge))

        # Keeper PMOS (feedback from the output inverter).
        w_keeper = (spec.w_keeper if spec.w_keeper is not None
                    else spec.default_keeper_width())
        self.keeper = Mosfet("MKEEP", "dyn", "out", "vdd", spec.pmos,
                             w_keeper)
        c.add(self.keeper)

        # Pull-down network.
        self.pulldowns: List[Mosfet] = []
        self.nemfets: List[Nemfet] = []
        for i in range(spec.fan_in):
            if spec.style == "cmos":
                m = Mosfet(f"MPD{i}", "dyn", f"in{i}", "foot",
                           spec.nmos, spec.w_pulldown)
                c.add(m)
                self.pulldowns.append(m)
            else:
                m = Mosfet(f"MPD{i}", "dyn", f"in{i}", f"mid{i}",
                           spec.nmos, spec.w_pulldown)
                c.add(m)
                self.pulldowns.append(m)
                n = Nemfet(f"MNEM{i}", f"mid{i}", f"in{i}", "foot",
                           spec.nems, spec.w_nems)
                c.add(n)
                self.nemfets.append(n)
                if spec.precharge_mid:
                    c.add(Mosfet(f"MPREM{i}", f"mid{i}", "clk", "vdd",
                                 spec.pmos, spec.w_mid_precharge))

        # Clocked footer.
        self.footer = Mosfet("MFOOT", "foot", "clk", "0", spec.nmos,
                             spec.w_footer)
        c.add(self.footer)

        # Output inverter.
        c.add(Mosfet("MINVP", "out", "dyn", "vdd", spec.pmos,
                     spec.w_inv_p))
        c.add(Mosfet("MINVN", "out", "dyn", "0", spec.nmos,
                     spec.w_inv_n))

        # Fan-out load.
        if spec.load_cap > 0:
            c.capacitor("CL", "out", "0", spec.load_cap)

    # -- stimulus configuration ---------------------------------------------

    def set_inputs_static(self, levels: List[float]) -> None:
        """Drive each input with a DC level (volts)."""
        if len(levels) != self.spec.fan_in:
            raise DesignError(
                f"expected {self.spec.fan_in} levels, got {len(levels)}")
        for src, level in zip(self.input_sources, levels):
            src.value = float(level)

    def set_inputs_domino(self, active: List[int],
                          t_rise: Optional[float] = None) -> None:
        """Raise the listed inputs during precharge, others held low.

        ``t_rise`` defaults to 20% into the precharge phase, leaving the
        NEMFETs time to close mechanically before evaluation begins —
        the domino pipeline convention described in the module docstring.
        """
        spec = self.spec
        rise = 0.2 * spec.t_precharge if t_rise is None else t_rise
        if not 0 <= rise < spec.t_precharge:
            raise DesignError(
                f"input rise {rise} outside the precharge phase")
        active_set = set(active)
        bad = active_set - set(range(spec.fan_in))
        if bad:
            raise DesignError(f"no such inputs: {sorted(bad)}")
        for i, src in enumerate(self.input_sources):
            if i in active_set:
                src.value = Pulse(0.0, spec.vdd, td=rise, tr=30e-12,
                                  tf=30e-12,
                                  pw=spec.period - rise - 0.1e-9,
                                  per=None)
            else:
                src.value = 0.0

    def set_keeper_width(self, width: float) -> None:
        """Resize the keeper (the Figure 9 design knob)."""
        if width <= 0:
            raise DesignError(f"keeper width must be positive: {width}")
        self.keeper.width = float(width)

    @property
    def keeper_width(self) -> float:
        """Current keeper width [m]."""
        return self.keeper.width


def build_dynamic_or(spec: DynamicOrSpec) -> DynamicOrGate:
    """Construct a dynamic OR gate from its specification."""
    return DynamicOrGate(spec)

"""SRAM cell metrics: butterfly curves / SNM, read latency, leakage.

* **Static noise margin** — read-condition butterfly curves (Figure 14)
  via the Seevinck largest-square method: both inverter VTCs are traced
  with the access transistors conducting against full-rail bitlines, the
  curves are rotated 45 degrees, and the SNM is the smaller lobe's
  maximum diagonal separation divided by sqrt(2).
* **Read latency** (Figure 15) — full-harness transient: bitlines
  precharge, the wordline rises, and latency is measured from the 50%
  wordline edge to a 100 mV bitline differential (a typical
  sense-amplifier threshold).
* **Standby leakage** (Figure 15) — wordline low, bitlines held at Vdd;
  total static power drawn from the supply and the bitline precharge,
  resolved by a DC polish of the settled state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis import measure
from repro.analysis.dc import dc_sweep, operating_point
from repro.analysis.transient import transient
from repro.errors import MeasurementError
from repro.library.sram import SramSpec, build_read_harness, build_vtc_circuit

#: Sense-amplifier differential threshold used for read latency [V].
SENSE_THRESHOLD = 0.1

#: Default transient step for SRAM simulations [s].
DEFAULT_DT = 4e-12


@dataclass(frozen=True)
class ButterflyCurves:
    """Read-condition transfer curves of both cell inverters."""

    v_in: np.ndarray    #: swept inverter input [V]
    v_right: np.ndarray  #: QR = f_R(input) — right inverter output
    v_left: np.ndarray   #: QL = f_L(input) — left inverter output

    def as_xy(self) -> Tuple[np.ndarray, np.ndarray,
                             np.ndarray, np.ndarray]:
        """Butterfly plot data: (x1, y1) right curve, (x2, y2) mirrored
        left curve (input on the y axis)."""
        return self.v_in, self.v_right, self.v_left, self.v_in


def trace_vtc(spec: SramSpec, side: str, points: int = 121
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Read-condition VTC of one cell inverter.

    Swept by continuation from input 0 upward, which for the hybrid cell
    follows the physically-traversed NEMS hysteresis branch (pull-down
    closing at pull-in as the input rises).
    """
    circuit = build_vtc_circuit(spec, side)
    v_in = np.linspace(0.0, spec.vdd, points)
    sweep = dc_sweep(circuit, "VIN", v_in)
    return v_in, sweep.voltage("q")


def butterfly(spec: SramSpec, points: int = 121) -> ButterflyCurves:
    """Both read-condition VTCs (the Figure 14 butterfly)."""
    v_in, v_right = trace_vtc(spec, "right", points)
    _, v_left = trace_vtc(spec, "left", points)
    return ButterflyCurves(v_in=v_in, v_right=v_right, v_left=v_left)


def seevinck_snm(v_in: np.ndarray, vtc_a: np.ndarray,
                 vtc_b: np.ndarray) -> float:
    """Static noise margin [V] from two inverter VTCs (Seevinck method).

    The butterfly plots curve A as ``(x, a(x))`` and curve B mirrored as
    ``(b(y), y)``.  The largest square (sides parallel to the axes)
    inscribed in a lobe has its diagonal along a 45-degree line
    ``y = x + c``; since both VTCs are traced by continuation they cross
    each such line once, and the square's side equals the horizontal
    distance between the two intersection points.  The SNM is the
    smaller lobe's maximum side over all offsets ``c``.
    """
    v_in = np.asarray(v_in, dtype=float)
    vtc_a = np.asarray(vtc_a, dtype=float)
    vtc_b = np.asarray(vtc_b, dtype=float)
    if not (len(v_in) == len(vtc_a) == len(vtc_b)) or len(v_in) < 5:
        raise MeasurementError("VTC arrays must match and have >= 5 pts")

    def line_crossing_x(vtc: np.ndarray, c: float) -> float:
        """x where the curve (v_in, vtc) crosses y = x + c (first)."""
        h = vtc - v_in - c  # decreasing for an inverter VTC
        sign_change = np.nonzero(np.diff(np.signbit(h)))[0]
        if len(sign_change) == 0:
            return np.nan
        i = int(sign_change[0])
        frac = h[i] / (h[i] - h[i + 1])
        return float(v_in[i] + frac * (v_in[i + 1] - v_in[i]))

    # Curve A crossing y = x + c at (xa, xa + c); the mirrored curve B
    # crosses where b(y) = y - c, i.e. at (yb - c, yb) with yb the
    # crossing of (v_in, vtc_b) against y = x + (-c) ... solved directly:
    # h_b(y) = vtc_b(y) - y + c.
    def line_crossing_b(c: float) -> float:
        h = vtc_b - v_in + c
        sign_change = np.nonzero(np.diff(np.signbit(h)))[0]
        if len(sign_change) == 0:
            return np.nan
        i = int(sign_change[0])
        frac = h[i] / (h[i] - h[i + 1])
        yb = float(v_in[i] + frac * (v_in[i + 1] - v_in[i]))
        return yb - c  # the x coordinate of the intersection

    vdd = float(v_in[-1])
    upper = 0.0  # lobe where curve A is to the left of curve B
    lower = 0.0
    for c in np.linspace(-vdd, vdd, 481):
        xa = line_crossing_x(vtc_a, c)
        xb = line_crossing_b(c)
        if np.isnan(xa) or np.isnan(xb):
            continue
        side = xb - xa
        if side > upper:
            upper = side
        elif -side > lower:
            lower = -side
    return float(min(upper, lower))


def static_noise_margin(spec: SramSpec,
                        points: int = 121) -> Tuple[float, ButterflyCurves]:
    """Read SNM [V] and the butterfly curves it was measured from."""
    curves = butterfly(spec, points)
    snm = seevinck_snm(curves.v_in, curves.v_right, curves.v_left)
    return snm, curves


def read_latency(spec: SramSpec, dt: float = DEFAULT_DT) -> float:
    """Read access latency [s]: wordline edge to 100 mV bitline split.

    The cell stores QL=0, so the read discharges BL through AL and NL.
    """
    cell = build_read_harness(spec)
    tstop = spec.t_wordline + spec.t_read
    result = transient(cell.circuit, tstop, dt)
    t_wl = measure.first_cross(result.t, result.voltage("wl"),
                               spec.vdd / 2, "rise")
    split = np.abs(result.voltage("blb") - result.voltage("bl"))
    try:
        t_sense = measure.first_cross(result.t, split, SENSE_THRESHOLD,
                                      "rise", after=t_wl)
    except MeasurementError as err:
        raise MeasurementError(
            f"variant '{spec.variant}' never develops a "
            f"{SENSE_THRESHOLD * 1e3:.0f} mV bitline split: {err}"
        ) from err
    return t_sense - t_wl


def read_latencies_both(spec: SramSpec, dt: float = DEFAULT_DT
                        ) -> Tuple[float, float]:
    """Read latency for stored 0 and stored 1 [s].

    The asymmetric cell (Figure 13c) reads its two states at different
    speeds; the paper's Figure 15 plots their average.  The stored-1
    latency is obtained by mirroring the flavour assignment, i.e.
    measuring the complementary discharge path AR + NR.
    """
    lat0 = read_latency(spec, dt)
    mirrored = _mirror_spec(spec)
    lat1 = read_latency(mirrored, dt)
    return lat0, lat1


class _MirrorSpec(SramSpec):
    """Spec wrapper that swaps left/right flavour assignments."""

    _SWAP = {"NL": "NR", "NR": "NL", "PL": "PR", "PR": "PL",
             "AL": "AR", "AR": "AL"}

    def flavor(self, device: str):
        return super().flavor(self._SWAP[device])


def _mirror_spec(spec: SramSpec) -> SramSpec:
    mirrored = _MirrorSpec(**{f: getattr(spec, f)
                              for f in spec.__dataclass_fields__})
    return mirrored


def standby_leakage(spec: SramSpec, dt: float = DEFAULT_DT) -> float:
    """Standby leakage power [W]: wordline low, bitlines precharged.

    Counts all static power entering from the supply (the bitline
    precharge devices stay on, so bitline leakage through the access
    transistors is included).  Resolved by settling transiently and
    polishing with a DC solve.
    """
    cell = build_read_harness(spec)
    cell.hold_wordline_low()
    t_settle = spec.t_precharge
    result = transient(cell.circuit, t_settle, dt)
    saved_pre = cell.precharge_source.value
    saved_set = cell.state_source.value
    try:
        # Pin every pulse source to its standby level: the DC polish
        # evaluates waveforms at t=0, which would otherwise re-apply the
        # state-setting pull.
        cell.precharge_source.value = 0.0  # keep the precharge pair on
        cell.state_source.value = 0.0
        op = operating_point(cell.circuit, x0=result.final().x,
                             layout=result.layout)
    finally:
        cell.precharge_source.value = saved_pre
        cell.state_source.value = saved_set
    return op.source_power("VDD")


def write_margin(spec: SramSpec, points: int = 121) -> float:
    """Write trip voltage [V]: the bitline level at which the cell
    flips during a write (larger = easier to write).

    Standard bitline-sweep definition: wordline high, BLB held at Vdd,
    BL swept downward from Vdd; the metric is the bitline voltage at
    which the stored value flips.  Uses DC continuation from the held
    state, so the flip appears as the held branch's fold.  The hybrid
    cell's weak NEMS pull-ups make it *statically* easier to write than
    the conventional cell — its write cost is dynamic (beam actuation,
    see :func:`write_latency`), not static.
    """
    from repro.circuit.netlist import Circuit
    from repro.library.sram import _add_cell_transistor

    c = Circuit(f"wm_{spec.variant}")
    vdd = spec.vdd
    c.vsource("VDD", "vdd", "0", vdd)
    c.vsource("VWL", "wl", "0", vdd)
    c.vsource("VBLB", "blb", "0", vdd)
    vbl = c.vsource("VBL", "bl", "0", vdd)
    # Cell storing QL = 1 (so pulling BL low writes a 0 through AL).
    _add_cell_transistor(c, spec, "PL", "ql", "qr", "vdd",
                         initial_contact=True)
    _add_cell_transistor(c, spec, "NL", "ql", "qr", "0")
    _add_cell_transistor(c, spec, "PR", "qr", "ql", "vdd")
    _add_cell_transistor(c, spec, "NR", "qr", "ql", "0",
                         initial_contact=True)
    _add_cell_transistor(c, spec, "AL", "bl", "wl", "ql")
    _add_cell_transistor(c, spec, "AR", "blb", "wl", "qr")

    # Deterministic start on the QL=1 branch: warm-start the first
    # solve from a vector with the storage nodes pre-set (the cell is
    # bistable, so a cold start could land on either state).
    from repro.circuit.mna import SystemLayout

    layout = SystemLayout(c)
    x0 = layout.x_default.copy()
    for node, v in (("vdd", vdd), ("wl", vdd), ("bl", vdd),
                    ("blb", vdd), ("ql", vdd), ("qr", 0.0)):
        x0[layout.node_index(node)] = v

    bl_values = np.linspace(vdd, 0.0, points)
    sweep = dc_sweep(c, "VBL", bl_values, layout=layout, x0=x0)
    ql = sweep.voltage("ql")
    flipped = np.nonzero(ql < vdd / 2)[0]
    if len(flipped) == 0:
        raise MeasurementError(
            f"variant '{spec.variant}' cell cannot be written by a "
            f"full bitline swing")
    return float(bl_values[flipped[0]])


def write_latency(spec: SramSpec, dt: float = DEFAULT_DT,
                  settle_fraction: float = 0.95) -> float:
    """Write latency [s]: wordline edge until QL settles high.

    Writes a 1 into a cell storing 0 and waits for QL to reach
    ``settle_fraction * Vdd`` — the full-rail settle, which only the
    pull-up can complete (the access NMOS stops a threshold below the
    rail).  For the hybrid cell this therefore includes the NEMS
    pull-up/pull-down mechanical actuation — the hidden cost the paper
    does not quote, reported here as an extension metric.
    """
    cell = build_read_harness(spec)
    cell.write_pulse(1, t_start=spec.t_wordline - 0.1e-9,
                     duration=spec.t_read + 0.2e-9)
    tstop = spec.t_wordline + spec.t_read
    result = transient(cell.circuit, tstop, dt)
    t_wl = measure.first_cross(result.t, result.voltage("wl"),
                               spec.vdd / 2, "rise")
    try:
        t_flip = measure.first_cross(result.t, result.voltage("ql"),
                                     settle_fraction * spec.vdd,
                                     "rise", after=t_wl)
    except MeasurementError as err:
        raise MeasurementError(
            f"variant '{spec.variant}' failed to write within "
            f"{spec.t_read * 1e9:.1f} ns: {err}") from err
    return t_flip - t_wl

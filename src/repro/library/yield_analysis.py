"""Statistical SRAM yield: read-stability failure probability.

Section 5.1 of the paper notes that "the probability of read failures
(toggling of stored value during read operation) ... degrades with
scaling".  This module estimates that probability for each Figure 13
cell: Monte-Carlo Vth samples per cell transistor, the read SNM of each
sample, and a Gaussian-tail yield model.

A cell read-fails when its SNM falls to zero; with the sampled SNM
distribution approximately normal, the per-cell failure probability is
``Phi(-mu/sigma)`` and array-level yield follows from the cell count —
the standard cache-yield estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.ensemble import EnsembleSpec, ensemble_sweep
from repro.devices.mosfet import MosfetParams
from repro.errors import DesignError
from repro.library.sram import SramSpec, build_vtc_circuit
from repro.library.sram_metrics import seevinck_snm, static_noise_margin


@dataclass
class YieldEstimate:
    """Sampled SNM statistics and the derived yield numbers."""

    variant: str
    snm_mean: float     #: [V]
    snm_sigma: float    #: [V]
    samples: int

    @property
    def cell_failure_probability(self) -> float:
        """P(SNM <= 0) under the normal approximation."""
        if self.snm_sigma <= 0:
            return 0.0 if self.snm_mean > 0 else 1.0
        z = self.snm_mean / self.snm_sigma
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def array_yield(self, cells: int) -> float:
        """Probability an array of ``cells`` bits has no failing cell."""
        if cells < 1:
            raise DesignError(f"need at least one cell, got {cells}")
        p = self.cell_failure_probability
        if p >= 1.0:
            return 0.0
        return math.exp(cells * math.log1p(-p))


class _SampledSpec(SramSpec):
    """Spec whose MOSFET flavours carry per-device Vth shifts."""

    def __init__(self, base: SramSpec, shifts: Dict[str, float]):
        fields = {f: getattr(base, f)
                  for f in SramSpec.__dataclass_fields__}
        super().__init__(**fields)
        self._base = base
        self._shifts = shifts

    def flavor(self, device: str):
        kind, params = self._base.flavor(device)
        shift = self._shifts.get(device, 0.0)
        if kind == "mosfet" and shift:
            return (kind, params.with_vth_shift(shift))
        return (kind, params)


def draw_shift_samples(spec: SramSpec, sigma_rel: float = 0.05,
                       samples: int = 25,
                       seed: int = 11) -> List[Dict[str, float]]:
    """Draw the Monte-Carlo Vth shift maps for one cell variant.

    Each sample holds an independent shift for each of the six cell
    transistors (NEMS devices are geometry-limited and left unshifted,
    mirroring :mod:`repro.devices.corners`).  All randomness happens
    here, sequentially from one seeded generator, so the population is
    identical whether the per-sample evaluations then run serially or
    fan out across engine workers.
    """
    if sigma_rel < 0:
        raise DesignError("sigma_rel must be non-negative")
    names: List[str] = []
    sigmas: List[float] = []
    for device in ("NL", "NR", "PL", "PR", "AL", "AR"):
        kind, params = spec.flavor(device)
        if kind == "mosfet":
            names.append(device)
            sigmas.append(sigma_rel * params.vth0)
    # One vectorised draw; row-major standard_normal consumes the
    # stream exactly like the historical per-sample/per-device loop
    # (NEMS flavours never drew), so seeded populations are unchanged.
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((samples, len(names))) * np.array(sigmas)
    return [{n: float(v) for n, v in zip(names, row)} for row in matrix]


def snm_for_shifts(spec: SramSpec, shifts: Dict[str, float],
                   points: int = 61) -> float:
    """Read SNM [V] of one sampled cell — pure, picklable engine task."""
    sampled = _SampledSpec(spec, shifts)
    return float(static_noise_margin(sampled, points=points)[0])


def snm_for_shift_batch(spec: SramSpec,
                        shift_maps: List[Dict[str, float]],
                        points: int = 61) -> np.ndarray:
    """Read SNMs of a batch of sampled cells [V].

    The whole batch traces each inverter side in *one* stacked
    ensemble VTC sweep (see :mod:`repro.analysis.ensemble`) instead of
    a scalar sweep per (sample, side): the per-device shifts of each
    sample become per-sample threshold rows of the stacked solve.
    Pure and picklable, so engine jobs shard over it.
    """
    if not shift_maps:
        return np.zeros(0)
    v_in = np.linspace(0.0, spec.vdd, points)
    curves = {}
    for side in ("right", "left"):
        circuit = build_vtc_circuit(spec, side)
        present = {el.name for el in circuit.elements}
        maps = [{n: v for n, v in m.items() if n in present}
                for m in shift_maps]
        espec = EnsembleSpec.from_shift_maps(maps)
        sweep = ensemble_sweep(circuit, espec, "VIN", v_in)
        curves[side] = sweep.voltage("q")  # (points, samples)
    return np.array([
        seevinck_snm(v_in, curves["right"][:, s], curves["left"][:, s])
        for s in range(len(shift_maps))])


def sample_snm_distribution(spec: SramSpec, sigma_rel: float = 0.05,
                            samples: int = 25, seed: int = 11,
                            points: int = 61) -> np.ndarray:
    """Monte-Carlo read-SNM samples for one cell variant [V]."""
    shift_maps = draw_shift_samples(spec, sigma_rel, samples, seed)
    return snm_for_shift_batch(spec, shift_maps, points)


def estimate_from_samples(variant: str,
                          snm_values: np.ndarray) -> YieldEstimate:
    """Fit sampled SNM values into a yield estimate."""
    snm = np.asarray(snm_values, dtype=float)
    if snm.size < 2:
        raise DesignError(
            f"need at least two SNM samples to estimate yield, "
            f"got {snm.size}")
    return YieldEstimate(variant=variant,
                         snm_mean=float(snm.mean()),
                         snm_sigma=float(snm.std(ddof=1)),
                         samples=int(snm.size))


def estimate_yield(spec: SramSpec, sigma_rel: float = 0.05,
                   samples: int = 25, seed: int = 11) -> YieldEstimate:
    """Fit the sampled SNM distribution into a yield estimate."""
    snm = sample_snm_distribution(spec, sigma_rel, samples, seed)
    return estimate_from_samples(spec.variant, snm)

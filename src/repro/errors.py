"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for malformed circuit descriptions.

    Examples: duplicate element names, references to undeclared nodes,
    elements with the wrong number of terminals.
    """


class AnalysisError(ReproError):
    """Base class for numerical analysis failures."""


class ConvergenceError(AnalysisError):
    """Raised when the Newton solver fails to converge.

    Carries the residual norm and iteration count reached so callers can
    report diagnostics or retry with different homotopy settings.
    """

    def __init__(self, message: str, residual_norm: float = float("nan"),
                 iterations: int = 0):
        super().__init__(message)
        self.residual_norm = residual_norm
        self.iterations = iterations


class TimestepError(AnalysisError):
    """Raised when transient analysis cannot proceed below the minimum step."""


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be taken.

    Example: asking for a threshold crossing that never occurs within the
    simulated window.
    """


class CalibrationError(ReproError):
    """Raised when device calibration fails to meet its fitting tolerance."""


class DesignError(ReproError):
    """Raised for infeasible circuit-design requests.

    Example: a dynamic gate with zero fan-in, or a sleep-transistor sizing
    target that cannot be met within the allowed area budget.
    """

"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig11
    python -m repro run fig11 --jobs 4
    python -m repro run fig09 --quick --no-cache
    python -m repro run all --quick
    python -m repro stats
    python -m repro serve --port 8451
    python -m repro cache prune --max-bytes 512M

``run`` executes through :mod:`repro.engine`: ``--jobs N`` fans the
sweeps of engine-aware experiments out over N worker processes,
``--cache-dir``/``--no-cache`` control the content-addressed result
cache (on by default, under ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-nems-cmos``), ``--backend`` pins the linear-solver
backend (default ``auto``: sparse for large netlists, dense otherwise),
``--step-control`` pins the transient step control (default ``lte``,
see :doc:`docs/transient`), ``--eval`` selects the device-evaluation
mode (default ``batched``; ``scalar`` is the per-element reference
path), ``--bypass`` enables SPICE-style device bypass on top of
batched evaluation, ``--no-ensemble`` disables the stacked
lock-step ensemble path (Monte-Carlo/corner analyses then run their
sequential per-sample reference), ``--profile`` prints a
per-experiment phase breakdown (eval/assemble/solve/other), and
``stats`` prints the solver/cache telemetry report of the most recent
run — including the backend histogram, factorisation/fill-in counters,
transient step counters, the per-phase time split, the bypass hit rate
and the ensemble occupancy/fallback counters (``stats --json`` emits
the raw machine-readable report).

``serve`` exposes every registered experiment over an HTTP job API
(submit → job id → poll/tail events → fetch result) backed by a
persistent SQLite job store — see :mod:`repro.service` and
``docs/service.md``.  ``cache prune`` evicts least-recently-used
result-cache entries down to a byte budget.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import traceback
from typing import List, Optional, Tuple

from repro.analysis.options import (
    backend_override,
    ensemble_override,
    eval_override,
    step_control_override,
)
from repro.engine import config as engine_config
from repro.engine import telemetry

# The experiment registry lives in repro.experiments.registry so the
# HTTP service dispatches from the same table; re-exported here for
# backwards compatibility (tests and scripts monkeypatch cli.REGISTRY).
from repro.experiments.registry import (  # noqa: F401
    DESCRIPTIONS,
    REGISTRY,
    run_experiment,
    validate_params,
)


def _experiment_summary_table(rows: List[Tuple]) -> str:
    """Align the per-experiment wall-time / cache summary of `run all`."""
    header = ["experiment", "status", "wall [s]", "jobs", "cache hits",
              "failed points"]
    body = [[exp_id, status, f"{wall:.1f}", str(jobs), str(hits),
             str(failed)]
            for exp_id, status, wall, jobs, hits, failed in rows]
    widths = [max(len(r[i]) for r in [header] + body)
              for i in range(len(header))]
    lines = ["  ".join(c.ljust(w) for c, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _profile_table(rows: List[Tuple]) -> str:
    """Align the per-experiment phase breakdown of ``--profile``.

    ``other`` is everything outside the instrumented phases: netlist
    construction, waveform bookkeeping, engine overhead, and (for
    parallel runs) time the parent spent waiting on workers.
    """
    header = ["experiment", "wall [s]", "eval [s]", "assemble [s]",
              "solve [s]", "other [s]", "bypass"]
    body = []
    for exp_id, wall, ev, asm, sol, hits, evals in rows:
        other = max(wall - ev - asm - sol, 0.0)
        bypass = (f"{100.0 * hits / (hits + evals):.0f}%"
                  if hits + evals else "-")
        body.append([exp_id, f"{wall:.2f}", f"{ev:.2f}", f"{asm:.2f}",
                     f"{sol:.2f}", f"{other:.2f}", bypass])
    widths = [max(len(r[i]) for r in [header] + body)
              for i in range(len(header))]
    lines = ["  ".join(c.ljust(w) for c, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _save_report(cache_dir: str) -> None:
    """Persist the session telemetry for `python -m repro stats`."""
    try:
        telemetry.save_report(
            os.path.join(cache_dir, telemetry.REPORT_BASENAME))
    except OSError as err:
        print(f"warning: could not save telemetry report: {err}",
              file=sys.stderr)


def _parse_params(pairs: List[str]) -> dict:
    """Parse repeated ``--param KEY=VALUE`` overrides into a dict.

    Values are decoded as JSON (so numbers, booleans, lists and null
    arrive typed) with a fallback to the raw string.
    """
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--param expects KEY=VALUE, got '{pair}'")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _run_command(args) -> int:
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.param)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if params:
        if args.experiment == "all":
            print("error: --param applies to a single experiment, "
                  "not 'all'", file=sys.stderr)
            return 2
        problems = validate_params(args.experiment, params,
                                   quick=args.quick)
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 2
    cache_dir = args.cache_dir or engine_config.default_cache_dir()
    config = engine_config.EngineConfig(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir)
    run_all = args.experiment == "all"
    targets = list(REGISTRY) if run_all else [args.experiment]

    # The saved report describes *this* run only.
    telemetry.SESSION.reset()
    summary: List[Tuple] = []
    profile_rows: List[Tuple] = []
    failed_experiments: List[str] = []

    def profile_row(exp_id, wall, records):
        merged = telemetry.SolveStats()
        for record in records:
            merged.merge(record.solves)
        profile_rows.append((exp_id, wall, merged.eval_time,
                             merged.assemble_time, merged.solve_time,
                             merged.bypass_hits, merged.bypass_evals))

    with engine_config.configured(config), \
            backend_override(kind=args.backend), \
            step_control_override(args.step_control), \
            eval_override(mode=args.eval_mode,
                          bypass=args.bypass or None), \
            ensemble_override(False if args.no_ensemble else None):
        for exp_id in targets:
            snapshot = len(telemetry.SESSION.records)
            started = time.time()
            run_kwargs = {"params": params} if params else {}
            try:
                result = run_experiment(exp_id, quick=args.quick,
                                        **run_kwargs)
            except KeyError as err:
                print(err.args[0], file=sys.stderr)
                return 2
            except Exception:
                if not run_all:
                    raise
                # `run all` keeps going: one broken experiment must not
                # cost the remaining results.
                traceback.print_exc()
                failed_experiments.append(exp_id)
                records = telemetry.SESSION.records[snapshot:]
                summary.append((exp_id, "ERROR",
                                time.time() - started, len(records),
                                sum(r.cache_hit for r in records),
                                sum(not r.ok for r in records)))
                continue
            wall = time.time() - started
            print(result.to_text())
            print(f"   [{wall:.1f} s]\n")
            records = telemetry.SESSION.records[snapshot:]
            point_failures = sum(not r.ok for r in records)
            summary.append((exp_id,
                            "ok" if not point_failures else "partial",
                            wall, len(records),
                            sum(r.cache_hit for r in records),
                            point_failures))
            if args.profile:
                profile_row(exp_id, wall, records)
    _save_report(cache_dir)
    if args.profile and profile_rows:
        print(_profile_table(profile_rows))
        if run_all:
            print()
    if run_all:
        print(_experiment_summary_table(summary))
        if failed_experiments:
            print(f"\n{len(failed_experiments)} experiment(s) failed: "
                  f"{', '.join(failed_experiments)}", file=sys.stderr)
    return 1 if failed_experiments else 0


#: Size-suffix multipliers accepted by ``--max-bytes`` style flags.
_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30,
                  "t": 1 << 40}


def parse_size(text: str) -> int:
    """Parse a human byte size: ``250000``, ``64M``, ``1.5G``."""
    raw = text.strip().lower().removesuffix("b")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"cannot parse size '{text}' "
                         f"(examples: 250000, 64M, 1.5G)") from None
    if value < 0:
        raise ValueError(f"size must be >= 0, got '{text}'")
    return int(value * factor)


def _cache_command(args) -> int:
    from repro.engine.cache import ResultCache
    cache_dir = args.cache_dir or engine_config.default_cache_dir()
    if args.cache_command == "prune":
        try:
            budget = parse_size(args.max_bytes)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        pruned = ResultCache(cache_dir).prune(budget)
        print(f"pruned {pruned.removed} entr"
              f"{'y' if pruned.removed == 1 else 'ies'} "
              f"({pruned.freed_bytes} bytes) from {cache_dir}; "
              f"{pruned.remaining} left ({pruned.remaining_bytes} "
              f"bytes)")
        return 0
    print("usage: repro cache prune --max-bytes SIZE", file=sys.stderr)
    return 2


def _serve_command(args) -> int:
    from repro.service import ServiceConfig, serve
    cache_dir = (None if args.no_cache
                 else args.cache_dir or engine_config.default_cache_dir())
    data_dir = args.data_dir or os.path.join(
        args.cache_dir or engine_config.default_cache_dir(), "service")
    try:
        cache_max = (parse_size(args.cache_max_bytes)
                     if args.cache_max_bytes else None)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        data_dir=data_dir,
        cache_dir=cache_dir,
        cache_max_bytes=cache_max,
        engine_jobs=args.jobs,
        workers=args.workers,
        submissions_per_minute=args.rate,
        submission_burst=args.burst,
        max_running_per_tenant=args.tenant_concurrency,
    )
    try:
        serve(config, host=args.host, port=args.port)
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _stats_command(args) -> int:
    cache_dir = args.cache_dir or engine_config.default_cache_dir()
    path = os.path.join(cache_dir, telemetry.REPORT_BASENAME)
    try:
        report = telemetry.load_report(path)
    except (OSError, ValueError):
        print(f"no telemetry report at {path}; run an experiment "
              f"first (python -m repro run <id>)", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report, sys.stdout, indent=1)
        print()
    else:
        print(telemetry.report_to_text(report))
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Dadgour & "
                    "Banerjee, 'Hybrid NEMS-CMOS Circuits', DAC 2007.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("verify",
                   help="run analytic self-checks of the engine")
    runner = sub.add_parser("run", help="run an experiment")
    runner.add_argument("experiment",
                        help="experiment id from 'list', or 'all'")
    runner.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override one run() parameter "
                             "(repeatable; VALUE is parsed as JSON, "
                             "falling back to a plain string)")
    runner.add_argument("--quick", action="store_true",
                        help="reduced sweeps (faster, same shapes)")
    runner.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for engine-backed "
                             "sweeps (default: 1, serial)")
    runner.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed result "
                             "cache")
    runner.add_argument("--backend", default="auto",
                        choices=("auto", "dense", "sparse"),
                        help="linear-solver backend for all analyses "
                             "(default: auto — sparse once a netlist "
                             "reaches the size threshold)")
    runner.add_argument("--step-control", default=None,
                        choices=("lte", "iter"),
                        help="transient step control for all analyses "
                             "(default: lte — local-truncation-error "
                             "control; iter is the legacy Newton-"
                             "iteration heuristic)")
    runner.add_argument("--eval", dest="eval_mode", default=None,
                        choices=("batched", "scalar"),
                        help="device-evaluation mode (default: batched "
                             "— numpy group evaluation; scalar is the "
                             "per-element reference path)")
    runner.add_argument("--bypass", action="store_true",
                        help="enable SPICE-style device bypass: reuse "
                             "a device's cached evaluation while its "
                             "terminal voltages are unchanged within "
                             "tolerance (batched mode only)")
    runner.add_argument("--no-ensemble", action="store_true",
                        help="disable the stacked lock-step ensemble "
                             "path: Monte-Carlo/corner analyses fall "
                             "back to the sequential per-sample "
                             "reference (A/B numerics check; cached "
                             "separately from ensemble-mode results)")
    runner.add_argument("--profile", action="store_true",
                        help="print a per-experiment phase breakdown "
                             "(eval/assemble/solve/other) after the "
                             "run")
    runner.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or "
                             "~/.cache/repro-nems-cmos)")
    server = sub.add_parser(
        "serve",
        help="serve experiments over HTTP: submit jobs, poll status, "
             "fetch results (see docs/service.md)")
    server.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    server.add_argument("--port", type=int, default=8451,
                        help="TCP port (default: 8451; 0 picks an "
                             "ephemeral port)")
    server.add_argument("--data-dir", default=None, metavar="DIR",
                        help="service state: job store + artifacts "
                             "(default: <cache-dir>/service)")
    server.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="engine worker processes per running job "
                             "(default: 1)")
    server.add_argument("--workers", type=int, default=1, metavar="N",
                        help="concurrent experiment executor threads "
                             "(default: 1; solver policy and telemetry "
                             "are thread-local, so per-job attribution "
                             "stays exact at any N)")
    server.add_argument("--no-cache", action="store_true",
                        help="disable the shared result cache")
    server.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared result-cache directory (default: "
                             "$REPRO_CACHE_DIR or "
                             "~/.cache/repro-nems-cmos)")
    server.add_argument("--cache-max-bytes", default=None,
                        metavar="SIZE",
                        help="bound the shared cache: LRU-evict down "
                             "to SIZE (e.g. 512M, 2G; default: "
                             "unbounded)")
    server.add_argument("--rate", type=float, default=120.0,
                        metavar="N",
                        help="submissions per minute per tenant "
                             "(default: 120)")
    server.add_argument("--burst", type=int, default=20, metavar="N",
                        help="submission burst budget per tenant "
                             "(default: 20)")
    server.add_argument("--tenant-concurrency", type=int, default=2,
                        metavar="N",
                        help="max concurrently running jobs per "
                             "tenant (default: 2)")

    cache = sub.add_parser("cache", help="manage the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command")
    prune = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used entries down to a size budget")
    prune.add_argument("--max-bytes", required=True, metavar="SIZE",
                       help="target size, e.g. 250000, 64M, 1.5G")
    prune.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: "
                            "$REPRO_CACHE_DIR or "
                            "~/.cache/repro-nems-cmos)")

    stats = sub.add_parser(
        "stats", help="show solver/cache telemetry of the last run")
    stats.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="where the last run saved its report")
    stats.add_argument("--json", action="store_true",
                       help="print the raw JSON report instead of the "
                            "summary table (machine-readable; feeds "
                            "dashboards and the CI benchmark "
                            "artifacts)")

    args = parser.parse_args(argv)
    if args.command == "verify":
        from repro.verification import run_all
        results = run_all(verbose=True)
        return 0 if all(r.passed for r in results) else 3
    if args.command == "list":
        width = max(len(k) for k in REGISTRY)
        for exp_id in REGISTRY:
            print(f"  {exp_id:<{width}}  {DESCRIPTIONS[exp_id]}")
        return 0
    if args.command == "run":
        return _run_command(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "cache":
        return _cache_command(args)
    if args.command == "stats":
        return _stats_command(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig11
    python -m repro run fig11 --jobs 4
    python -m repro run fig09 --quick --no-cache
    python -m repro run all --quick
    python -m repro stats

``run`` executes through :mod:`repro.engine`: ``--jobs N`` fans the
sweeps of engine-aware experiments out over N worker processes,
``--cache-dir``/``--no-cache`` control the content-addressed result
cache (on by default, under ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-nems-cmos``), ``--backend`` pins the linear-solver
backend (default ``auto``: sparse for large netlists, dense otherwise),
``--step-control`` pins the transient step control (default ``lte``,
see :doc:`docs/transient`), ``--eval`` selects the device-evaluation
mode (default ``batched``; ``scalar`` is the per-element reference
path), ``--bypass`` enables SPICE-style device bypass on top of
batched evaluation, ``--no-ensemble`` disables the stacked
lock-step ensemble path (Monte-Carlo/corner analyses then run their
sequential per-sample reference), ``--profile`` prints a
per-experiment phase breakdown (eval/assemble/solve/other), and
``stats`` prints the solver/cache telemetry report of the most recent
run — including the backend histogram, factorisation/fill-in counters,
transient step counters, the per-phase time split, the bypass hit rate
and the ensemble occupancy/fallback counters (``stats --json`` emits
the raw machine-readable report).
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
import traceback
from typing import Dict, List, Optional, Tuple

from repro.analysis.options import (
    backend_override,
    ensemble_override,
    eval_override,
    step_control_override,
)
from repro.engine import config as engine_config
from repro.engine import telemetry

#: experiment id -> (module, quick-mode kwargs).  Quick mode trades
#: sweep density for runtime; both modes run real simulations.
REGISTRY: Dict[str, Tuple[str, dict]] = {
    "table1": ("repro.experiments.table1_devices", {}),
    "fig01": ("repro.experiments.fig01_itrs_trend", {}),
    "fig02": ("repro.experiments.fig02_swing_survey", {}),
    "fig09": ("repro.experiments.fig09_keeper_tradeoff",
              {"sigma_levels": (0.05, 0.15),
               "keeper_widths": (0.8e-6, 2e-6, 4e-6)}),
    "fig10": ("repro.experiments.fig10_fanout_sweep",
              {"fan_outs": (1, 3, 5)}),
    "fig11": ("repro.experiments.fig11_fanin_sweep",
              {"fan_ins": (4, 8, 12)}),
    "fig12": ("repro.experiments.fig12_pdp",
              {"loads": (1.0,), "activities": (0.0, 0.5, 1.0)}),
    "fig14": ("repro.experiments.fig14_butterfly", {"points": 81}),
    "fig15": ("repro.experiments.fig15_sram_comparison", {}),
    "fig17": ("repro.experiments.fig17_sleep_transistors",
              {"area_units": (1, 4, 16, 64), "delay_budget": None}),
    "resonator": ("repro.experiments.ext_resonator",
                  {"biases": (0.15, 0.40), "points": 61}),
    "cond-keeper": ("repro.experiments.ext_conditional_keeper", {}),
    "fig09-mc": ("repro.experiments.ext_fig09_montecarlo",
                 {"samples": 32}),
    "temperature": ("repro.experiments.ext_temperature", {}),
    "sram-array": ("repro.experiments.ext_sram_array",
                   {"row_counts": (32, 128),
                    "include_nems_access": False}),
    "power-breakdown": ("repro.experiments.ext_power_breakdown",
                        {"fan_in": 4, "fan_out": 1.0}),
    "write": ("repro.experiments.ext_write_analysis",
              {"variants": ("conventional", "hybrid")}),
    "yield": ("repro.experiments.ext_yield",
              {"variants": ("conventional", "hybrid"), "samples": 5}),
    "corners": ("repro.experiments.ext_corners",
                {"corners": ("TT", "SS", "FF")}),
    "static": ("repro.experiments.ext_static_comparison",
               {"fan_ins": (4, 12)}),
    "thermal": ("repro.experiments.ext_thermal_runaway",
                {"r_thermals": (20.0, 600.0)}),
    "domino": ("repro.experiments.ext_domino",
               {"stage_counts": (1, 2)}),
}

#: Descriptions shown by `list`.
DESCRIPTIONS = {
    "table1": "device I_ON/I_OFF calibration (Table 1)",
    "fig01": "ITRS scaling vs subthreshold leakage (Figure 1)",
    "fig02": "subthreshold swing survey (Figure 2)",
    "fig09": "keeper delay/noise-margin trade-off (Figure 9)",
    "fig10": "8-input OR vs fan-out (Figure 10)",
    "fig11": "OR vs fan-in: the crossover (Figure 11)",
    "fig12": "power-delay product vs activity (Figure 12)",
    "fig14": "SRAM butterfly curves / SNM (Figure 14)",
    "fig15": "SRAM latency & leakage comparison (Figure 15)",
    "fig17": "sleep transistor Ron/Ioff vs area (Figure 17)",
    "resonator": "[ext] RSG-MOSFET resonator (ref [22])",
    "cond-keeper": "[ext] conditional keeper at iso-NM (ref [24])",
    "fig09-mc": "[ext] Monte-Carlo check of the Figure 9 corners",
    "temperature": "[ext] leakage advantage vs temperature",
    "sram-array": "[ext] array-height reads + NEMS-access ablation",
    "power-breakdown": "[ext] itemised switching-energy audit",
    "write": "[ext] SRAM write margin & latency (hidden hybrid costs)",
    "yield": "[ext] Monte-Carlo read-stability yield per cell",
    "corners": "[ext] global corners: hybrid NM is corner-invariant",
    "static": "[ext] static vs dynamic vs hybrid OR (Section 4.1)",
    "thermal": "[ext] leakage-temperature feedback & runaway (ref [5])",
    "domino": "[ext] pipeline latency: the per-stage mechanical cost",
}


def run_experiment(exp_id: str, quick: bool = False):
    """Run one experiment by id and return its ExperimentResult."""
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment '{exp_id}' "
            f"(known: {', '.join(sorted(REGISTRY))})")
    module_name, quick_kwargs = REGISTRY[exp_id]
    module = importlib.import_module(module_name)
    kwargs = quick_kwargs if quick else {}
    return module.run(**kwargs)


def _experiment_summary_table(rows: List[Tuple]) -> str:
    """Align the per-experiment wall-time / cache summary of `run all`."""
    header = ["experiment", "status", "wall [s]", "jobs", "cache hits",
              "failed points"]
    body = [[exp_id, status, f"{wall:.1f}", str(jobs), str(hits),
             str(failed)]
            for exp_id, status, wall, jobs, hits, failed in rows]
    widths = [max(len(r[i]) for r in [header] + body)
              for i in range(len(header))]
    lines = ["  ".join(c.ljust(w) for c, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _profile_table(rows: List[Tuple]) -> str:
    """Align the per-experiment phase breakdown of ``--profile``.

    ``other`` is everything outside the instrumented phases: netlist
    construction, waveform bookkeeping, engine overhead, and (for
    parallel runs) time the parent spent waiting on workers.
    """
    header = ["experiment", "wall [s]", "eval [s]", "assemble [s]",
              "solve [s]", "other [s]", "bypass"]
    body = []
    for exp_id, wall, ev, asm, sol, hits, evals in rows:
        other = max(wall - ev - asm - sol, 0.0)
        bypass = (f"{100.0 * hits / (hits + evals):.0f}%"
                  if hits + evals else "-")
        body.append([exp_id, f"{wall:.2f}", f"{ev:.2f}", f"{asm:.2f}",
                     f"{sol:.2f}", f"{other:.2f}", bypass])
    widths = [max(len(r[i]) for r in [header] + body)
              for i in range(len(header))]
    lines = ["  ".join(c.ljust(w) for c, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _save_report(cache_dir: str) -> None:
    """Persist the session telemetry for `python -m repro stats`."""
    try:
        telemetry.save_report(
            os.path.join(cache_dir, telemetry.REPORT_BASENAME))
    except OSError as err:
        print(f"warning: could not save telemetry report: {err}",
              file=sys.stderr)


def _run_command(args) -> int:
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or engine_config.default_cache_dir()
    config = engine_config.EngineConfig(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir)
    run_all = args.experiment == "all"
    targets = list(REGISTRY) if run_all else [args.experiment]

    # The saved report describes *this* run only.
    telemetry.SESSION.reset()
    summary: List[Tuple] = []
    profile_rows: List[Tuple] = []
    failed_experiments: List[str] = []

    def profile_row(exp_id, wall, records):
        merged = telemetry.SolveStats()
        for record in records:
            merged.merge(record.solves)
        profile_rows.append((exp_id, wall, merged.eval_time,
                             merged.assemble_time, merged.solve_time,
                             merged.bypass_hits, merged.bypass_evals))

    with engine_config.configured(config), \
            backend_override(kind=args.backend), \
            step_control_override(args.step_control), \
            eval_override(mode=args.eval_mode,
                          bypass=args.bypass or None), \
            ensemble_override(False if args.no_ensemble else None):
        for exp_id in targets:
            snapshot = len(telemetry.SESSION.records)
            started = time.time()
            try:
                result = run_experiment(exp_id, quick=args.quick)
            except KeyError as err:
                print(err.args[0], file=sys.stderr)
                return 2
            except Exception:
                if not run_all:
                    raise
                # `run all` keeps going: one broken experiment must not
                # cost the remaining results.
                traceback.print_exc()
                failed_experiments.append(exp_id)
                records = telemetry.SESSION.records[snapshot:]
                summary.append((exp_id, "ERROR",
                                time.time() - started, len(records),
                                sum(r.cache_hit for r in records),
                                sum(not r.ok for r in records)))
                continue
            wall = time.time() - started
            print(result.to_text())
            print(f"   [{wall:.1f} s]\n")
            records = telemetry.SESSION.records[snapshot:]
            point_failures = sum(not r.ok for r in records)
            summary.append((exp_id,
                            "ok" if not point_failures else "partial",
                            wall, len(records),
                            sum(r.cache_hit for r in records),
                            point_failures))
            if args.profile:
                profile_row(exp_id, wall, records)
    _save_report(cache_dir)
    if args.profile and profile_rows:
        print(_profile_table(profile_rows))
        if run_all:
            print()
    if run_all:
        print(_experiment_summary_table(summary))
        if failed_experiments:
            print(f"\n{len(failed_experiments)} experiment(s) failed: "
                  f"{', '.join(failed_experiments)}", file=sys.stderr)
    return 1 if failed_experiments else 0


def _stats_command(args) -> int:
    cache_dir = args.cache_dir or engine_config.default_cache_dir()
    path = os.path.join(cache_dir, telemetry.REPORT_BASENAME)
    try:
        report = telemetry.load_report(path)
    except (OSError, ValueError):
        print(f"no telemetry report at {path}; run an experiment "
              f"first (python -m repro run <id>)", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report, sys.stdout, indent=1)
        print()
    else:
        print(telemetry.report_to_text(report))
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Dadgour & "
                    "Banerjee, 'Hybrid NEMS-CMOS Circuits', DAC 2007.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("verify",
                   help="run analytic self-checks of the engine")
    runner = sub.add_parser("run", help="run an experiment")
    runner.add_argument("experiment",
                        help="experiment id from 'list', or 'all'")
    runner.add_argument("--quick", action="store_true",
                        help="reduced sweeps (faster, same shapes)")
    runner.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for engine-backed "
                             "sweeps (default: 1, serial)")
    runner.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed result "
                             "cache")
    runner.add_argument("--backend", default="auto",
                        choices=("auto", "dense", "sparse"),
                        help="linear-solver backend for all analyses "
                             "(default: auto — sparse once a netlist "
                             "reaches the size threshold)")
    runner.add_argument("--step-control", default=None,
                        choices=("lte", "iter"),
                        help="transient step control for all analyses "
                             "(default: lte — local-truncation-error "
                             "control; iter is the legacy Newton-"
                             "iteration heuristic)")
    runner.add_argument("--eval", dest="eval_mode", default=None,
                        choices=("batched", "scalar"),
                        help="device-evaluation mode (default: batched "
                             "— numpy group evaluation; scalar is the "
                             "per-element reference path)")
    runner.add_argument("--bypass", action="store_true",
                        help="enable SPICE-style device bypass: reuse "
                             "a device's cached evaluation while its "
                             "terminal voltages are unchanged within "
                             "tolerance (batched mode only)")
    runner.add_argument("--no-ensemble", action="store_true",
                        help="disable the stacked lock-step ensemble "
                             "path: Monte-Carlo/corner analyses fall "
                             "back to the sequential per-sample "
                             "reference (A/B numerics check; cached "
                             "separately from ensemble-mode results)")
    runner.add_argument("--profile", action="store_true",
                        help="print a per-experiment phase breakdown "
                             "(eval/assemble/solve/other) after the "
                             "run")
    runner.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or "
                             "~/.cache/repro-nems-cmos)")
    stats = sub.add_parser(
        "stats", help="show solver/cache telemetry of the last run")
    stats.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="where the last run saved its report")
    stats.add_argument("--json", action="store_true",
                       help="print the raw JSON report instead of the "
                            "summary table (machine-readable; feeds "
                            "dashboards and the CI benchmark "
                            "artifacts)")

    args = parser.parse_args(argv)
    if args.command == "verify":
        from repro.verification import run_all
        results = run_all(verbose=True)
        return 0 if all(r.passed for r in results) else 3
    if args.command == "list":
        width = max(len(k) for k in REGISTRY)
        for exp_id in REGISTRY:
            print(f"  {exp_id:<{width}}  {DESCRIPTIONS[exp_id]}")
        return 0
    if args.command == "run":
        return _run_command(args)
    if args.command == "stats":
        return _stats_command(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    raise SystemExit(main())

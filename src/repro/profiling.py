"""Process-wide phase counters for the simulation hot path.

The assembler and the linear-solver wrapper attribute their wall time
to one of three phases — device *eval* (model evaluation: currents,
charges, derivatives), *assemble* (folding stamps into the matrix and
RHS), and *solve* (the linear solve) — and the batched evaluator counts
how many per-device evaluations the SPICE-style bypass skipped.  The
counters are plain module globals so the instrumented code stays free
of object plumbing; consumers (``SolveEvent`` emission, the ``--profile``
CLI flag, benchmarks) take a :func:`snapshot` before a region of
interest and read the :func:`delta` afterwards.

Counters are cumulative for the life of the process and are never reset
behind a reader's back; :func:`reset` exists for tests that want a clean
zero to assert against.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]

#: Cumulative per-process phase counters.  Times are seconds; the two
#: bypass counters tally device-model evaluations skipped vs performed
#: while bypass was active.
COUNTERS: Dict[str, Number] = {
    "eval_time": 0.0,
    "assemble_time": 0.0,
    "solve_time": 0.0,
    "bypass_hits": 0,
    "bypass_evals": 0,
}


def snapshot() -> Dict[str, Number]:
    """Copy of the current counter values."""
    return dict(COUNTERS)


def delta(before: Dict[str, Number]) -> Dict[str, Number]:
    """Per-key growth of the counters since ``before``.

    Keys absent from ``before`` (an older snapshot, or the empty dict
    used when observers are off) count from zero.
    """
    return {key: value - before.get(key, 0)
            for key, value in COUNTERS.items()}


def reset() -> None:
    """Zero every counter (test helper)."""
    for key in COUNTERS:
        COUNTERS[key] = 0.0 if key.endswith("_time") else 0

"""Per-thread phase counters for the simulation hot path.

The assembler and the linear-solver wrapper attribute their wall time
to one of three phases — device *eval* (model evaluation: currents,
charges, derivatives), *assemble* (folding stamps into the matrix and
RHS), and *solve* (the linear solve) — and the batched evaluator counts
how many per-device evaluations the SPICE-style bypass skipped.  The
counters keep their dict-like ``COUNTERS["key"] += x`` interface so the
instrumented code stays free of object plumbing; consumers
(``SolveEvent`` emission, the ``--profile`` CLI flag, benchmarks) take
a :func:`snapshot` before a region of interest and read the
:func:`delta` afterwards.

The counters are **thread-local**: each thread accumulates only the
work it performed itself, so two service workers (or any two threads
driving solves concurrently) never bleed eval/assemble/solve time or
bypass hits into each other's :class:`~repro.analysis.solver.
SolveEvent` deltas.  Within a thread they are cumulative for the life
of the thread and never reset behind a reader's back; :func:`reset`
exists for tests that want a clean zero to assert against.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Union

Number = Union[int, float]

#: Counter names and their zero values.
_ZEROS: Dict[str, Number] = {
    "eval_time": 0.0,
    "assemble_time": 0.0,
    "solve_time": 0.0,
    "bypass_hits": 0,
    "bypass_evals": 0,
}


class _ThreadLocalCounters:
    """Dict-shaped facade over per-thread counter storage."""

    def __init__(self):
        self._local = threading.local()

    def _dict(self) -> Dict[str, Number]:
        counters = getattr(self._local, "counters", None)
        if counters is None:
            counters = self._local.counters = dict(_ZEROS)
        return counters

    def __getitem__(self, key: str) -> Number:
        return self._dict()[key]

    def __setitem__(self, key: str, value: Number) -> None:
        self._dict()[key] = value

    def __iter__(self) -> Iterator[str]:
        return iter(self._dict())

    def __contains__(self, key: str) -> bool:
        return key in self._dict()

    def items(self):
        return self._dict().items()

    def keys(self):
        return self._dict().keys()


#: Cumulative per-thread phase counters.  Times are seconds; the two
#: bypass counters tally device-model evaluations skipped vs performed
#: while bypass was active.
COUNTERS = _ThreadLocalCounters()


def snapshot() -> Dict[str, Number]:
    """Copy of the calling thread's current counter values."""
    return dict(COUNTERS.items())


def delta(before: Dict[str, Number]) -> Dict[str, Number]:
    """Per-key growth of this thread's counters since ``before``.

    Keys absent from ``before`` (an older snapshot, or the empty dict
    used when observers are off) count from zero.
    """
    return {key: value - before.get(key, 0)
            for key, value in COUNTERS.items()}


def reset() -> None:
    """Zero the calling thread's counters (test helper)."""
    for key, zero in _ZEROS.items():
        COUNTERS[key] = zero

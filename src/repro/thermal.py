"""Self-consistent temperature-leakage estimation (paper ref [5]).

The paper's introduction highlights the feedback loop Banerjee et al.
formalised: leakage power raises die temperature through the package's
thermal resistance, and temperature raises leakage exponentially.  The
fixed point

    T = T_ambient + R_th * P(T)

can run away for leaky designs.  This module solves that fixed point
for any temperature-to-power callable and provides the canonical
application: comparing the thermal operating point of CMOS versus
hybrid NEMS-CMOS leakage at equal logic capacity — NEMS leakage is
athermal, so the hybrid loop barely couples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Tuple

from repro.devices.mosfet import mosfet_current, nmos_90nm
from repro.devices.nemfet import nemfet_90nm
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ThermalEnvironment:
    """Package/ambient description.

    ``r_thermal`` is the junction-to-ambient thermal resistance in
    kelvin per watt, scaled to whatever block the power callable
    describes.
    """

    t_ambient: float = 318.15   #: [K] (45 C system ambient)
    r_thermal: float = 20.0     #: [K/W]
    t_max: float = 500.0        #: runaway declaration threshold [K]


def solve_operating_temperature(
        power_at: Callable[[float], float],
        env: ThermalEnvironment = ThermalEnvironment(),
        tol: float = 1e-3, max_iterations: int = 200
) -> Tuple[float, float]:
    """Solve ``T = T_amb + R_th * P(T)`` by damped fixed-point iteration.

    Returns ``(temperature [K], power [W])``.  Raises
    :class:`AnalysisError` when the loop exceeds ``env.t_max`` —
    thermal runaway: the leakage-temperature feedback has no stable
    fixed point below the ceiling.
    """
    t = env.t_ambient
    for _ in range(max_iterations):
        p = power_at(t)
        if p < 0:
            raise AnalysisError("power callable returned negative power")
        t_new = env.t_ambient + env.r_thermal * p
        if t_new > env.t_max:
            raise AnalysisError(
                f"thermal runaway: T exceeded {env.t_max:.0f} K "
                f"(P = {p:.3g} W)")
        # Damping keeps strongly-coupled loops convergent.
        t_next = 0.5 * (t + t_new)
        if abs(t_next - t) < tol:
            return t_next, power_at(t_next)
        t = t_next
    raise AnalysisError(
        f"thermal fixed point did not converge in {max_iterations} "
        f"iterations")


def cmos_block_leakage(total_width: float, vdd: float = 1.2
                       ) -> Callable[[float], float]:
    """Leakage power of ``total_width`` metres of OFF NMOS at ``T``.

    A standard leakage proxy for a logic block: half the transistor
    width is OFF at any time; the OFF devices see full V_DS.
    """
    base = nmos_90nm()

    def power_at(temperature: float) -> float:
        params = replace(base, temperature=temperature)
        i_off = abs(mosfet_current(params, total_width, 0.0, vdd,
                                   0.0)[0])
        return i_off * vdd

    return power_at


def hybrid_block_leakage(total_width: float, vdd: float = 1.2,
                         gated_fraction: float = 0.95
                         ) -> Callable[[float], float]:
    """Leakage of the same block with NEMS power gating.

    ``gated_fraction`` of the width sits behind released NEMS switches
    (athermal floor leakage); the remainder stays CMOS (always-on
    control logic).
    """
    if not 0.0 <= gated_fraction <= 1.0:
        raise AnalysisError("gated_fraction must be in [0, 1]")
    nems = nemfet_90nm()
    cmos = cmos_block_leakage((1.0 - gated_fraction) * total_width, vdd)

    def power_at(temperature: float) -> float:
        i_floor = nems.i_floor_per_width * gated_fraction * total_width
        return cmos(temperature) + i_floor * vdd

    return power_at


def thermal_comparison(total_width: float = 1.0,
                       env: ThermalEnvironment = ThermalEnvironment()):
    """Operating points of the CMOS and hybrid blocks.

    Returns ``{(label): (T, P)}``; a label maps to ``None`` when that
    block runs away thermally.
    """
    results = {}
    for label, power in (("cmos", cmos_block_leakage(total_width)),
                         ("hybrid", hybrid_block_leakage(total_width))):
        try:
            results[label] = solve_operating_temperature(power, env)
        except AnalysisError:
            results[label] = None
    return results

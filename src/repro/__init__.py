"""repro — Hybrid NEMS-CMOS circuit design and analysis library.

A from-scratch reproduction of "Design and Analysis of Hybrid NEMS-CMOS
Circuits for Ultra Low-Power Applications" (Dadgour & Banerjee, DAC 2007):
a pure-Python MNA circuit simulator, calibrated 90 nm MOSFET and
electromechanical NEMFET compact models, and the paper's three hybrid
circuit applications (wide fan-in dynamic OR gates, SRAM cells, sleep
transistors) together with every table/figure experiment.

Quick start::

    from repro import Circuit, dc_sweep
    from repro.devices import Nemfet, nemfet_90nm

    c = Circuit("nemfet")
    c.vsource("VG", "g", "0", 0.0)
    c.vsource("VD", "d", "0", 1.2)
    c.add(Nemfet("M1", "d", "g", "0", nemfet_90nm(), width=1e-6))
    sweep = dc_sweep(c, "VG", [0.0, 0.2, 0.4, 0.6])
    print(sweep.state("M1", "position"))  # watch the beam pull in

See ``repro.experiments`` for the per-figure reproduction entry points.
"""

from repro.circuit import Circuit
from repro.circuit.waveforms import DC, Pulse, PiecewiseLinear, Sine
from repro.analysis import (
    operating_point,
    dc_sweep,
    transient,
    measure,
    BackendOptions,
    NewtonOptions,
    TransientOptions,
    backend_override,
)
from repro.errors import (
    ReproError,
    NetlistError,
    AnalysisError,
    ConvergenceError,
    TimestepError,
    MeasurementError,
    CalibrationError,
    DesignError,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "DC",
    "Pulse",
    "PiecewiseLinear",
    "Sine",
    "operating_point",
    "dc_sweep",
    "transient",
    "measure",
    "BackendOptions",
    "NewtonOptions",
    "TransientOptions",
    "backend_override",
    "ReproError",
    "NetlistError",
    "AnalysisError",
    "ConvergenceError",
    "TimestepError",
    "MeasurementError",
    "CalibrationError",
    "DesignError",
    "__version__",
]

"""Subthreshold-swing survey across device families (Figure 2).

The paper's Figure 2 compares minimum reported subthreshold swings for
classical and emerging devices (refs [7]-[12]).  The surveyed values are
tabulated here; the Figure 2 experiment additionally *measures* the
swings of this library's own device models (bulk CMOS compact model and
the electromechanical NEMFET) and checks that they land on the right
side of the 60 mV/decade thermionic limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.units import thermal_voltage


@dataclass(frozen=True)
class SwingEntry:
    """One surveyed device family."""

    device: str
    swing_mv_per_dec: float
    reference: str
    #: Whether the mechanism is limited by thermionic emission (kT/q).
    thermionic: bool


#: Values as surveyed in the paper's Figure 2.
SWING_SURVEY: Tuple[SwingEntry, ...] = (
    SwingEntry("Bulk CMOS", 85.0, "[6]", True),
    SwingEntry("FD-SOI", 67.0, "[9]", True),
    SwingEntry("FinFET", 63.0, "[9]", True),
    SwingEntry("T-CNFET", 40.0, "[7][8]", False),
    SwingEntry("NW-FET", 35.0, "[10]", False),
    SwingEntry("IMOS", 8.9, "[11]", False),
    SwingEntry("NEMS (SG-MOSFET)", 2.0, "[12]", False),
)


def thermionic_limit(temperature: float = 300.15) -> float:
    """The 60 mV/decade room-temperature swing limit [mV/decade].

    ``S_min = (kT/q) ln(10)`` — no conventional FET can switch more
    steeply; the electromechanical devices beat it because the gate
    *moves* instead of modulating a thermal barrier.
    """
    return thermal_voltage(temperature) * math.log(10.0) * 1e3


def survey_violations() -> Tuple[SwingEntry, ...]:
    """Surveyed thermionic devices that would break the kT/q limit.

    Returns an empty tuple when the survey is self-consistent (it is) —
    used as a data-integrity check by the tests.
    """
    limit = thermionic_limit()
    return tuple(e for e in SWING_SURVEY
                 if e.thermionic and e.swing_mv_per_dec < limit)

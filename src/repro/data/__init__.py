"""Background data sets: ITRS scaling (Figure 1) and the subthreshold
swing survey (Figure 2)."""

from repro.data.itrs import ItrsNode, ITRS_NODES, subthreshold_leakage_trend
from repro.data.swing_survey import SWING_SURVEY, SwingEntry

__all__ = [
    "ItrsNode",
    "ITRS_NODES",
    "subthreshold_leakage_trend",
    "SWING_SURVEY",
    "SwingEntry",
]

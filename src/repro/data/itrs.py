"""ITRS-style technology scaling trend (the paper's Figure 1).

Figure 1 plots the supply/threshold voltage scaling across nodes and the
resulting explosion of subthreshold leakage current.  The table below
follows the ITRS high-performance roadmap values in circulation at the
paper's writing (2006/2007 editions); the leakage trend is regenerated
from the standard subthreshold model::

    I_off = I0 * 10 ** (-Vth / S)

with the swing ``S`` degrading slightly at short channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ItrsNode:
    """One technology node of the scaling roadmap."""

    node_nm: float   #: drawn feature size [nm]
    year: int        #: approximate production year
    vdd: float       #: nominal supply [V]
    vth: float       #: nominal threshold [V]
    swing_mv: float  #: subthreshold swing [mV/decade]


#: High-performance logic roadmap, 250 nm through 22 nm.
ITRS_NODES: Tuple[ItrsNode, ...] = (
    ItrsNode(250, 1997, 2.50, 0.500, 85.0),
    ItrsNode(180, 1999, 1.80, 0.450, 86.0),
    ItrsNode(130, 2001, 1.30, 0.400, 88.0),
    ItrsNode(90, 2004, 1.20, 0.350, 90.0),
    ItrsNode(65, 2007, 1.10, 0.300, 95.0),
    ItrsNode(45, 2010, 1.00, 0.250, 100.0),
    ItrsNode(32, 2013, 0.90, 0.220, 105.0),
    ItrsNode(22, 2016, 0.80, 0.200, 110.0),
)

#: Leakage prefactor chosen so the 90 nm node reproduces the paper's
#: Table 1 CMOS I_OFF of 50 nA/um.
_I0_90NM_ANCHOR = 50e-9 / 1e-6  # A/m at the 90 nm node


def _prefactor() -> float:
    ref = next(n for n in ITRS_NODES if n.node_nm == 90)
    return _I0_90NM_ANCHOR * 10.0 ** (ref.vth / (ref.swing_mv * 1e-3))


def subthreshold_leakage(node: ItrsNode) -> float:
    """Subthreshold OFF current per metre of width at a node [A/m]."""
    return _prefactor() * 10.0 ** (-node.vth / (node.swing_mv * 1e-3))


def subthreshold_leakage_trend() -> List[Tuple[float, float, float, float]]:
    """Figure 1 data rows: ``(node_nm, vdd, vth, i_off_per_um)``.

    ``i_off_per_um`` is in amperes per micron of device width.
    """
    return [(n.node_nm, n.vdd, n.vth, subthreshold_leakage(n) * 1e-6)
            for n in ITRS_NODES]


def leakage_growth_per_generation() -> float:
    """Geometric-mean leakage growth factor between adjacent nodes."""
    trend = [subthreshold_leakage(n) for n in ITRS_NODES]
    ratios = [b / a for a, b in zip(trend, trend[1:])]
    product = 1.0
    for r in ratios:
        product *= r
    return product ** (1.0 / len(ratios))

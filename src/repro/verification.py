"""Installation self-checks: simulate, compare against closed forms.

``python -m repro verify`` (or :func:`run_all`) executes a battery of
small problems whose answers are known analytically — a voltage
divider, an RC time constant, an RLC resonance, the MOSFET calibration
anchors, and the NEMFET pull-in voltage — and reports pass/fail per
check.  Useful as a smoke test after installation or modification, and
as living documentation of the numerical accuracy the engine achieves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

import numpy as np


@dataclass
class CheckResult:
    """Outcome of one verification check."""

    name: str
    measured: float
    expected: float
    tolerance: float  #: allowed relative error

    @property
    def error(self) -> float:
        if self.expected == 0:
            return abs(self.measured)
        return abs(self.measured - self.expected) / abs(self.expected)

    @property
    def passed(self) -> bool:
        return self.error <= self.tolerance

    def render(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return (f"[{status}] {self.name}: measured {self.measured:.6g},"
                f" expected {self.expected:.6g} "
                f"(err {self.error * 100:.3f}%, tol "
                f"{self.tolerance * 100:g}%)")


def _check_divider() -> CheckResult:
    from repro import Circuit, operating_point

    c = Circuit("verify_divider")
    c.vsource("V1", "in", "0", 3.0)
    c.resistor("R1", "in", "mid", 2e3)
    c.resistor("R2", "mid", "0", 1e3)
    op = operating_point(c)
    return CheckResult("resistive divider", op.voltage("mid"), 1.0,
                       1e-9)


def _check_rc_time_constant() -> CheckResult:
    from repro import Circuit, Pulse, transient, TransientOptions

    c = Circuit("verify_rc")
    c.vsource("V1", "in", "0", Pulse(0, 1, td=0.0, tr=1e-12, pw=1.0))
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 1e-12)
    # Trapezoidal: the documented method for smooth waveforms (see
    # docs/transient.md); under LTE control it holds the closed form to
    # ~0.02% at a fraction of the backward-Euler step count.
    res = transient(c, 5e-9, 2e-12,
                    options=TransientOptions(method="trap"))
    v_tau = float(np.interp(1e-9, res.t, res.voltage("out")))
    return CheckResult("RC step at t = tau", v_tau,
                       1 - math.exp(-1), 0.01)


def _check_rlc_resonance() -> CheckResult:
    from repro import Circuit
    from repro.analysis.ac import ac_analysis

    c = Circuit("verify_rlc")
    src = c.vsource("V1", "in", "0", 0.0)
    src.ac = 1.0
    c.resistor("R1", "in", "mid", 50.0)
    c.inductor("L1", "mid", "out", 1e-6)
    c.capacitor("C1", "out", "0", 1e-12)
    f0 = 1.0 / (2 * math.pi * math.sqrt(1e-6 * 1e-12))
    res = ac_analysis(c, [f0])
    i_res = abs(res.branch_current("L1")[0])
    return CheckResult("series RLC current at resonance", i_res,
                       1.0 / 50.0, 0.01)


def _check_mosfet_ion() -> CheckResult:
    from repro.devices.mosfet import mosfet_current, nmos_90nm

    i_on = mosfet_current(nmos_90nm(), 1e-6, 1.2, 1.2, 0.0)[0]
    return CheckResult("NMOS I_ON (Table 1)", i_on * 1e6, 1110.0, 0.02)


def _check_nemfet_pull_in() -> CheckResult:
    import numpy as np

    from repro import Circuit, dc_sweep
    from repro.devices.nemfet import Nemfet, nemfet_90nm

    params = nemfet_90nm()
    c = Circuit("verify_pullin")
    c.vsource("VG", "g", "0", 0.0)
    c.vsource("VD", "d", "0", 1.2)
    c.add(Nemfet("M1", "d", "g", "0", params, 1e-6))
    vg = np.linspace(0.3, 0.6, 61)
    sweep = dc_sweep(c, "VG", vg)
    u = sweep.state("M1", "position")
    jump = int(np.argmax(np.diff(u)))
    measured = 0.5 * (vg[jump] + vg[jump + 1])
    return CheckResult("NEMFET pull-in vs closed form", measured,
                       params.pull_in_voltage, 0.03)


def _check_energy_conservation() -> CheckResult:
    from repro import Circuit, Pulse, transient, TransientOptions
    from repro.analysis import measure

    c = Circuit("verify_energy")
    c.vsource("V1", "in", "0", Pulse(0, 1, td=0.2e-9, tr=1e-12,
                                     pw=1.0))
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 1e-12)
    res = transient(c, 12e-9, 4e-12,
                    options=TransientOptions(method="trap"))
    energy = measure.supply_energy(res, "V1")
    return CheckResult("source energy charging C through R (C*V^2)",
                       energy * 1e12, 1.0, 0.05)


#: The full check battery in execution order.
CHECKS: List[Callable[[], CheckResult]] = [
    _check_divider,
    _check_rc_time_constant,
    _check_rlc_resonance,
    _check_mosfet_ion,
    _check_nemfet_pull_in,
    _check_energy_conservation,
]


def run_all(verbose: bool = True) -> List[CheckResult]:
    """Run every verification check; returns the results."""
    results = []
    for check in CHECKS:
        result = check()
        results.append(result)
        if verbose:
            print(result.render())
    if verbose:
        failed = sum(1 for r in results if not r.passed)
        print(f"{len(results) - failed}/{len(results)} checks passed")
    return results

"""Tests for array-level SRAM analysis and the NEMS-access ablation."""

import pytest

from repro.errors import DesignError
from repro.library.sram import SramSpec
from repro.library.sram_array import (
    ArraySpec,
    array_read_latency,
    build_array_read_harness,
    nems_access_spec,
)
from repro.library.sram_metrics import read_latency


class TestArraySpec:
    def test_rejects_zero_rows(self):
        with pytest.raises(DesignError):
            ArraySpec(rows=0)

    def test_single_row_has_no_leakers(self):
        cell = build_array_read_harness(ArraySpec(rows=1))
        assert "MLEAKL" not in cell.circuit

    def test_leakers_lumped_width(self):
        spec = ArraySpec(rows=65)
        cell = build_array_read_harness(spec)
        leaker = cell.circuit["MLEAKL"]
        assert leaker.width == pytest.approx(64 * spec.cell.w_access)

    def test_bitline_capacitance_grows(self):
        small = build_array_read_harness(ArraySpec(rows=2))
        big = build_array_read_harness(ArraySpec(rows=256))
        assert big.circuit["CBL"].capacitance \
            > small.circuit["CBL"].capacitance


class TestArrayLatency:
    def test_latency_grows_with_rows(self):
        lat32 = array_read_latency(ArraySpec(rows=32))
        lat256 = array_read_latency(ArraySpec(rows=256))
        assert lat256 > 1.5 * lat32

    def test_leaky_corner_slower(self):
        nominal = array_read_latency(ArraySpec(rows=256))
        leaky = array_read_latency(ArraySpec(rows=256),
                                   leaker_vth_shift=-0.085)
        assert leaky > nominal

    def test_hybrid_penalty_persists_at_array_level(self):
        conv = array_read_latency(ArraySpec(cell=SramSpec(), rows=64))
        hyb = array_read_latency(
            ArraySpec(cell=SramSpec(variant="hybrid"), rows=64))
        assert 1.05 * conv < hyb < 2.0 * conv


class TestNemsAccess:
    def test_flavor_override(self):
        spec = nems_access_spec()
        for device in ("AL", "AR", "NL", "PR"):
            kind, _ = spec.flavor(device)
            assert kind == "nemfet", device

    def test_huge_latency_impact(self):
        """Quantifies the paper's Section 5.3 rejection: NEMS access
        devices put a mechanical actuation in every read."""
        conv = read_latency(SramSpec())
        rejected = read_latency(nems_access_spec())
        assert rejected > 5 * conv

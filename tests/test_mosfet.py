"""Tests for the 90 nm MOSFET compact model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.mosfet import (
    HVT_SHIFT,
    Mosfet,
    mosfet_current,
    nmos_90nm,
    nmos_90nm_hvt,
    pmos_90nm,
    pmos_90nm_hvt,
    VDD_90NM,
)
from repro.errors import NetlistError

VDD = VDD_90NM
W = 1e-6  # 1 um


class TestCalibration:
    def test_nmos_table1_anchors(self):
        p = nmos_90nm()
        i_on = mosfet_current(p, W, VDD, VDD, 0.0)[0]
        i_off = mosfet_current(p, W, 0.0, VDD, 0.0)[0]
        assert i_on == pytest.approx(1110e-6, rel=0.02)
        assert i_off == pytest.approx(50e-9, rel=0.02)

    def test_pmos_anchors(self):
        p = pmos_90nm()
        i_on = abs(mosfet_current(p, W, -VDD + VDD - VDD, 0.0, VDD)[0])
        # Standard bias: gate 0, drain 0, source vdd.
        i_on = abs(mosfet_current(p, W, 0.0, 0.0, VDD)[0])
        i_off = abs(mosfet_current(p, W, VDD, 0.0, VDD)[0])
        assert i_on == pytest.approx(500e-6, rel=0.02)
        assert i_off == pytest.approx(50e-9, rel=0.02)

    def test_swing_above_thermionic_limit(self):
        assert nmos_90nm().subthreshold_swing > 0.0596

    def test_hvt_reduces_leakage(self):
        lo = mosfet_current(nmos_90nm(), W, 0.0, VDD, 0.0)[0]
        hi = mosfet_current(nmos_90nm_hvt(), W, 0.0, VDD, 0.0)[0]
        assert hi < lo / 5  # ~9x at the nominal swing

    def test_hvt_shift_value(self):
        assert nmos_90nm_hvt().vth0 == pytest.approx(
            nmos_90nm().vth0 + HVT_SHIFT)
        assert pmos_90nm_hvt().vth0 == pytest.approx(
            pmos_90nm().vth0 + HVT_SHIFT)

    def test_factory_overrides(self):
        p = nmos_90nm(vth0=0.5)
        assert p.vth0 == 0.5


class TestModelShape:
    @given(vg=st.floats(min_value=0.0, max_value=1.2),
           delta=st.floats(min_value=0.01, max_value=0.2))
    @settings(max_examples=40)
    def test_current_monotone_in_vgs(self, vg, delta):
        p = nmos_90nm()
        i1 = mosfet_current(p, W, vg, VDD, 0.0)[0]
        i2 = mosfet_current(p, W, min(vg + delta, 1.4), VDD, 0.0)[0]
        assert i2 >= i1

    @given(vd=st.floats(min_value=0.01, max_value=1.2),
           delta=st.floats(min_value=0.01, max_value=0.2))
    @settings(max_examples=40)
    def test_current_monotone_in_vds(self, vd, delta):
        p = nmos_90nm()
        i1 = mosfet_current(p, W, VDD, vd, 0.0)[0]
        i2 = mosfet_current(p, W, VDD, vd + delta, 0.0)[0]
        assert i2 >= i1

    @given(vg=st.floats(min_value=0.0, max_value=1.2),
           vd=st.floats(min_value=-1.2, max_value=1.2),
           vs=st.floats(min_value=0.0, max_value=0.6))
    @settings(max_examples=60, deadline=None)
    def test_derivatives_match_finite_difference(self, vg, vd, vs):
        p = nmos_90nm()
        eps = 1e-7
        i0, dg, dd, ds = mosfet_current(p, W, vg, vd, vs)
        fd_g = (mosfet_current(p, W, vg + eps, vd, vs)[0] - i0) / eps
        fd_d = (mosfet_current(p, W, vg, vd + eps, vs)[0] - i0) / eps
        fd_s = (mosfet_current(p, W, vg, vd, vs + eps)[0] - i0) / eps
        scale = max(abs(i0) / 0.05, 1e-7)
        assert dg == pytest.approx(fd_g, abs=scale * 1e-2)
        assert dd == pytest.approx(fd_d, abs=scale * 1e-2)
        assert ds == pytest.approx(fd_s, abs=scale * 1e-2)

    def test_zero_vds_zero_current(self):
        p = nmos_90nm()
        i = mosfet_current(p, W, VDD, 0.3, 0.3)[0]
        assert i == pytest.approx(0.0, abs=1e-12)

    def test_pass_gate_symmetry(self):
        """Reversed V_DS conducts with the terminal roles swapped."""
        p = nmos_90nm()
        i_fwd = mosfet_current(p, W, VDD, 0.6, 0.0)[0]
        i_rev = mosfet_current(p, W, VDD, 0.0, 0.6)[0]
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_width_scaling(self):
        p = nmos_90nm()
        i1 = mosfet_current(p, 1e-6, VDD, VDD, 0.0)[0]
        i2 = mosfet_current(p, 3e-6, VDD, VDD, 0.0)[0]
        assert i2 == pytest.approx(3 * i1, rel=1e-9)

    def test_dibl_raises_leakage(self):
        p = nmos_90nm()
        i_lo = mosfet_current(p, W, 0.0, 0.1, 0.0)[0]
        i_hi = mosfet_current(p, W, 0.0, VDD, 0.0)[0]
        assert i_hi > 3 * i_lo

    def test_pmos_conducts_negative(self):
        p = pmos_90nm()
        i = mosfet_current(p, W, 0.0, 0.0, VDD)[0]
        assert i < 0  # current flows source -> drain inside the device


class TestElement:
    def test_rejects_bad_width(self):
        with pytest.raises(NetlistError):
            Mosfet("M1", "d", "g", "s", nmos_90nm(), 0.0)

    def test_vth_shift_weakens(self):
        m = Mosfet("M1", "d", "g", "s", nmos_90nm(), W)
        base = m.drain_current(VDD, VDD, 0.0)
        m.vth_shift = 0.1
        assert m.drain_current(VDD, VDD, 0.0) < base

    def test_gate_capacitance(self):
        m = Mosfet("M1", "d", "g", "s", nmos_90nm(), 2e-6)
        assert m.gate_capacitance() == pytest.approx(3e-15)

    def test_with_vth_shift_frozen_copy(self):
        p = nmos_90nm()
        q = p.with_vth_shift(0.05)
        assert q is not p
        assert q.vth0 == pytest.approx(p.vth0 + 0.05)

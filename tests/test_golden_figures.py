"""Golden-regression tests freezing the paper's headline figure values.

Each test recomputes a reduced-size slice of a figure and compares it
against the JSON fixture in ``tests/golden/``.  The fixtures pin the
*physics*: any change to device models, MNA assembly, or the solver
that shifts a result by more than ``rtol`` fails here, even if every
behavioural test still passes.  Intentional physics changes are
re-frozen with ``pytest --update-golden`` (CI requires that flag to be
mentioned in the change description when these files move — see
.github/workflows/ci.yml).

The comparison tolerance (1e-6 relative) is loose enough to absorb
BLAS/libm noise across platforms and tight enough to catch any real
model drift: the perturbation test at the bottom demonstrates that a
10 mV gate-voltage error — far below anything a reviewer would notice
on the figures — is caught.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig09_keeper_tradeoff import keeper_point_task
from repro.library.sleep import sweep_sleep_devices
from repro.library.sram import SramSpec
from repro.library.sram_metrics import (
    standby_leakage,
    static_noise_margin,
)

#: Reduced point count for the butterfly sweeps (full figure uses 121).
SNM_POINTS = 41


def fig09_point():
    nm, delay = keeper_point_task(8, 3.0, 0.05, 3.0, 2e-6)
    return {"fan_in": 8, "fan_out": 3.0, "sigma": 0.05,
            "keeper_width_um": 2.0,
            "noise_margin_v": nm, "delay_s": delay}


def fig14_snm():
    snm_conv, _ = static_noise_margin(SramSpec(variant="conventional"),
                                      points=SNM_POINTS)
    snm_hyb, _ = static_noise_margin(SramSpec(variant="hybrid"),
                                     points=SNM_POINTS)
    return {"points": SNM_POINTS, "snm_conventional_v": snm_conv,
            "snm_hybrid_v": snm_hyb}


def fig15_leakage():
    leak_conv = standby_leakage(SramSpec(variant="conventional"))
    leak_hyb = standby_leakage(SramSpec(variant="hybrid"))
    return {"leakage_conventional_w": leak_conv,
            "leakage_hybrid_w": leak_hyb,
            "leakage_ratio": leak_conv / leak_hyb}


def fig17_sleep():
    rows = sweep_sleep_devices([1, 4, 16, 64])
    return {"area_units": [r[0] for r in rows],
            "ron_cmos_ohm": [r[1] for r in rows],
            "ioff_cmos_a": [r[2] for r in rows],
            "ron_nems_ohm": [r[3] for r in rows],
            "ioff_nems_a": [r[4] for r in rows]}


def test_fig09_keeper_point(golden):
    # The delay rides the adaptive LTE step sequence: a borderline
    # accept/reject near ratio == 1 may flip across FP environments and
    # shift the measured delay by a fraction of the LTE tolerance, so
    # it gets a looser (but still sub-percent) comparison than the
    # discretisation-free DC noise margin.
    golden.check("fig09", fig09_point(),
                 rtol_overrides={"delay_s": 5e-3})


def test_fig14_static_noise_margin(golden):
    golden.check("fig14", fig14_snm())


def test_fig15_standby_leakage_ratio(golden):
    golden.check("fig15", fig15_leakage())


def test_fig17_sleep_off_currents(golden):
    golden.check("fig17", fig17_sleep())


def test_goldens_catch_physics_perturbation(golden, monkeypatch):
    """A 10 mV device-model error must trip the golden comparison.

    This is the sensitivity proof for the whole golden layer: if a
    perturbation this small is detected, genuine model regressions
    cannot slip through.  The patch shifts the effective gate voltage
    seen by every MOSFET evaluation — a stand-in for a subtle
    threshold-voltage calibration bug.
    """
    if golden.update:
        pytest.skip("not meaningful while regenerating fixtures")
    import repro.devices.mosfet as mosfet_mod
    real = mosfet_mod.mosfet_current

    def shifted(params, width, vgs, vds, vbs, *args, **kwargs):
        return real(params, width, vgs + 0.010, vds, vbs,
                    *args, **kwargs)

    monkeypatch.setattr(mosfet_mod, "mosfet_current", shifted)
    mismatches = golden.diff("fig17", fig17_sleep())
    assert mismatches, \
        "10 mV Vgs perturbation went undetected by the fig17 golden"
    # The CMOS OFF current is exponential in Vgs, so it must be among
    # the tripped entries.
    assert any("ioff_cmos" in m for m in mismatches)

"""Tests for the SPICE netlist exporter."""

import pytest

from repro import Circuit, Pulse, Sine, PiecewiseLinear
from repro.circuit.spice_io import to_spice, write_spice
from repro.devices.mosfet import Mosfet, nmos_90nm, pmos_90nm
from repro.devices.nemfet import Nemfet, nemfet_90nm


@pytest.fixture
def mixed_circuit():
    c = Circuit("mixed")
    c.vsource("VDD", "vdd", "0", 1.2)
    c.vsource("VIN", "in", "0", Pulse(0, 1.2, td=1e-9, tr=10e-12,
                                      pw=2e-9, per=5e-9))
    c.resistor("R1", "in", "a", 1e3)
    c.capacitor("C1", "a", "0", 1e-12)
    c.inductor("L1", "a", "b", 1e-9)
    c.isource("IB", "vdd", "b", 1e-6)
    c.add(Mosfet("MP1", "out", "a", "vdd", pmos_90nm(), 2e-6))
    c.add(Mosfet("MN1", "out", "a", "0", nmos_90nm(), 1e-6))
    c.add(Nemfet("MX1", "out", "a", "0", nemfet_90nm(), 1e-6))
    return c


class TestExport:
    def test_header_and_end(self, mixed_circuit):
        deck = to_spice(mixed_circuit)
        assert deck.startswith("* mixed")
        assert deck.rstrip().endswith(".end")

    def test_passives_exact(self, mixed_circuit):
        deck = to_spice(mixed_circuit)
        assert "RR1 in a 1000" in deck
        assert "CC1 a 0 1e-12" in deck
        assert "LL1 a b 1e-09" in deck

    def test_pulse_card(self, mixed_circuit):
        deck = to_spice(mixed_circuit)
        assert "PULSE(0 1.2 1e-09" in deck

    def test_mosfets_get_model_cards(self, mixed_circuit):
        deck = to_spice(mixed_circuit)
        assert ".model MN" in deck and ".model MP" in deck
        assert "LEVEL=1" in deck
        # PMOS threshold is negative in SPICE convention.
        pmos_card = [l for l in deck.splitlines()
                     if ".model" in l and "PMOS" in l][0]
        assert "VTO=-" in pmos_card

    def test_shared_params_share_model(self):
        c = Circuit("pair")
        c.vsource("V1", "a", "0", 1.0)
        params = nmos_90nm()
        c.add(Mosfet("M1", "a", "a", "0", params, 1e-6))
        c.add(Mosfet("M2", "a", "a", "0", params, 2e-6))
        deck = to_spice(c)
        assert deck.count(".model") == 1

    def test_nemfet_exports_as_subckt(self, mixed_circuit):
        deck = to_spice(mixed_circuit)
        assert "XMX1 out a 0 NEMFET" in deck
        assert "Vpi=" in deck
        assert ".subckt NEMFET" in deck  # external-requirement note

    def test_ac_annotation(self):
        c = Circuit("acdeck")
        src = c.vsource("V1", "a", "0", 0.5)
        src.ac = 1.0
        c.resistor("R1", "a", "0", 1e3)
        assert "AC 1" in to_spice(c)

    def test_sine_and_pwl(self):
        c = Circuit("waves")
        c.vsource("V1", "a", "0", Sine(0.0, 1.0, 1e6))
        c.vsource("V2", "b", "0", PiecewiseLinear([(0, 0), (1e-9, 1)]))
        c.resistor("R1", "a", "b", 1.0)
        c.resistor("R2", "b", "0", 1.0)
        deck = to_spice(c)
        assert "SIN(0 1 1e+06 0)" in deck
        assert "PWL(0 0 1e-09 1)" in deck

    def test_write_to_file(self, mixed_circuit, tmp_path):
        path = tmp_path / "deck.sp"
        write_spice(mixed_circuit, str(path))
        assert path.read_text().startswith("* mixed")

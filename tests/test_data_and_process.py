"""Tests for the ITRS data, swing survey, and process-flow modules."""

import pytest

from repro.data import itrs, swing_survey
from repro.devices.nemfet import nemfet_90nm
from repro.errors import DesignError
from repro.process import flow


class TestItrs:
    def test_nodes_in_scaling_order(self):
        sizes = [n.node_nm for n in itrs.ITRS_NODES]
        assert sizes == sorted(sizes, reverse=True)

    def test_vdd_and_vth_scale_down(self):
        vdds = [n.vdd for n in itrs.ITRS_NODES]
        vths = [n.vth for n in itrs.ITRS_NODES]
        assert all(a >= b for a, b in zip(vdds, vdds[1:]))
        assert all(a >= b for a, b in zip(vths, vths[1:]))

    def test_leakage_monotonically_explodes(self):
        trend = [itrs.subthreshold_leakage(n) for n in itrs.ITRS_NODES]
        assert all(b > a for a, b in zip(trend, trend[1:]))
        assert trend[-1] / trend[0] > 1e3

    def test_90nm_anchor_matches_table1(self):
        node = next(n for n in itrs.ITRS_NODES if n.node_nm == 90)
        i = itrs.subthreshold_leakage(node)
        assert i == pytest.approx(50e-9 / 1e-6, rel=1e-6)

    def test_growth_per_generation(self):
        g = itrs.leakage_growth_per_generation()
        assert 2.0 < g < 8.0

    def test_trend_rows(self):
        rows = itrs.subthreshold_leakage_trend()
        assert len(rows) == len(itrs.ITRS_NODES)
        assert rows[0][0] == 250


class TestSwingSurvey:
    def test_thermionic_limit_value(self):
        assert swing_survey.thermionic_limit() == pytest.approx(59.6,
                                                                abs=0.5)

    def test_survey_is_self_consistent(self):
        assert swing_survey.survey_violations() == ()

    def test_nems_is_steepest(self):
        steepest = min(swing_survey.SWING_SURVEY,
                       key=lambda e: e.swing_mv_per_dec)
        assert "NEMS" in steepest.device
        assert steepest.swing_mv_per_dec == 2.0

    def test_cmos_families_above_limit(self):
        limit = swing_survey.thermionic_limit()
        for entry in swing_survey.SWING_SURVEY:
            if entry.thermionic:
                assert entry.swing_mv_per_dec >= limit


class TestProcessFlow:
    def test_seven_steps(self):
        assert len(flow.HYBRID_PROCESS_FLOW) == 7
        assert flow.HYBRID_PROCESS_FLOW[0].figure == "7a"

    def test_gap_feasibility_accepts_default_device(self):
        flow.check_gap_feasibility(nemfet_90nm())

    def test_gap_feasibility_rejects_sub_nm(self):
        with pytest.raises(DesignError):
            flow.check_gap_feasibility(nemfet_90nm(gap=0.5e-9))

    def test_gap_feasibility_rejects_huge(self):
        with pytest.raises(DesignError):
            flow.check_gap_feasibility(nemfet_90nm(gap=1e-6))

    def test_post_cmos_steps_within_budget(self):
        assert flow.thermal_budget_violations() == ()
        names = {s.name for s in flow.post_cmos_steps()}
        assert "Sacrificial layer" in names
        assert "Release" in names

"""Tests for analysis option containers and defaults."""

import pytest

from repro.analysis.options import (
    HomotopyOptions,
    NewtonOptions,
    TransientOptions,
)


class TestNewtonOptions:
    def test_defaults_sane(self):
        opts = NewtonOptions()
        assert opts.max_iterations > 50
        assert 0 < opts.reltol < 1e-3
        assert 0 < opts.min_step_scale < opts.damping <= 1.0


class TestTransientOptions:
    def test_default_method_is_backward_euler(self):
        assert TransientOptions().method == "be"

    def test_trap_accepted(self):
        assert TransientOptions(method="trap").method == "trap"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(method="gear2")

    def test_growth_and_shrink_consistent(self):
        opts = TransientOptions()
        assert opts.growth > 1.0
        assert 0 < opts.shrink < 1.0
        assert opts.max_dt_factor >= 1.0

    def test_nested_newton_options_independent(self):
        a = TransientOptions()
        b = TransientOptions()
        a.newton.max_iterations = 7
        assert b.newton.max_iterations != 7


class TestHomotopyOptions:
    def test_gmin_schedule_descends(self):
        opts = HomotopyOptions()
        assert opts.gmin_start > opts.gmin_final
        assert opts.source_steps >= 2

"""Tests for analysis option containers and defaults."""

import pytest

from repro.analysis.options import (
    HomotopyOptions,
    NewtonOptions,
    TransientOptions,
)


class TestNewtonOptions:
    def test_defaults_sane(self):
        opts = NewtonOptions()
        assert opts.max_iterations > 50
        assert 0 < opts.reltol < 1e-3
        assert 0 < opts.min_step_scale < opts.damping <= 1.0


class TestTransientOptions:
    def test_default_method_is_backward_euler(self):
        assert TransientOptions().method == "be"

    def test_trap_accepted(self):
        assert TransientOptions(method="trap").method == "trap"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(method="gear2")

    def test_growth_and_shrink_consistent(self):
        opts = TransientOptions()
        assert opts.growth > 1.0
        assert 0 < opts.shrink < 1.0
        assert opts.max_dt_factor >= 1.0

    def test_nested_newton_options_independent(self):
        a = TransientOptions()
        b = TransientOptions()
        a.newton.max_iterations = 7
        assert b.newton.max_iterations != 7

    def test_lte_knob_defaults_sane(self):
        opts = TransientOptions()
        assert opts.step_control is None
        assert opts.trtol > 0
        assert 0 < opts.lte_reltol < 1
        assert opts.lte_abstol >= 0
        assert opts.lte_max_growth > 1.0
        assert 0 < opts.lte_safety <= 1.0
        assert opts.lte_max_dt_factor >= opts.max_dt_factor
        assert 0 < opts.lte_min_dt_factor <= 1.0

    def test_unknown_step_control_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(step_control="magic")

    def test_bad_lte_knobs_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(trtol=0.0)
        with pytest.raises(ValueError):
            TransientOptions(lte_reltol=0.0)
        with pytest.raises(ValueError):
            TransientOptions(lte_abstol=-1.0)
        with pytest.raises(ValueError):
            TransientOptions(lte_max_growth=1.0)
        with pytest.raises(ValueError):
            TransientOptions(lte_safety=1.5)
        with pytest.raises(ValueError):
            TransientOptions(lte_min_dt_factor=0.0)

    def test_resolve_step_control_follows_session_default(self):
        from repro.analysis.options import step_control_override
        opts = TransientOptions()
        assert opts.resolve_step_control() == "lte"
        with step_control_override("iter"):
            assert opts.resolve_step_control() == "iter"
            pinned = TransientOptions(step_control="lte")
            assert pinned.resolve_step_control() == "lte"
        assert opts.resolve_step_control() == "lte"

    def test_override_rejects_unknown_and_restores(self):
        from repro.analysis.options import (
            get_default_step_control,
            step_control_override,
        )
        with pytest.raises(ValueError):
            with step_control_override("magic"):
                pass
        assert get_default_step_control() == "lte"
        # None is a pass-through no-op for optional CLI flags.
        with step_control_override(None):
            assert get_default_step_control() == "lte"


class TestHomotopyOptions:
    def test_gmin_schedule_descends(self):
        opts = HomotopyOptions()
        assert opts.gmin_start > opts.gmin_final
        assert opts.source_steps >= 2

"""Tests for SRAM cell builders and flavour assignment."""

import numpy as np
import pytest

from repro import dc_sweep, transient
from repro.devices.mosfet import HVT_SHIFT
from repro.errors import DesignError
from repro.library.sram import (
    SramSpec,
    VARIANTS,
    build_read_harness,
    build_vtc_circuit,
)


class TestSpec:
    def test_rejects_unknown_variant(self):
        with pytest.raises(DesignError):
            SramSpec(variant="9T")

    def test_rejects_unknown_transistor(self):
        with pytest.raises(DesignError):
            SramSpec().flavor("XX")

    def test_widths(self):
        spec = SramSpec()
        assert spec.width_of("NL") == spec.w_pulldown
        assert spec.width_of("PL") == spec.w_pullup
        assert spec.width_of("AR") == spec.w_access


class TestFlavors:
    def test_conventional_all_mosfet_nominal(self):
        spec = SramSpec(variant="conventional")
        for name in ("NL", "NR", "PL", "PR", "AL", "AR"):
            kind, params = spec.flavor(name)
            assert kind == "mosfet"
            assert abs(params.vth0 - spec.nmos.vth0) < 0.1 or \
                abs(params.vth0 - spec.pmos.vth0) < 0.1

    def test_dual_vt_inverters_hvt(self):
        spec = SramSpec(variant="dual_vt")
        for name in ("NL", "NR"):
            _, params = spec.flavor(name)
            assert params.vth0 == pytest.approx(
                spec.nmos.vth0 + HVT_SHIFT)
        _, access = spec.flavor("AL")
        assert access.vth0 == pytest.approx(spec.nmos.vth0)

    def test_asymmetric_protects_zero_state(self):
        spec = SramSpec(variant="asymmetric")
        _, nr = spec.flavor("NR")
        _, pl = spec.flavor("PL")
        assert nr.vth0 > spec.nmos.vth0
        assert pl.vth0 > spec.pmos.vth0
        # The frequent-zero read path stays nominal.
        _, nl = spec.flavor("NL")
        _, al = spec.flavor("AL")
        assert nl.vth0 == pytest.approx(spec.nmos.vth0)
        assert al.vth0 == pytest.approx(spec.nmos.vth0)

    def test_hybrid_inverters_are_nemfets(self):
        spec = SramSpec(variant="hybrid")
        for name in ("NL", "NR", "PL", "PR"):
            kind, _ = spec.flavor(name)
            assert kind == "nemfet"
        for name in ("AL", "AR"):
            kind, _ = spec.flavor(name)
            assert kind == "mosfet"


class TestHarness:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_cell_settles_to_zero_state(self, variant):
        spec = SramSpec(variant=variant)
        cell = build_read_harness(spec)
        cell.hold_wordline_low()
        res = transient(cell.circuit, spec.t_precharge, 4e-12)
        assert res.voltage("ql")[-1] < 0.25
        assert res.voltage("qr")[-1] > 0.95

    def test_bitlines_precharged(self):
        spec = SramSpec()
        cell = build_read_harness(spec)
        cell.hold_wordline_low()
        res = transient(cell.circuit, spec.t_precharge, 4e-12)
        assert res.voltage("bl")[-1] > 1.1
        assert res.voltage("blb")[-1] > 1.1

    def test_write_pulse_validates_value(self):
        cell = build_read_harness(SramSpec())
        with pytest.raises(DesignError):
            cell.write_pulse(2, 0.0, 1e-9)


class TestVtcCircuit:
    def test_rejects_bad_side(self):
        with pytest.raises(DesignError):
            build_vtc_circuit(SramSpec(), "middle")

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_vtc_is_inverting(self, variant):
        spec = SramSpec(variant=variant)
        c = build_vtc_circuit(spec, "right")
        sweep = dc_sweep(c, "VIN", np.linspace(0, 1.2, 25))
        q = sweep.voltage("q")
        assert q[0] > 0.9      # output high at input low
        assert q[-1] < 0.45    # output pulled down at input high

    def test_read_condition_lifts_output_low(self):
        """With the access device on, the output low level is a divider,
        not zero — the read-disturb that erodes SNM."""
        spec = SramSpec()
        c = build_vtc_circuit(spec, "right")
        sweep = dc_sweep(c, "VIN", [1.2])
        assert 0.02 < sweep.voltage("q")[0] < 0.45

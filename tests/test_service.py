"""Tests for the simulation service: schemas, store, limits, HTTP."""

import os
import pickle
import time

import pytest

from repro.engine.runner import Job, run_jobs
from repro.experiments.registry import run_experiment
from repro.experiments.result import ExperimentResult
from repro.service import (
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    JobSpec,
    RateLimited,
    ServiceApp,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    SqliteJobStore,
    TenantGovernor,
    TokenBucket,
    ValidationError,
)
from repro.service.schemas import check_transition

#: Small but real fig09 sweep: 2 sigma levels x 2 keeper widths.
FIG09_PARAMS = {"sigma_levels": [0.05, 0.15],
                "keeper_widths": [8e-07, 2e-06]}


def service_config(tmp_path, **overrides):
    defaults = dict(data_dir=str(tmp_path / "svc"),
                    cache_dir=str(tmp_path / "cache"))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestJobSpec:
    def test_minimal_payload_validates(self):
        spec = JobSpec.from_payload({"experiment": "fig01"})
        assert spec.experiment == "fig01"
        assert spec.params == {} and spec.quick is False
        assert spec.tenant == "default"

    def test_full_payload_round_trips(self):
        payload = {"experiment": "fig09", "params": FIG09_PARAMS,
                   "quick": True, "tenant": "team-a"}
        spec = JobSpec.from_payload(payload)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_header_tenant_wins_over_body(self):
        spec = JobSpec.from_payload(
            {"experiment": "fig01", "tenant": "body"}, tenant="header")
        assert spec.tenant == "header"

    def test_unknown_experiment_rejected_with_known_list(self):
        with pytest.raises(ValidationError, match="fig01"):
            JobSpec.from_payload({"experiment": "not-a-figure"})

    def test_unknown_run_parameter_rejected(self):
        with pytest.raises(ValidationError, match="fan_in"):
            JobSpec.from_payload({"experiment": "fig09",
                                  "params": {"fan_innn": 8}})

    def test_every_problem_reported_at_once(self):
        try:
            JobSpec.from_payload({"experiment": "", "quick": "yes",
                                  "bogus": 1})
        except ValidationError as err:
            assert len(err.errors) == 3
        else:
            pytest.fail("expected ValidationError")

    def test_non_object_body_rejected(self):
        with pytest.raises(ValidationError, match="JSON object"):
            JobSpec.from_payload(["fig01"])

    def test_bad_tenant_rejected(self):
        with pytest.raises(ValidationError, match="tenant"):
            JobSpec.from_payload({"experiment": "fig01",
                                  "tenant": "no spaces allowed"})

    def test_unserialisable_params_rejected(self):
        with pytest.raises(ValidationError, match="serialisable"):
            JobSpec.from_payload({"experiment": "fig09",
                                  "params": {"fan_in": {1, 2}}})


class TestStateMachine:
    def test_normal_lifecycle_is_legal(self):
        check_transition(QUEUED, RUNNING)
        check_transition(RUNNING, SUCCEEDED)
        check_transition(RUNNING, FAILED)
        check_transition(RUNNING, CANCELLED)
        check_transition(QUEUED, CANCELLED)
        check_transition(RUNNING, QUEUED)  # restart recovery

    def test_terminal_states_are_sinks(self):
        for terminal in (SUCCEEDED, FAILED, CANCELLED):
            for target in (QUEUED, RUNNING, SUCCEEDED):
                with pytest.raises(ValueError, match="illegal"):
                    check_transition(terminal, target)

    def test_queued_cannot_jump_to_succeeded(self):
        with pytest.raises(ValueError, match="illegal"):
            check_transition(QUEUED, SUCCEEDED)


class TestSqliteJobStore:
    @pytest.fixture
    def store(self, tmp_path):
        store = SqliteJobStore(str(tmp_path / "jobs.sqlite3"))
        yield store
        store.close()

    def test_create_and_get(self, store):
        record = store.create(JobSpec(experiment="fig01", quick=True))
        loaded = store.get(record["id"])
        assert loaded["state"] == QUEUED
        assert loaded["experiment"] == "fig01"
        assert loaded["spec"]["quick"] is True

    def test_get_unknown_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get("feedface")

    def test_claim_is_fifo(self, store):
        first = store.create(JobSpec(experiment="fig01"))
        second = store.create(JobSpec(experiment="fig02"))
        assert store.claim_next()["id"] == first["id"]
        assert store.claim_next()["id"] == second["id"]
        assert store.claim_next() is None

    def test_claim_skips_excluded_tenants(self, store):
        store.create(JobSpec(experiment="fig01", tenant="busy"))
        other = store.create(JobSpec(experiment="fig01", tenant="idle"))
        claimed = store.claim_next(exclude_tenants={"busy"})
        assert claimed["id"] == other["id"]

    def test_finish_success_records_result(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        store.claim_next()
        done = store.finish(record["id"], SUCCEEDED,
                            result_path="/tmp/x",
                            summary={"engine_jobs": 3})
        assert done["state"] == SUCCEEDED
        assert done["result_path"] == "/tmp/x"
        assert done["summary"]["engine_jobs"] == 3

    def test_finish_requires_legal_transition(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        with pytest.raises(ValueError, match="illegal"):
            store.finish(record["id"], SUCCEEDED)  # still queued

    def test_cancel_queued_is_immediate(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        cancelled = store.request_cancel(record["id"])
        assert cancelled["state"] == CANCELLED
        assert store.claim_next() is None

    def test_cancel_running_sets_flag_for_worker(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        store.claim_next()
        flagged = store.request_cancel(record["id"])
        assert flagged["state"] == RUNNING  # worker finishes it
        assert store.cancel_requested(record["id"])
        done = store.finish(record["id"], CANCELLED)
        assert done["state"] == CANCELLED

    def test_cancel_terminal_is_idempotent(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        store.request_cancel(record["id"])
        again = store.request_cancel(record["id"])
        assert again["state"] == CANCELLED

    def test_events_tail_incrementally(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        job_id = record["id"]
        for i in range(5):
            store.append_event(job_id, "point", {"i": i})
        head = store.events(job_id, limit=3)
        assert [e["payload"].get("i") for e in head][-2:] == [0, 1]
        tail = store.events(job_id, after=head[-1]["seq"])
        assert [e["payload"]["i"] for e in tail] == [2, 3, 4]

    def test_recover_requeues_running_jobs(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        store.claim_next()
        assert store.recover() == 1
        assert store.get(record["id"])["state"] == QUEUED
        kinds = [e["kind"] for e in store.events(record["id"])]
        assert "requeued" in kinds

    def test_recover_honours_pending_cancel(self, store):
        record = store.create(JobSpec(experiment="fig01"))
        store.claim_next()
        store.request_cancel(record["id"])
        assert store.recover() == 0
        assert store.get(record["id"])["state"] == CANCELLED

    def test_records_survive_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite3")
        first = SqliteJobStore(path)
        record = first.create(JobSpec(experiment="fig01"))
        first.append_event(record["id"], "note", {"x": 1})
        first.close()
        second = SqliteJobStore(path)
        assert second.get(record["id"])["state"] == QUEUED
        assert [e["kind"] for e in second.events(record["id"])] \
            == ["submitted", "note"]
        second.close()

    def test_stats_aggregates(self, store):
        a = store.create(JobSpec(experiment="fig01"))
        store.create(JobSpec(experiment="fig09"))
        store.claim_next()
        store.finish(a["id"], SUCCEEDED,
                     summary={"engine_jobs": 4, "cache_hits": 3,
                              "point_failures": 0, "wall_time": 1.5})
        stats = store.stats()
        assert stats["jobs"] == 2
        assert stats["by_state"][QUEUED] == 1
        assert stats["by_state"][SUCCEEDED] == 1
        assert stats["by_experiment"] == {"fig01": 1, "fig09": 1}
        assert stats["totals"]["engine_jobs"] == 4
        assert stats["totals"]["cache_hits"] == 3


class TestLimits:
    def test_token_bucket_drains_and_refills(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        third = bucket.try_acquire()
        if not third:  # burst exhausted before refill
            assert bucket.wait_time() > 0
            time.sleep(0.05)
            assert bucket.try_acquire()

    def test_governor_rejects_over_rate(self):
        governor = TenantGovernor(submissions_per_minute=0.6,
                                  submission_burst=1)
        governor.admit_submission("t")
        with pytest.raises(RateLimited) as info:
            governor.admit_submission("t")
        assert info.value.tenant == "t"
        assert info.value.retry_after > 0

    def test_governor_rate_is_per_tenant(self):
        governor = TenantGovernor(submissions_per_minute=0.6,
                                  submission_burst=1)
        governor.admit_submission("a")
        governor.admit_submission("b")  # unaffected by a's burst

    def test_saturated_tenants_tracks_running_jobs(self):
        governor = TenantGovernor(max_running_per_tenant=2)
        governor.job_started("t")
        assert governor.saturated_tenants() == frozenset()
        governor.job_started("t")
        assert governor.saturated_tenants() == {"t"}
        governor.job_finished("t")
        assert governor.saturated_tenants() == frozenset()


def _stub_result(exp_id="stub"):
    return ExperimentResult(experiment_id=exp_id, title="Stub",
                            columns=("x",), rows=[(1.0,)])


def slow_point(i):
    time.sleep(0.1)
    return i


class TestServiceApp:
    def test_result_before_completion_is_conflict(self, tmp_path):
        from repro.service import JobNotDone
        app = ServiceApp(service_config(tmp_path))  # no workers
        record = app.submit({"experiment": "fig01", "quick": True})
        with pytest.raises(JobNotDone):
            app.result(record["id"])
        app.store.close()

    def test_cancel_running_job_lands_cancelled(self, tmp_path,
                                                monkeypatch):
        """Cancelling mid-run must end `cancelled`, not `failed`:
        the ambient cancel scope stops the engine sweep between
        points and the partial result is discarded."""
        from repro.service import app as app_module

        def slow_experiment(exp_id, quick=False, params=None):
            run_jobs([Job(slow_point, (i,)) for i in range(50)],
                     cache=None, group="stub")
            return _stub_result(exp_id)

        monkeypatch.setattr(app_module, "run_experiment",
                            slow_experiment)
        app = ServiceApp(service_config(tmp_path))
        app.start()
        try:
            record = app.submit({"experiment": "fig01"})
            job_id = record["id"]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if any(e["kind"] == "point"
                       for e in app.events(job_id)):
                    break
                time.sleep(0.02)
            app.cancel(job_id)
            while time.monotonic() < deadline:
                state = app.job(job_id)["state"]
                if state in (SUCCEEDED, FAILED, CANCELLED):
                    break
                time.sleep(0.02)
            final = app.job(job_id)
            assert final["state"] == CANCELLED
            assert final["error"] is None
            assert final["summary"]["points_cancelled"] > 0
            assert final["result_path"] is None
        finally:
            app.stop()

    def test_failed_experiment_is_failed_not_dead_worker(
            self, tmp_path, monkeypatch):
        from repro.service import app as app_module

        def broken(exp_id, quick=False, params=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(app_module, "run_experiment", broken)
        app = ServiceApp(service_config(tmp_path))
        app.start()
        try:
            record = app.submit({"experiment": "fig01"})
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                final = app.job(record["id"])
                if final["state"] != QUEUED and \
                        final["state"] != RUNNING:
                    break
                time.sleep(0.02)
            assert final["state"] == FAILED
            assert "RuntimeError: boom" in final["error"]
            # The worker survives a failed job and serves the next.
            again = app.submit({"experiment": "fig01"})
            while time.monotonic() < deadline:
                if app.job(again["id"])["state"] == FAILED:
                    break
                time.sleep(0.02)
            assert app.job(again["id"])["state"] == FAILED
        finally:
            app.stop()

    def test_restart_resumes_queued_work(self, tmp_path):
        """Kill a server with work in flight; a new server on the same
        data dir requeues and finishes it."""
        config = service_config(tmp_path)
        first = ServiceApp(config)  # never started: no workers
        record = first.store.create(JobSpec(experiment="fig01",
                                            quick=True))
        first.store.claim_next()  # simulate a crash mid-run
        first.store.close()

        second = ServiceApp(config)
        second.start()
        try:
            assert second.recovered == 1
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                state = second.job(record["id"])["state"]
                if state == SUCCEEDED:
                    break
                time.sleep(0.05)
            assert second.job(record["id"])["state"] == SUCCEEDED
            kinds = [e["kind"] for e in second.events(record["id"])]
            assert "requeued" in kinds
        finally:
            second.stop()


class TestServiceHTTP:
    def test_fig09_submit_poll_fetch_matches_direct_run(self, tmp_path):
        """The acceptance path: an experiment fetched over HTTP is
        bit-identical to calling the engine directly."""
        config = service_config(tmp_path)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit("fig09", params=FIG09_PARAMS)
            final = client.wait(record["id"], timeout=300)
            assert final["state"] == SUCCEEDED
            assert final["summary"]["engine_jobs"] == 4
            assert final["summary"]["point_failures"] == 0
            via_http = pickle.loads(
                client.artifact(record["id"], "result.pkl"))
            rendered = client.result(record["id"])
            assert client.artifacts(record["id"]) == [
                "result.csv", "result.pkl", "result.txt"]
        direct = run_experiment("fig09", params=FIG09_PARAMS)
        assert via_http.columns == direct.columns
        assert via_http.rows == direct.rows  # bit-identical floats
        assert rendered["rows"] == [list(row) for row in direct.rows]

    def test_warm_resubmission_hits_cache_in_job_record(self, tmp_path):
        config = service_config(tmp_path)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            cold = client.submit("fig09", params=FIG09_PARAMS)
            client.wait(cold["id"], timeout=300)
            warm = client.submit("fig09", params=FIG09_PARAMS)
            final = client.wait(warm["id"], timeout=300)
            # The job store records that every point replayed from the
            # shared cache; progress events say so per point.
            assert final["summary"]["cache_hits"] == 4
            assert final["summary"]["engine_jobs"] == 4
            events = client.events(warm["id"])["events"]
            points = [e for e in events if e["kind"] == "point"]
            assert len(points) == 4
            assert all(e["payload"]["cache_hit"] for e in points)

    def test_progress_events_tail_by_seq(self, tmp_path):
        with ServiceServer(service_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit("fig01", quick=True)
            client.wait(record["id"], timeout=60)
            first = client.events(record["id"], limit=2)
            rest = client.events(record["id"],
                                 after=first["next_after"])
            kinds = ([e["kind"] for e in first["events"]]
                     + [e["kind"] for e in rest["events"]])
            assert kinds[0] == "submitted"
            assert kinds[-1] == "succeeded"

    def test_cancel_queued_job_via_http(self, tmp_path):
        # One slow job occupies the single worker; the one behind it
        # in the queue is cancelled before it ever runs.
        config = service_config(tmp_path, max_running_per_tenant=1)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            blocker = client.submit("fig09", params=FIG09_PARAMS)
            queued = client.submit("fig01", quick=True)
            cancelled = client.cancel(queued["id"])
            assert cancelled["state"] == CANCELLED
            final = client.wait(queued["id"], timeout=10)
            assert final["state"] == CANCELLED
            client.wait(blocker["id"], timeout=300)

    def test_validation_errors_are_400_with_details(self, tmp_path):
        with ServiceServer(service_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError) as info:
                client.submit("no-such-experiment")
            assert info.value.status == 400
            assert any("unknown experiment" in detail
                       for detail in info.value.payload["details"])

    def test_unknown_job_is_404(self, tmp_path):
        with ServiceServer(service_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            for call in (lambda: client.job("deadbeef"),
                         lambda: client.events("deadbeef"),
                         lambda: client.cancel("deadbeef")):
                with pytest.raises(ServiceError) as info:
                    call()
                assert info.value.status == 404

    def test_result_before_done_is_409(self, tmp_path):
        with ServiceServer(service_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit("fig09", params=FIG09_PARAMS)
            try:
                client.result(record["id"])
            except ServiceError as err:
                assert err.status == 409
            client.wait(record["id"], timeout=300)

    def test_rate_limit_is_429_with_retry_after(self, tmp_path):
        config = service_config(tmp_path,
                                submissions_per_minute=0.6,
                                submission_burst=1)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port,
                                   tenant="greedy")
            client.submit("fig01", quick=True)
            with pytest.raises(ServiceError) as info:
                client.submit("fig01", quick=True)
            assert info.value.status == 429
            assert info.value.payload["retry_after"] > 0
            # Another tenant is not throttled by the greedy one.
            other = ServiceClient(server.host, server.port,
                                  tenant="patient")
            other.submit("fig01", quick=True)

    def test_list_jobs_and_verb_mismatch(self, tmp_path):
        # GET and POST share the /api/jobs path: listing must not 405
        # just because the submit route is declared first.
        with ServiceServer(service_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit("fig01", quick=True)
            client.wait(record["id"], timeout=60)
            jobs = client.jobs()
            assert [j["id"] for j in jobs] == [record["id"]]
            assert client.jobs(state="failed") == []
            with pytest.raises(ServiceError) as info:
                client._request("POST", "/api/stats", body={})
            assert info.value.status == 405

    def test_experiments_and_stats_endpoints(self, tmp_path):
        with ServiceServer(service_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            experiments = client.experiments()
            ids = {e["id"] for e in experiments}
            assert {"fig01", "fig09", "table1"} <= ids
            fig09 = next(e for e in experiments if e["id"] == "fig09")
            assert "sigma_levels" in fig09["parameters"]
            record = client.submit("fig01", quick=True)
            client.wait(record["id"], timeout=60)
            stats = client.stats()
            assert stats["jobs"] == 1
            assert stats["by_state"][SUCCEEDED] == 1
            assert stats["service"]["workers"] == 1
            assert stats["cache"]["directory"].endswith("cache")
            assert client.health()["status"] == "ok"

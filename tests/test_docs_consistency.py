"""Documentation-integrity tests: the docs must match the code.

Docs rot silently; these tests pin the load-bearing references — every
bench target DESIGN.md names must exist, every experiment the CLI lists
must be documented, and the README's quickstart snippet must execute.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDoc:
    def test_bench_targets_exist(self):
        text = _read("DESIGN.md")
        targets = re.findall(r"`(benchmarks/[\w.]+\.py)`", text)
        assert len(targets) >= 15
        for target in targets:
            assert (REPO / target).exists(), target

    def test_experiment_modules_exist(self):
        text = _read("DESIGN.md")
        modules = re.findall(r"`experiments\.(\w+)`", text)
        assert len(modules) >= 10
        for module in set(modules):
            path = REPO / "src" / "repro" / "experiments" / \
                f"{module}.py"
            assert path.exists(), module

    def test_paper_identity_check_present(self):
        assert "Dadgour" in _read("DESIGN.md")


class TestExperimentsDoc:
    def test_covers_every_paper_figure(self):
        text = _read("EXPERIMENTS.md")
        for artifact in ("Table 1", "Figure 1", "Figure 2", "Figure 9",
                         "Figure 10", "Figure 11", "Figure 12",
                         "Figure 14", "Figure 15", "Figure 17"):
            assert artifact in text, artifact

    def test_covers_every_extension_experiment(self):
        text = _read("EXPERIMENTS.md")
        ext_dir = REPO / "src" / "repro" / "experiments"
        for path in ext_dir.glob("ext_*.py"):
            stem = path.stem
            # ext_fig09_montecarlo etc. must be mentioned by name.
            assert stem in text, stem


class TestCliDocAgreement:
    def test_every_registered_experiment_has_a_module(self):
        from repro.cli import REGISTRY
        for module_name, _ in REGISTRY.values():
            rel = module_name.replace(".", "/") + ".py"
            assert (REPO / "src" / rel).exists(), module_name

    def test_readme_names_real_examples(self):
        text = _read("README.md")
        for example in re.findall(r"`(examples/\w+\.py)`", text):
            assert (REPO / example).exists(), example


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """Execute the README's first python snippet verbatim."""
        text = _read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README has no python snippet"
        # The first snippet is the NEMFET quickstart.
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - our own docs

"""Tests for sensitivity analysis and the mid-node precharge option."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    element_width_metric,
    relative_sensitivity,
    sensitivity,
    sensitivity_table,
)
from repro.errors import AnalysisError


class TestSensitivityMath:
    def test_linear_function(self):
        assert sensitivity(lambda x: 3 * x + 1, 2.0) \
            == pytest.approx(3.0, rel=1e-6)

    def test_power_law_relative(self):
        # f = x^2.5: dlnf/dlnx = 2.5 exactly.
        assert relative_sensitivity(lambda x: x ** 2.5, 1.7) \
            == pytest.approx(2.5, rel=1e-3)

    def test_insensitive_metric(self):
        assert relative_sensitivity(lambda x: 42.0, 3.0) \
            == pytest.approx(0.0, abs=1e-9)

    def test_zero_value_rejected(self):
        with pytest.raises(AnalysisError):
            sensitivity(lambda x: x, 0.0)

    def test_zero_metric_rejected(self):
        with pytest.raises(AnalysisError):
            relative_sensitivity(lambda x: 0.0, 1.0)

    def test_restores_nominal_point(self):
        calls = []

        def metric(x):
            calls.append(x)
            return x * x

        sensitivity(metric, 2.0)
        assert calls[-1] == 2.0  # last call re-establishes nominal

    def test_table(self):
        table = sensitivity_table(
            {"square": lambda x: x ** 2, "cube": lambda x: x ** 3},
            2.0)
        assert table["square"] == pytest.approx(2.0, rel=1e-3)
        assert table["cube"] == pytest.approx(3.0, rel=1e-3)


class TestCircuitSensitivity:
    def test_keeper_width_slows_evaluation(self):
        from repro.library import gate_metrics
        from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or

        gate = build_dynamic_or(DynamicOrSpec(fan_in=4, fan_out=1,
                                              style="cmos"))
        gate.set_keeper_width(2e-6)

        def delay_vs_keeper(width):
            gate.set_keeper_width(width)
            return gate_metrics.measure_worst_case_delay(gate)

        s = relative_sensitivity(delay_vs_keeper, 2e-6, rel_step=0.2)
        assert s > 0.05  # upsizing the keeper costs delay

    def test_element_width_metric_wrapper(self):
        from repro import Circuit, operating_point
        from repro.devices.mosfet import Mosfet, nmos_90nm

        c = Circuit("wrap")
        c.vsource("VD", "d", "0", 1.2)
        c.vsource("VG", "g", "0", 1.2)
        c.add(Mosfet("M1", "d", "g", "0", nmos_90nm(), 1e-6))

        metric = element_width_metric(
            c, "M1", lambda: -operating_point(c).branch_current("VD"))
        s = relative_sensitivity(metric, 1e-6)
        assert s == pytest.approx(1.0, rel=1e-3)  # current ∝ width

    def test_wrapper_requires_width(self):
        from repro import Circuit
        c = Circuit("r")
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            element_width_metric(c, "R1", lambda: 0.0)


class TestMidNodePrecharge:
    def test_option_adds_devices(self):
        from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or
        gate = build_dynamic_or(DynamicOrSpec(
            fan_in=4, style="hybrid", precharge_mid=True))
        assert "MPREM0" in gate.circuit

    def test_reduces_charge_sharing_droop(self):
        """With inputs arriving mid-evaluation, discharged mid nodes
        steal charge from the dynamic node; precharging them keeps the
        droop smaller."""
        from repro import transient
        from repro.circuit.waveforms import Pulse
        from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or

        def droop(precharge_mid: bool) -> float:
            spec = DynamicOrSpec(fan_in=8, fan_out=1, style="hybrid",
                                 precharge_mid=precharge_mid)
            gate = build_dynamic_or(spec)
            # All inputs rise shortly after the evaluation edge, before
            # the beams close: pure charge-sharing window.
            rise = spec.t_precharge + 60e-12
            for src in gate.input_sources:
                src.value = Pulse(0.0, spec.vdd, td=rise, tr=30e-12,
                                  pw=spec.t_eval, per=None)
            result = transient(gate.circuit,
                               rise + 0.22e-9, 2e-12)
            window = result.t >= rise
            return spec.vdd - float(
                result.voltage("dyn")[window].min())

        assert droop(True) < 0.7 * droop(False)

    def test_functionality_preserved(self):
        from repro import transient
        from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or
        spec = DynamicOrSpec(fan_in=4, fan_out=1, style="hybrid",
                             precharge_mid=True)
        gate = build_dynamic_or(spec)
        gate.set_inputs_domino([0])
        # Stop before the next precharge phase wipes the output.
        res = transient(gate.circuit, spec.period - 0.1e-9, 5e-12)
        assert res.voltage("out")[-1] > 1.0

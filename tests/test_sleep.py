"""Tests for sleep-transistor devices and gated blocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DesignError, MeasurementError
from repro.library import sleep


class TestSleepDevice:
    def test_rejects_unknown_kind(self):
        with pytest.raises(DesignError):
            sleep.SleepDevice("bjt", 1.0)

    def test_rejects_bad_area(self):
        with pytest.raises(DesignError):
            sleep.SleepDevice("cmos", 0.0)

    def test_cmos_width_from_area(self):
        d = sleep.SleepDevice("cmos", 1.0)
        assert d.width == pytest.approx(sleep.CMOS_UNIT_WIDTH)

    def test_nems_width_smaller_at_equal_area(self):
        """The beam footprint costs area, so NEMS buys less width."""
        c = sleep.SleepDevice("cmos", 4.0)
        n = sleep.SleepDevice("nems", 4.0)
        assert n.width < c.width

    @given(a=st.floats(min_value=0.5, max_value=64.0),
           scale=st.floats(min_value=1.5, max_value=4.0))
    @settings(max_examples=15, deadline=None)
    def test_ron_inverse_in_area(self, a, scale):
        r1 = sleep.SleepDevice("cmos", a).on_resistance()
        r2 = sleep.SleepDevice("cmos", a * scale).on_resistance()
        assert r1 / r2 == pytest.approx(scale, rel=1e-6)

    @given(a=st.floats(min_value=0.5, max_value=64.0))
    @settings(max_examples=15, deadline=None)
    def test_ioff_linear_in_area(self, a):
        i1 = sleep.SleepDevice("nems", a).off_current()
        i2 = sleep.SleepDevice("nems", 2 * a).off_current()
        assert i2 / i1 == pytest.approx(2.0, rel=1e-6)

    def test_nems_three_orders_lower_leakage(self):
        c = sleep.SleepDevice("cmos", 8.0)
        n = sleep.SleepDevice("nems", 8.0)
        assert c.off_current() / n.off_current() > 500

    def test_nems_higher_ron_at_equal_area(self):
        c = sleep.SleepDevice("cmos", 8.0)
        n = sleep.SleepDevice("nems", 8.0)
        assert n.on_resistance() > 3 * c.on_resistance()

    def test_sweep_rows(self):
        rows = sleep.sweep_sleep_devices([1.0, 2.0])
        assert len(rows) == 2
        a, rc, ic, rn, i_n = rows[0]
        assert a == 1.0 and rc < rn and i_n < ic


class TestGatedBlock:
    def test_spec_validation(self):
        with pytest.raises(DesignError):
            sleep.GatedBlockSpec(n_stages=0)
        with pytest.raises(DesignError):
            sleep.GatedBlockSpec(grain="medium")
        with pytest.raises(DesignError):
            sleep.GatedBlockSpec(kind="relay")

    def test_ungated_block_delay(self):
        d = sleep.block_delay(sleep.GatedBlockSpec(kind="none"))
        assert 1e-12 < d < 1e-9

    def test_footer_adds_delay(self):
        d0 = sleep.block_delay(sleep.GatedBlockSpec(kind="none"))
        d1 = sleep.block_delay(sleep.GatedBlockSpec(kind="cmos",
                                                    area_units=2.0))
        assert d1 > d0

    def test_bigger_switch_less_delay(self):
        small = sleep.block_delay(sleep.GatedBlockSpec(kind="nems",
                                                       area_units=4.0))
        big = sleep.block_delay(sleep.GatedBlockSpec(kind="nems",
                                                     area_units=32.0))
        assert big < small

    def test_fine_grain_slower_at_same_budget(self):
        coarse = sleep.block_delay(sleep.GatedBlockSpec(
            kind="cmos", area_units=4.0, grain="coarse"))
        fine = sleep.block_delay(sleep.GatedBlockSpec(
            kind="cmos", area_units=4.0, grain="fine"))
        assert fine > coarse

    def test_header_block_works(self):
        d = sleep.block_delay(sleep.GatedBlockSpec(kind="cmos",
                                                   area_units=8.0,
                                                   header=True))
        assert 1e-12 < d < 1e-9

    def test_nems_sleep_leakage_orders_lower(self):
        leak_c = sleep.block_sleep_leakage(
            sleep.GatedBlockSpec(kind="cmos", area_units=8.0))
        leak_n = sleep.block_sleep_leakage(
            sleep.GatedBlockSpec(kind="nems", area_units=8.0))
        assert leak_c / leak_n > 100

    def test_delay_degradation_positive(self):
        deg = sleep.delay_degradation("cmos", 4.0)
        assert deg > 0


class TestSizing:
    def test_sizing_meets_budget(self):
        area = sleep.size_for_delay_budget("nems", 0.10)
        assert sleep.delay_degradation("nems", area) <= 0.101

    def test_cmos_needs_less_area(self):
        a_nems = sleep.size_for_delay_budget("nems", 0.10)
        a_cmos = sleep.size_for_delay_budget("cmos", 0.10)
        assert a_cmos < a_nems

    def test_rejects_bad_budget(self):
        with pytest.raises(DesignError):
            sleep.size_for_delay_budget("cmos", 0.0)

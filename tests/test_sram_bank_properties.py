"""Property tests for address decode and bank-trimming invariants.

Randomised geometries exercise corners the example-based tests don't
(single-row banks, mux_ratio 1, single-word banks, every address):

* the decoder is one-hot for *every* address and partitions the
  address space;
* the trimmed plan never drops the accessed cell, represents every
  bitcell of the array exactly once, and partitions rows/columns;
* the trimmed netlist preserves the accessed column's bitline loading
  and the total wordline-gated width — the width-linear quantities
  the aggregation argument says must be invariant.
"""

from hypothesis import given, settings, strategies as st

from repro.library.sram_bank import (
    AddressDecoder,
    BankSpec,
    bitline_capacitance,
    build_bank,
    plan_bank,
    wordline_access_width,
)

#: Small-but-irregular geometries: rows x (mux * words) up to 12x12.
geometries = st.tuples(st.integers(1, 12),          # rows
                       st.integers(1, 4),           # mux_ratio
                       st.integers(1, 3))           # words


def draw_bank(draw, style="cmos"):
    rows, mux, words = draw(geometries)
    spec = BankSpec(rows=rows, cols=mux * words, mux_ratio=mux,
                    style=style)
    address = draw(st.integers(0, rows * mux - 1))
    probe_bit = draw(st.integers(0, words - 1))
    return spec, address, probe_bit


@st.composite
def banks(draw, style="cmos"):
    return draw_bank(draw, style)


@st.composite
def styled_banks(draw):
    style = draw(st.sampled_from(("cmos", "hybrid", "nems_sleep")))
    return (*draw_bank(draw, style), style)


class TestDecoderProperties:
    @given(st.integers(1, 32), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_one_hot_for_every_address(self, rows, mux):
        dec = AddressDecoder(rows, mux)
        for address in range(dec.n_addresses):
            wl = dec.one_hot(address)
            cs = dec.column_select(address)
            assert sum(wl) == 1 and len(wl) == rows
            assert sum(cs) == 1 and len(cs) == mux
            row, offset = dec.decode(address)
            assert wl[row] == 1 and cs[offset] == 1
            assert row * mux + offset == address

    @given(st.integers(1, 32), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_decode_partitions_the_address_space(self, rows, mux):
        dec = AddressDecoder(rows, mux)
        seen = {dec.decode(a) for a in range(dec.n_addresses)}
        assert len(seen) == dec.n_addresses


class TestPlanProperties:
    @given(banks(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_every_cell_represented_exactly_once(self, bank, trim):
        spec, address, probe_bit = bank
        plan = plan_bank(spec, address, probe_bit=probe_bit, trim=trim)
        # Columns partition range(cols) ...
        cols = [j for g in plan.columns for j in g.columns]
        assert sorted(cols) == list(range(spec.cols))
        # ... and each column group's cells partition range(rows).
        for g in plan.columns:
            rows = [r for cg in g.cells for r in cg.rows]
            assert sorted(rows) == list(range(spec.rows))
        assert plan.cells_represented == spec.rows * spec.cols

    @given(banks())
    @settings(max_examples=40, deadline=None)
    def test_accessed_cell_never_dropped(self, bank):
        spec, address, probe_bit = bank
        plan = plan_bank(spec, address, probe_bit=probe_bit, trim=True)
        sel = plan.accessed_column
        assert sel.columns == (plan.col,) and sel.mux_on
        assert plan.col // spec.mux_ratio == probe_bit
        assert plan.col % spec.mux_ratio == plan.col_offset
        probed = [cg for cg in sel.cells if cg.probed]
        assert len(probed) == 1
        assert probed[0].rows == (plan.row,)
        assert probed[0].scale == 1 and probed[0].selected
        assert not probed[0].stored_one
        # Exactly one selected (wordline-gated) cell group per column
        # group, always standing for the accessed row alone.
        for g in plan.columns:
            selected = [cg for cg in g.cells if cg.selected]
            assert len(selected) == 1
            assert selected[0].rows == (plan.row,)

    @given(banks())
    @settings(max_examples=40, deadline=None)
    def test_flat_and_trimmed_plans_agree_on_the_access(self, bank):
        spec, address, probe_bit = bank
        flat = plan_bank(spec, address, probe_bit=probe_bit,
                         trim=False)
        trimmed = plan_bank(spec, address, probe_bit=probe_bit,
                            trim=True)
        assert (flat.row, flat.col, flat.col_offset) \
            == (trimmed.row, trimmed.col, trimmed.col_offset)
        assert flat.cells_represented == trimmed.cells_represented


class TestNetlistProperties:
    @given(styled_banks())
    @settings(max_examples=15, deadline=None)
    def test_trimming_preserves_accessed_bitline_loading(self, bank):
        spec, address, probe_bit, style = bank
        flat = build_bank(spec, address, probe_bit=probe_bit,
                          trim=False)
        trimmed = build_bank(spec, address, probe_bit=probe_bit,
                             trim=True)
        assert trimmed.n_unknowns <= flat.n_unknowns
        for node in ("bl_sel", "blb_sel"):
            c_flat = bitline_capacitance(flat.circuit, node)
            c_trim = bitline_capacitance(trimmed.circuit, node)
            assert abs(c_trim - c_flat) <= 1e-12 * c_flat
        w_flat = wordline_access_width(flat.circuit)
        w_trim = wordline_access_width(trimmed.circuit)
        assert abs(w_trim - w_flat) <= 1e-12 * w_flat

    @given(styled_banks())
    @settings(max_examples=15, deadline=None)
    def test_accessed_cell_devices_are_unit_scale(self, bank):
        spec, address, probe_bit, style = bank
        bank_built = build_bank(spec, address, probe_bit=probe_bit,
                                trim=True)
        plan = bank_built.plan
        cell = spec.cell
        probed = [cg for cg in plan.accessed_column.cells
                  if cg.probed][0]
        for role, width in (("AL", cell.w_access),
                            ("NL", cell.w_pulldown),
                            ("PL", cell.w_pullup)):
            device = bank_built.circuit[
                f"{role}_{probed.tag}_sel"]
            assert device.width == width

"""Tests for the SPICE importer, including round trips with the
exporter."""

import numpy as np
import pytest

from repro import Circuit, Pulse, Sine, operating_point, transient
from repro.circuit.spice_io import to_spice
from repro.circuit.spice_parser import from_spice, parse_number
from repro.errors import NetlistError


class TestNumbers:
    def test_plain(self):
        assert parse_number("1000") == 1000.0
        assert parse_number("-2.5") == -2.5
        assert parse_number("1e-9") == 1e-9

    def test_suffixes(self):
        assert parse_number("1k") == 1e3
        assert parse_number("10MEG") == pytest.approx(1e7)
        assert parse_number("3m") == pytest.approx(3e-3)
        assert parse_number("100n") == pytest.approx(1e-7)
        assert parse_number("5p") == pytest.approx(5e-12)
        assert parse_number("2f") == pytest.approx(2e-15)

    def test_unit_tail_ignored(self):
        # SPICE tradition: trailing unit letters are noise after the
        # scale suffix ("10pF" == 10e-12).
        assert parse_number("10PF") == pytest.approx(10e-12)

    def test_rejects_garbage(self):
        with pytest.raises(NetlistError):
            parse_number("ohm10")


class TestParsing:
    def test_divider_deck(self):
        deck = """* divider
V1 in 0 DC 2
R1 in mid 1k
R2 mid 0 1k
.end
"""
        report = from_spice(deck)
        op = operating_point(report.circuit)
        assert op.voltage("mid") == pytest.approx(1.0)
        assert report.circuit.title == "divider"

    def test_pulse_and_continuation_lines(self):
        deck = """* pulse
V1 a 0 PULSE(0 1.2 1n
+ 10p 10p 2n 5n)
R1 a 0 1k
"""
        report = from_spice(deck)
        src = report.circuit["V1"]
        assert isinstance(src.waveform, Pulse)
        assert src.waveform.td == pytest.approx(1e-9)
        assert src.waveform.per == pytest.approx(5e-9)

    def test_sin_source(self):
        deck = "* s\nV1 a 0 SIN(0.5 0.2 1MEG)\nR1 a 0 1k\n"
        src = from_spice(deck).circuit["V1"]
        assert isinstance(src.waveform, Sine)
        assert src.waveform.freq == pytest.approx(1e6)

    def test_ac_annotation(self):
        deck = "* ac\nV1 a 0 DC 0.5 AC 1\nR1 a 0 1k\n"
        src = from_spice(deck).circuit["V1"]
        assert src.ac == 1.0
        assert src.waveform.level == pytest.approx(0.5)

    def test_device_cards_reported_not_parsed(self):
        deck = ("* d\nV1 a 0 1\nM1 a a 0 0 NM W=1u L=90n\n"
                ".model NM NMOS (LEVEL=1)\nR1 a 0 1k\n")
        report = from_spice(deck)
        assert any(card.startswith("M1") for card in
                   report.skipped_cards)
        assert len(report.model_cards) == 1

    def test_bad_card_raises(self):
        with pytest.raises(NetlistError, match="cannot parse card"):
            from_spice("* x\nR1 a 0\n")


class TestRoundTrip:
    def test_linear_circuit_round_trips(self):
        original = Circuit("rt")
        original.vsource("V1", "in", "0",
                         Pulse(0, 1, td=1e-9, tr=10e-12, tf=10e-12,
                               pw=2e-9, per=6e-9))
        original.resistor("R1", "in", "out", 2.2e3)
        original.capacitor("C1", "out", "0", 3e-12)
        original.inductor("L1", "out", "tail", 1e-9)
        original.resistor("R2", "tail", "0", 50.0)

        recovered = from_spice(to_spice(original)).circuit
        res_a = transient(original, 5e-9, 10e-12)
        res_b = transient(recovered, 5e-9, 10e-12)
        va = np.interp(4e-9, res_a.t, res_a.voltage("out"))
        vb = np.interp(4e-9, res_b.t, res_b.voltage("out"))
        assert vb == pytest.approx(va, rel=1e-6)

    def test_round_trip_preserves_element_count(self):
        original = Circuit("rt2")
        original.vsource("V1", "a", "0", 1.0)
        original.isource("I1", "a", "0", 1e-3)
        original.resistor("R1", "a", "0", 1e3)
        recovered = from_spice(to_spice(original)).circuit
        assert len(recovered) == len(original)

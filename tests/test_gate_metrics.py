"""Tests for dynamic-gate figures of merit."""

import pytest

from repro.devices.mosfet import nmos_90nm, pmos_90nm
from repro.errors import DesignError
from repro.library import gate_metrics as gm
from repro.library.dynamic_logic import DynamicOrSpec, build_dynamic_or


@pytest.fixture(scope="module")
def cmos_gate():
    return build_dynamic_or(DynamicOrSpec(fan_in=4, fan_out=1,
                                          style="cmos"))


@pytest.fixture(scope="module")
def hybrid_gate():
    return build_dynamic_or(DynamicOrSpec(fan_in=4, fan_out=1,
                                          style="hybrid"))


class TestTripVoltage:
    def test_within_rails(self):
        trip = gm.inverter_trip_voltage(nmos_90nm(), 1e-6,
                                        pmos_90nm(), 2e-6, 1.2)
        assert 0.3 < trip < 0.9

    def test_stronger_pmos_raises_trip(self):
        t1 = gm.inverter_trip_voltage(nmos_90nm(), 1e-6, pmos_90nm(),
                                      1e-6, 1.2)
        t2 = gm.inverter_trip_voltage(nmos_90nm(), 1e-6, pmos_90nm(),
                                      4e-6, 1.2)
        assert t2 > t1


class TestNoiseMargin:
    def test_larger_keeper_increases_margin(self, cmos_gate):
        cmos_gate.set_keeper_width(0.2e-6)
        nm_small = gm.noise_margin_static(cmos_gate)
        cmos_gate.set_keeper_width(2e-6)
        nm_big = gm.noise_margin_static(cmos_gate)
        assert nm_big > nm_small

    def test_leaky_corner_reduces_margin(self, cmos_gate):
        cmos_gate.set_keeper_width(1e-6)
        nominal = gm.noise_margin_static(cmos_gate)
        corner = gm.noise_margin_static(cmos_gate, pd_shift=-0.08)
        assert corner < nominal

    def test_hybrid_margin_pinned_at_pull_in(self, hybrid_gate):
        nm = gm.noise_margin_static(hybrid_gate)
        v_pi = hybrid_gate.spec.nems.pull_in_voltage
        assert nm == pytest.approx(v_pi, abs=0.05)

    def test_static_predicts_transient(self, cmos_gate):
        """The static criterion must agree with a real transient check."""
        cmos_gate.set_keeper_width(1.2e-6)
        nm = gm.noise_margin_static(cmos_gate)
        assert gm.noise_margin_transient(cmos_gate, nm - 0.08)
        assert not gm.noise_margin_transient(cmos_gate, nm + 0.12)


class TestDelayAndPower:
    def test_delay_positive_and_sane(self, cmos_gate):
        d = gm.measure_worst_case_delay(cmos_gate)
        assert 1e-12 < d < 1e-9

    def test_hybrid_slower_at_small_fan_in(self, cmos_gate,
                                           hybrid_gate):
        cmos_gate.set_keeper_width(
            cmos_gate.spec.default_keeper_width())
        d_c = gm.measure_worst_case_delay(cmos_gate)
        d_h = gm.measure_worst_case_delay(hybrid_gate)
        assert d_h > d_c

    def test_switching_energy_grows_with_load(self):
        e = {}
        for fo in (1, 4):
            gate = build_dynamic_or(DynamicOrSpec(fan_in=4, fan_out=fo,
                                                  style="cmos"))
            e[fo] = gm.measure_switching_power(gate)[1]
        assert e[4] > e[1]

    def test_hybrid_leakage_orders_below_cmos(self, cmos_gate,
                                              hybrid_gate):
        p_c = gm.measure_leakage_power(cmos_gate)
        p_h = gm.measure_leakage_power(hybrid_gate)
        assert p_h < p_c / 5
        assert p_h > 0

    def test_characterize_bundle(self, hybrid_gate):
        metrics = gm.characterize(hybrid_gate)
        assert metrics.delay > 0
        assert metrics.switching_energy > 0
        assert metrics.noise_margin > 0.3
        assert metrics.leakage_power < 1e-6


class TestKeeperSizing:
    def test_sized_keeper_meets_target(self, cmos_gate):
        w = gm.size_keeper_for_noise_margin(cmos_gate, 0.25)
        cmos_gate.set_keeper_width(w)
        assert gm.noise_margin_static(cmos_gate) >= 0.249
        cmos_gate.set_keeper_width(
            cmos_gate.spec.default_keeper_width())

    def test_sizing_restores_width(self, cmos_gate):
        cmos_gate.set_keeper_width(0.7e-6)
        gm.size_keeper_for_noise_margin(cmos_gate, 0.2)
        assert cmos_gate.keeper_width == pytest.approx(0.7e-6)

    def test_unreachable_target_returns_cap(self, cmos_gate):
        w = gm.size_keeper_for_noise_margin(cmos_gate, 1.1)
        assert w == pytest.approx(
            gm.max_functional_keeper_width(cmos_gate))

    def test_strict_mode_raises(self, cmos_gate):
        with pytest.raises(DesignError):
            gm.size_keeper_for_noise_margin(cmos_gate, 1.1, strict=True)

    def test_functional_cap_positive(self, cmos_gate):
        assert gm.max_functional_keeper_width(cmos_gate) > 1e-6

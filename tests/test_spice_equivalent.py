"""Tests for the Figure 6(b) all-electrical macro-model."""

import numpy as np
import pytest

from repro import Circuit, dc_sweep, operating_point
from repro.devices.nemfet import nemfet_90nm
from repro.devices.spice_equivalent import (
    ForcePolynomial,
    MacroNemfet,
    fit_force_polynomial,
)
from repro.errors import CalibrationError, NetlistError

VDD = 1.2


@pytest.fixture(scope="module")
def params():
    return nemfet_90nm()


@pytest.fixture(scope="module")
def poly(params):
    return fit_force_polynomial(params)


class TestPolynomialFit:
    def test_tracks_physical_force(self, params, poly):
        # Compare along the followed branch at a few biases.
        for v in (0.1, 0.3, 0.8, 1.2):
            branch = "up" if v < params.pull_in_voltage else "down"
            u = params.static_position(v, branch)
            f_phys = params.force_electrostatic_hat(v, u)[0]
            f_fit = poly.evaluate(v)[0]
            assert f_fit == pytest.approx(f_phys,
                                          abs=0.4 * max(f_phys, 1.0))

    def test_even_symmetry(self, poly):
        assert poly.evaluate(0.6)[0] == pytest.approx(
            poly.evaluate(-0.6)[0])

    def test_derivative_matches_fd(self, poly):
        eps = 1e-6
        f0, df = poly.evaluate(0.5)
        f1, _ = poly.evaluate(0.5 + eps)
        assert df == pytest.approx((f1 - f0) / eps, rel=1e-3, abs=1e-6)

    def test_clamps_out_of_range(self, poly):
        assert poly.evaluate(10.0)[0] == poly.evaluate(poly.v_max)[0]

    def test_rejects_low_degree(self, params):
        with pytest.raises(CalibrationError):
            fit_force_polynomial(params, degree=1)


class TestMacroModel:
    def test_rejects_bad_width(self, params):
        with pytest.raises(NetlistError):
            MacroNemfet("M1", "d", "g", "s", params, width=0.0)

    def test_dc_transfer_switches(self, params, poly):
        c = Circuit("macro")
        c.vsource("VG", "g", "0", 0.0)
        c.vsource("VD", "d", "0", VDD)
        c.add(MacroNemfet("M1", "d", "g", "0", params, 1e-6,
                          force_poly=poly))
        sweep = dc_sweep(c, "VG", np.linspace(0, VDD, 41))
        i = np.abs(sweep.branch_current("VD"))
        assert i[-1] > 1e-4       # strongly on at Vdd
        assert i[0] < 1e-9        # off at zero bias

    def test_macro_on_current_close_to_physical(self, params, poly):
        c = Circuit("macro_on")
        c.vsource("VG", "g", "0", VDD)
        c.vsource("VD", "d", "0", VDD)
        c.add(MacroNemfet("M1", "d", "g", "0", params, 1e-6,
                          force_poly=poly))
        op = operating_point(c)
        i_macro = -op.branch_current("VD")
        i_phys = params.static_current(1e-6, VDD, VDD, 0.0, "down")
        assert i_macro == pytest.approx(i_phys, rel=0.15)

    def test_macro_model_loses_hysteresis(self, params, poly):
        """The ablation: f(Vg) without position feedback cannot hold
        the contact branch on the way down."""
        c = Circuit("macro_hyst")
        c.vsource("VG", "g", "0", 0.0)
        c.vsource("VD", "d", "0", VDD)
        c.add(MacroNemfet("M1", "d", "g", "0", params, 1e-6,
                          force_poly=poly))
        vg_up = np.linspace(0, VDD, 41)
        up = dc_sweep(c, "VG", vg_up)
        down = dc_sweep(c, "VG", vg_up[::-1], x0=up.points[-1].x)
        u_up = up.state("M1", "position")
        u_dn = down.state("M1", "position")[::-1]
        # Positions retrace: no bistable window (unlike the physical
        # model, which holds u near 1 down to the pull-out voltage).
        mid = len(vg_up) // 3
        assert abs(u_dn[mid] - u_up[mid]) < 0.2

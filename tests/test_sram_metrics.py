"""Tests for SRAM metrics: SNM, read latency, leakage, write."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.library.sram import SramSpec
from repro.library import sram_metrics as sm


class TestSeevinck:
    def test_ideal_step_inverters(self):
        """Two ideal inverters switching at Vdd/2 give SNM = Vdd/2."""
        vdd = 1.0
        v = np.linspace(0, vdd, 401)
        steep = vdd / (1 + np.exp((v - vdd / 2) / 0.002))
        snm = sm.seevinck_snm(v, steep, steep)
        assert snm == pytest.approx(vdd / 2, abs=0.02)

    def test_shifted_trip_reduces_snm(self):
        vdd = 1.0
        v = np.linspace(0, vdd, 401)
        inv_mid = vdd / (1 + np.exp((v - 0.5) / 0.002))
        inv_low = vdd / (1 + np.exp((v - 0.3) / 0.002))
        snm_sym = sm.seevinck_snm(v, inv_mid, inv_mid)
        snm_skew = sm.seevinck_snm(v, inv_low, inv_low)
        assert snm_skew < snm_sym

    def test_degenerate_buffer_gives_zero(self):
        """Non-inverting unity curves have no eye: SNM = 0."""
        v = np.linspace(0, 1, 101)
        assert sm.seevinck_snm(v, v.copy(), v.copy()) \
            == pytest.approx(0.0, abs=0.02)

    def test_rejects_mismatched(self):
        with pytest.raises(MeasurementError):
            sm.seevinck_snm(np.zeros(10), np.zeros(10), np.zeros(9))


class TestSnm:
    def test_conventional_snm_plausible(self):
        snm, curves = sm.static_noise_margin(SramSpec())
        assert 0.05 < snm < 0.6
        assert len(curves.v_in) == 121

    def test_weaker_pulldown_lowers_snm(self):
        strong = SramSpec(w_pulldown=0.6e-6)
        weak = SramSpec(w_pulldown=0.2e-6)
        snm_strong, _ = sm.static_noise_margin(strong)
        snm_weak, _ = sm.static_noise_margin(weak)
        assert snm_weak < snm_strong

    def test_butterfly_symmetric_for_conventional(self):
        curves = sm.butterfly(SramSpec())
        assert np.allclose(curves.v_right, curves.v_left, atol=1e-6)

    def test_butterfly_asymmetric_for_asym_cell(self):
        curves = sm.butterfly(SramSpec(variant="asymmetric"))
        assert not np.allclose(curves.v_right, curves.v_left,
                               atol=1e-3)


class TestReadLatency:
    def test_larger_bitline_slower(self):
        fast = sm.read_latency(SramSpec(c_bitline=20e-15))
        slow = sm.read_latency(SramSpec(c_bitline=80e-15))
        assert slow > 2.5 * fast

    def test_hybrid_slower_than_conventional(self):
        conv = sm.read_latency(SramSpec())
        hyb = sm.read_latency(SramSpec(variant="hybrid"))
        assert 1.05 * conv < hyb < 2.0 * conv

    def test_asym_states_differ(self):
        """Stored-1 reads discharge through the high-Vt NR: slower.
        The access transistor dominates the path at these sizes, so the
        split is small but must be consistently resolvable."""
        lat0, lat1 = sm.read_latencies_both(SramSpec(variant="asymmetric"))
        assert lat1 > lat0 * 1.003

    def test_symmetric_states_match(self):
        lat0, lat1 = sm.read_latencies_both(SramSpec())
        assert lat1 == pytest.approx(lat0, rel=0.02)


class TestLeakage:
    def test_ordering_conv_dualvt_hybrid(self):
        conv = sm.standby_leakage(SramSpec())
        dual = sm.standby_leakage(SramSpec(variant="dual_vt"))
        hyb = sm.standby_leakage(SramSpec(variant="hybrid"))
        assert conv > dual > hyb > 0

    def test_hybrid_reduction_near_8x(self):
        conv = sm.standby_leakage(SramSpec())
        hyb = sm.standby_leakage(SramSpec(variant="hybrid"))
        assert 5.0 < conv / hyb < 12.0


class TestWrite:
    def test_conventional_write_flips_cell(self):
        lat = sm.write_latency(SramSpec())
        assert 0 < lat < 1e-9

    def test_hybrid_write_includes_mechanics(self):
        """Flipping the hybrid cell actuates four NEMS beams, so the
        write is slower than the conventional cell's."""
        conv = sm.write_latency(SramSpec())
        hyb = sm.write_latency(SramSpec(variant="hybrid"))
        assert hyb > conv


class TestWriteMargin:
    def test_conventional_trip_in_band(self):
        wtv = sm.write_margin(SramSpec())
        assert 0.05 < wtv < 0.6

    def test_hybrid_statically_easier_to_write(self):
        """Weak NEMS pull-ups raise the write trip voltage — the
        hybrid cell's write cost is the mechanical latency, not the
        static margin."""
        conv = sm.write_margin(SramSpec())
        hyb = sm.write_margin(SramSpec(variant="hybrid"))
        assert hyb > 1.2 * conv

    def test_stronger_access_raises_trip(self):
        strong = sm.write_margin(SramSpec(w_access=0.2e-6))
        weak = sm.write_margin(SramSpec(w_access=0.1e-6))
        assert strong > weak

    def test_unwritable_cell_raises(self):
        """An access device too weak to overpower the pull-up cannot
        write the cell at any bitline level."""
        with pytest.raises(MeasurementError):
            sm.write_margin(SramSpec(w_access=0.02e-6))

"""Tests for solver telemetry collection and run reports."""

import numpy as np

from repro.analysis.solver import SolveEvent, newton_solve
from repro.engine import telemetry
from repro.engine.runner import Job, run_jobs
from repro.engine.telemetry import (
    JobRecord,
    RunTelemetry,
    SolveStats,
    collecting,
    load_report,
    report_to_text,
    save_report,
)
from repro.errors import ConvergenceError


def _linear_solve():
    A = np.array([[2.0, 1.0], [1.0, 3.0]])
    b = np.array([1.0, 2.0])

    def assemble(x):
        return A @ x - b, A, np.zeros(0)

    return newton_solve(assemble, np.zeros(2),
                        row_tol=np.full(2, 1e-9),
                        dx_limit=np.full(2, np.inf))


def solver_task(_index):
    """Engine task that performs one real Newton solve."""
    x, _, info = _linear_solve()
    return float(x[0]), info.iterations


class TestSolveStats:
    def test_collects_newton_events(self):
        stats = SolveStats()
        with collecting(stats):
            _, _, info = _linear_solve()
        assert stats.newton_solves == 1
        assert stats.newton_iterations == info.iterations
        assert stats.newton_failures == 0
        assert stats.solver_time > 0.0

    def test_collects_failures(self):
        stats = SolveStats()

        def assemble(x):
            return (np.array([x[0] ** 2 + 1.0]),
                    np.array([[2 * x[0] + 1e-3]]), np.zeros(0))

        with collecting(stats):
            try:
                newton_solve(assemble, np.array([1.0]),
                             row_tol=np.array([1e-9]),
                             dx_limit=np.array([1.0]))
            except ConvergenceError:
                pass
        assert stats.newton_failures == 1

    def test_observer_removed_after_block(self):
        stats = SolveStats()
        with collecting(stats):
            _linear_solve()
        count = stats.newton_solves
        _linear_solve()  # outside the block: not collected
        assert stats.newton_solves == count

    def test_dc_events_update_strategy_histogram(self):
        stats = SolveStats()
        stats.observe(SolveEvent("dc", "gmin", 40, 0.5, True, 0.01))
        stats.observe(SolveEvent("dc", "gmin", 10, 0.2, True, 0.01))
        stats.observe(SolveEvent("dc", "direct", 3, 0.1, True, 0.01))
        assert stats.dc_solves == 3
        assert stats.strategies == {"gmin": 2, "direct": 1}
        assert stats.dc_iterations == 53

    def test_merge_accumulates(self):
        a = SolveStats(newton_solves=2, newton_iterations=10,
                       strategies={"direct": 1}, solver_time=0.5)
        b = SolveStats(newton_solves=3, newton_iterations=7,
                       strategies={"direct": 2, "gmin": 1},
                       solver_time=0.25)
        a.merge(b)
        assert a.newton_solves == 5
        assert a.newton_iterations == 17
        assert a.strategies == {"direct": 3, "gmin": 1}
        assert a.solver_time == 0.75

    def test_round_trips_through_dict(self):
        stats = SolveStats(newton_solves=4, dc_solves=2,
                           strategies={"source": 2},
                           worst_residual=0.9)
        clone = SolveStats.from_dict(stats.to_dict())
        assert clone == stats

    def test_transient_events_fold_step_counters(self):
        stats = SolveStats()
        stats.observe(SolveEvent(
            "transient", "lte", 55, 0.0, True, 0.2,
            steps_accepted=40, steps_rejected_lte=3,
            steps_rejected_newton=1, h_min=1e-12, h_max=6e-11,
            error_ratio_hist=(1, 2, 3, 0, 0, 0, 0)))
        stats.observe(SolveEvent(
            "transient", "lte", 30, 0.0, True, 0.1,
            steps_accepted=20, steps_rejected_lte=0,
            steps_rejected_newton=0, h_min=4e-12, h_max=2e-11,
            error_ratio_hist=(0, 1, 1, 1, 0, 0, 0)))
        assert stats.transient_runs == 2
        assert stats.steps_accepted == 60
        assert stats.steps_rejected_lte == 3
        assert stats.steps_rejected_newton == 1
        assert stats.min_step == 1e-12
        assert stats.max_step == 6e-11
        assert stats.error_ratio_hist == [1, 3, 4, 1, 0, 0, 0]
        # A run summary must not double-count its inner newton solves.
        assert stats.newton_solves == 0
        assert stats.newton_iterations == 0
        assert stats.solver_time == 0.0

    def test_merge_accumulates_transient_counters(self):
        a = SolveStats(transient_runs=1, steps_accepted=10,
                       min_step=2e-12, max_step=1e-11,
                       error_ratio_hist=[1, 0])
        b = SolveStats(transient_runs=2, steps_accepted=30,
                       steps_rejected_lte=4, min_step=1e-12,
                       max_step=3e-11, error_ratio_hist=[0, 2])
        a.merge(b)
        assert a.transient_runs == 3
        assert a.steps_accepted == 40
        assert a.steps_rejected_lte == 4
        assert a.min_step == 1e-12
        assert a.max_step == 3e-11
        assert a.error_ratio_hist == [1, 2]

    def test_report_text_shows_step_counters(self):
        record = JobRecord(tag="t", group="g")
        record.solves.observe(SolveEvent(
            "transient", "lte", 10, 0.0, True, 0.1,
            steps_accepted=25, steps_rejected_lte=2,
            error_ratio_hist=(0, 0, 1)))
        session = RunTelemetry()
        session.record(record)
        text = report_to_text(session.to_report())
        assert "steps acc/rej" in text
        assert "25/2" in text

    def test_report_text_tolerates_old_reports(self):
        """Reports written before step counters existed still render."""
        record = JobRecord(tag="t", group="g")
        report = RunTelemetry()
        report.record(record)
        data = report.to_report()
        for group in data["groups"]:
            for key in ("transient_runs", "steps_accepted",
                        "steps_rejected_lte", "steps_rejected_newton",
                        "min_step", "max_step", "error_ratio_hist"):
                group["solves"].pop(key, None)
        text = report_to_text(data)
        assert "steps acc/rej" in text


class TestRunnerTelemetry:
    def test_jobs_capture_solver_stats(self):
        telemetry.SESSION.reset()
        results = run_jobs([Job(solver_task, (i,)) for i in range(3)],
                           cache=None, group="unit")
        assert all(r.ok for r in results)
        assert all(r.solves.newton_solves == 1 for r in results)
        records = [r for r in telemetry.SESSION.records
                   if r.group == "unit"]
        assert len(records) == 3
        assert sum(r.solves.newton_iterations for r in records) > 0

    def test_parallel_jobs_ship_stats_back(self):
        telemetry.SESSION.reset()
        results = run_jobs([Job(solver_task, (i,)) for i in range(4)],
                           cache=None, jobs=2, group="par")
        assert all(r.solves.newton_solves == 1 for r in results)


class TestRunReport:
    def _telemetry(self):
        run = RunTelemetry()
        run.record(JobRecord(tag="a0", group="figA", wall_time=1.0,
                             solves=SolveStats(newton_solves=5,
                                               newton_iterations=50)))
        run.record(JobRecord(tag="a1", group="figA", cache_hit=True))
        run.record(JobRecord(
            tag="b0", group="figB", ok=False, attempts=3,
            error={"tag": "b0", "error_type": "ConvergenceError",
                   "message": "hopeless", "residual_norm": 2.0,
                   "iterations": 9, "attempts": 3, "wall_time": 0.1}))
        return run

    def test_group_summary(self):
        run = self._telemetry()
        summary = run.group_summary("figA")
        assert summary["jobs"] == 2
        assert summary["cache_hits"] == 1
        assert summary["failures"] == 0
        assert summary["solves"]["newton_iterations"] == 50
        assert run.group_summary("figB")["failures"] == 1

    def test_save_and_load_round_trip(self, tmp_path):
        run = self._telemetry()
        path = str(tmp_path / "report.json")
        save_report(path, run)
        report = load_report(path)
        assert [g["group"] for g in report["groups"]] == ["figA",
                                                          "figB"]
        assert len(report["jobs"]) == 3

    def test_report_text_mentions_failures(self, tmp_path):
        run = self._telemetry()
        text = report_to_text(run.to_report())
        assert "figA" in text and "figB" in text
        assert "ConvergenceError" in text
        assert "hopeless" in text

    def test_empty_report_text(self):
        assert "no engine jobs" in report_to_text(
            RunTelemetry().to_report())

"""Shape tests for the SRAM and sleep-transistor experiments."""

import pytest

from repro.experiments import (
    fig14_butterfly,
    fig15_sram_comparison,
    fig17_sleep_transistors,
)


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_butterfly.run(points=81)

    def test_four_variants(self, result):
        assert len(result.rows) == 4

    def test_all_snm_positive(self, result):
        for snm in result.column("SNM [mV]"):
            assert snm > 50.0

    def test_hybrid_below_conventional(self, result):
        ratio = result.filtered(variant="hybrid")[0][2]
        assert ratio < 1.0

    def test_butterfly_curves_attached(self, result):
        curves = result.extras["butterfly"]
        assert set(curves) == {"conventional", "dual_vt",
                               "asymmetric", "hybrid"}
        bf = curves["hybrid"]
        assert len(bf.v_in) == 81


class TestFigure15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15_sram_comparison.run()

    def test_hybrid_leakage_reduction_band(self, result):
        """The paper's 7.7x claim, within a factor tolerance."""
        reduction = result.filtered(variant="hybrid")[0][5]
        assert 5.0 < reduction < 12.0

    def test_hybrid_latency_band(self, result):
        """Paper: 23% penalty; accept 10-60%."""
        norm = result.filtered(variant="hybrid")[0][2]
        assert 1.1 < norm < 1.6

    def test_low_leakage_cells_beat_conventional(self, result):
        for variant in ("dual_vt", "asymmetric", "hybrid"):
            assert result.filtered(variant=variant)[0][4] < 1.0

    def test_hybrid_is_the_leakage_winner(self, result):
        leaks = {r[0]: r[3] for r in result.rows}
        assert leaks["hybrid"] == min(leaks.values())


class TestFigure17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_sleep_transistors.run(area_units=(1, 4, 16),
                                           delay_budget=None)

    def test_nems_ioff_three_orders_lower(self, result):
        for ratio in result.column("Ioff ratio"):
            assert ratio > 500

    def test_ron_gap_shrinks_with_area(self, result):
        gaps = result.column("dRon [ohm]")
        assert gaps == sorted(gaps, reverse=True)

    def test_both_ron_fall_with_area(self, result):
        r_c = result.column("Ron CMOS [ohm]")
        r_n = result.column("Ron NEMS [ohm]")
        assert r_c == sorted(r_c, reverse=True)
        assert r_n == sorted(r_n, reverse=True)

    def test_cmos_leakage_grows_with_area(self, result):
        i_c = result.column("Ioff CMOS [nA]")
        assert i_c == sorted(i_c)

"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestConstants:
    def test_thermal_voltage_room_temperature(self):
        assert units.thermal_voltage(300.15) == pytest.approx(0.02586,
                                                              rel=1e-3)

    def test_thermal_voltage_scales_linearly(self):
        assert units.thermal_voltage(600.3) == pytest.approx(
            2 * units.thermal_voltage(300.15))

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            units.thermal_voltage(-10.0)

    def test_eps0_value(self):
        assert units.EPS0 == pytest.approx(8.854e-12, rel=1e-3)

    def test_prefix_chain(self):
        assert units.nm == pytest.approx(1e-9)
        assert units.fF * 1000 == pytest.approx(units.pF)
        assert units.uA / units.nA == pytest.approx(1000)


class TestHelpers:
    def test_db10(self):
        assert units.db10(10.0) == pytest.approx(10.0)
        assert units.db10(1.0) == pytest.approx(0.0)

    def test_db10_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db10(0.0)

    def test_decades(self):
        assert units.decades(1000.0) == pytest.approx(3.0)

    def test_decades_rejects_negative(self):
        with pytest.raises(ValueError):
            units.decades(-1.0)

    def test_format_si_basic(self):
        assert units.format_si(3.2e-9, "A") == "3.2 nA"
        assert units.format_si(1.5e3, "V") == "1.5 kV"
        assert units.format_si(0.5, "W") == "500 mW"

    def test_format_si_zero(self):
        assert units.format_si(0.0, "A") == "0 A"

    def test_format_si_nonfinite(self):
        assert "inf" in units.format_si(math.inf, "A")

    def test_format_si_tiny_value_uses_smallest_prefix(self):
        out = units.format_si(5e-20, "F")
        assert "a" in out  # atto

"""Tests for device I-V characterisation."""

import numpy as np
import pytest

from repro.devices.characterize import IVFamily, output_family, transfer_family
from repro.devices.mosfet import nmos_90nm, pmos_90nm
from repro.devices.nemfet import nemfet_90nm
from repro.errors import DesignError


class TestTransferFamily:
    def test_shape(self):
        fam = transfer_family(nmos_90nm(), vd_values=(0.1, 1.2))
        assert fam.currents.shape == (2, 61)
        assert fam.kind == "transfer"

    def test_monotone_in_vg(self):
        fam = transfer_family(nmos_90nm(), vd_values=(1.2,))
        i = fam.curve(1.2)
        assert np.all(np.diff(i) >= -1e-15)

    def test_higher_vd_more_current(self):
        fam = transfer_family(nmos_90nm(), vd_values=(0.1, 1.2))
        assert fam.curve(1.2)[-1] > fam.curve(0.1)[-1]

    def test_nemfet_up_branch_has_pull_in_step(self):
        params = nemfet_90nm()
        vg = np.linspace(0.3, 0.6, 61)
        fam = transfer_family(params, vg=vg, vd_values=(1.2,),
                              branch="up")
        i = fam.curve(1.2)
        # Orders-of-magnitude jump inside the window.
        assert i[-1] / max(i[0], 1e-18) > 1e3

    def test_pmos_signs(self):
        fam = transfer_family(pmos_90nm(), vd_values=(1.2,))
        # Sweep is over negative gate voltages; current is negative.
        assert fam.sweep[-1] < 0
        assert fam.curve(1.2)[-1] < 0

    def test_to_rows_flattens(self):
        fam = transfer_family(nmos_90nm(), vg=np.linspace(0, 1.2, 5),
                              vd_values=(1.2,))
        rows = fam.to_rows()
        assert len(rows) == 5
        assert len(rows[0]) == 3


class TestOutputFamily:
    def test_saturation_flattens(self):
        fam = output_family(nmos_90nm(), vg_values=(1.2,))
        i = fam.curve(1.2)
        early_slope = (i[10] - i[5])
        late_slope = (i[-1] - i[-6])
        assert late_slope < 0.3 * early_slope

    def test_nemfet_auto_branch(self):
        params = nemfet_90nm()
        fam = output_family(params, vg_values=(0.2, 1.2))
        # Below pull-in: off; above: conducting.
        assert abs(fam.curve(0.2)[-1]) < 1e-9
        assert abs(fam.curve(1.2)[-1]) > 1e-4

    def test_rejects_unknown_params(self):
        with pytest.raises(DesignError):
            transfer_family(object())  # type: ignore[arg-type]


class TestIVFamilyAccess:
    def test_curve_picks_nearest(self):
        fam = IVFamily("transfer", np.array([0.0, 1.0]),
                       np.array([0.5, 1.0]),
                       np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.allclose(fam.curve(0.95), [3.0, 4.0])

"""Tests for the shared figures of merit (Equation 1)."""

import pytest

from repro.library.metrics import energy_delay_product, power_delay_product


class TestPowerDelayProduct:
    def test_zero_activity_is_pure_leakage(self):
        assert power_delay_product(2e-9, 5e-6, 1e-10, 0.0) \
            == pytest.approx(2e-9 * 1e-10)

    def test_full_activity_is_pure_switching(self):
        assert power_delay_product(2e-9, 5e-6, 1e-10, 1.0) \
            == pytest.approx(5e-6 * 1e-10)

    def test_linear_interpolation_in_activity(self):
        lo = power_delay_product(1e-9, 1e-6, 1e-10, 0.0)
        hi = power_delay_product(1e-9, 1e-6, 1e-10, 1.0)
        mid = power_delay_product(1e-9, 1e-6, 1e-10, 0.5)
        assert mid == pytest.approx(0.5 * (lo + hi))

    def test_rejects_activity_out_of_range(self):
        with pytest.raises(ValueError):
            power_delay_product(1e-9, 1e-6, 1e-10, 1.5)
        with pytest.raises(ValueError):
            power_delay_product(1e-9, 1e-6, 1e-10, -0.1)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            power_delay_product(-1e-9, 1e-6, 1e-10, 0.5)
        with pytest.raises(ValueError):
            power_delay_product(1e-9, 1e-6, -1e-10, 0.5)


class TestEnergyDelayProduct:
    def test_value(self):
        assert energy_delay_product(2e-15, 5e-11) \
            == pytest.approx(1e-25)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            energy_delay_product(-1e-15, 1e-10)

"""LTE step control: convergence order, statistics, golden regression.

The convergence tests integrate an RC low-pass driven by a *smooth*
(breakpoint-free) sine so the measured error isolates the integrator:
backward Euler must converge at O(h) and the trapezoidal rule at
O(h^2).  The control tests exercise the accept/reject machinery, the
per-run :class:`~repro.analysis.transient.StepStats`, and the
``kind="transient"`` solve event.  The regression test at the bottom
re-runs the golden Figure 9 keeper point under both step controls and
asserts LTE control reproduces the frozen value with at least half the
accepted steps of the legacy iteration heuristic.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro import Circuit, Pulse, transient, TransientOptions
from repro.circuit.waveforms import Waveform
from repro.analysis.options import (
    get_default_step_control,
    step_control_override,
)
from repro.analysis.solver import (
    add_solve_observer,
    remove_solve_observer,
)
from repro.analysis.transient import ERROR_RATIO_EDGES, _lte_estimate

TAU = 1e-9          # RC time constant [s]
OMEGA = 2 * math.pi / 4e-9


class _Sine(Waveform):
    """Smooth drive with no interior breakpoints."""

    def value(self, t: float) -> float:
        return math.sin(OMEGA * t)


def _sine_rc() -> Circuit:
    c = Circuit("sine_rc")
    c.vsource("V1", "in", "0", _Sine())
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 1e-12)
    return c


def _sine_rc_exact(t: np.ndarray) -> np.ndarray:
    """Response of the RC to sin(wt) from a discharged start."""
    wt = OMEGA * TAU
    return (np.sin(OMEGA * t) - wt * np.cos(OMEGA * t)
            + wt * np.exp(-t / TAU)) / (1 + wt * wt)


def _pulse_rc(td: float = 0.2e-9) -> Circuit:
    c = Circuit("pulse_rc")
    c.vsource("V1", "in", "0", Pulse(0.0, 1.0, td=td, tr=1e-12,
                                     pw=1.0, per=None))
    c.resistor("R1", "in", "out", 1e3)
    c.capacitor("C1", "out", "0", 1e-12)
    return c


def _fixed_step_error(method: str, h: float, tm: float = 2.4e-9) -> float:
    res = transient(_sine_rc(), 2.5e-9, h,
                    options=TransientOptions(method=method,
                                             adaptive=False))
    # Compare at the accepted sample nearest ``tm``: interpolating
    # between samples would add an O(h^2) error of its own and mask the
    # trapezoidal order.
    i = int(np.argmin(np.abs(res.t - tm)))
    return abs(float(res.voltage("out")[i])
               - float(_sine_rc_exact(res.t[i : i + 1])[0]))


class TestConvergenceOrder:
    def test_backward_euler_is_first_order(self):
        errs = [_fixed_step_error("be", h)
                for h in (80e-12, 40e-12, 20e-12)]
        for coarse, fine in zip(errs, errs[1:]):
            assert 1.6 < coarse / fine < 2.5

    def test_trapezoidal_is_second_order(self):
        errs = [_fixed_step_error("trap", h)
                for h in (80e-12, 40e-12, 20e-12)]
        for coarse, fine in zip(errs, errs[1:]):
            assert 3.2 < coarse / fine < 4.9

    def test_orders_separate_clearly(self):
        assert _fixed_step_error("trap", 40e-12) < \
            0.1 * _fixed_step_error("be", 40e-12)


class TestLteControl:
    def test_lte_is_session_default(self):
        assert get_default_step_control() == "lte"
        res = transient(_pulse_rc(), 4e-9, 5e-12)
        assert res.stats.control == "lte"

    def test_fixed_step_records_fixed_control(self):
        res = transient(_pulse_rc(), 1e-9, 20e-12,
                        options=TransientOptions(adaptive=False))
        assert res.stats.control == "fixed"
        assert res.stats.rejected_lte == 0

    def test_override_reaches_nested_solves(self):
        with step_control_override("iter"):
            res = transient(_pulse_rc(), 1e-9, 20e-12)
        assert res.stats.control == "iter"
        assert res.stats.error_ratio_hist == \
            [0] * (len(ERROR_RATIO_EDGES) + 1)

    def test_explicit_option_beats_session_default(self):
        with step_control_override("iter"):
            res = transient(
                _pulse_rc(), 1e-9, 20e-12,
                options=TransientOptions(step_control="lte"))
        assert res.stats.control == "lte"

    def test_lte_uses_fewer_steps_at_same_accuracy(self):
        """On the smooth settling tail LTE outruns the fixed heuristic."""
        with step_control_override("iter"):
            res_iter = transient(_pulse_rc(), 10e-9, 5e-12)
        res_lte = transient(
            _pulse_rc(), 10e-9, 5e-12,
            options=TransientOptions(step_control="lte",
                                     lte_max_dt_factor=256.0))
        assert res_lte.stats.accepted < 0.7 * res_iter.stats.accepted
        exact = 1 - np.exp(-(9e-9 - 0.2e-9 - 1e-12) / TAU)
        v = float(np.interp(9e-9, res_lte.t, res_lte.voltage("out")))
        assert v == pytest.approx(exact, abs=2e-3)

    def test_tight_tolerance_rejects_steps(self):
        res = transient(
            _pulse_rc(), 6e-9, 40e-12,
            options=TransientOptions(step_control="lte", trtol=1.0,
                                     lte_reltol=1e-5,
                                     lte_max_growth=8.0,
                                     lte_max_dt_factor=256.0))
        assert res.stats.rejected_lte > 0
        assert res.stats.attempts == (res.stats.accepted
                                      + res.stats.rejected_lte
                                      + res.stats.rejected_newton)

    def test_tighter_tolerance_takes_more_steps(self):
        counts = []
        for reltol in (1e-2, 1e-4):
            res = transient(
                _pulse_rc(), 6e-9, 5e-12,
                options=TransientOptions(step_control="lte",
                                         lte_reltol=reltol))
            counts.append(res.stats.accepted)
        assert counts[1] > counts[0]

    def test_stats_step_extrema_and_histogram(self):
        res = transient(_pulse_rc(), 6e-9, 5e-12)
        stats = res.stats
        assert 0.0 < stats.h_min <= stats.h_max
        assert stats.h_max <= 6e-9
        # Every ratio measurement lands in exactly one histogram bin.
        assert sum(stats.error_ratio_hist) <= stats.attempts
        assert len(stats.error_ratio_hist) == len(ERROR_RATIO_EDGES) + 1

    def test_steps_still_land_on_breakpoints(self):
        res = transient(_pulse_rc(td=1.234e-9), 3e-9, 0.3e-9)
        assert np.min(np.abs(res.t - 1.234e-9)) < 1e-15

    def test_transient_solve_event_emitted(self):
        events = []
        add_solve_observer(events.append)
        try:
            res = transient(_pulse_rc(), 1e-9, 20e-12)
        finally:
            remove_solve_observer(events.append)
        summaries = [e for e in events if e.kind == "transient"]
        assert len(summaries) == 1
        event = summaries[0]
        assert event.strategy == "lte"
        assert event.steps_accepted == res.stats.accepted
        assert event.steps_accepted == len(res) - 1
        assert event.h_min == res.stats.h_min
        assert tuple(res.stats.error_ratio_hist) == \
            event.error_ratio_hist

    def test_lte_estimate_guards_degenerate_history(self):
        x = np.ones(2)
        # Too little history.
        assert _lte_estimate([0.0], [x], 1e-12, x, False) is None
        # Duplicated time point: refusing the estimate beats the 0/0
        # that would otherwise NaN-poison the step controller.
        assert _lte_estimate([1e-12, 1e-12], [x, x], 2e-12, x,
                             False) is None
        # Trap needs three increasing points.
        assert _lte_estimate([0.0, 1e-12], [x, x], 2e-12, x,
                             True) is None
        assert _lte_estimate([1e-12, 1e-12, 2e-12], [x, x, x], 3e-12,
                             x, True) is None
        estimate = _lte_estimate([0.0, 1e-12], [x, 2 * x], 2e-12,
                                 4 * x, False)
        assert estimate is not None
        lte, order = estimate
        assert order == 2
        assert np.all(np.isfinite(lte))


def _golden_fig09():
    path = os.path.join(os.path.dirname(__file__), "golden",
                        "fig09.json")
    with open(path) as handle:
        return json.load(handle)


class TestGoldenRegression:
    def test_fig09_lte_halves_steps_at_golden_accuracy(self):
        """LTE reproduces the frozen fig09 point with >= 2x fewer steps.

        This is the acceptance benchmark of the step-control change in
        miniature: same circuit, same measurement, both controls, and
        the frozen golden value as the accuracy referee.
        """
        from repro.experiments.fig09_keeper_tradeoff import (
            keeper_point_task,
        )
        golden = _golden_fig09()
        counts = {}
        delays = {}
        for control in ("iter", "lte"):
            accepted = []

            def observe(event, accepted=accepted):
                if event.kind == "transient":
                    accepted.append(event.steps_accepted)

            add_solve_observer(observe)
            try:
                with step_control_override(control):
                    _nm, delay = keeper_point_task(8, 3.0, 0.05, 3.0,
                                                   2e-6)
            finally:
                remove_solve_observer(observe)
            counts[control] = sum(accepted)
            delays[control] = delay
        assert counts["lte"] * 2 <= counts["iter"]
        assert delays["lte"] == pytest.approx(golden["delay_s"],
                                              rel=5e-3)

    def test_fig17_sleep_golden_is_step_control_invariant(self):
        """The fig17 Ron/Ioff sweep must not drift with step control."""
        from repro.library.sleep import sweep_sleep_devices
        path = os.path.join(os.path.dirname(__file__), "golden",
                            "fig17.json")
        with open(path) as handle:
            golden = json.load(handle)
        with step_control_override("lte"):
            rows = sweep_sleep_devices([1, 4])
        for i, row in enumerate(rows):
            assert row[1] == pytest.approx(
                golden["ron_cmos_ohm"][i], rel=1e-6)
            assert row[3] == pytest.approx(
                golden["ron_nems_ohm"][i], rel=1e-6)

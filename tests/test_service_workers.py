"""Multi-worker service tests: parity, attribution, resilience.

The tentpole guarantee under test: with every ambient solver registry
thread-local, ``workers > 1`` produces results bit-identical to
``workers=1`` and each job's summary (engine jobs, cache hits,
SolveStats aggregates) counts exactly that job's work — concurrent
neighbours never leak events into it.
"""

import os
import time

from repro.service import (
    FAILED,
    SUCCEEDED,
    ServiceApp,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SqliteJobStore,
)

#: Distinct quick sweeps so no job aliases another in the cache and
#: every job has a unique, recognisable workload.
JOB_MIX = [
    ("fig01", True, None),
    ("fig09", True, {"sigma_levels": [0.05],
                     "keeper_widths": [8e-07, 2e-06]}),
    ("fig09", True, {"sigma_levels": [0.15],
                     "keeper_widths": [8e-07]}),
    ("fig09", True, {"sigma_levels": [0.05, 0.15],
                     "keeper_widths": [1.2e-06]}),
]

#: Summary fields that must attribute exactly per job.
ATTRIBUTION_KEYS = ("engine_jobs", "cache_hits", "point_failures",
                    "newton_iterations", "steps_accepted")


def service_config(tmp_path, name, **overrides):
    defaults = dict(data_dir=str(tmp_path / name),
                    cache_dir=None,  # determinism: no cross-job reuse
                    max_running_per_tenant=10)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _submit_mix(app):
    records = []
    for experiment, quick, params in JOB_MIX:
        payload = {"experiment": experiment, "quick": quick}
        if params:
            payload["params"] = params
        records.append(app.submit(payload))
    return [record["id"] for record in records]


def _wait_all(app, job_ids, timeout=300.0):
    deadline = time.monotonic() + timeout
    finals = {}
    while time.monotonic() < deadline and len(finals) < len(job_ids):
        for job_id in job_ids:
            if job_id in finals:
                continue
            record = app.job(job_id)
            if record["state"] in (SUCCEEDED, FAILED, "cancelled"):
                finals[job_id] = record
        time.sleep(0.05)
    assert len(finals) == len(job_ids), "jobs did not finish in time"
    return [finals[job_id] for job_id in job_ids]


def _run_mix(tmp_path, name, workers):
    app = ServiceApp(service_config(tmp_path, name, workers=workers))
    app.start()
    try:
        job_ids = _submit_mix(app)
        finals = _wait_all(app, job_ids)
        results = [app.result(job_id) for job_id in job_ids]
        stats = app.stats()
    finally:
        app.stop()
    return finals, results, stats


class TestMultiWorkerParity:
    def test_workers4_bit_identical_to_workers1(self, tmp_path):
        solo_finals, solo_results, _ = _run_mix(
            tmp_path, "solo", workers=1)
        quad_finals, quad_results, quad_stats = _run_mix(
            tmp_path, "quad", workers=4)

        assert quad_stats["service"]["workers_alive"] == 4
        for solo, quad in zip(solo_finals, quad_finals):
            assert solo["state"] == SUCCEEDED
            assert quad["state"] == SUCCEEDED
            # Exact per-job attribution: the concurrent run's summary
            # must match the sequential run's, field for field.  A
            # process-global observer list would have credited each
            # job with its neighbours' solves too.
            for key in ATTRIBUTION_KEYS:
                assert quad["summary"][key] == solo["summary"][key], (
                    f"{key} differs for {solo['spec']['experiment']}: "
                    f"workers=4 {quad['summary'][key]} != "
                    f"workers=1 {solo['summary'][key]}")
        # Bit-identical rendered rows (float-exact).
        for solo, quad in zip(solo_results, quad_results):
            assert quad["rows"] == solo["rows"]
            assert quad["columns"] == solo["columns"]


class _FlakyStore:
    """Delegating store whose first ``claim_next`` calls explode."""

    def __init__(self, inner, failures):
        self._inner = inner
        self._failures = failures

    def claim_next(self, *args, **kwargs):
        if self._failures > 0:
            self._failures -= 1
            raise RuntimeError("transient store glitch")
        return self._inner.claim_next(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestWorkerResilience:
    def test_worker_survives_claim_next_crash(self, tmp_path):
        config = service_config(tmp_path, "flaky", workers=1)
        os.makedirs(config.data_dir, exist_ok=True)
        store = _FlakyStore(SqliteJobStore(config.db_path), failures=2)
        app = ServiceApp(config, store=store)
        app.start()
        try:
            record = app.submit({"experiment": "fig01", "quick": True})
            finals = _wait_all(app, [record["id"]], timeout=60.0)
            assert finals[0]["state"] == SUCCEEDED
            stats = app.stats()
            # The crashes were absorbed, logged, and the pool is whole.
            assert stats["service"]["worker_errors"] >= 1
            assert stats["service"]["workers_alive"] == 1
            kinds = [e["kind"] for e in app.service_events()]
            assert "worker-error" in kinds
        finally:
            app.stop()

    def test_service_events_tail_by_seq(self, tmp_path):
        config = service_config(tmp_path, "events", workers=1)
        app = ServiceApp(config)
        app._service_event("worker-error", "first")
        app._service_event("worker-error", "second")
        events = app.service_events()
        assert [e["detail"] for e in events] == ["first", "second"]
        assert events[1]["seq"] > events[0]["seq"]
        tail = app.service_events(after=events[0]["seq"])
        assert [e["detail"] for e in tail] == ["second"]
        app.store.close()


class TestServiceEventsHTTP:
    def test_endpoint_round_trip(self, tmp_path):
        config = service_config(tmp_path, "http", workers=2)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            server.app._service_event("worker-error", "seeded")
            payload = client.service_events()
            assert [e["detail"] for e in payload["events"]] == \
                ["seeded"]
            seq = payload["next_after"]
            assert seq == payload["events"][0]["seq"]
            assert client.service_events(after=seq) == {
                "events": [], "next_after": seq}
            assert client.stats()["service"]["workers_alive"] == 2

"""Cross-thread isolation of the ambient solver registries.

Every test here fails on a process-global implementation of the
observer stacks / policy values: two barrier-synced threads install
their own observers, transforms and policy overrides *simultaneously*
and assert that neither sees the other's.  The barriers force the
overlap — without them the threads could run back-to-back and a global
registry would pass by accident.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.ambient import ThreadLocalStack, ThreadLocalValue
from repro.analysis.context import AmbientContext
from repro.analysis.options import (
    BackendOptions,
    EvalOptions,
    backend_override,
    ensemble_override,
    eval_override,
    get_backend_options,
    get_default_step_control,
    get_ensemble_mode,
    get_eval_options,
    option_transform,
    resolve_solver_options,
    step_control_override,
)
from repro.analysis.solver import (
    SolveEvent,
    add_solve_observer,
    emit_solve_event,
    newton_solve,
    remove_solve_observer,
)
from repro.engine import telemetry
from repro.engine.runner import (
    Job,
    JobResult,
    add_progress_observer,
    remove_progress_observer,
    run_jobs,
)

DEFAULT_MAX_ITER = 120  # NewtonOptions().max_iterations


def _add10(newton, homotopy):
    return (dataclasses.replace(
        newton, max_iterations=newton.max_iterations + 10), homotopy)


def _double(newton, homotopy):
    return (dataclasses.replace(
        newton, max_iterations=newton.max_iterations * 2), homotopy)


def _linear_solve():
    A = np.array([[2.0, 1.0], [1.0, 3.0]])
    b = np.array([1.0, 2.0])

    def assemble(x):
        return A @ x - b, A, np.zeros(0)

    return newton_solve(assemble, np.zeros(2),
                        row_tol=np.full(2, 1e-9),
                        dx_limit=np.full(2, np.inf))


def _run_threads(*targets):
    """Run targets concurrently; re-raise the first failure."""
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as err:  # noqa: BLE001 - test harness
                errors.append(err)
        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "test thread hung"
    if errors:
        raise errors[0]


class TestThreadLocalPrimitives:
    def test_stack_is_per_thread(self):
        stack = ThreadLocalStack("test")
        stack.push("main")
        seen = {}

        def other():
            seen["before"] = list(stack)
            stack.push("other")
            seen["after"] = list(stack)

        _run_threads(other)
        assert seen["before"] == []          # no inheritance
        assert seen["after"] == ["other"]
        assert list(stack) == ["main"]       # untouched by the thread
        stack.pop("main")

    def test_stack_pop_prefers_identity_from_tail(self):
        stack = ThreadLocalStack("test")
        a1, a2 = [1], [1]  # equal but distinct
        stack.push(a1)
        stack.push(a2)
        stack.pop(a1)
        assert stack.snapshot() == (a2,)

    def test_stack_pop_missing_is_noop(self):
        stack = ThreadLocalStack("test")
        assert stack.pop(object()) is False

    def test_value_set_is_per_thread(self):
        value = ThreadLocalValue("test", "default")
        value.set("main")
        seen = {}

        def other():
            seen["initial"] = value.get()   # shared default, not "main"
            value.set("other")
            seen["set"] = value.get()

        _run_threads(other)
        assert seen == {"initial": "default", "set": "other"}
        assert value.get() == "main"


class TestOptionTransformReentrancy:
    def test_reentrant_same_transform_pops_innermost(self):
        # Pre-PR, exit used list.remove() which drops the *first*
        # equal entry: exiting the inner _add10 block removed the
        # outer registration, leaving [_double, _add10] — order 250
        # instead of the correct [_add10, _double] — order 260.
        with option_transform(_add10):
            with option_transform(_double):
                with option_transform(_add10):
                    n, _ = resolve_solver_options(None, None)
                    assert n.max_iterations == \
                        (DEFAULT_MAX_ITER + 10) * 2 + 10
                n, _ = resolve_solver_options(None, None)
                assert n.max_iterations == (DEFAULT_MAX_ITER + 10) * 2
            n, _ = resolve_solver_options(None, None)
            assert n.max_iterations == DEFAULT_MAX_ITER + 10
        n, _ = resolve_solver_options(None, None)
        assert n.max_iterations == DEFAULT_MAX_ITER

    def test_exception_exit_unwinds_correctly(self):
        with pytest.raises(RuntimeError):
            with option_transform(_add10):
                with option_transform(_add10):
                    raise RuntimeError("boom")
        n, _ = resolve_solver_options(None, None)
        assert n.max_iterations == DEFAULT_MAX_ITER


class TestIdempotentRemoval:
    def test_remove_solve_observer_twice(self):
        events = []
        add_solve_observer(events.append)
        remove_solve_observer(events.append)
        remove_solve_observer(events.append)  # no ValueError
        emit_solve_event(SolveEvent("dc", "direct", 1, 0.0, True, 0.0))
        assert events == []

    def test_remove_never_registered_solve_observer(self):
        remove_solve_observer(lambda event: None)

    def test_remove_progress_observer_twice(self):
        seen = []

        def observer(result, group):
            seen.append(result)

        add_progress_observer(observer)
        remove_progress_observer(observer)
        remove_progress_observer(observer)  # no ValueError

    def test_remove_bound_method_observer(self):
        # stats.observe is a fresh (equal, non-identical) object on
        # every attribute access; removal must still find it.
        stats = telemetry.SolveStats()
        add_solve_observer(stats.observe)
        remove_solve_observer(stats.observe)
        emit_solve_event(SolveEvent("dc", "direct", 1, 0.0, True, 0.0))
        assert stats.dc_solves == 0


class TestCrossThreadIsolation:
    def test_solve_observers_see_only_own_thread(self):
        barrier = threading.Barrier(2, timeout=10.0)

        def worker(tag, out):
            events = []
            add_solve_observer(events.append)
            try:
                barrier.wait()  # both observers registered
                emit_solve_event(SolveEvent(
                    "dc", tag, 1, 0.0, True, 0.0))
                barrier.wait()  # both have emitted
            finally:
                remove_solve_observer(events.append)
            out.extend(events)

        a_events, b_events = [], []
        _run_threads(lambda: worker("thread-a", a_events),
                     lambda: worker("thread-b", b_events))
        assert [e.strategy for e in a_events] == ["thread-a"]
        assert [e.strategy for e in b_events] == ["thread-b"]

    def test_policies_are_per_thread(self):
        barrier = threading.Barrier(2, timeout=10.0)

        def overriding():
            with backend_override(kind="dense"), \
                    step_control_override("iter"), \
                    ensemble_override(False), \
                    eval_override(mode="scalar"):
                barrier.wait()  # overrides active
                barrier.wait()  # reader done observing
            barrier.wait()      # overrides restored

        def reading():
            barrier.wait()
            # The sibling's overrides must be invisible here.
            assert get_backend_options().kind == "auto"
            assert get_default_step_control() == "lte"
            assert get_ensemble_mode() is True
            assert get_eval_options().mode == "batched"
            barrier.wait()
            barrier.wait()

        _run_threads(overriding, reading)

    def test_combined_collecting_transform_override_stress(self):
        # Satellite: two barrier-synced threads each running
        # telemetry.collecting() + option_transform() +
        # backend_override() around real Newton solves must each see
        # exactly their own events and options.
        barrier = threading.Barrier(2, timeout=10.0)
        solves_per_thread = 5

        def worker(kind, transform, expected_iter, out):
            stats = telemetry.SolveStats()
            with backend_override(kind=kind), \
                    option_transform(transform), \
                    telemetry.collecting(stats):
                barrier.wait()  # everyone's ambient context is live
                for _ in range(solves_per_thread):
                    _linear_solve()
                    n, _ = resolve_solver_options(None, None)
                    assert n.max_iterations == expected_iter
                    assert get_backend_options().kind == kind
                barrier.wait()  # all solves done while both collect
            out.append(stats)

        a_out, b_out = [], []
        _run_threads(
            lambda: worker("dense", _add10, DEFAULT_MAX_ITER + 10,
                           a_out),
            lambda: worker("sparse", _double, DEFAULT_MAX_ITER * 2,
                           b_out))
        # A global observer list would have fed both threads' events
        # to both collectors (10 each); thread-local stacks give each
        # exactly its own 5.
        assert a_out[0].newton_solves == solves_per_thread
        assert b_out[0].newton_solves == solves_per_thread

    def test_progress_observers_see_only_own_thread(self):
        barrier = threading.Barrier(2, timeout=10.0)

        def worker(tag, out):
            def observer(result, group):
                out.append((group, result.index))

            add_progress_observer(observer)
            try:
                barrier.wait()
                run_jobs([Job(_task_identity, (index,))
                          for index in range(3)],
                         group=tag, cache=None, jobs=1)
                barrier.wait()
            finally:
                remove_progress_observer(observer)

        a_seen, b_seen = [], []
        _run_threads(lambda: worker("group-a", a_seen),
                     lambda: worker("group-b", b_seen))
        assert {group for group, _ in a_seen} == {"group-a"}
        assert {group for group, _ in b_seen} == {"group-b"}
        assert len(a_seen) == len(b_seen) == 3


def _task_identity(index):
    return index


def _task_report_policies(index):
    """Pool task reporting the ambient policies it resolved."""
    n, _ = resolve_solver_options(None, None)
    return {
        "backend": get_backend_options().kind,
        "step_control": get_default_step_control(),
        "ensemble": get_ensemble_mode(),
        "eval_mode": get_eval_options().mode,
        "max_iterations": n.max_iterations,
    }


class TestAmbientContext:
    def test_capture_and_apply_across_threads(self):
        with backend_override(kind="dense"), \
                step_control_override("iter"), \
                option_transform(_add10):
            context = AmbientContext.capture()
        seen = {}

        def other():
            with context.applied():
                n, _ = resolve_solver_options(None, None)
                seen["backend"] = get_backend_options().kind
                seen["step_control"] = get_default_step_control()
                seen["max_iterations"] = n.max_iterations
            seen["restored"] = get_backend_options().kind

        _run_threads(other)
        assert seen == {"backend": "dense", "step_control": "iter",
                        "max_iterations": DEFAULT_MAX_ITER + 10,
                        "restored": "auto"}

    def test_pool_workers_inherit_submitting_thread_context(self):
        # The engine's --jobs pool must propagate the submitting
        # thread's ambient context into its worker processes.
        with backend_override(kind="dense"), \
                step_control_override("iter"), \
                ensemble_override(False), \
                eval_override(mode="scalar"), \
                option_transform(_add10):
            results = run_jobs(
                [Job(_task_report_policies, (index,))
                 for index in range(4)],
                cache=None, jobs=2)
        assert all(result.ok for result in results)
        for result in results:
            assert result.value == {
                "backend": "dense", "step_control": "iter",
                "ensemble": False, "eval_mode": "scalar",
                "max_iterations": DEFAULT_MAX_ITER + 10,
            }

    def test_pool_results_match_serial_under_overrides(self):
        jobs = [Job(_task_report_policies, (index,))
                for index in range(3)]
        with backend_override(kind="sparse"), option_transform(_double):
            serial = run_jobs(jobs, cache=None, jobs=1)
            parallel = run_jobs(jobs, cache=None, jobs=2)
        assert [r.value for r in serial] == [r.value for r in parallel]


class TestTelemetryExclusiveCollection:
    def test_exclusive_shadows_outer_collectors(self):
        outer, inner = telemetry.SolveStats(), telemetry.SolveStats()
        with telemetry.collecting(outer):
            with telemetry.collecting(inner, exclusive=True):
                _linear_solve()
            _linear_solve()
        assert inner.newton_solves == 1   # only the shadowed solve
        assert outer.newton_solves == 1   # resumes after the block

    def test_engine_jobs_not_double_counted(self):
        # Job-level exclusive collection means an outer collector sees
        # engine solves only through JobResult.solves, never raw.
        outer = telemetry.SolveStats()
        with telemetry.collecting(outer):
            results = run_jobs([Job(_solver_task, (0,))],
                               cache=None, jobs=1)
        assert outer.newton_solves == 0
        assert results[0].solves.newton_solves == 1


def _solver_task(_index):
    x, _, info = _linear_solve()
    return float(x[0]), info.iterations

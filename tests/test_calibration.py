"""Tests for device calibration and swing extraction."""

import numpy as np
import pytest

from repro.devices.calibration import (
    CurrentTargets,
    extract_swing,
    fit_mosfet,
    fit_nemfet,
    transfer_sweep,
)
from repro.devices.mosfet import (
    mosfet_current,
    nmos_90nm,
    pmos_90nm,
)
from repro.devices.nemfet import nemfet_90nm
from repro.errors import CalibrationError

VDD = 1.2


class TestTargets:
    def test_rejects_inverted_targets(self):
        with pytest.raises(CalibrationError):
            CurrentTargets(i_on=1e-9, i_off=1e-3)


class TestFitMosfet:
    def test_reproduces_baked_nmos_constants(self):
        """The constants in mosfet.py must match a fresh fit."""
        fitted = fit_mosfet(nmos_90nm(), CurrentTargets(1110.0, 0.05))
        baked = nmos_90nm()
        assert fitted.vth0 == pytest.approx(baked.vth0, abs=1e-4)
        assert fitted.k_trans == pytest.approx(baked.k_trans, rel=1e-3)

    def test_reproduces_baked_pmos_constants(self):
        fitted = fit_mosfet(pmos_90nm(), CurrentTargets(500.0, 0.05))
        baked = pmos_90nm()
        assert fitted.vth0 == pytest.approx(baked.vth0, abs=1e-4)
        assert fitted.k_trans == pytest.approx(baked.k_trans, rel=1e-3)

    def test_fit_hits_arbitrary_targets(self):
        targets = CurrentTargets(800.0, 0.01)
        fitted = fit_mosfet(nmos_90nm(), targets)
        i_on = mosfet_current(fitted, 1.0, VDD, VDD, 0.0)[0]
        i_off = mosfet_current(fitted, 1.0, 0.0, VDD, 0.0)[0]
        assert i_on == pytest.approx(800.0, rel=0.02)
        assert i_off == pytest.approx(0.01, rel=0.02)

    def test_impossible_ratio_raises(self):
        # ON/OFF ratio of 2 cannot be bracketed by any threshold.
        with pytest.raises(CalibrationError):
            fit_mosfet(nmos_90nm(), CurrentTargets(100.0, 50.0))


class TestFitNemfet:
    def test_reproduces_baked_constants(self):
        fitted = fit_nemfet(nemfet_90nm(),
                            CurrentTargets(330.0, 110e-6))
        baked = nemfet_90nm()
        assert fitted.channel.vth0 == pytest.approx(
            baked.channel.vth0, abs=1e-3)
        assert fitted.channel.k_trans == pytest.approx(
            baked.channel.k_trans, rel=1e-2)
        assert fitted.i_floor_per_width == pytest.approx(
            baked.i_floor_per_width, rel=1e-6)

    def test_rejects_bad_floor_fraction(self):
        with pytest.raises(CalibrationError):
            fit_nemfet(nemfet_90nm(), CurrentTargets(330.0, 110e-6),
                       floor_fraction=1.5)

    def test_rejects_wrong_type(self):
        with pytest.raises(CalibrationError):
            fit_nemfet(nmos_90nm(), CurrentTargets(330.0, 110e-6))


class TestSwingExtraction:
    def test_ideal_exponential(self):
        """A perfect 100 mV/dec exponential must measure exactly that."""
        vg = np.linspace(0.0, 1.0, 201)
        i = 1e-12 * 10 ** (vg / 0.1)
        assert extract_swing(vg, i, i_min=1e-12, i_max=1e-4) \
            == pytest.approx(0.1, rel=1e-3)

    def test_window_excludes_saturation(self):
        vg = np.linspace(0.0, 1.0, 201)
        i = np.minimum(1e-12 * 10 ** (vg / 0.08), 1e-5)
        s = extract_swing(vg, i, i_min=1e-11, i_max=1e-6)
        assert s == pytest.approx(0.08, rel=1e-2)

    def test_too_few_points_raises(self):
        with pytest.raises(CalibrationError):
            extract_swing([0.0, 1.0], [1e-9, 1e-6])

    def test_flat_current_raises(self):
        vg = np.linspace(0, 1, 50)
        with pytest.raises(CalibrationError):
            extract_swing(vg, np.full_like(vg, 1e-9))

    def test_empty_window_raises(self):
        vg = np.linspace(0, 1, 50)
        i = 1e-12 * 10 ** (vg / 0.1)
        with pytest.raises(CalibrationError):
            extract_swing(vg, i, i_min=1.0, i_max=2.0)

    def test_transfer_sweep_helper(self):
        values = transfer_sweep(lambda v: 2 * v, [0.0, 0.5, 1.0])
        assert np.allclose(values, [0.0, 1.0, 2.0])

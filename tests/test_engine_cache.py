"""Tests for the content-addressed result cache."""

import os
import pickle
import time

import numpy as np
import pytest

from repro.engine.cache import (
    ResultCache,
    job_key,
    netlist_fingerprint,
    stable_hash,
)


def task_a(x, y=1.0):
    return x * y


def task_b(x, y=1.0):
    return x + y


class TestStableHash:
    def test_deterministic_across_calls(self):
        payload = {"a": 1, "b": (2.0, "three"), "c": [4, 5]}
        assert stable_hash(payload) == stable_hash(payload)

    def test_dict_order_irrelevant(self):
        assert (stable_hash({"a": 1, "b": 2})
                == stable_hash({"b": 2, "a": 1}))

    def test_value_changes_change_hash(self):
        assert stable_hash({"a": 1.0}) != stable_hash({"a": 1.0 + 1e-15})

    def test_numpy_arrays_hash_by_content(self):
        a = np.linspace(0.0, 1.0, 7)
        assert stable_hash(a) == stable_hash(a.copy())
        assert stable_hash(a) != stable_hash(a + 1e-12)

    def test_dataclasses_supported(self):
        from repro.devices.mosfet import nmos_90nm
        assert stable_hash(nmos_90nm()) == stable_hash(nmos_90nm())

    def test_unknown_types_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="canonicalise"):
            stable_hash(Opaque())


class TestJobKey:
    def test_same_invocation_same_key(self):
        assert job_key(task_a, (2,), {"y": 3.0}) == \
            job_key(task_a, (2,), {"y": 3.0})

    def test_key_changes_on_parameter_change(self):
        base = job_key(task_a, (2,), {"y": 3.0})
        assert job_key(task_a, (2,), {"y": 3.5}) != base
        assert job_key(task_a, (3,), {"y": 3.0}) != base

    def test_key_changes_with_function(self):
        assert job_key(task_a, (2,)) != job_key(task_b, (2,))

    def test_extra_payload_changes_key(self):
        assert job_key(task_a, (2,), extra="fingerprint-1") != \
            job_key(task_a, (2,), extra="fingerprint-2")

    def test_step_control_override_changes_key(self):
        # A warm cache must not replay LTE-control results for an
        # --step-control iter run (or vice versa): the ambient policy
        # is part of the content the key addresses.
        from repro.analysis.options import step_control_override
        base = job_key(task_a, (2,))
        with step_control_override("iter"):
            assert job_key(task_a, (2,)) != base
        assert job_key(task_a, (2,)) == base

    def test_backend_override_changes_key(self):
        from repro.analysis.options import backend_override
        base = job_key(task_a, (2,))
        with backend_override(kind="dense"):
            assert job_key(task_a, (2,)) != base
        with backend_override(sparse_threshold=8):
            assert job_key(task_a, (2,)) != base
        assert job_key(task_a, (2,)) == base

    def test_ensemble_override_changes_key(self):
        # Stacked lock-step results share one adaptive grid across
        # samples, so they are not bit-identical to the sequential
        # per-sample path: a --no-ensemble run must never replay an
        # ensemble-mode cache entry (or vice versa).
        from repro.analysis.options import ensemble_override
        base = job_key(task_a, (2,))
        with ensemble_override(False):
            assert job_key(task_a, (2,)) != base
        assert job_key(task_a, (2,)) == base

    def test_ensemble_spec_has_content_addressed_token(self):
        from repro.analysis.ensemble import EnsembleSpec
        spec = EnsembleSpec(2, vth_shift={"M1": [0.01, -0.02]})
        same = EnsembleSpec(2, vth_shift={"M1": [0.01, -0.02]})
        other = EnsembleSpec(2, vth_shift={"M1": [0.01, -0.03]})
        assert (job_key(task_a, (spec,))
                == job_key(task_a, (same,)))
        assert (job_key(task_a, (spec,))
                != job_key(task_a, (other,)))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = job_key(task_a, (2,))
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, 42.0)
        hit, value = cache.get(key)
        assert hit and value == 42.0
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stores == 1

    def test_numpy_values_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        value = (np.arange(5.0), {"snm": 0.137})
        cache.put("k" * 64, value)
        hit, loaded = cache.get("k" * 64)
        assert hit
        np.testing.assert_array_equal(loaded[0], value[0])
        assert loaded[1] == value[1]

    def test_corrupted_entry_recovers_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = job_key(task_a, (5,))
        cache.put(key, "good")
        path = cache._path(key)
        with open(path, "wb") as handle:
            handle.write(b"\x80\x05 truncated garbage")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.corrupt == 1
        assert not os.path.exists(path)  # self-healed
        # A fresh store works again.
        cache.put(key, "repaired")
        assert cache.get(key) == (True, "repaired")

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(job_key(task_a, (i,)), i)
        assert cache.clear() == 3
        assert cache.get(job_key(task_a, (0,)))[0] is False

    def test_clear_sweeps_tmp_leftovers(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(job_key(task_a, (1,)), 1)
        shard = os.path.dirname(cache._path(job_key(task_a, (1,))))
        leftover = os.path.join(shard, "crashed-writer.tmp")
        with open(leftover, "w") as handle:
            handle.write("partial")
        # The count covers real entries only, but the .tmp goes too.
        assert cache.clear() == 1
        assert not os.path.exists(leftover)

    def test_construction_sweeps_stale_tmp(self, tmp_path):
        first = ResultCache(str(tmp_path))
        first.put(job_key(task_a, (1,)), 1)
        shard = os.path.dirname(first._path(job_key(task_a, (1,))))
        stale = os.path.join(shard, "stale.tmp")
        fresh = os.path.join(shard, "fresh.tmp")
        for path in (stale, fresh):
            with open(path, "w") as handle:
                handle.write("partial")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        cache = ResultCache(str(tmp_path))
        # Only the stale leftover is swept: the fresh one may belong to
        # a live writer in another process.
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)
        # The real entry survives the sweep.
        assert cache.get(job_key(task_a, (1,))) == (True, 1)


class TestNetlistFingerprint:
    def test_stable_and_sensitive(self):
        from repro.library.dynamic_logic import (
            DynamicOrSpec,
            build_dynamic_or,
        )
        gate = build_dynamic_or(DynamicOrSpec(fan_in=2, fan_out=1.0,
                                              style="cmos"))
        same = build_dynamic_or(DynamicOrSpec(fan_in=2, fan_out=1.0,
                                              style="cmos"))
        other = build_dynamic_or(DynamicOrSpec(fan_in=3, fan_out=1.0,
                                               style="cmos"))
        assert netlist_fingerprint(gate.circuit) == \
            netlist_fingerprint(same.circuit)
        assert netlist_fingerprint(gate.circuit) != \
            netlist_fingerprint(other.circuit)
